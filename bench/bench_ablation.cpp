// E-ablation — design-choice studies called out in DESIGN.md:
//   A1: FIFO capacity of the wrappers (back-pressure pressure point);
//   A2: the squashed-fetch oracle extension (off = paper behaviour);
//   A3: oracle poisoning of unrequired inputs (must be free);
//   A4: drain window sensitivity of the cycle metric.
#include <iostream>

#include "bench_common.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp::proc;

  const ProgramSpec program = extraction_sort_program(16, 1);
  RsConfig all1{"All 1 (no CU-IC)", {}};
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") all1.rs[name] = 1;
  RsConfig cu_ic{"Only CU-IC", {{"CU-IC", 1}}};

  ExperimentOptions options;
  options.check_equivalence = false;

  // A1 — FIFO capacity.
  {
    wp::TextTable table({"fifo capacity", "Th WP1 (all-1)", "Th WP2 (all-1)",
                         "Th WP2 (RF-DC=4)"});
    table.add_section("A1: wrapper FIFO capacity");
    table.add_separator();
    RsConfig skewed{"RF-DC=4", {{"RF-DC", 4}}};
    for (const std::size_t cap : {1u, 2u, 4u, 8u, 16u}) {
      ExperimentOptions o = options;
      o.fifo_capacity = cap;
      const ExperimentRow row = run_experiment(program, {}, all1, o);
      const ExperimentRow skew = run_experiment(program, {}, skewed, o);
      table.add_row({std::to_string(cap), wp::fmt_fixed(row.th_wp1, 3),
                     wp::fmt_fixed(row.th_wp2, 3),
                     wp::fmt_fixed(skew.th_wp2, 3)});
    }
    table.print(std::cout);
    std::cout << "Depth-1 FIFOs already reach the protocol bound: each "
                 "relay station\ncontributes two slots of elasticity (main "
                 "+ aux), so the wrappers'\nbuffers can stay tiny — which "
                 "is what keeps the wrapper under the\npaper's 1% area "
                 "budget (E5).\n\n";
  }

  // A2 — squashed-fetch relaxation (extension over the paper's oracle).
  {
    wp::TextTable table({"CU oracle", "Th WP1", "Th WP2", "gain"});
    table.add_section("A2: squashed-fetch relaxation, config \"Only CU-IC\"");
    table.add_separator();
    for (const bool relax : {false, true}) {
      CpuConfig cpu;
      cpu.relax_squashed_fetches = relax;
      const ExperimentRow row = run_experiment(program, cpu, cu_ic, options);
      table.add_row({relax ? "skip squashed slots (extension)"
                           : "paper (wait for all real fetches)",
                     wp::fmt_fixed(row.th_wp1, 3),
                     wp::fmt_fixed(row.th_wp2, 3),
                     wp::fmt_percent(row.improvement)});
    }
    table.print(std::cout);
    std::cout << "A richer communication profile squeezes a few extra "
                 "percent out of\nthe fetch loop after taken branches.\n\n";
  }

  // A3 — poisoning unrequired inputs must not change throughput.
  {
    wp::TextTable table({"poison unrequired", "WP2 cycles"});
    table.add_section("A3: oracle soundness instrumentation cost");
    table.add_separator();
    for (const bool poison : {true, false}) {
      wp::SystemSpec spec = make_cpu_system(program, {});
      spec.set_rs_map(all1.rs);
      wp::ShellOptions shell;
      shell.use_oracle = true;
      shell.poison_unrequired = poison;
      wp::LidSystem lid = build_lid(spec, shell, false);
      const std::uint64_t cycles = lid.run_until_halt(2000000, 0);
      table.add_row({poison ? "on" : "off", std::to_string(cycles)});
    }
    table.print(std::cout);
    std::cout << "Identical cycle counts: the soundness instrumentation is "
                 "free.\n\n";
  }

  // A4 — drain window.
  {
    wp::TextTable table({"drain firings", "golden cycles", "Th WP2"});
    table.add_section("A4: HALT drain window sensitivity");
    table.add_separator();
    for (const int drain : {0, 4, 8, 16, 32}) {
      CpuConfig cpu;
      cpu.drain_firings = drain;
      const ExperimentRow row = run_experiment(program, cpu, all1, options);
      table.add_row({std::to_string(drain),
                     std::to_string(row.golden_cycles),
                     wp::fmt_fixed(row.th_wp2, 3)});
    }
    table.print(std::cout);
    std::cout << "The drain window shifts absolute cycle counts by a "
                 "constant but\nleaves throughput ratios unchanged.\n";
  }
  return 0;
}
