// Shared helpers for the table-reproduction benches: renders ExperimentRow
// lists in the layout of the paper's Table 1 (Cycles | Th WP1 | Th WP2 |
// WP2 vs WP1 %) plus our extra diagnostics, mirrors rows to CSV when
// WIREPIPE_CSV is set in the environment, reports the simulation oracle's
// golden-replay savings, and emits machine-readable JSON artifacts
// (JsonWriter) so CI can archive a perf trajectory per commit instead of
// scraping tables. Flag parsing lives in wp::cli::ArgParser
// (src/cli/arg_parser.hpp), shared with the service binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "proc/experiment.hpp"
#include "sim/oracle.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace wp::bench {

// ------------------------------------------------------------ JSON writer

/// Minimal streaming JSON emitter for bench artifacts (BENCH_*.json):
/// begin/end object/array with automatic comma placement and two-space
/// indentation, string escaping for the control/quote/backslash set.
/// Numbers print with enough digits to round-trip doubles. No dependency,
/// no DOM — the benches stream straight into an ofstream.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key of the next value inside an object: writer.key("x").value(1.0);
  JsonWriter& key(const std::string& name) {
    separate();
    quote(name);
    os_ << ": ";
    just_keyed_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& text) {
    separate();
    quote(text);
    return *this;
  }
  JsonWriter& value(const char* text) { return value(std::string(text)); }
  JsonWriter& value(double number) {
    separate();
    std::ostringstream formatted;
    formatted.precision(17);
    formatted << number;
    os_ << formatted.str();
    return *this;
  }
  JsonWriter& value(unsigned long long number) {
    separate();
    os_ << number;
    return *this;
  }
  JsonWriter& value(unsigned long number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(unsigned number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(int number) {
    separate();
    os_ << number;
    return *this;
  }
  JsonWriter& value(bool flag) {
    separate();
    os_ << (flag ? "true" : "false");
    return *this;
  }

  /// key + value in one call, the dominant pattern.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  JsonWriter& open(char bracket) {
    separate();
    os_ << bracket;
    ++depth_;
    first_in_scope_ = true;
    return *this;
  }
  JsonWriter& close(char bracket) {
    --depth_;
    if (!first_in_scope_) {
      os_ << "\n";
      indent();
    }
    os_ << bracket;
    first_in_scope_ = false;
    return *this;
  }
  void separate() {
    if (just_keyed_) {
      just_keyed_ = false;  // value follows its key inline
      return;
    }
    if (!first_in_scope_) os_ << ",";
    if (depth_ > 0) {
      os_ << "\n";
      indent();
    }
    first_in_scope_ = false;
  }
  void indent() {
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }
  void quote(const std::string& text) {
    os_ << '"';
    for (const char c : text) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
            os_ << buffer;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool just_keyed_ = false;
};

// Flag parsing lives in wp::cli::ArgParser (src/cli/arg_parser.hpp) —
// shared by every bench and by the service binaries, so the flag
// vocabulary cannot drift between the table benches and the daemons.

// ------------------------------------------------- oracle replay report

/// Prints how many golden replays the simulation oracle saved between two
/// stats snapshots: pre-oracle, every evaluation re-simulated the golden.
inline void print_golden_replays(const std::string& what,
                                 const sim::GoldenCache::Stats& before,
                                 const sim::GoldenCache::Stats& after,
                                 std::ostream& os = std::cout) {
  const std::uint64_t evaluations =
      (after.hits + after.misses) - (before.hits + before.misses);
  const std::uint64_t runs = after.golden_runs - before.golden_runs;
  os << what << ": " << evaluations
     << " golden-referenced evaluations, golden simulated " << runs
     << "x (pre-oracle: " << evaluations << "x), cache hits "
     << (after.hits - before.hits) << "\n";
}

inline void print_table1(const std::string& title,
                         const std::vector<proc::ExperimentRow>& rows,
                         std::ostream& os = std::cout) {
  TextTable table({"RS Configuration", "Cycles", "Th WP1", "Th WP2",
                   "WP2 vs WP1 (%)", "static m/(m+n)", "checks"});
  table.add_section(title);
  table.add_separator();
  int index = 1;
  for (const auto& row : rows) {
    const std::string checks =
        (row.wp1_equivalent && row.wp2_equivalent && row.result_ok)
            ? "ok"
            : ("FAIL: " + row.detail);
    table.add_row({std::to_string(index++) + "  " + row.label,
                   std::to_string(row.wp2_cycles), fmt_fixed(row.th_wp1, 3),
                   fmt_fixed(row.th_wp2, 3), fmt_percent(row.improvement),
                   fmt_fixed(row.static_wp1, 3), checks});
  }
  table.print(os);
  os << "Cycles column: WP2 run, as in the paper's Table 1 "
        "(ideal row: golden cycles "
     << (rows.empty() ? 0 : rows.front().golden_cycles) << ").\n\n";
}

/// Appends rows to $WIREPIPE_CSV (if set) for downstream plotting.
inline void maybe_write_csv(const std::string& experiment,
                            const std::vector<proc::ExperimentRow>& rows) {
  const char* path = std::getenv("WIREPIPE_CSV");
  if (path == nullptr) return;
  std::ofstream file(path, std::ios::app);
  CsvWriter csv(file);
  for (const auto& row : rows) {
    csv.row({experiment, row.label, std::to_string(row.golden_cycles),
             std::to_string(row.wp1_cycles), std::to_string(row.wp2_cycles),
             fmt_fixed(row.th_wp1, 6), fmt_fixed(row.th_wp2, 6),
             fmt_fixed(row.improvement, 6), fmt_fixed(row.static_wp1, 6)});
  }
}

}  // namespace wp::bench
