// Shared helpers for the table-reproduction benches: renders ExperimentRow
// lists in the layout of the paper's Table 1 (Cycles | Th WP1 | Th WP2 |
// WP2 vs WP1 %) plus our extra diagnostics, mirrors rows to CSV when
// WIREPIPE_CSV is set in the environment, reports the simulation oracle's
// golden-replay savings, and emits machine-readable JSON artifacts
// (JsonWriter) so CI can archive a perf trajectory per commit instead of
// scraping tables. Flag parsing lives in wp::cli::ArgParser
// (src/cli/arg_parser.hpp), shared with the service binaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "proc/experiment.hpp"
#include "sim/oracle.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace wp::bench {

// The JSON emitter moved to src/util/json.hpp (wp::json::JsonWriter) so
// library code — the metrics registry, the daemon's stats-scrape reply,
// the trace exporter — writes the same artifact format as the benches.
// The alias keeps the historical wp::bench::JsonWriter spelling working.
using JsonWriter = json::JsonWriter;

// Flag parsing lives in wp::cli::ArgParser (src/cli/arg_parser.hpp) —
// shared by every bench and by the service binaries, so the flag
// vocabulary cannot drift between the table benches and the daemons.

// ------------------------------------------------- oracle replay report

/// Prints how many golden replays the simulation oracle saved between two
/// stats snapshots: pre-oracle, every evaluation re-simulated the golden.
inline void print_golden_replays(const std::string& what,
                                 const sim::GoldenCache::Stats& before,
                                 const sim::GoldenCache::Stats& after,
                                 std::ostream& os = std::cout) {
  const std::uint64_t evaluations =
      (after.hits + after.misses) - (before.hits + before.misses);
  const std::uint64_t runs = after.golden_runs - before.golden_runs;
  os << what << ": " << evaluations
     << " golden-referenced evaluations, golden simulated " << runs
     << "x (pre-oracle: " << evaluations << "x), cache hits "
     << (after.hits - before.hits) << "\n";
}

inline void print_table1(const std::string& title,
                         const std::vector<proc::ExperimentRow>& rows,
                         std::ostream& os = std::cout) {
  TextTable table({"RS Configuration", "Cycles", "Th WP1", "Th WP2",
                   "WP2 vs WP1 (%)", "static m/(m+n)", "checks"});
  table.add_section(title);
  table.add_separator();
  int index = 1;
  for (const auto& row : rows) {
    const std::string checks =
        (row.wp1_equivalent && row.wp2_equivalent && row.result_ok)
            ? "ok"
            : ("FAIL: " + row.detail);
    table.add_row({std::to_string(index++) + "  " + row.label,
                   std::to_string(row.wp2_cycles), fmt_fixed(row.th_wp1, 3),
                   fmt_fixed(row.th_wp2, 3), fmt_percent(row.improvement),
                   fmt_fixed(row.static_wp1, 3), checks});
  }
  table.print(os);
  os << "Cycles column: WP2 run, as in the paper's Table 1 "
        "(ideal row: golden cycles "
     << (rows.empty() ? 0 : rows.front().golden_cycles) << ").\n\n";
}

/// Appends rows to $WIREPIPE_CSV (if set) for downstream plotting.
inline void maybe_write_csv(const std::string& experiment,
                            const std::vector<proc::ExperimentRow>& rows) {
  const char* path = std::getenv("WIREPIPE_CSV");
  if (path == nullptr) return;
  std::ofstream file(path, std::ios::app);
  CsvWriter csv(file);
  for (const auto& row : rows) {
    csv.row({experiment, row.label, std::to_string(row.golden_cycles),
             std::to_string(row.wp1_cycles), std::to_string(row.wp2_cycles),
             fmt_fixed(row.th_wp1, 6), fmt_fixed(row.th_wp2, 6),
             fmt_fixed(row.improvement, 6), fmt_fixed(row.static_wp1, 6)});
  }
}

}  // namespace wp::bench
