// Topology-ensemble bench: five synthetic SoC families x N seeded samples
// each, every sample driven through the full methodology pipeline
// (generate -> dress -> throughput-aware annealed floorplan -> placement
// RS demand -> min-cycle-ratio throughput -> golden/WP1/WP2 simulation of
// the generated netlist via the simulation oracle). The same ensemble runs
// sequentially and on the thread pool; any bitwise divergence is a
// determinism bug and fails the run.
//
// The default family set includes the 128-node scale-free family the fast
// packing engine unlocked, riding on FamilySpec::anneal_iterations (a
// smaller per-family budget than the 24-node families).
//
// CSV: writes <prefix>_samples.csv and <prefix>_families.csv (prefix from
// the first non-flag argument, default "bench_ensembles") for the
// per-commit CI artifact; the samples CSV carries th_wp1_sim/th_wp2_sim/
// sim_ok next to the static bound.
//
// Flags (wp::cli::ArgParser; --help prints the full usage):
//   --samples N        samples per family (default 12)
//   --families a,b,c   keep only the named families (default: all five)
//   --no-sim           skip the golden/WP1/WP2 simulation triple
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "cli/arg_parser.hpp"
#include "floorplan/pack_engine.hpp"
#include "gen/ensemble.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

wp::gen::EnsembleConfig make_config() {
  using wp::gen::FamilySpec;
  using wp::gen::TopologyFamily;
  wp::gen::EnsembleConfig config;
  config.seed = 2005;
  config.samples_per_family = 12;
  config.anneal.iterations = 1500;
  config.simulate.enabled = true;

  FamilySpec ba;
  ba.name = "ba-24";
  ba.topology.family = TopologyFamily::kBarabasiAlbert;
  ba.topology.num_nodes = 24;
  ba.topology.ba_attach = 2;
  config.families.push_back(ba);

  FamilySpec ws;
  ws.name = "ws-24";
  ws.topology.family = TopologyFamily::kWattsStrogatz;
  ws.topology.num_nodes = 24;
  ws.topology.ws_neighbors = 4;
  ws.topology.ws_rewire_probability = 0.15;
  config.families.push_back(ws);

  FamilySpec torus;
  torus.name = "torus-5x5";
  torus.topology.family = TopologyFamily::kMesh;
  torus.topology.num_nodes = 25;
  torus.topology.mesh_rows = 5;
  torus.topology.mesh_cols = 5;
  torus.topology.mesh_torus = true;
  config.families.push_back(torus);

  FamilySpec cer;
  cer.name = "cer-24x4";
  cer.topology.family = TopologyFamily::kClusteredErdosRenyi;
  cer.topology.num_nodes = 24;
  cer.topology.er_clusters = 4;
  cer.topology.er_intra_probability = 0.3;
  cer.topology.er_inter_probability = 0.03;
  config.families.push_back(cer);

  // The scale regime the incremental packing engine unlocked, now in the
  // default set: per-family iteration budget instead of a separate
  // --large run. Johnson cycle enumeration explodes here; the global cap
  // records cycles = -1 for these samples.
  FamilySpec large;
  large.name = "ba-128";
  large.topology.family = TopologyFamily::kBarabasiAlbert;
  large.topology.num_nodes = 128;
  large.topology.ba_attach = 2;
  large.anneal_iterations = 800;
  config.families.push_back(large);

  return config;
}

/// The 256/512/1024-node scale sweep, collected for the JSON artifact.
struct ScaleSection {
  bool ran = false;
  bool engines_identical = true;
  double batched_ms = 0.0;          ///< pooled run, serial kBatched anneals
  double parallel_engine_ms = 0.0;  ///< pooled run, kParallel anneals
  struct Row {
    std::string family;
    std::size_t samples = 0;
    double th_mean = 0, rs_mean = 0, area_mean = 0, anneal_ms_mean = 0;
  };
  std::vector<Row> rows;
};

/// Runs a slice of the scale substrate (ba-256 / mesh-16x16 / ba-1024,
/// 2 samples each, simulation and cycle enumeration off — the pipeline is
/// anneal -> placement RS demand -> min-cycle-ratio throughput) twice
/// through the pooled runner: once with the serial kBatched engine, once
/// with the speculative kParallel engine. The two reports must be
/// bit-identical — the scale families are exactly where a parallel-window
/// divergence would hide, so the bench doubles as the at-scale engine
/// differential the unit tests cannot afford.
ScaleSection run_scale_section() {
  using namespace wp;
  gen::EnsembleConfig config;
  config.seed = 2005;
  config.samples_per_family = 2;
  config.simulate.enabled = false;
  config.max_cycle_enumeration = 0;  // Johnson enumeration explodes here
  for (auto& family : gen::scale_family_specs())
    if (family.name == "ba-256" || family.name == "mesh-16x16" ||
        family.name == "ba-1024")
      config.families.push_back(std::move(family));

  ScaleSection section;
  section.ran = true;

  config.anneal.pack_engine = fplan::PackEngine::kBatched;
  const auto batched_start = Clock::now();
  const gen::EnsembleReport batched = gen::run_ensemble(config);
  section.batched_ms = seconds_since(batched_start) * 1000.0;

  config.anneal.pack_engine = fplan::PackEngine::kParallel;
  const auto parallel_start = Clock::now();
  const gen::EnsembleReport parallel = gen::run_ensemble(config);
  section.parallel_engine_ms = seconds_since(parallel_start) * 1000.0;

  section.engines_identical = batched.samples == parallel.samples;

  TextTable table({"family", "samples", "Th mean", "RS mean", "area mean",
                   "anneal ms"});
  table.add_section(
      "Scale substrate (2 samples/family, sim off, kBatched vs kParallel "
      "bit-compared)");
  table.add_separator();
  for (const auto& f : parallel.families) {
    table.add_row({f.family, std::to_string(f.samples),
                   fmt_fixed(f.th_mean, 3), fmt_fixed(f.rs_mean, 1),
                   fmt_fixed(f.area_mean, 1),
                   fmt_fixed(f.anneal_ms_mean, 1)});
    section.rows.push_back({f.family, f.samples, f.th_mean, f.rs_mean,
                            f.area_mean, f.anneal_ms_mean});
  }
  table.print(std::cout);
  std::cout << "batched engine " << fmt_fixed(section.batched_ms / 1000.0, 2)
            << " s, parallel engine "
            << fmt_fixed(section.parallel_engine_ms / 1000.0, 2)
            << " s   batched == parallel: "
            << (section.engines_identical ? "yes" : "NO — ENGINE DIVERGENCE")
            << "\n\n";
  return section;
}

/// Runs one config sequentially and pooled, prints the family table, writes
/// the CSVs and the JSON artifact, and returns whether the two runs were
/// bit-identical.
bool run_and_report(const wp::gen::EnsembleConfig& config,
                    const std::string& prefix, const std::string& json_path,
                    const ScaleSection& scale) {
  using namespace wp;
  const auto sequential_start = Clock::now();
  const gen::EnsembleReport sequential = gen::run_ensemble_sequential(config);
  const double sequential_s = seconds_since(sequential_start);

  const auto parallel_start = Clock::now();
  const gen::EnsembleReport parallel = gen::run_ensemble(config);
  const double parallel_s = seconds_since(parallel_start);

  const bool identical = sequential.samples == parallel.samples;

  TextTable table({"family", "samples", "Th mean", "Th p95", "Th min",
                   "Th wp1 sim", "Th wp2 sim", "sim fail", "RS mean",
                   "area mean", "anneal ms", "th-eval ms"});
  table.add_separator();
  for (const auto& f : parallel.families) {
    // Sim columns show "-" when the triple was not simulated (--no-sim):
    // an unmeasured value must not read as a measured zero.
    const bool sim = f.sim_samples > 0;
    table.add_row({f.family, std::to_string(f.samples),
                   fmt_fixed(f.th_mean, 3), fmt_fixed(f.th_p95, 3),
                   fmt_fixed(f.th_min, 3),
                   sim ? fmt_fixed(f.th_wp1_sim_mean, 3) : std::string("-"),
                   sim ? fmt_fixed(f.th_wp2_sim_mean, 3) : std::string("-"),
                   sim ? std::to_string(f.sim_failures) : std::string("-"),
                   fmt_fixed(f.rs_mean, 1), fmt_fixed(f.area_mean, 1),
                   fmt_fixed(f.anneal_ms_mean, 1),
                   fmt_fixed(f.throughput_ms_mean, 1)});
  }
  table.print(std::cout);

  {
    const std::uint64_t engine_queries =
        parallel.engine_incremental + parallel.engine_fallbacks;
    std::cout << "throughput engine: " << engine_queries
              << " min-cycle-ratio queries, " << parallel.engine_incremental
              << " incremental / " << parallel.engine_fallbacks
              << " cold re-solves ("
              << fmt_percent(engine_queries == 0
                                 ? 0.0
                                 : static_cast<double>(
                                       parallel.engine_incremental) /
                                       static_cast<double>(engine_queries))
              << " incremental)\n";
  }

  std::cout << "sequential " << fmt_fixed(sequential_s, 2) << " s, pooled "
            << fmt_fixed(parallel_s, 2) << " s (speedup "
            << fmt_fixed(sequential_s / parallel_s, 2)
            << "x)   sequential == pooled: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  if (config.simulate.enabled)
    std::cout << "simulation oracle: " << parallel.sim_golden_runs
              << " golden runs for " << parallel.samples.size()
              << " samples x 2 WP evaluations (each WP1/WP2 pair replays "
                 "one cached golden)\n";

  {
    std::ofstream samples(prefix + "_samples.csv");
    gen::write_samples_csv(parallel, samples);
    std::ofstream families(prefix + "_families.csv");
    gen::write_families_csv(parallel, families);
  }
  std::cout << "wrote " << prefix << "_samples.csv ("
            << parallel.samples.size() << " rows) and " << prefix
            << "_families.csv\n";

  // Machine artifact for the perf flight recorder (tools/bench_diff):
  // wall-clock totals, the pool speedup and per-family aggregate means.
  {
    std::ofstream json_file(json_path);
    bench::JsonWriter json(json_file);
    json.begin_object();
    json.field("bench", "ensembles");
    json.field("samples_per_family", config.samples_per_family);
    json.field("deterministic", identical);
    json.field("sequential_ms", sequential_s * 1000.0);
    json.field("parallel_ms", parallel_s * 1000.0);
    json.field("pool_speedup", parallel_s > 0.0 ? sequential_s / parallel_s
                                                : 0.0);
    json.key("engine").begin_object();
    json.field("incremental", parallel.engine_incremental);
    json.field("fallbacks", parallel.engine_fallbacks);
    json.end_object();
    json.key("families").begin_array();
    for (const auto& f : parallel.families) {
      json.begin_object();
      json.field("family", f.family);
      json.field("samples", static_cast<unsigned long long>(f.samples));
      json.field("th_mean", f.th_mean);
      json.field("rs_mean", f.rs_mean);
      json.field("area_mean", f.area_mean);
      json.field("anneal_ms_mean", f.anneal_ms_mean);
      json.field("throughput_ms_mean", f.throughput_ms_mean);
      json.end_object();
    }
    json.end_array();
    if (scale.ran) {
      json.key("scale").begin_object();
      json.field("engines_identical", scale.engines_identical);
      json.field("batched_ms", scale.batched_ms);
      json.field("parallel_engine_ms", scale.parallel_engine_ms);
      json.key("families").begin_array();
      for (const auto& r : scale.rows) {
        json.begin_object();
        json.field("family", r.family);
        json.field("samples", static_cast<unsigned long long>(r.samples));
        json.field("th_mean", r.th_mean);
        json.field("rs_mean", r.rs_mean);
        json.field("area_mean", r.area_mean);
        json.field("anneal_ms_mean", r.anneal_ms_mean);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_object();
    json_file << "\n";
  }
  std::cout << "wrote " << json_path << "\n\n";
  return identical && (!scale.ran || scale.engines_identical);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wp;

  gen::EnsembleConfig config = make_config();

  cli::ArgParser parser(
      "bench_ensembles",
      "Topology-ensemble bench: full floorplan→RS→throughput pipeline "
      "with optional golden/WP1/WP2 netlist simulation.");
  parser.option("--samples", "N", std::to_string(config.samples_per_family),
                "samples per family");
  parser.option("--families", "a,b,c", "",
                "subset of families to run (default: all)");
  parser.flag("--no-sim", "skip the netlist-simulation pass");
  parser.flag("--no-scale",
              "skip the 256/1024-node scale sweep (kBatched vs kParallel)");
  parser.option("--json", "PATH", "BENCH_ensembles.json",
                "perf flight-recorder artifact");
  parser.positional("prefix", "bench_ensembles",
                    "artifact name prefix (BENCH_<prefix>.json)");
  parser.parse_or_exit(argc, argv);

  config.samples_per_family = parser.get_int("--samples");
  if (parser.has("--no-sim")) config.simulate.enabled = false;

  const std::vector<std::string> keep = parser.get_list("--families");
  if (!keep.empty()) {
    std::vector<gen::FamilySpec> chosen;
    for (const auto& name : keep) {
      // Duplicates would run the same name-keyed seeds twice and emit
      // indistinguishable CSV rows.
      const auto dup = [&](const gen::FamilySpec& f) {
        return f.name == name;
      };
      if (std::any_of(chosen.begin(), chosen.end(), dup)) {
        std::cerr << "family '" << name << "' listed twice in --families\n";
        return 2;
      }
      bool found = false;
      for (const auto& family : config.families)
        if (family.name == name) {
          chosen.push_back(family);
          found = true;
        }
      if (!found) {
        std::cerr << "unknown family '" << name << "' — available:";
        for (const auto& family : config.families)
          std::cerr << " " << family.name;
        std::cerr << "\n";
        return 2;
      }
    }
    config.families = std::move(chosen);
  }

  const std::string prefix = parser.positional_value();

  std::cout << "Topology ensemble: " << config.families.size()
            << " families x " << config.samples_per_family
            << " samples, full floorplan->RS->throughput pipeline"
            << (config.simulate.enabled
                    ? " + golden/WP1/WP2 netlist simulation"
                    : "")
            << ", " << ThreadPool::shared().size() << " pool workers\n\n";

  // The scale sweep runs first (fixed config, independent of --samples /
  // --families so its snapshot rows stay comparable across invocations);
  // its JSON lands inside the same artifact via run_and_report.
  ScaleSection scale;
  if (!parser.has("--no-scale")) scale = run_scale_section();

  return run_and_report(config, prefix, parser.get("--json"), scale) ? 0 : 1;
}
