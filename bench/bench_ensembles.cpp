// Topology-ensemble bench: four synthetic SoC families x N seeded samples
// each, every sample driven through the full methodology pipeline
// (generate -> dress -> throughput-aware annealed floorplan -> placement
// RS demand -> min-cycle-ratio throughput), with per-family distribution
// statistics. The same ensemble runs sequentially and on the thread pool;
// any bitwise divergence is a determinism bug and fails the run.
//
// CSV: writes <prefix>_samples.csv and <prefix>_families.csv (prefix from
// the first non-flag argument, default "bench_ensembles") for the
// per-commit CI artifact. Passing --large additionally runs a 128-node
// scale-free family — the regime the fast packing engine unlocks — and
// writes <prefix>_large_*.csv; the per-sample anneal_ms CSV column makes
// the packing speedup visible in the artifact.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "gen/ensemble.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

wp::gen::EnsembleConfig make_config() {
  using wp::gen::FamilySpec;
  using wp::gen::TopologyFamily;
  wp::gen::EnsembleConfig config;
  config.seed = 2005;
  config.samples_per_family = 20;
  config.anneal.iterations = 1500;

  FamilySpec ba;
  ba.name = "ba-24";
  ba.topology.family = TopologyFamily::kBarabasiAlbert;
  ba.topology.num_nodes = 24;
  ba.topology.ba_attach = 2;
  config.families.push_back(ba);

  FamilySpec ws;
  ws.name = "ws-24";
  ws.topology.family = TopologyFamily::kWattsStrogatz;
  ws.topology.num_nodes = 24;
  ws.topology.ws_neighbors = 4;
  ws.topology.ws_rewire_probability = 0.15;
  config.families.push_back(ws);

  FamilySpec torus;
  torus.name = "torus-5x5";
  torus.topology.family = TopologyFamily::kMesh;
  torus.topology.num_nodes = 25;
  torus.topology.mesh_rows = 5;
  torus.topology.mesh_cols = 5;
  torus.topology.mesh_torus = true;
  config.families.push_back(torus);

  FamilySpec cer;
  cer.name = "cer-24x4";
  cer.topology.family = TopologyFamily::kClusteredErdosRenyi;
  cer.topology.num_nodes = 24;
  cer.topology.er_clusters = 4;
  cer.topology.er_intra_probability = 0.3;
  cer.topology.er_inter_probability = 0.03;
  config.families.push_back(cer);

  return config;
}

/// The scale regime the incremental packing engine unlocks: one 128-node
/// scale-free family through the same pipeline. Gated behind --large
/// because it dominates the bench's wall-clock.
wp::gen::EnsembleConfig make_large_config() {
  using wp::gen::FamilySpec;
  using wp::gen::TopologyFamily;
  wp::gen::EnsembleConfig config;
  config.seed = 2006;
  config.samples_per_family = 6;
  config.anneal.iterations = 800;
  // Johnson enumeration explodes at this scale; skip the cycle census.
  config.max_cycle_enumeration = 0;

  FamilySpec ba;
  ba.name = "ba-128";
  ba.topology.family = TopologyFamily::kBarabasiAlbert;
  ba.topology.num_nodes = 128;
  ba.topology.ba_attach = 2;
  config.families.push_back(ba);
  return config;
}

/// Runs one config sequentially and pooled, prints the family table, writes
/// the CSVs, and returns whether the two runs were bit-identical.
bool run_and_report(const wp::gen::EnsembleConfig& config,
                    const std::string& prefix) {
  using namespace wp;
  const auto sequential_start = Clock::now();
  const gen::EnsembleReport sequential = gen::run_ensemble_sequential(config);
  const double sequential_s = seconds_since(sequential_start);

  const auto parallel_start = Clock::now();
  const gen::EnsembleReport parallel = gen::run_ensemble(config);
  const double parallel_s = seconds_since(parallel_start);

  const bool identical = sequential.samples == parallel.samples;

  TextTable table({"family", "samples", "Th mean", "Th median", "Th p95",
                   "Th min", "RS mean", "cycles mean", "area mean",
                   "anneal ms"});
  table.add_separator();
  for (const auto& f : parallel.families)
    table.add_row({f.family, std::to_string(f.samples),
                   fmt_fixed(f.th_mean, 3), fmt_fixed(f.th_median, 3),
                   fmt_fixed(f.th_p95, 3), fmt_fixed(f.th_min, 3),
                   fmt_fixed(f.rs_mean, 1), fmt_fixed(f.cycles_mean, 1),
                   fmt_fixed(f.area_mean, 1),
                   fmt_fixed(f.anneal_ms_mean, 1)});
  table.print(std::cout);

  std::cout << "sequential " << fmt_fixed(sequential_s, 2) << " s, pooled "
            << fmt_fixed(parallel_s, 2) << " s (speedup "
            << fmt_fixed(sequential_s / parallel_s, 2)
            << "x)   sequential == pooled: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  {
    std::ofstream samples(prefix + "_samples.csv");
    gen::write_samples_csv(parallel, samples);
    std::ofstream families(prefix + "_families.csv");
    gen::write_families_csv(parallel, families);
  }
  std::cout << "wrote " << prefix << "_samples.csv ("
            << parallel.samples.size() << " rows) and " << prefix
            << "_families.csv\n\n";
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wp;

  std::string prefix = "bench_ensembles";
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large")
      large = true;
    else
      prefix = arg;
  }

  const gen::EnsembleConfig config = make_config();
  std::cout << "Topology ensemble: " << config.families.size()
            << " families x " << config.samples_per_family
            << " samples, full floorplan->RS->throughput pipeline, "
            << ThreadPool::shared().size() << " pool workers\n\n";

  bool identical = run_and_report(config, prefix);

  if (large) {
    const gen::EnsembleConfig large_config = make_large_config();
    std::cout << "Large-scale family (--large): "
              << large_config.families.front().name << " x "
              << large_config.samples_per_family
              << " samples, incremental packing engine\n\n";
    identical = run_and_report(large_config, prefix + "_large") && identical;
  }

  return identical ? 0 : 1;
}
