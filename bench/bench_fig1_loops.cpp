// E4 — Figure 1: the case-study topology and its netlist loops. Prints the
// loop inventory (m, n, Th = m/(m+n)) for several relay-station
// configurations and writes fig1.dot (Graphviz) next to the binary, with
// the critical loop highlighted — our rendering of the paper's figure.
#include <fstream>
#include <iostream>

#include "graph/dot.hpp"
#include "graph/throughput.hpp"
#include "proc/cpu.hpp"
#include "util/table.hpp"

int main() {
  using namespace wp;
  using namespace wp::graph;

  auto apply = [](Digraph g, const std::map<std::string, int>& rs) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      auto it = rs.find(g.edge(e).label);
      if (it != rs.end()) g.edge(e).relay_stations = it->second;
    }
    return g;
  };

  const std::map<std::string, std::map<std::string, int>> configs = {
      {"All 0 (ideal)", {}},
      {"Only CU-IC", {{"CU-IC", 1}}},
      {"Only RF-DC", {{"RF-DC", 1}}},
      {"All 1 (no CU-IC)",
       {{"CU-RF", 1},
        {"CU-AL", 1},
        {"CU-DC", 1},
        {"RF-ALU", 1},
        {"RF-DC", 1},
        {"ALU-CU", 1},
        {"ALU-RF", 1},
        {"ALU-DC", 1},
        {"DC-RF", 1}}}};

  for (const auto& [name, rs] : configs) {
    const Digraph g = apply(proc::make_cpu_graph(), rs);
    const ThroughputReport report = analyze_throughput(g);
    TextTable table({"Netlist loop", "m", "n", "Th = m/(m+n)"});
    table.add_section("Configuration: " + name);
    table.add_separator();
    for (const auto& loop : report.loops)
      table.add_row({loop.description, std::to_string(loop.m),
                     std::to_string(loop.n), fmt_fixed(loop.throughput, 3)});
    table.print(std::cout);
    std::cout << "System Th (worst loop dominates): "
              << fmt_fixed(report.system_throughput, 3) << "  ["
              << report.critical_loop << "]\n\n";
  }

  // Figure 1 rendering: the ideal topology with connection labels.
  const Digraph g = proc::make_cpu_graph();
  DotOptions options;
  options.title =
      "Fig. 1 — wire-pipelined processor case study (Casu & Macchiarulo, "
      "DATE'05)";
  std::ofstream dot("fig1.dot");
  dot << to_dot(g, options);
  std::cout << "Wrote fig1.dot (render with: dot -Tpdf fig1.dot -o "
               "fig1.pdf)\n";
  return 0;
}
