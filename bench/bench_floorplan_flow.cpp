// E8 (extension) — the complete wire-pipelining methodology as a flow:
// floorplan the case study (and synthetic SoCs), derive per-connection
// relay-station demand from wire lengths, and compare the resulting system
// throughput for (a) area/wirelength-driven and (b) throughput-driven
// annealing, under WP1 and WP2 execution of the real programs.
//
// The multi-seed restarts run on the shared thread pool (anneal_parallel),
// each with a private warm-started Howard throughput oracle. A final
// section times the packing engines head to head: naive O(n²) pack() vs
// pack_fast() vs the IncrementalPacker's per-move delta evaluation, plus
// whole annealing runs under each engine.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/pack_engine.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "proc/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using wp::fplan::AnnealOptions;
using wp::fplan::AnnealResult;
using wp::fplan::AppliedMove;
using wp::fplan::IncrementalPacker;
using wp::fplan::Instance;
using wp::fplan::PackEngine;
using wp::fplan::ParallelAnnealOptions;
using wp::fplan::Placement;
using wp::fplan::SequencePair;
using wp::fplan::WireDelayModel;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Times the three packing paths on one instance size. Equality of the
/// engines is asserted as the timing loops run — the bench doubles as a
/// smoke differential check (the exhaustive one is test_pack_equivalence).
void bench_packing_engines(wp::TextTable& table, std::size_t blocks) {
  const Instance inst = wp::fplan::synthetic_instance(blocks, 11);
  wp::Rng rng(1);

  const int reps = 200;
  std::vector<SequencePair> pairs;
  for (int r = 0; r < reps; ++r)
    pairs.push_back(SequencePair::random(blocks, rng));

  const auto naive_start = std::chrono::steady_clock::now();
  double checksum_naive = 0;
  for (const auto& sp : pairs) checksum_naive += pack(inst, sp).area();
  const double naive_ms = ms_since(naive_start) / reps;

  const auto fast_start = std::chrono::steady_clock::now();
  double checksum_fast = 0;
  for (const auto& sp : pairs) checksum_fast += pack_fast(inst, sp).area();
  const double fast_ms = ms_since(fast_start) / reps;
  if (checksum_naive != checksum_fast) {
    std::cerr << "PACKING ENGINE DIVERGENCE at n=" << blocks << "\n";
    std::exit(1);
  }

  // Incremental path: an annealer-shaped move loop, half the moves
  // rejected (undo + revert).
  SequencePair sp = SequencePair::random(blocks, rng);
  IncrementalPacker packer(inst, sp);
  const int moves = 2000;
  const auto incr_start = std::chrono::steady_clock::now();
  double checksum_incr = 0;
  for (int m = 0; m < moves; ++m) {
    const AppliedMove move = random_move(sp, rng);
    checksum_incr += packer.apply(move).area();
    if (m % 2 == 0) {
      undo_move(sp, move);
      packer.revert();
    }
  }
  const double incr_us = ms_since(incr_start) * 1000.0 / moves;
  (void)checksum_incr;

  table.add_row({std::to_string(blocks), wp::fmt_fixed(naive_ms, 3),
                 wp::fmt_fixed(fast_ms, 3),
                 wp::fmt_fixed(naive_ms / fast_ms, 1),
                 wp::fmt_fixed(incr_us, 1),
                 wp::fmt_fixed(naive_ms * 1000.0 / incr_us, 1)});
}

double static_throughput_of_demand(
    const wp::graph::Digraph& base,
    const std::vector<std::pair<std::string, int>>& demand) {
  auto g = base;
  for (const auto& [label, rs] : demand)
    for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge(e).label == label) g.edge(e).relay_stations = rs;
  return wp::graph::min_cycle_ratio_lawler(g).ratio;
}

}  // namespace

int main() {
  using namespace wp;

  const Instance cpu = fplan::cpu_instance();
  const graph::Digraph cpu_graph = proc::make_cpu_graph();
  WireDelayModel delay;
  // 350 ps clock, 150 ps/mm wires: 2.33 mm reachable per cycle. Adjacent CU/IC
  // stay un-pipelined; a careless placement forces relay stations onto the
  // fetch loop — the regime where the floorplan objective matters.
  delay.clock_ps = 350.0;

  TextTable table({"objective", "area (mm^2)", "wirelength (mm)",
                   "static Th", "sim Th WP1", "sim Th WP2"});
  table.add_section("Floorplan-driven wire pipelining of the case-study "
                    "CPU (clock " +
                    fmt_fixed(delay.clock_ps, 0) + " ps, " +
                    fmt_fixed(delay.ps_per_mm, 0) + " ps/mm wires, " +
                    std::to_string(ThreadPool::shared().size()) +
                    " workers)");
  table.add_separator();

  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  proc::ExperimentOptions options;
  options.check_equivalence = false;

  for (const bool throughput_driven : {false, true}) {
    // Best of five annealing seeds (11..15) under each objective, fanned
    // out over the pool; selection is deterministic best-of.
    ParallelAnnealOptions parallel;
    parallel.base.iterations = 20000;
    parallel.base.seed = 11;
    parallel.base.delay_model = delay;
    parallel.restarts = 5;
    if (throughput_driven) {
      parallel.base.weight_throughput = 500.0;
      parallel.throughput_factory = [&cpu_graph]() {
        return graph::ThroughputEvaluator(cpu_graph);
      };
    }
    const AnnealResult result = fplan::anneal_parallel(cpu, parallel);
    const auto demand = rs_demand(cpu, result.placement, delay);

    proc::RsConfig config{"floorplan", {}};
    for (const auto& [label, rs] : demand) config.rs[label] = rs;
    const proc::ExperimentRow row =
        run_experiment(program, {}, config, options);

    table.add_row({throughput_driven ? "area+WL+throughput" : "area+WL",
                   fmt_fixed(result.area, 1),
                   fmt_fixed(result.wirelength, 1),
                   fmt_fixed(static_throughput_of_demand(cpu_graph, demand),
                             3),
                   fmt_fixed(row.th_wp1, 3), fmt_fixed(row.th_wp2, 3)});
  }
  table.print(std::cout);
  std::cout << "Throughput-aware floorplanning keeps the critical loops "
               "short (fewer\nrelay stations where they hurt), trading a "
               "little area/wirelength for\nsystem throughput — the full "
               "methodology the paper's title promises.\n\n";

  // Scaling study on synthetic SoCs.
  TextTable synth({"instance", "blocks", "nets", "area-driven static Th",
                   "throughput-driven static Th"});
  synth.add_section("Synthetic SoC instances (GSRC-scale)");
  synth.add_separator();
  for (const std::size_t blocks : {10u, 20u, 33u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 7);
    // Static analysis graph: one node per block, one edge per net.
    graph::Digraph g;
    for (const auto& b : inst.blocks) g.add_node(b.name);
    for (const auto& n : inst.nets)
      g.add_edge(n.src_block, n.dst_block, n.connection);
    double th[2] = {0, 0};
    for (const bool driven : {false, true}) {
      // Best of three seeds (3..5), judged by the achieved static
      // throughput; the seeds run concurrently, each with its own oracle.
      const std::uint64_t base_seed = 3;
      double seed_th[3] = {0, 0, 0};
      ThreadPool::shared().parallel_for(0, 3, [&](std::size_t i) {
        AnnealOptions anneal_options;
        anneal_options.iterations = 6000;
        anneal_options.seed = base_seed + i;
        anneal_options.delay_model = delay;
        graph::ThroughputEvaluator oracle(g);
        if (driven) {
          anneal_options.weight_throughput = 100.0;
          anneal_options.throughput_fn = oracle;
        }
        const AnnealResult result = fplan::anneal(inst, anneal_options);
        seed_th[i] = oracle(rs_demand(inst, result.placement, delay));
      });
      for (const double th_i : seed_th)
        th[driven ? 1 : 0] = std::max(th[driven ? 1 : 0], th_i);
    }
    synth.add_row({inst.name, std::to_string(inst.blocks.size()),
                   std::to_string(inst.nets.size()), fmt_fixed(th[0], 3),
                   fmt_fixed(th[1], 3)});
  }
  synth.print(std::cout);

  // Packing-engine head-to-head: the O(n²) reference vs the O(n log n)
  // weighted-LCS evaluation vs the incremental per-move delta path.
  TextTable packt({"blocks", "naive ms/pack", "fast ms/pack", "fast speedup",
                   "incr us/move", "move speedup"});
  packt.add_section("Packing engines (naive O(n^2) vs fast O(n log n) vs "
                    "incremental delta)");
  packt.add_separator();
  for (const std::size_t blocks : {33u, 100u, 150u})
    bench_packing_engines(packt, blocks);
  packt.print(std::cout);

  // Whole annealing runs under each engine: the end-to-end effect on the
  // path both anneal_parallel and the ensemble runner sit on.
  TextTable annealt({"blocks", "engine", "anneal ms", "speedup"});
  annealt.add_section("Area-driven anneal, 3000 iterations per run");
  annealt.add_separator();
  for (const std::size_t blocks : {33u, 100u, 150u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 11);
    double engine_ms[2] = {0, 0};
    AnnealResult results[2];
    for (const PackEngine engine : {PackEngine::kNaive, PackEngine::kFast}) {
      AnnealOptions options;
      options.iterations = 3000;
      options.seed = 4;
      options.pack_engine = engine;
      const auto start = std::chrono::steady_clock::now();
      const std::size_t idx = engine == PackEngine::kFast ? 1 : 0;
      results[idx] = fplan::anneal(inst, options);
      engine_ms[idx] = ms_since(start);
      annealt.add_row({std::to_string(blocks),
                       fplan::pack_engine_name(engine),
                       fmt_fixed(engine_ms[idx], 1),
                       idx == 0 ? "1.0"
                                : fmt_fixed(engine_ms[0] / engine_ms[1], 1)});
    }
    if (results[0].cost != results[1].cost ||
        results[0].placement.x != results[1].placement.x) {
      std::cerr << "ANNEALER ENGINE DIVERGENCE at n=" << blocks << "\n";
      return 1;
    }
  }
  annealt.print(std::cout);
  return 0;
}
