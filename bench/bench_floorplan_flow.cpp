// E8 (extension) — the complete wire-pipelining methodology as a flow:
// floorplan the case study (and synthetic SoCs), derive per-connection
// relay-station demand from wire lengths, and compare the resulting system
// throughput for (a) area/wirelength-driven and (b) throughput-driven
// annealing, under WP1 and WP2 execution of the real programs.
//
// The multi-seed restarts run on the shared thread pool (anneal_parallel),
// each with a private incremental throughput engine. Head-to-head
// sections time the hot-loop machinery: the packing engines (naive O(n²)
// pack() vs pack_fast() vs the IncrementalPacker and BatchedMoveEvaluator
// delta paths, at mid-anneal and cold-tail accept rates), whole anneals
// under each engine including the 128-vs-256-block scaling study, and the
// throughput oracles (ThroughputEvaluator reference vs the incremental
// ThroughputEngine), asserting bit-identical results as they run.
//
// Machine-readable trajectory: every run writes the per-stage timings
// (pack ms, throughput-eval ms, whole-anneal ms, engine hit rates) as
// JSON — default BENCH_floorplan.json, override with --json PATH — which
// Release CI uploads as a per-commit artifact.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cli/arg_parser.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/batch_pack.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/pack_engine.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "graph/throughput_engine.hpp"
#include "proc/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using wp::fplan::AnnealOptions;
using wp::fplan::AnnealResult;
using wp::fplan::AppliedMove;
using wp::fplan::BatchedMoveEvaluator;
using wp::fplan::IncrementalPacker;
using wp::fplan::Instance;
using wp::fplan::PackEngine;
using wp::fplan::ParallelAnnealOptions;
using wp::fplan::Placement;
using wp::fplan::SequencePair;
using wp::fplan::WireDelayModel;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Rows collected for the JSON artifact.
struct FloorplanRow {
  std::string objective;
  double area = 0, wirelength = 0, static_th = 0, th_wp1 = 0, th_wp2 = 0;
};
struct PackingRow {
  std::size_t blocks = 0;
  double naive_ms = 0, fast_ms = 0, incr_us = 0;
  double batched_us = 0, tail_incr_us = 0, tail_batched_us = 0;
};
struct AnnealEngineRow {
  std::size_t blocks = 0;
  std::string engine;
  double anneal_ms = 0, pack_ms = 0;
};
struct ScaleRow {
  std::size_t blocks = 0;
  std::string engine;
  double anneal_ms = 0, pack_ms = 0;
  std::uint64_t persistent = 0, prime = 0, full = 0, rebuilds = 0,
                saved = 0;
};
struct OracleRow {
  std::size_t blocks = 0;
  std::string oracle;
  double anneal_ms = 0, throughput_ms = 0;
  int evals = 0;
  std::uint64_t incremental = 0, fallbacks = 0;
};
struct ThreadScaleRow {
  std::size_t blocks = 0;
  int threads = 0;  ///< 0 = the serial kBatched baseline row
  double anneal_ms = 0;
  double gain_over_serial = 1.0;  ///< serial_ms / this row's ms
  std::uint64_t windows = 0, drawn = 0, wasted = 0;
};

/// Times the three packing paths on one instance size. Equality of the
/// engines is asserted as the timing loops run — the bench doubles as a
/// smoke differential check (the exhaustive one is test_pack_equivalence).
PackingRow bench_packing_engines(wp::TextTable& table, std::size_t blocks) {
  const Instance inst = wp::fplan::synthetic_instance(blocks, 11);
  wp::Rng rng(1);

  const int reps = 200;
  std::vector<SequencePair> pairs;
  for (int r = 0; r < reps; ++r)
    pairs.push_back(SequencePair::random(blocks, rng));

  const auto naive_start = std::chrono::steady_clock::now();
  double checksum_naive = 0;
  for (const auto& sp : pairs) checksum_naive += pack(inst, sp).area();
  const double naive_ms = ms_since(naive_start) / reps;

  const auto fast_start = std::chrono::steady_clock::now();
  double checksum_fast = 0;
  for (const auto& sp : pairs) checksum_fast += pack_fast(inst, sp).area();
  const double fast_ms = ms_since(fast_start) / reps;
  if (checksum_naive != checksum_fast) {
    std::cerr << "PACKING ENGINE DIVERGENCE at n=" << blocks << "\n";
    std::exit(1);
  }

  // Incremental vs batched on identical annealer-shaped move loops: each
  // engine replays the same seeded move stream with the same accept
  // pattern (accept one move in `accept_mod`), so per-move costs are
  // directly comparable and the area checksums must agree bitwise. The
  // half-reject loop is the classic mid-anneal regime; the 1-in-16 loop is
  // the cold tail, where the batched evaluator's rejection path (shared
  // prime + persistent dominance index) is designed to win.
  const int moves = 2000;
  const auto run_incremental = [&](std::uint64_t seed, int accept_mod,
                                   double* checksum) {
    wp::Rng loop_rng(seed);
    SequencePair sp = SequencePair::random(blocks, loop_rng);
    IncrementalPacker packer(inst, sp);
    const auto start = std::chrono::steady_clock::now();
    for (int m = 0; m < moves; ++m) {
      const AppliedMove move = random_move(sp, loop_rng);
      *checksum += packer.apply(move).area();
      if (m % accept_mod != accept_mod - 1) {
        undo_move(sp, move);
        packer.revert();
      }
    }
    return ms_since(start) * 1000.0 / moves;
  };
  const auto run_batched = [&](std::uint64_t seed, int accept_mod,
                               double* checksum) {
    wp::Rng loop_rng(seed);
    SequencePair sp = SequencePair::random(blocks, loop_rng);
    BatchedMoveEvaluator evaluator(inst, sp);
    const auto start = std::chrono::steady_clock::now();
    for (int m = 0; m < moves; ++m) {
      const AppliedMove move = random_move(sp, loop_rng);
      *checksum += evaluator.apply(move).area();
      if (m % accept_mod != accept_mod - 1) {
        undo_move(sp, move);
        evaluator.revert();
      } else {
        evaluator.commit();
      }
    }
    return ms_since(start) * 1000.0 / moves;
  };

  double checksum_incr = 0, checksum_batched = 0;
  const double incr_us = run_incremental(2, 2, &checksum_incr);
  const double batched_us = run_batched(2, 2, &checksum_batched);
  if (checksum_incr != checksum_batched) {
    std::cerr << "BATCHED ENGINE DIVERGENCE at n=" << blocks << "\n";
    std::exit(1);
  }
  double checksum_tail_incr = 0, checksum_tail_batched = 0;
  const double tail_incr_us = run_incremental(3, 16, &checksum_tail_incr);
  const double tail_batched_us = run_batched(3, 16, &checksum_tail_batched);
  if (checksum_tail_incr != checksum_tail_batched) {
    std::cerr << "BATCHED ENGINE DIVERGENCE (tail) at n=" << blocks << "\n";
    std::exit(1);
  }

  table.add_row({std::to_string(blocks), wp::fmt_fixed(naive_ms, 3),
                 wp::fmt_fixed(fast_ms, 3),
                 wp::fmt_fixed(naive_ms / fast_ms, 1),
                 wp::fmt_fixed(incr_us, 1), wp::fmt_fixed(batched_us, 1),
                 wp::fmt_fixed(tail_incr_us, 1),
                 wp::fmt_fixed(tail_batched_us, 1),
                 wp::fmt_fixed(tail_incr_us / tail_batched_us, 2)});
  return {blocks, naive_ms, fast_ms,    incr_us,
          batched_us, tail_incr_us, tail_batched_us};
}

double static_throughput_of_demand(
    const wp::graph::Digraph& base,
    const std::vector<std::pair<std::string, int>>& demand) {
  auto g = base;
  for (const auto& [label, rs] : demand)
    for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge(e).label == label) g.edge(e).relay_stations = rs;
  return wp::graph::min_cycle_ratio_lawler(g).ratio;
}

/// One node per block, one labelled edge per net: the static-analysis
/// graph of a synthetic instance.
wp::graph::Digraph graph_of_instance(const Instance& inst) {
  wp::graph::Digraph g;
  for (const auto& b : inst.blocks) g.add_node(b.name);
  for (const auto& n : inst.nets)
    g.add_edge(n.src_block, n.dst_block, n.connection);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wp;

  cli::ArgParser parser("bench_floorplan_flow",
                        "Floorplan-driven wire-pipelining flow bench.");
  parser.option("--json", "PATH", "BENCH_floorplan.json",
                "machine-readable timing artifact");
  parser.parse_or_exit(argc, argv);
  const std::string json_path = parser.get("--json");

  const Instance cpu = fplan::cpu_instance();
  const graph::Digraph cpu_graph = proc::make_cpu_graph();
  WireDelayModel delay;
  // 350 ps clock, 150 ps/mm wires: 2.33 mm reachable per cycle. Adjacent CU/IC
  // stay un-pipelined; a careless placement forces relay stations onto the
  // fetch loop — the regime where the floorplan objective matters.
  delay.clock_ps = 350.0;

  std::vector<FloorplanRow> floorplan_rows;
  std::vector<PackingRow> packing_rows;
  std::vector<AnnealEngineRow> anneal_rows;
  std::vector<OracleRow> oracle_rows;

  TextTable table({"objective", "area (mm^2)", "wirelength (mm)",
                   "static Th", "sim Th WP1", "sim Th WP2"});
  table.add_section("Floorplan-driven wire pipelining of the case-study "
                    "CPU (clock " +
                    fmt_fixed(delay.clock_ps, 0) + " ps, " +
                    fmt_fixed(delay.ps_per_mm, 0) + " ps/mm wires, " +
                    std::to_string(ThreadPool::shared().size()) +
                    " workers)");
  table.add_separator();

  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  proc::ExperimentOptions options;
  options.check_equivalence = false;

  for (const bool throughput_driven : {false, true}) {
    // Best of five annealing seeds (11..15) under each objective, fanned
    // out over the pool; selection is deterministic best-of. Each restart
    // owns a private incremental throughput engine.
    ParallelAnnealOptions parallel;
    parallel.base.iterations = 20000;
    parallel.base.seed = 11;
    parallel.base.delay_model = delay;
    parallel.restarts = 5;
    if (throughput_driven) {
      parallel.base.weight_throughput = 500.0;
      parallel.engine_factory = [&cpu_graph]() {
        return std::make_unique<graph::ThroughputEngine>(cpu_graph);
      };
    }
    const AnnealResult result = fplan::anneal_parallel(cpu, parallel);
    const auto demand = rs_demand(cpu, result.placement, delay);

    proc::RsConfig config{"floorplan", {}};
    for (const auto& [label, rs] : demand) config.rs[label] = rs;
    const proc::ExperimentRow row =
        run_experiment(program, {}, config, options);

    FloorplanRow out;
    out.objective = throughput_driven ? "area+WL+throughput" : "area+WL";
    out.area = result.area;
    out.wirelength = result.wirelength;
    out.static_th = static_throughput_of_demand(cpu_graph, demand);
    out.th_wp1 = row.th_wp1;
    out.th_wp2 = row.th_wp2;
    floorplan_rows.push_back(out);
    table.add_row({out.objective, fmt_fixed(out.area, 1),
                   fmt_fixed(out.wirelength, 1),
                   fmt_fixed(out.static_th, 3), fmt_fixed(out.th_wp1, 3),
                   fmt_fixed(out.th_wp2, 3)});
  }
  table.print(std::cout);
  std::cout << "Throughput-aware floorplanning keeps the critical loops "
               "short (fewer\nrelay stations where they hurt), trading a "
               "little area/wirelength for\nsystem throughput — the full "
               "methodology the paper's title promises.\n\n";

  // Scaling study on synthetic SoCs.
  TextTable synth({"instance", "blocks", "nets", "area-driven static Th",
                   "throughput-driven static Th"});
  synth.add_section("Synthetic SoC instances (GSRC-scale)");
  synth.add_separator();
  for (const std::size_t blocks : {10u, 20u, 33u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 7);
    const graph::Digraph g = graph_of_instance(inst);
    double th[2] = {0, 0};
    for (const bool driven : {false, true}) {
      // Best of three seeds (3..5), judged by the achieved static
      // throughput; the seeds run concurrently, each with its own engine.
      const std::uint64_t base_seed = 3;
      double seed_th[3] = {0, 0, 0};
      ThreadPool::shared().parallel_for(0, 3, [&](std::size_t i) {
        AnnealOptions anneal_options;
        anneal_options.iterations = 6000;
        anneal_options.seed = base_seed + i;
        anneal_options.delay_model = delay;
        graph::ThroughputEngine engine(g);
        if (driven) {
          anneal_options.weight_throughput = 100.0;
          anneal_options.throughput_engine = &engine;
        }
        const AnnealResult result = fplan::anneal(inst, anneal_options);
        seed_th[i] = engine.throughput(rs_demand(inst, result.placement,
                                                 delay));
      });
      for (const double th_i : seed_th)
        th[driven ? 1 : 0] = std::max(th[driven ? 1 : 0], th_i);
    }
    synth.add_row({inst.name, std::to_string(inst.blocks.size()),
                   std::to_string(inst.nets.size()), fmt_fixed(th[0], 3),
                   fmt_fixed(th[1], 3)});
  }
  synth.print(std::cout);

  // Packing-engine head-to-head: the O(n²) reference vs the O(n log n)
  // weighted-LCS evaluation vs the per-move delta paths (IncrementalPacker
  // and the speculative BatchedMoveEvaluator), at 50% and 1-in-16 accept
  // rates.
  TextTable packt({"blocks", "naive ms/pack", "fast ms/pack", "fast speedup",
                   "incr us/move", "batched us/move", "tail incr us",
                   "tail batched us", "tail gain"});
  packt.add_section("Packing engines (naive O(n^2) vs fast O(n log n) vs "
                    "incremental vs batched delta)");
  packt.add_separator();
  for (const std::size_t blocks : {33u, 100u, 150u, 256u})
    packing_rows.push_back(bench_packing_engines(packt, blocks));
  packt.print(std::cout);

  // Whole annealing runs under each engine: the end-to-end effect on the
  // path both anneal_parallel and the ensemble runner sit on.
  TextTable annealt({"blocks", "engine", "anneal ms", "pack ms", "speedup"});
  annealt.add_section("Area-driven anneal, 3000 iterations per run");
  annealt.add_separator();
  for (const std::size_t blocks : {33u, 100u, 150u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 11);
    double engine_ms[3] = {0, 0, 0};
    AnnealResult results[3];
    for (const PackEngine engine :
         {PackEngine::kNaive, PackEngine::kFast, PackEngine::kBatched}) {
      AnnealOptions anneal_options;
      anneal_options.iterations = 3000;
      anneal_options.seed = 4;
      anneal_options.pack_engine = engine;
      const auto start = std::chrono::steady_clock::now();
      const auto idx = static_cast<std::size_t>(engine);
      results[idx] = fplan::anneal(inst, anneal_options);
      engine_ms[idx] = ms_since(start);
      anneal_rows.push_back({blocks, fplan::pack_engine_name(engine),
                             engine_ms[idx], results[idx].pack_ms});
      annealt.add_row({std::to_string(blocks),
                       fplan::pack_engine_name(engine),
                       fmt_fixed(engine_ms[idx], 1),
                       fmt_fixed(results[idx].pack_ms, 1),
                       idx == 0 ? "1.0"
                                : fmt_fixed(engine_ms[0] / engine_ms[idx],
                                            1)});
    }
    for (const std::size_t idx : {1u, 2u}) {
      if (results[0].cost != results[idx].cost ||
          results[0].placement.x != results[idx].placement.x) {
        std::cerr << "ANNEALER ENGINE DIVERGENCE at n=" << blocks << "\n";
        return 1;
      }
    }
  }
  annealt.print(std::cout);

  // Scale study: production-shaped runs (20000 iterations — the
  // AnnealOptions default) at 128 and 256 blocks. The headline number is
  // the 256-block batched anneal against the 128-block fast anneal — the
  // "doubling n costs less than the naive extrapolation" claim — plus the
  // batched evaluator's own path split at each size. The instances are
  // the bounded-degree family (expected degree ~10, the NoC regime the
  // generator families produce and the ROADMAP scaling item names) rather
  // than the quadratic-density default, where the wirelength scan — the
  // same O(nets) cost on every engine — would drown the packing signal.
  // Each config is best-of-3: single-shot anneal wall-clocks jitter well
  // above the ~10% this comparison is about.
  std::vector<ScaleRow> scale_rows;
  TextTable scalet({"blocks", "engine", "anneal ms", "pack ms", "persistent",
                    "primed", "full", "rebuilds", "prime pos saved"});
  scalet.add_section(
      "Scaling: area-driven anneal, 20000 iterations, bounded-degree nets "
      "(batched-256 target: <= 1.5x fast-128)");
  scalet.add_separator();
  double scale_ms[2][2] = {{0, 0}, {0, 0}};  // [blocks!=128][batched]
  for (const std::size_t blocks : {128u, 256u}) {
    const Instance inst = fplan::synthetic_instance(
        blocks, 11, 0.5, 3.0, 8.0 / static_cast<double>(blocks));
    AnnealResult results[2];
    for (const PackEngine engine : {PackEngine::kFast, PackEngine::kBatched}) {
      AnnealOptions anneal_options;
      anneal_options.seed = 4;
      anneal_options.pack_engine = engine;
      const std::size_t idx = engine == PackEngine::kBatched ? 1 : 0;
      double anneal_ms = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        results[idx] = fplan::anneal(inst, anneal_options);
        const double rep_ms = ms_since(start);
        if (rep == 0 || rep_ms < anneal_ms) anneal_ms = rep_ms;
      }
      scale_ms[blocks == 128u ? 0 : 1][idx] = anneal_ms;
      const AnnealResult& r = results[idx];
      scale_rows.push_back({blocks, fplan::pack_engine_name(engine),
                            anneal_ms, r.pack_ms, r.batch_persistent_evals,
                            r.batch_prime_evals, r.batch_full_packs,
                            r.batch_index_rebuilds, r.batch_reprime_saved});
      scalet.add_row(
          {std::to_string(blocks), fplan::pack_engine_name(engine),
           fmt_fixed(anneal_ms, 1), fmt_fixed(r.pack_ms, 1),
           idx ? std::to_string(r.batch_persistent_evals) : "-",
           idx ? std::to_string(r.batch_prime_evals) : "-",
           idx ? std::to_string(r.batch_full_packs) : "-",
           idx ? std::to_string(r.batch_index_rebuilds) : "-",
           idx ? std::to_string(r.batch_reprime_saved) : "-"});
    }
    if (results[0].cost != results[1].cost ||
        results[0].placement.x != results[1].placement.x) {
      std::cerr << "ANNEALER ENGINE DIVERGENCE (scale) at n=" << blocks
                << "\n";
      return 1;
    }
  }
  scalet.print(std::cout);
  const double ratio_cross = scale_ms[1][1] / scale_ms[0][0];
  const double ratio_batched = scale_ms[1][1] / scale_ms[0][1];
  std::cout << "batched-256 / fast-128 anneal ratio: "
            << fmt_fixed(ratio_cross, 2)
            << "  (doubling n under the batched engine costs "
            << fmt_fixed(ratio_batched, 2) << "x its own 128-block run)\n\n";

  // Thread-scaling study: the speculative parallel-window engine against
  // the serial batched engine it retires through, at 1/2/4/8 workers and
  // up to 1024 blocks. Trajectories are asserted bitwise-identical to the
  // serial run as the timings are taken — "parallel" never gets to mean
  // "approximately the same anneal". Budgets are production-shaped
  // (20000 iterations, tapering with n for CI budget) and the schedule
  // starts pre-cooled: speculation is structurally wasteful while the
  // anneal is still in its accept-everything descent (every acceptance
  // invalidates the rest of the window), so the table must reach the
  // rejection-heavy converged regime this engine exists for, not
  // measure the descent prefix. Each cell is best-of-3.
  // The window is pinned to K=8 for every thread count so the
  // drawn/wasted columns — the deterministic speculation ledger, a pure
  // function of (instance, seed, K) — come out identical across rows:
  // worker count buys wall-clock only, never a different trajectory.
  // K=8 rather than the auto 2×slots: at 8 workers a window then costs
  // one eval-depth, and the expected retired-per-window at measured
  // acceptance rates is what bounds the speedup — a deeper window only
  // pays when acceptance is far colder than these schedules reach.
  std::vector<ThreadScaleRow> thread_rows;
  TextTable threadt({"blocks", "engine", "anneal ms", "vs serial",
                     "windows", "drawn", "wasted"});
  threadt.add_section(
      "Parallel speculative annealing (kParallel vs serial kBatched, "
      "best of 3, bitwise-identical trajectories)");
  threadt.add_separator();
  const std::pair<std::size_t, int> thread_cases[] = {
      {100u, 20000}, {256u, 20000}, {512u, 10000}, {1024u, 5000}};
  for (const auto& [blocks, iterations] : thread_cases) {
    const Instance inst = fplan::synthetic_instance(
        blocks, 11, 0.5, 3.0, 8.0 / static_cast<double>(blocks));
    AnnealOptions base_options;
    base_options.iterations = iterations;
    base_options.seed = 4;
    base_options.initial_temperature = 0.05;
    base_options.pack_engine = PackEngine::kBatched;
    AnnealResult serial;
    double serial_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      serial = fplan::anneal(inst, base_options);
      const double rep_ms = ms_since(start);
      if (rep == 0 || rep_ms < serial_ms) serial_ms = rep_ms;
    }
    thread_rows.push_back({blocks, 0, serial_ms, 1.0, 0, 0, 0});
    threadt.add_row({std::to_string(blocks), "batched",
                     fmt_fixed(serial_ms, 1), "1.00", "-", "-", "-"});
    for (const int threads : {1, 2, 4, 8}) {
      ThreadPool pool(static_cast<std::size_t>(threads));
      AnnealOptions parallel_options = base_options;
      parallel_options.pack_engine = PackEngine::kParallel;
      parallel_options.eval_pool = &pool;
      parallel_options.parallel_window = 8;
      AnnealResult result;
      double anneal_ms = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        result = fplan::anneal(inst, parallel_options);
        const double rep_ms = ms_since(start);
        if (rep == 0 || rep_ms < anneal_ms) anneal_ms = rep_ms;
      }
      if (result.cost != serial.cost ||
          result.placement.x != serial.placement.x) {
        std::cerr << "PARALLEL ENGINE DIVERGENCE at n=" << blocks
                  << " threads=" << threads << "\n";
        return 1;
      }
      thread_rows.push_back({blocks, threads, anneal_ms,
                             serial_ms / anneal_ms, result.parallel_windows,
                             result.parallel_drawn, result.parallel_wasted});
      threadt.add_row({std::to_string(blocks),
                       "parallel-" + std::to_string(threads),
                       fmt_fixed(anneal_ms, 1),
                       fmt_fixed(serial_ms / anneal_ms, 2),
                       std::to_string(result.parallel_windows),
                       std::to_string(result.parallel_drawn),
                       std::to_string(result.parallel_wasted)});
    }
  }
  threadt.print(std::cout);
  std::cout << "Every parallel cell retired the exact serial trajectory "
               "(asserted above);\nthe speculation ledger (windows / drawn "
               "/ wasted) is thread-count-invariant.\n\n";

  // Throughput-oracle head-to-head: the evaluator reference (whole-graph
  // RS reset + cold certification per demand) vs the incremental engine
  // (in-place deltas + lazily repaired certificate), on throughput-driven
  // anneals of the synthetic SoCs. The trajectories must be bit-identical;
  // the win is the throughput-eval share of the anneal.
  TextTable oraclet({"blocks", "oracle", "anneal ms", "th-eval ms",
                     "th share", "th-eval speedup", "incr", "cold"});
  oraclet.add_section(
      "Throughput oracles (evaluator reference vs incremental engine), "
      "throughput-driven anneal, 4000 iterations");
  oraclet.add_separator();
  for (const std::size_t blocks : {33u, 100u, 150u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 7);
    const graph::Digraph g = graph_of_instance(inst);
    AnnealResult results[2];
    for (const bool use_engine : {false, true}) {
      AnnealOptions anneal_options;
      anneal_options.iterations = 4000;
      anneal_options.seed = 9;
      anneal_options.delay_model = delay;
      anneal_options.weight_throughput = 100.0;
      graph::ThroughputEvaluator evaluator(g);
      graph::ThroughputEngine engine(g);
      if (use_engine)
        anneal_options.throughput_engine = &engine;
      else
        anneal_options.throughput_fn = std::ref(evaluator);
      const auto start = std::chrono::steady_clock::now();
      const std::size_t idx = use_engine ? 1 : 0;
      results[idx] = fplan::anneal(inst, anneal_options);
      const double anneal_ms = ms_since(start);

      OracleRow row;
      row.blocks = blocks;
      row.oracle = use_engine ? "engine" : "evaluator";
      row.anneal_ms = anneal_ms;
      row.throughput_ms = results[idx].throughput_ms;
      row.evals = results[idx].throughput_evals;
      row.incremental = results[idx].engine_incremental;
      row.fallbacks = results[idx].engine_fallbacks;
      oracle_rows.push_back(row);
      oraclet.add_row(
          {std::to_string(blocks), row.oracle, fmt_fixed(anneal_ms, 1),
           fmt_fixed(row.throughput_ms, 1),
           fmt_percent(row.throughput_ms / anneal_ms),
           use_engine ? fmt_fixed(oracle_rows[oracle_rows.size() - 2]
                                          .throughput_ms /
                                      row.throughput_ms,
                                  1)
                      : std::string("1.0"),
           use_engine ? std::to_string(row.incremental) : "-",
           use_engine ? std::to_string(row.fallbacks) : "-"});
    }
    if (results[0].cost != results[1].cost ||
        results[0].placement.x != results[1].placement.x ||
        results[0].throughput != results[1].throughput) {
      std::cerr << "THROUGHPUT ORACLE DIVERGENCE at n=" << blocks << "\n";
      return 1;
    }
  }
  oraclet.print(std::cout);
  std::cout << "Both oracles return bit-identical ratios (asserted above); "
               "the engine turns\nthe per-eval cold O(V*E) certification "
               "into an O(E) certificate repair.\n\n";

  // ---------------------------------------------------- JSON artifact
  {
    std::ofstream file(json_path);
    if (!file) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    wp::bench::JsonWriter json(file);
    json.begin_object();
    json.field("schema", "wirepipe-bench-floorplan/1");
    json.field("workers", ThreadPool::shared().size());
    json.key("floorplan").begin_array();
    for (const auto& r : floorplan_rows) {
      json.begin_object();
      json.field("objective", r.objective)
          .field("area_mm2", r.area)
          .field("wirelength_mm", r.wirelength)
          .field("static_th", r.static_th)
          .field("th_wp1", r.th_wp1)
          .field("th_wp2", r.th_wp2);
      json.end_object();
    }
    json.end_array();
    json.key("packing").begin_array();
    for (const auto& r : packing_rows) {
      json.begin_object();
      json.field("blocks", r.blocks)
          .field("naive_ms_per_pack", r.naive_ms)
          .field("fast_ms_per_pack", r.fast_ms)
          .field("fast_speedup", r.naive_ms / r.fast_ms)
          .field("incremental_us_per_move", r.incr_us)
          .field("move_speedup", r.naive_ms * 1000.0 / r.incr_us)
          .field("batched_us_per_move", r.batched_us)
          .field("batched_move_speedup", r.naive_ms * 1000.0 / r.batched_us)
          .field("tail_incremental_us_per_move", r.tail_incr_us)
          .field("tail_batched_us_per_move", r.tail_batched_us)
          .field("tail_gain", r.tail_incr_us / r.tail_batched_us);
      json.end_object();
    }
    json.end_array();
    json.key("anneal").begin_array();
    for (const auto& r : anneal_rows) {
      json.begin_object();
      json.field("blocks", r.blocks)
          .field("pack_engine", r.engine)
          .field("anneal_ms", r.anneal_ms)
          .field("pack_ms", r.pack_ms);
      json.end_object();
    }
    json.end_array();
    json.key("scale").begin_array();
    for (const auto& r : scale_rows) {
      json.begin_object();
      json.field("blocks", r.blocks)
          .field("pack_engine", r.engine)
          .field("anneal_ms", r.anneal_ms)
          .field("pack_ms", r.pack_ms)
          .field("batch_persistent_evals", r.persistent)
          .field("batch_prime_evals", r.prime)
          .field("batch_full_packs", r.full)
          .field("batch_index_rebuilds", r.rebuilds)
          .field("batch_reprime_saved", r.saved);
      json.end_object();
    }
    json.end_array();
    // Ratios of two same-process wall-clock measurements: informational
    // (no ms/speedup token), deliberately outside the bench_diff gate —
    // they are the ISSUE-9 acceptance numbers, too noisy to gate on.
    json.field("anneal_batched256_over_fast128_ratio", ratio_cross);
    json.field("anneal_batched256_over_batched128_ratio", ratio_batched);
    // Cross-thread ratios are informational by naming (no ms/speedup
    // token): a 1-worker runner and an 8-core runner legitimately
    // disagree on them, so only the wall-clock cells themselves gate.
    json.key("thread_scale").begin_array();
    for (const auto& r : thread_rows) {
      json.begin_object();
      json.field("blocks", r.blocks)
          .field("threads", r.threads)
          .field("engine", r.threads == 0
                               ? std::string("batched")
                               : "parallel-" + std::to_string(r.threads))
          .field("anneal_ms", r.anneal_ms)
          .field("gain_over_serial", r.gain_over_serial)
          .field("parallel_windows", r.windows)
          .field("parallel_drawn", r.drawn)
          .field("parallel_wasted", r.wasted);
      json.end_object();
    }
    json.end_array();
    json.key("throughput_oracle").begin_array();
    for (const auto& r : oracle_rows) {
      json.begin_object();
      json.field("blocks", r.blocks)
          .field("oracle", r.oracle)
          .field("anneal_ms", r.anneal_ms)
          .field("throughput_eval_ms", r.throughput_ms)
          .field("throughput_share", r.throughput_ms / r.anneal_ms)
          .field("throughput_evals", r.evals)
          .field("engine_incremental", r.incremental)
          .field("engine_fallbacks", r.fallbacks);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    file << "\n";
  }
  std::cout << "wrote " << json_path
            << " (per-stage ms + engine hit rates)\n";
  return 0;
}
