// E8 (extension) — the complete wire-pipelining methodology as a flow:
// floorplan the case study (and synthetic SoCs), derive per-connection
// relay-station demand from wire lengths, and compare the resulting system
// throughput for (a) area/wirelength-driven and (b) throughput-driven
// annealing, under WP1 and WP2 execution of the real programs.
//
// The multi-seed restarts run on the shared thread pool (anneal_parallel),
// each with a private warm-started Howard throughput oracle.
#include <iostream>

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "proc/experiment.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using wp::fplan::AnnealOptions;
using wp::fplan::AnnealResult;
using wp::fplan::Instance;
using wp::fplan::ParallelAnnealOptions;
using wp::fplan::WireDelayModel;

double static_throughput_of_demand(
    const wp::graph::Digraph& base,
    const std::vector<std::pair<std::string, int>>& demand) {
  auto g = base;
  for (const auto& [label, rs] : demand)
    for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge(e).label == label) g.edge(e).relay_stations = rs;
  return wp::graph::min_cycle_ratio_lawler(g).ratio;
}

}  // namespace

int main() {
  using namespace wp;

  const Instance cpu = fplan::cpu_instance();
  const graph::Digraph cpu_graph = proc::make_cpu_graph();
  WireDelayModel delay;
  // 350 ps clock, 150 ps/mm wires: 2.33 mm reachable per cycle. Adjacent CU/IC
  // stay un-pipelined; a careless placement forces relay stations onto the
  // fetch loop — the regime where the floorplan objective matters.
  delay.clock_ps = 350.0;

  TextTable table({"objective", "area (mm^2)", "wirelength (mm)",
                   "static Th", "sim Th WP1", "sim Th WP2"});
  table.add_section("Floorplan-driven wire pipelining of the case-study "
                    "CPU (clock " +
                    fmt_fixed(delay.clock_ps, 0) + " ps, " +
                    fmt_fixed(delay.ps_per_mm, 0) + " ps/mm wires, " +
                    std::to_string(ThreadPool::shared().size()) +
                    " workers)");
  table.add_separator();

  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  proc::ExperimentOptions options;
  options.check_equivalence = false;

  for (const bool throughput_driven : {false, true}) {
    // Best of five annealing seeds (11..15) under each objective, fanned
    // out over the pool; selection is deterministic best-of.
    ParallelAnnealOptions parallel;
    parallel.base.iterations = 20000;
    parallel.base.seed = 11;
    parallel.base.delay_model = delay;
    parallel.restarts = 5;
    if (throughput_driven) {
      parallel.base.weight_throughput = 500.0;
      parallel.throughput_factory = [&cpu_graph]() {
        return graph::ThroughputEvaluator(cpu_graph);
      };
    }
    const AnnealResult result = fplan::anneal_parallel(cpu, parallel);
    const auto demand = rs_demand(cpu, result.placement, delay);

    proc::RsConfig config{"floorplan", {}};
    for (const auto& [label, rs] : demand) config.rs[label] = rs;
    const proc::ExperimentRow row =
        run_experiment(program, {}, config, options);

    table.add_row({throughput_driven ? "area+WL+throughput" : "area+WL",
                   fmt_fixed(result.area, 1),
                   fmt_fixed(result.wirelength, 1),
                   fmt_fixed(static_throughput_of_demand(cpu_graph, demand),
                             3),
                   fmt_fixed(row.th_wp1, 3), fmt_fixed(row.th_wp2, 3)});
  }
  table.print(std::cout);
  std::cout << "Throughput-aware floorplanning keeps the critical loops "
               "short (fewer\nrelay stations where they hurt), trading a "
               "little area/wirelength for\nsystem throughput — the full "
               "methodology the paper's title promises.\n\n";

  // Scaling study on synthetic SoCs.
  TextTable synth({"instance", "blocks", "nets", "area-driven static Th",
                   "throughput-driven static Th"});
  synth.add_section("Synthetic SoC instances (GSRC-scale)");
  synth.add_separator();
  for (const std::size_t blocks : {10u, 20u, 33u}) {
    const Instance inst = fplan::synthetic_instance(blocks, 7);
    // Static analysis graph: one node per block, one edge per net.
    graph::Digraph g;
    for (const auto& b : inst.blocks) g.add_node(b.name);
    for (const auto& n : inst.nets)
      g.add_edge(n.src_block, n.dst_block, n.connection);
    double th[2] = {0, 0};
    for (const bool driven : {false, true}) {
      // Best of three seeds (3..5), judged by the achieved static
      // throughput; the seeds run concurrently, each with its own oracle.
      const std::uint64_t base_seed = 3;
      double seed_th[3] = {0, 0, 0};
      ThreadPool::shared().parallel_for(0, 3, [&](std::size_t i) {
        AnnealOptions anneal_options;
        anneal_options.iterations = 6000;
        anneal_options.seed = base_seed + i;
        anneal_options.delay_model = delay;
        graph::ThroughputEvaluator oracle(g);
        if (driven) {
          anneal_options.weight_throughput = 100.0;
          anneal_options.throughput_fn = oracle;
        }
        const AnnealResult result = fplan::anneal(inst, anneal_options);
        seed_th[i] = oracle(rs_demand(inst, result.placement, delay));
      });
      for (const double th_i : seed_th)
        th[driven ? 1 : 0] = std::max(th[driven ? 1 : 0], th_i);
    }
    synth.add_row({inst.name, std::to_string(inst.blocks.size()),
                   std::to_string(inst.nets.size()), fmt_fixed(th[0], 3),
                   fmt_fixed(th[1], 3)});
  }
  synth.print(std::cout);
  return 0;
}
