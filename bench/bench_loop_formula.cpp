// E6 — the theory section's claim Th = m/(m+n), "the worst loop dominates":
// simulated throughput of synthetic ring and multi-loop systems versus the
// analytic bound, for WP1 and WP2 shells, including a duty-cycled consumer
// that only WP2 can exploit.
#include <iostream>

#include "core/procs.hpp"
#include "core/system.hpp"
#include "graph/cycle_ratio.hpp"
#include "util/table.hpp"

namespace {

wp::SystemSpec ring_system(int m) {
  wp::SystemSpec spec;
  for (int i = 0; i < m; ++i)
    spec.add_process("p" + std::to_string(i), [i]() {
      return std::make_unique<wp::IdentityProcess>("p" + std::to_string(i),
                                                   static_cast<wp::Word>(i));
    });
  for (int i = 0; i < m; ++i)
    spec.add_channel("p" + std::to_string(i), "out",
                     "p" + std::to_string((i + 1) % m), "in",
                     "ring" + std::to_string(i));
  return spec;
}

double simulated_throughput(const wp::SystemSpec& spec, bool oracle,
                            std::uint64_t cycles = 4000) {
  wp::ShellOptions opts;
  opts.use_oracle = oracle;
  wp::LidSystem lid = build_lid(spec, opts, false);
  for (std::uint64_t i = 0; i < cycles; ++i) lid.network->step();
  std::uint64_t max_firings = 0;
  for (const auto& [name, shell] : lid.shells) {
    (void)name;
    max_firings = std::max(max_firings, shell->stats().firings);
  }
  return static_cast<double>(max_firings) / static_cast<double>(cycles);
}

}  // namespace

int main() {
  using namespace wp;

  TextTable table({"system", "m", "n", "analytic m/(m+n)", "sim WP1",
                   "sim WP2"});
  table.add_section("Rings of strict identity stages");
  table.add_separator();
  for (const int m : {2, 3, 5}) {
    for (const int n : {0, 1, 2, 4}) {
      SystemSpec spec = ring_system(m);
      spec.set_connection_rs("ring0", n);
      const double analytic = static_cast<double>(m) / (m + n);
      table.add_row({"ring", std::to_string(m), std::to_string(n),
                     fmt_fixed(analytic, 3),
                     fmt_fixed(simulated_throughput(spec, false), 3),
                     fmt_fixed(simulated_throughput(spec, true), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "Strict stages read every input every firing, so WP1 = WP2 "
               "= m/(m+n)\nexactly — the paper's loop formula.\n\n";

  // A loop whose consumer reads the looped-back input only every k-th
  // firing: WP1 stays at the static bound, WP2 recovers toward 1.
  TextTable duty({"duty period k", "n", "WP1", "WP2",
                  "WP2 gain"});
  duty.add_section(
      "2-block loop, consumer reads the feedback input 1-in-k firings");
  duty.add_separator();
  for (const int k : {1, 2, 4, 8}) {
    for (const int n : {1, 2}) {
      SystemSpec spec;
      spec.add_process("duty", [k]() {
        return std::make_unique<DutyCycleProcess>(
            "duty", static_cast<std::uint64_t>(k));
      });
      spec.add_process("echo", []() {
        return std::make_unique<IdentityProcess>("echo", 1);
      });
      // duty.out -> echo.in -> echo.out -> duty.b closes the relaxable
      // loop; duty.a is fed by a free-running source.
      spec.add_process("src", []() {
        return std::make_unique<CounterSource>("src");
      });
      spec.add_channel("src", "out", "duty", "a");
      spec.add_channel("duty", "out", "echo", "in");
      spec.add_channel("echo", "out", "duty", "b", "loopback");
      spec.set_connection_rs("loopback", n);
      const double wp1 = simulated_throughput(spec, false);
      const double wp2 = simulated_throughput(spec, true);
      duty.add_row({std::to_string(k), std::to_string(n), fmt_fixed(wp1, 3),
                    fmt_fixed(wp2, 3), fmt_percent(wp2 / wp1 - 1.0)});
    }
  }
  duty.print(std::cout);
  std::cout << "The oracle's relaxation of synchronicity converts unused "
               "loop slack\ninto throughput — the WP2 mechanism of the "
               "paper, isolated.\n";
  return 0;
}
