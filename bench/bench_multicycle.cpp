// E3 — the multicycle case (paper §3, results "not reported in table for
// space reasons"): both programs under the multicycle control unit. The
// prose claim to reproduce: the CU-IC loop, excited only once per ~5
// firings, shows the best WP2-over-WP1 improvement (the paper reports 60%),
// while frequently accessed channels gain less.
#include <iostream>

#include "bench_common.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp::proc;

  CpuConfig cpu;
  cpu.multicycle = true;

  for (const bool use_matmul : {false, true}) {
    const ProgramSpec program =
        use_matmul ? matmul_program(4, 2) : extraction_sort_program(16, 1);
    std::vector<ExperimentRow> rows;
    for (const auto& config : table1_sort_configs())
      rows.push_back(run_experiment(program, cpu, config));
    wp::bench::print_table1(
        "Multicycle case — " + program.name +
            " (paper §3: CU-IC loop excited every ~5 cycles)",
        rows);
    wp::bench::maybe_write_csv(
        use_matmul ? "multicycle_matmul" : "multicycle_sort", rows);

    // Highlight the prose claim.
    for (const auto& row : rows) {
      if (row.label == "Only CU-IC") {
        std::cout << "CU-IC WP2-over-WP1 improvement (multicycle): "
                  << wp::fmt_percent(row.improvement)
                  << "  [paper reports +60% as the best of the loop set]\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
