// Micro-benchmarks for the packing primitives under the annealer's hot
// loop: the epoch-stamped MaxFenwick (plain updates, logged updates with
// trail rewind, and the O(1)-amortised reset), the persistent dominance
// index (build cost and O(log² n) prefix queries), and the end-to-end
// per-move cost of a rejection-heavy move chain under the IncrementalPacker
// vs the BatchedMoveEvaluator.
//
// Self-contained (no google-benchmark): deterministic seeded workloads,
// checksums printed so the measured loops cannot be optimised away, and a
// JSON artifact (default BENCH_pack_micro.json, --json PATH) that rides
// the tools/bench_diff Release-CI gate. Aggregate `*_total_ms` fields are
// the gated wall-clock numbers; the derived per-op `*_ns` fields sit below
// the gate's noise floor and are informational.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cli/arg_parser.hpp"
#include "floorplan/batch_pack.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/sequence_pair.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using wp::fplan::AppliedMove;
using wp::fplan::BatchedMoveEvaluator;
using wp::fplan::IncrementalPacker;
using wp::fplan::Instance;
using wp::fplan::SequencePair;
using wp::fplan::SpMove;
using wp::fplan::detail::DominanceIndex;
using wp::fplan::detail::MaxFenwick;

constexpr std::size_t kBlocks = 256;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One pack_fast-shaped Fenwick pass: n interleaved prefix_max/update
/// pairs, the exact access pattern of the O(n log n) packer.
double fenwick_pass(MaxFenwick& fw, const std::vector<std::size_t>& keys,
                    const std::vector<double>& vals) {
  fw.reset(kBlocks);
  double checksum = 0;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    const double coord = fw.prefix_max(keys[i] + 1);
    checksum += coord;
    fw.update(keys[i], coord + vals[i]);
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wp;

  cli::ArgParser parser("bench_pack_micro",
                        "Packing-primitive micro-benchmarks.");
  parser.option("--json", "PATH", "BENCH_pack_micro.json",
                "machine-readable timing artifact");
  parser.parse_or_exit(argc, argv);
  const std::string json_path = parser.get("--json");

  Rng rng(17);
  // Shared deterministic workload: a random key permutation plus positive
  // block extents, the shape pack_fast feeds the tree.
  std::vector<std::size_t> keys(kBlocks);
  for (std::size_t i = 0; i < kBlocks; ++i) keys[i] = i;
  for (std::size_t i = kBlocks - 1; i > 0; --i)
    std::swap(keys[i], keys[rng.below(i + 1)]);
  std::vector<double> vals(kBlocks);
  for (double& v : vals) v = 1.0 + static_cast<double>(rng.below(1000));

  TextTable table({"primitive", "workload", "total ms", "per op"});
  table.add_section("Packing primitives at n = " + std::to_string(kBlocks));
  table.add_separator();

  // ---------------------------------------------------- plain Fenwick
  const int fenwick_reps = 20000;
  MaxFenwick fw;
  double checksum = 0;
  const auto fenwick_start = std::chrono::steady_clock::now();
  for (int r = 0; r < fenwick_reps; ++r) checksum += fenwick_pass(fw, keys, vals);
  const double fenwick_total_ms = ms_since(fenwick_start);
  const double fenwick_op_ns = fenwick_total_ms * 1e6 /
                               (fenwick_reps * kBlocks * 2.0);
  table.add_row({"MaxFenwick", "update+prefix_max pass x" +
                                   std::to_string(fenwick_reps),
                 fmt_fixed(fenwick_total_ms, 1),
                 fmt_fixed(fenwick_op_ns, 1) + " ns/op"});

  // --------------------------------------------- logged update + rewind
  // The batched evaluator's shared-prime pattern: extend the tree with
  // logged updates, take a mark halfway, keep extending, then rewind to
  // the mark — paying the trail on every node write.
  const int logged_reps = 20000;
  double logged_checksum = 0;
  const auto logged_start = std::chrono::steady_clock::now();
  for (int r = 0; r < logged_reps; ++r) {
    fw.reset(kBlocks);
    for (std::size_t i = 0; i < kBlocks / 2; ++i)
      fw.update_logged(keys[i], vals[i]);
    const std::size_t mark = fw.mark();
    for (std::size_t i = kBlocks / 2; i < kBlocks; ++i)
      fw.update_logged(keys[i], vals[i]);
    logged_checksum += fw.prefix_max(kBlocks);
    fw.rewind(mark);
    logged_checksum += fw.prefix_max(kBlocks);
  }
  const double logged_total_ms = ms_since(logged_start);
  const double logged_op_ns =
      logged_total_ms * 1e6 / (logged_reps * kBlocks * 1.5);
  table.add_row({"MaxFenwick", "logged update + rewind x" +
                                   std::to_string(logged_reps),
                 fmt_fixed(logged_total_ms, 1),
                 fmt_fixed(logged_op_ns, 1) + " ns/op"});

  // ------------------------------------------------- dominance index
  std::vector<std::uint32_t> leaf_keys(kBlocks);
  std::vector<double> leaf_vals(kBlocks);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    leaf_keys[i] = static_cast<std::uint32_t>(keys[i]);
    leaf_vals[i] = vals[i];
  }
  DominanceIndex dom;
  const int build_reps = 5000;
  const auto build_start = std::chrono::steady_clock::now();
  for (int r = 0; r < build_reps; ++r) dom.build(leaf_keys, leaf_vals);
  const double dom_build_total_ms = ms_since(build_start);
  const double dom_build_us = dom_build_total_ms * 1000.0 / build_reps;
  table.add_row({"DominanceIndex", "build x" + std::to_string(build_reps),
                 fmt_fixed(dom_build_total_ms, 1),
                 fmt_fixed(dom_build_us, 2) + " us/build"});

  const int query_reps = 2000000;
  double query_checksum = 0;
  Rng query_rng(23);
  const auto query_start = std::chrono::steady_clock::now();
  for (int r = 0; r < query_reps; ++r) {
    const std::size_t prefix = query_rng.below(kBlocks + 1);
    const auto bound = static_cast<std::uint32_t>(query_rng.below(kBlocks));
    query_checksum += dom.query(prefix, bound);
  }
  const double dom_query_total_ms = ms_since(query_start);
  const double dom_query_ns = dom_query_total_ms * 1e6 / query_reps;
  table.add_row({"DominanceIndex", "query x" + std::to_string(query_reps),
                 fmt_fixed(dom_query_total_ms, 1),
                 fmt_fixed(dom_query_ns, 1) + " ns/query"});

  // ------------------------------- rejection-heavy move chain, n = 256
  // The annealing cold tail: 1 move in 16 accepted. Identical seeded move
  // streams per engine; the checksums must agree bitwise (the engines'
  // differential contract), and the batched evaluator's persistent-index
  // rejection path is where it earns its keep.
  const Instance inst = wp::fplan::synthetic_instance(kBlocks, 11);
  const int chain_moves = 4000;
  const auto run_chain = [&](auto& engine_like, SequencePair& sp,
                             Rng& chain_rng) {
    double chain_checksum = 0;
    for (int m = 0; m < chain_moves; ++m) {
      const AppliedMove move = random_move(sp, chain_rng);
      chain_checksum += engine_like.apply(move).area();
      if (m % 16 != 15) {
        undo_move(sp, move);
        engine_like.revert();
      } else if constexpr (std::is_same_v<std::decay_t<decltype(engine_like)>,
                                          BatchedMoveEvaluator>) {
        engine_like.commit();
      }
    }
    return chain_checksum;
  };

  Rng incr_rng(31);
  SequencePair incr_sp = SequencePair::random(kBlocks, incr_rng);
  IncrementalPacker packer(inst, incr_sp);
  const auto incr_start = std::chrono::steady_clock::now();
  const double incr_checksum = run_chain(packer, incr_sp, incr_rng);
  const double chain_incr_total_ms = ms_since(incr_start);

  Rng batched_rng(31);
  SequencePair batched_sp = SequencePair::random(kBlocks, batched_rng);
  BatchedMoveEvaluator evaluator(inst, batched_sp);
  const auto batched_start = std::chrono::steady_clock::now();
  const double batched_checksum =
      run_chain(evaluator, batched_sp, batched_rng);
  const double chain_batched_total_ms = ms_since(batched_start);
  if (incr_checksum != batched_checksum) {
    std::cerr << "BATCHED ENGINE DIVERGENCE in micro chain\n";
    return 1;
  }
  table.add_row({"IncrementalPacker", "1-in-16 accept chain x" +
                                          std::to_string(chain_moves),
                 fmt_fixed(chain_incr_total_ms, 1),
                 fmt_fixed(chain_incr_total_ms * 1000.0 / chain_moves, 2) +
                     " us/move"});
  table.add_row({"BatchedMoveEvaluator", "1-in-16 accept chain x" +
                                             std::to_string(chain_moves),
                 fmt_fixed(chain_batched_total_ms, 1),
                 fmt_fixed(chain_batched_total_ms * 1000.0 / chain_moves, 2) +
                     " us/move"});

  // ------------------------------- local-move chain (tail refinement)
  // Rejection-heavy *local* moves — swaps confined to the last few Γ−
  // positions, the shape of late-anneal refinement — keep the dirty
  // suffix tiny and the clean prefix huge. This is the persistent
  // dominance index's home regime: no per-candidate prefix prime at all.
  const int local_moves = 4000;
  const std::size_t local_span = 12;
  const auto run_local = [&](auto& engine_like, SequencePair& sp,
                             Rng& chain_rng) {
    double local_checksum = 0;
    for (int m = 0; m < local_moves; ++m) {
      const std::size_t i =
          kBlocks - 1 - chain_rng.below(local_span);
      std::size_t j = kBlocks - 1 - chain_rng.below(local_span);
      if (j == i) j = kBlocks - 1 - ((kBlocks - 1 - j + 1) % local_span);
      const AppliedMove move{SpMove::kSwapNegative, i, j};
      apply_move(sp, move);
      local_checksum += engine_like.apply(move).area();
      if (m % 16 != 15) {
        undo_move(sp, move);
        engine_like.revert();
      } else if constexpr (std::is_same_v<std::decay_t<decltype(engine_like)>,
                                          BatchedMoveEvaluator>) {
        engine_like.commit();
      }
    }
    return local_checksum;
  };

  Rng local_incr_rng(37);
  SequencePair local_incr_sp = SequencePair::random(kBlocks, local_incr_rng);
  IncrementalPacker local_packer(inst, local_incr_sp);
  const auto local_incr_start = std::chrono::steady_clock::now();
  const double local_incr_checksum =
      run_local(local_packer, local_incr_sp, local_incr_rng);
  const double local_incr_total_ms = ms_since(local_incr_start);

  Rng local_batched_rng(37);
  SequencePair local_batched_sp =
      SequencePair::random(kBlocks, local_batched_rng);
  BatchedMoveEvaluator local_evaluator(inst, local_batched_sp);
  const auto local_batched_start = std::chrono::steady_clock::now();
  const double local_batched_checksum =
      run_local(local_evaluator, local_batched_sp, local_batched_rng);
  const double local_batched_total_ms = ms_since(local_batched_start);
  if (local_incr_checksum != local_batched_checksum) {
    std::cerr << "BATCHED ENGINE DIVERGENCE in local-move chain\n";
    return 1;
  }
  table.add_row({"IncrementalPacker", "local 1-in-16 chain x" +
                                          std::to_string(local_moves),
                 fmt_fixed(local_incr_total_ms, 1),
                 fmt_fixed(local_incr_total_ms * 1000.0 / local_moves, 2) +
                     " us/move"});
  table.add_row({"BatchedMoveEvaluator", "local 1-in-16 chain x" +
                                             std::to_string(local_moves),
                 fmt_fixed(local_batched_total_ms, 1),
                 fmt_fixed(local_batched_total_ms * 1000.0 / local_moves, 2) +
                     " us/move"});
  table.print(std::cout);
  const BatchedMoveEvaluator::Stats& stats = evaluator.stats();
  std::cout << "chain path split: " << stats.persistent_evals
            << " persistent / " << stats.prime_evals << " primed / "
            << stats.full_packs << " full; " << stats.index_rebuilds
            << " index rebuilds\n";
  const BatchedMoveEvaluator::Stats& local_stats = local_evaluator.stats();
  std::cout << "local chain path split: " << local_stats.persistent_evals
            << " persistent / " << local_stats.prime_evals << " primed / "
            << local_stats.full_packs << " full; "
            << local_stats.index_rebuilds << " index rebuilds; "
            << local_stats.reprime_positions_saved
            << " prime positions saved\n";
  std::cout << "checksums: " << checksum << " " << logged_checksum << " "
            << query_checksum << " " << incr_checksum << "\n";

  // ---------------------------------------------------- JSON artifact
  std::ofstream file(json_path);
  if (!file) {
    std::cerr << "cannot write " << json_path << "\n";
    return 1;
  }
  json::JsonWriter json(file);
  json.begin_object();
  json.field("schema", "wirepipe-bench-pack-micro/1");
  json.field("blocks", kBlocks);
  json.field("fenwick_pass_total_ms", fenwick_total_ms)
      .field("fenwick_op_ns", fenwick_op_ns)
      .field("fenwick_logged_total_ms", logged_total_ms)
      .field("fenwick_logged_op_ns", logged_op_ns)
      .field("dominance_build_total_ms", dom_build_total_ms)
      .field("dominance_build_us_each", dom_build_us)
      .field("dominance_query_total_ms", dom_query_total_ms)
      .field("dominance_query_op_ns", dom_query_ns)
      .field("chain_incremental_total_ms", chain_incr_total_ms)
      .field("chain_batched_total_ms", chain_batched_total_ms)
      .field("chain_tail_speedup",
             chain_incr_total_ms / chain_batched_total_ms)
      .field("local_chain_incremental_total_ms", local_incr_total_ms)
      .field("local_chain_batched_total_ms", local_batched_total_ms)
      .field("local_chain_speedup",
             local_incr_total_ms / local_batched_total_ms);
  json.end_object();
  file << "\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
