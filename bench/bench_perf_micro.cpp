// E9 — google-benchmark micro: raw speed of the simulation kernel and of
// the graph solvers, so downstream users can size their experiments.
#include <benchmark/benchmark.h>

#include "core/procs.hpp"
#include "core/system.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/cycles.hpp"
#include "gen/topologies.hpp"
#include "proc/experiment.hpp"
#include "util/rng.hpp"

namespace {

wp::SystemSpec ring_system(int m) {
  wp::SystemSpec spec;
  for (int i = 0; i < m; ++i)
    spec.add_process("p" + std::to_string(i), [i]() {
      return std::make_unique<wp::IdentityProcess>("p" + std::to_string(i),
                                                   static_cast<wp::Word>(i));
    });
  for (int i = 0; i < m; ++i)
    spec.add_channel("p" + std::to_string(i), "out",
                     "p" + std::to_string((i + 1) % m), "in",
                     "r" + std::to_string(i));
  return spec;
}

void BM_RingSimulation(benchmark::State& state) {
  wp::SystemSpec spec = ring_system(static_cast<int>(state.range(0)));
  spec.set_connection_rs("r0", 2);
  wp::LidSystem lid = build_lid(spec, wp::ShellOptions{}, false);
  for (auto _ : state) lid.network->step();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lid.network->node_count()));
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RingSimulation)->Arg(4)->Arg(16)->Arg(64);

void BM_CpuGoldenSort(benchmark::State& state) {
  const auto program = wp::proc::extraction_sort_program(
      static_cast<std::size_t>(state.range(0)), 1);
  const auto spec = wp::proc::make_cpu_system(program, {});
  for (auto _ : state) {
    wp::GoldenSim golden(spec, false);
    benchmark::DoNotOptimize(golden.run_until_halt(2000000));
  }
}
BENCHMARK(BM_CpuGoldenSort)->Arg(8)->Arg(16)->Arg(32);

void BM_CpuWp2Sort(benchmark::State& state) {
  const auto program = wp::proc::extraction_sort_program(16, 1);
  auto spec = wp::proc::make_cpu_system(program, {});
  std::map<std::string, int> rs;
  for (const auto& name : wp::proc::cpu_connections())
    if (name != "CU-IC") rs[name] = static_cast<int>(state.range(0));
  spec.set_rs_map(rs);
  wp::ShellOptions shell;
  shell.use_oracle = true;
  for (auto _ : state) {
    wp::LidSystem lid = build_lid(spec, shell, false);
    benchmark::DoNotOptimize(lid.run_until_halt(2000000, 0));
  }
}
BENCHMARK(BM_CpuWp2Sort)->Arg(1)->Arg(2);

void BM_JohnsonCycles(benchmark::State& state) {
  wp::Rng rng(5);
  wp::gen::RandomGraphConfig config;
  config.num_nodes = static_cast<int>(state.range(0));
  config.edge_probability = 0.15;
  const auto g = wp::gen::random_digraph(config, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(wp::graph::enumerate_cycles(g, 5000000));
}
BENCHMARK(BM_JohnsonCycles)->Arg(6)->Arg(9)->Arg(12);

void BM_MinCycleRatio(benchmark::State& state) {
  wp::Rng rng(9);
  wp::gen::RandomGraphConfig config;
  config.num_nodes = static_cast<int>(state.range(0));
  config.edge_probability = 0.1;
  const auto g = wp::gen::random_digraph(config, rng);
  if (state.range(1) == 0) {
    for (auto _ : state)
      benchmark::DoNotOptimize(wp::graph::min_cycle_ratio_lawler(g));
  } else {
    for (auto _ : state)
      benchmark::DoNotOptimize(wp::graph::min_cycle_ratio_howard(g));
  }
}
BENCHMARK(BM_MinCycleRatio)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1});

}  // namespace

BENCHMARK_MAIN();
