// E11 (extension) — two studies of the supporting machinery:
//   1. Communication profile of the case-study CPU (excitation rate per
//      input) and its correlation with the measured per-connection WP2
//      gains of Table 1 — the paper's "minimal knowledge of the IP's
//      communication profile" made quantitative.
//   2. Robustness: throughput degradation under random congestion noise,
//      with correctness (equivalence) checked at every point.
#include <iostream>

#include "core/profile.hpp"
#include "core/system.hpp"
#include "proc/blocks.hpp"
#include "proc/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wp;
  using namespace wp::proc;

  const ProgramSpec program = extraction_sort_program(16, 1);

  // --- 1. profile vs measured WP2 gain ---------------------------------
  const CommunicationProfile profile =
      profile_communication(make_cpu_system(program, {}), 200000);

  TextTable prof({"consumer input", "excitation rate"});
  prof.add_section("Communication profile — " + program.name +
                   " (pipelined CPU)");
  prof.add_separator();
  for (const auto& input : profile.inputs)
    prof.add_row({input.process + "." + input.port,
                  fmt_fixed(input.excitation_rate(), 3)});
  prof.print(std::cout);

  // Correlate with single-connection Table-1 measurements: a connection
  // whose consumer input has a low excitation rate should show a large
  // measured WP2 improvement.
  const std::map<std::string, std::string> consumer_of = {
      {"CU-IC", "CU.instr"},   {"CU-RF", "RF.ctl"},
      {"CU-AL", "ALU.op"},     {"CU-DC", "DC.ctl"},
      {"RF-ALU", "ALU.operands"}, {"RF-DC", "DC.store_data"},
      {"ALU-CU", "CU.flags"},  {"ALU-RF", "RF.wb"},
      {"ALU-DC", "DC.maddr"},  {"DC-RF", "RF.load"}};

  TextTable corr({"connection", "consumer excitation",
                  "measured WP2 gain (1 RS)"});
  corr.add_section("Low excitation predicts high WP2 recovery");
  corr.add_separator();
  ExperimentOptions options;
  options.check_equivalence = false;
  for (const auto& name : cpu_connections()) {
    const RsConfig config{"Only " + name, {{name, 1}}};
    const ExperimentRow row = run_experiment(program, {}, config, options);
    const auto& endpoint = consumer_of.at(name);
    const auto dot = endpoint.find('.');
    const double rate = profile
                            .at(endpoint.substr(0, dot),
                                endpoint.substr(dot + 1))
                            .excitation_rate();
    corr.add_row({name, fmt_fixed(rate, 3), fmt_percent(row.improvement)});
  }
  corr.print(std::cout);
  std::cout << "\n";

  // --- 2. congestion-noise robustness ----------------------------------
  TextTable noise_table({"stall probability", "Th WP1", "Th WP2",
                         "equivalent"});
  noise_table.add_section(
      "Random congestion on every channel (StallInjector), config all-0");
  noise_table.add_separator();
  SystemSpec spec = make_cpu_system(program, {});
  GoldenSim golden(spec, true);
  const std::uint64_t golden_cycles = golden.run_until_halt(200000);
  for (const double p : {0.0, 1e-9, 0.05, 0.1, 0.25, 0.5}) {
    double th[2];
    bool equivalent = true;
    for (const bool oracle : {false, true}) {
      ShellOptions shell;
      shell.use_oracle = oracle;
      NoiseOptions noise;
      noise.stall_probability = p;
      noise.seed = 17;
      LidSystem lid = build_lid(spec, shell, true, noise);
      const std::uint64_t cycles = lid.run_until_halt(5000000, 0);
      th[oracle ? 1 : 0] = static_cast<double>(golden_cycles) /
                           static_cast<double>(cycles);
      equivalent =
          equivalent && check_equivalence(golden.trace(), lid.trace)
                            .equivalent;
    }
    noise_table.add_row({p > 0 && p < 1e-6 ? "0+ (injectors only)"
                                           : fmt_fixed(p, 2),
                         fmt_fixed(th[0], 3), fmt_fixed(th[1], 3),
                         equivalent ? "yes" : "NO"});
  }
  noise_table.print(std::cout);
  std::cout << "The 0+ row isolates the injectors' structural cost (one "
               "relay-station\nlatency per channel, CU-IC fetch loop "
               "included); the rows below it add\nactual random stalls. "
               "Behaviour is preserved at every noise level —\nlatency "
               "insensitivity, executed.\n";
  return 0;
}
