// E7 (extension) — relay-station depth sweep: Th versus n in 0..6 on each
// connection separately, WP1 vs WP2, both programs. Generalizes Table 1's
// single-RS rows and shows where the WP2 advantage saturates.
//
// Every sweep point is an independent WP1/WP2 simulation pair against the
// shared cached golden (simulation oracle: the golden runs once per
// program, no matter how many points or workers), fanned out over the
// thread pool (ParallelSweep) with rows in deterministic input order.
#include <iostream>

#include "bench_common.hpp"
#include "proc/experiment.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace wp::proc;

  const CpuConfig cpu;
  ExperimentOptions options;
  options.check_equivalence = false;  // speed; equivalence covered by tests

  for (const bool use_matmul : {false, true}) {
    const ProgramSpec program =
        use_matmul ? matmul_program(4, 2) : extraction_sort_program(16, 1);
    const wp::sim::GoldenCache::Stats oracle_before =
        wp::sim::SimOracle::shared().stats();
    wp::TextTable table({"connection", "n", "Th WP1", "Th WP2", "gain",
                         "static"});
    table.add_section("RS depth sweep — " + program.name + " (" +
                      std::to_string(wp::ThreadPool::shared().size()) +
                      " workers)");
    table.add_separator();

    std::vector<RsConfig> configs;
    for (const std::string conn : {"CU-IC", "CU-RF", "RF-ALU", "RF-DC",
                                   "ALU-CU", "DC-RF"}) {
      for (int n = 0; n <= 6; n += 2)
        configs.push_back({conn + " x" + std::to_string(n), {{conn, n}}});
    }

    const ParallelSweep sweep(program, cpu, options);
    const std::vector<ExperimentRow> rows = sweep.run(configs);

    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ExperimentRow& row = rows[i];
      const auto& rs = configs[i].rs;
      table.add_row({rs.begin()->first, std::to_string(rs.begin()->second),
                     wp::fmt_fixed(row.th_wp1, 3),
                     wp::fmt_fixed(row.th_wp2, 3),
                     wp::fmt_percent(row.improvement),
                     wp::fmt_fixed(row.static_wp1, 3)});
    }
    table.print(std::cout);
    wp::bench::maybe_write_csv(
        use_matmul ? "rs_sweep_matmul" : "rs_sweep_sort", rows);
    wp::bench::print_golden_replays(
        use_matmul ? "rs_sweep_matmul" : "rs_sweep_sort", oracle_before,
        wp::sim::SimOracle::shared().stats());
    std::cout << "\n";
  }
  std::cout << "WP1 follows m/(m+n) (deeper pipelining keeps hurting); the "
               "WP2 recovery\nis largest on rarely-read connections and "
               "persists as n grows.\n";
  return 0;
}
