// E10 (extension) — the DSP stream case study: throughput of the AGC
// feedback loop versus relay-station depth and versus the gain-update
// period, for WP1 and WP2. Demonstrates the paper's amortization law on a
// second, non-processor system: Th_WP1 = m/(m+n) always, while
// Th_WP2 = period/(period+n) — the loop latency is paid only by the
// firings that actually read the feedback.
#include <iostream>

#include "core/system.hpp"
#include "stream/stream.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

double run(const wp::SystemSpec& spec, bool oracle,
           std::uint64_t golden_cycles) {
  constexpr std::uint64_t kMaxCycles = 3000000;
  wp::ShellOptions shell;
  shell.use_oracle = oracle;
  wp::LidSystem lid = build_lid(spec, shell, false);
  const std::uint64_t cycles = lid.run_until_halt(kMaxCycles, 0);
  // Hitting the cap without the sink halting used to fall through and
  // report golden_cycles / kMaxCycles as if it were a throughput — a
  // silently wrong number. A truncated run is a failure, not a data point.
  bool halted = false;
  for (const auto& [name, node] : lid.shells) {
    (void)name;
    halted = halted || node->halted();
  }
  WP_CHECK(halted,
           "bench_stream: cycle cap reached before the sink halted — the "
           "measured ratio would be meaningless");
  return static_cast<double>(golden_cycles) / static_cast<double>(cycles);
}

}  // namespace

int main() {
  using namespace wp;

  TextTable table({"AGC period K", "feedback RS n", "Th WP1", "m/(m+n)",
                   "Th WP2", "K/(K+n)"});
  table.add_section(
      "AGC stream pipeline — feedback loop GAIN->QNT->AGC->GAIN (m = 3)");
  table.add_separator();

  for (const std::uint64_t period : {4u, 16u, 64u}) {
    for (const int n : {0, 1, 2, 4, 8}) {
      stream::StreamConfig config;
      config.samples = 4000;
      config.agc_period = period;
      SystemSpec spec = stream::make_stream_system(config);
      spec.set_connection_rs("AGC-GAIN", n);

      GoldenSim golden(spec, false);
      const std::uint64_t golden_cycles = golden.run_until_halt(1000000);

      const double wp1 = run(spec, false, golden_cycles);
      const double wp2 = run(spec, true, golden_cycles);
      table.add_row({std::to_string(period), std::to_string(n),
                     fmt_fixed(wp1, 3), fmt_fixed(3.0 / (3 + n), 3),
                     fmt_fixed(wp2, 3),
                     fmt_fixed(static_cast<double>(period) /
                                   (static_cast<double>(period) + n),
                               3)});
    }
  }
  table.print(std::cout);
  std::cout << "WP1 is pinned at the structural bound m/(m+n) regardless "
               "of the gain\nupdate rate; WP2 follows K/(K+n): the rarer "
               "the feedback, the closer to\nfull rate — the paper's "
               "relaxation of synchronicity quantified on a\nsecond case "
               "study.\n";
  return 0;
}
