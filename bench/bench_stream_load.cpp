// Sustained-load bench for the streaming front end: millions of tokens
// through a parameterized multi-branch stream graph (stream/harness.hpp),
// reporting throughput, per-stage p99 fire latency, backpressure totals
// and — the allocation story — the steady-state allocation rate of the
// token path.
//
// Allocation accounting: this TU overrides the global operator new/delete
// with counting wrappers, then runs the SAME graph at two token counts.
// Per-run setup (spec strings, shells, wires, preallocated ring FIFOs,
// histograms) allocates identically in both; anything that scales with
// tokens is token-path allocation. With the ring-buffer FIFOs the delta is
// ~zero allocations per million tokens, and the committed BENCH_stream.json
// snapshot holds that number so a regression (say, a vector sneaking back
// into the hot loop) shows up in the bench_diff gate as drift.
//
// The measured run is cross-checked against a golden run of the same
// config: digest mismatch aborts the bench — a throughput number for a
// stream that is not bit-for-bit the reference stream is worthless.
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>

#include "bench_common.hpp"
#include "cli/arg_parser.hpp"
#include "obs/metrics.hpp"
#include "stream/harness.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void count_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  count_alloc(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

void* operator new(std::size_t size, std::align_val_t alignment) {
  count_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(alignment), size ? size : 1))
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace wp;

stream::RunMode parse_mode(const std::string& name) {
  if (name == "golden") return stream::RunMode::kGolden;
  if (name == "wp1") return stream::RunMode::kWp1;
  if (name == "wp2") return stream::RunMode::kWp2;
  std::cerr << "unknown --mode '" << name << "' (golden|wp1|wp2)\n";
  std::exit(2);
}

struct MeasuredRun {
  stream::HarnessResult result;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
};

MeasuredRun measure(const stream::StreamGraphConfig& config,
                    const stream::HarnessOptions& options) {
  MeasuredRun run;
  const std::uint64_t allocs_before = g_allocs.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  run.result = stream::run_stream_graph(config, options);
  run.allocs = g_allocs.load() - allocs_before;
  run.alloc_bytes = g_alloc_bytes.load() - bytes_before;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser(
      "bench_stream_load",
      "Heavy-traffic stream harness: tokens/sec, per-stage p99 latency, "
      "backpressure and steady-state allocation rate of the token path.");
  parser.option("--tokens", "N", "1000000", "tokens per sink, measured run");
  parser.option("--fir-stages", "N", "3", "FIR chain depth per branch");
  parser.option("--branches", "N", "2", "parallel AGC pipelines");
  parser.option("--agc-period", "K", "16", "gain update cadence");
  parser.option("--feedback-rs", "N", "2", "relay stations on AGC-GAIN");
  parser.option("--forward-rs", "N", "1", "relay stations on forward links");
  parser.option("--fifo", "N", "16", "shell input FIFO capacity");
  parser.option("--mode", "M", "wp2", "golden|wp1|wp2");
  parser.option("--warmup", "N", "50000", "warmup tokens (not measured)");
  parser.option("--json", "PATH", "BENCH_stream.json",
                "perf flight-recorder artifact");
  parser.parse_or_exit(argc, argv);

  stream::StreamGraphConfig config;
  config.tokens = static_cast<std::uint64_t>(parser.get_int("--tokens"));
  config.fir_stages = static_cast<std::size_t>(parser.get_int("--fir-stages"));
  config.branches = static_cast<std::size_t>(parser.get_int("--branches"));
  config.agc_period = static_cast<std::uint64_t>(parser.get_int("--agc-period"));
  config.feedback_rs = parser.get_int("--feedback-rs");
  config.forward_rs = parser.get_int("--forward-rs");
  config.sink.keep_samples = false;  // stats-only: O(1) sink memory

  stream::HarnessOptions options;
  options.mode = parse_mode(parser.get("--mode"));
  options.fifo_capacity = static_cast<std::size_t>(parser.get_int("--fifo"));
  options.time_stages = true;

  std::cout << "stream load: " << config.tokens << " tokens/sink x "
            << config.branches << " branches, " << stage_count(config)
            << " stages, mode " << stream::run_mode_name(options.mode)
            << ", K=" << config.agc_period << ", feedback RS "
            << config.feedback_rs << ", forward RS " << config.forward_rs
            << "\n";

  // Warmup: registers every registry metric and faults in the allocator,
  // so the two measured runs below differ only in token count.
  stream::StreamGraphConfig warmup = config;
  warmup.tokens = static_cast<std::uint64_t>(parser.get_int("--warmup"));
  (void)stream::run_stream_graph(warmup, options);

  // Token-path allocation rate: same graph at T/2 and T tokens; the
  // per-run setup cancels in the delta.
  stream::StreamGraphConfig half = config;
  half.tokens = config.tokens / 2;
  const MeasuredRun small = measure(half, options);
  const MeasuredRun full = measure(config, options);
  const stream::HarnessResult& result = full.result;

  const double extra_mtokens =
      static_cast<double>(config.tokens - half.tokens) *
      static_cast<double>(config.branches) / 1e6;
  const double allocs_per_mtoken =
      extra_mtokens > 0.0
          ? static_cast<double>(full.allocs > small.allocs
                                    ? full.allocs - small.allocs
                                    : 0) /
                extra_mtokens
          : 0.0;
  const double bytes_per_mtoken =
      extra_mtokens > 0.0
          ? static_cast<double>(full.alloc_bytes > small.alloc_bytes
                                    ? full.alloc_bytes - small.alloc_bytes
                                    : 0) /
                extra_mtokens
          : 0.0;
  obs::Registry::global()
      .gauge("stream/alloc/allocs_per_mtoken")
      .set(static_cast<std::int64_t>(allocs_per_mtoken));
  obs::Registry::global()
      .gauge("stream/alloc/bytes_per_mtoken")
      .set(static_cast<std::int64_t>(bytes_per_mtoken));

  // Differential cross-check: the measured stream must be bit-for-bit the
  // golden stream (skip when the measured mode IS golden).
  if (options.mode != stream::RunMode::kGolden) {
    stream::HarnessOptions golden_options;
    golden_options.mode = stream::RunMode::kGolden;
    golden_options.record_metrics = false;
    const stream::HarnessResult golden =
        stream::run_stream_graph(config, golden_options);
    WP_CHECK(golden.digest == result.digest,
             "bench_stream_load: measured stream diverged from golden — "
             "throughput of a wrong stream is not a result");
    std::cout << "differential check: " << stream::run_mode_name(options.mode)
              << " digest == golden digest\n";
  }

  TextTable table({"stage", "firings", "in stalls", "out stalls",
                   "discarded", "fire p50 ns", "fire p99 ns"});
  table.add_section("per-stage load (measured run)");
  table.add_separator();
  double max_p99 = 0.0;
  for (const auto& stage : result.stages) {
    max_p99 = stage.fire_p99_ns > max_p99 ? stage.fire_p99_ns : max_p99;
    table.add_row({stage.name, std::to_string(stage.firings),
                   std::to_string(stage.input_stalls),
                   std::to_string(stage.output_stalls),
                   std::to_string(stage.discarded_tokens),
                   fmt_fixed(stage.fire_p50_ns, 0),
                   fmt_fixed(stage.fire_p99_ns, 0)});
  }
  table.print(std::cout);

  std::cout << "tokens " << result.tokens << " in " << result.cycles
            << " cycles, " << fmt_fixed(result.wall_ms, 1) << " ms = "
            << fmt_fixed(result.tokens_per_sec / 1e6, 2)
            << " Mtokens/s; token-path allocs/Mtoken "
            << fmt_fixed(allocs_per_mtoken, 2) << " ("
            << fmt_fixed(bytes_per_mtoken, 0) << " bytes)\n";

  const std::string json_path = parser.get("--json");
  {
    std::ofstream json_file(json_path);
    bench::JsonWriter json(json_file);
    json.begin_object();
    json.field("bench", "stream");
    json.field("mode", stream::run_mode_name(options.mode));
    json.field("tokens", result.tokens);
    json.field("branches",
               static_cast<unsigned long long>(config.branches));
    json.field("stages",
               static_cast<unsigned long long>(stage_count(config)));
    json.field("cycles", result.cycles);
    json.field("run_ms", result.wall_ms);
    json.field("tokens_per_min", result.tokens_per_sec * 60.0);
    json.field("tokens_per_sec", result.tokens_per_sec);
    json.field("cycles_per_token",
               result.tokens == 0
                   ? 0.0
                   : static_cast<double>(result.cycles) /
                         static_cast<double>(result.tokens));
    json.field("steady_allocs_per_mtoken", allocs_per_mtoken);
    json.field("steady_bytes_per_mtoken", bytes_per_mtoken);
    json.field("max_stage_fire_p99_ns", max_p99);
    json.key("backpressure").begin_object();
    json.field("input_stalls", result.input_stalls);
    json.field("output_stalls", result.output_stalls);
    json.field("discarded_tokens", result.discarded_tokens);
    json.end_object();
    json.end_object();
    json_file << "\n";
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
