// E2 — Table 1, Matrix Multiply section (paper rows 1-25, pipelined CPU):
// the sort-section configurations plus the all-1-with-2-on-one sweeps,
// "Optimal 2 (no CU-IC)", all-2, and all-2-with-1-on-CU-RF.
#include <iostream>

#include "bench_common.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp::proc;

  const ProgramSpec program = matmul_program(4, 2);
  const CpuConfig cpu;  // pipelined

  const wp::sim::GoldenCache::Stats oracle_before =
      wp::sim::SimOracle::shared().stats();
  std::vector<ExperimentRow> rows;
  const auto configs = table1_matmul_configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rows.push_back(run_experiment(program, cpu, configs[i]));
    if (configs[i].label == "All 1 and 2 DC-RF") {
      // Paper row 23, "Optimal 2 (no CU-IC)": all-2 demand, up to three
      // connections relieved to 1, maximizing simulated WP2 throughput.
      std::map<std::string, int> demand, relieved;
      for (const auto& name : cpu_connections())
        if (name != "CU-IC") {
          demand[name] = 2;
          relieved[name] = 1;
        }
      rows.push_back(run_experiment(
          program, cpu,
          optimal_config("Optimal 2 (no CU-IC)", program, cpu, demand,
                         relieved, /*budget=*/3)));
    }
  }

  wp::bench::print_table1(
      "Table 1 — Matrix Multiply (pipelined case), program " + program.name,
      rows);
  wp::bench::maybe_write_csv("table1_matmul", rows);
  // The whole table — 26 rows plus the optimizer's exhaustive candidate
  // scan — shares one (program, cpu) key, so the golden matmul run is
  // simulated exactly once.
  wp::bench::print_golden_replays("table1_matmul", oracle_before,
                                  wp::sim::SimOracle::shared().stats());

  std::cout << "Paper shape targets: doubling a connection's RS lowers WP1 "
               "Th toward\nm/(m+2); \"All 1 and 2 CU-IC\" is the floor "
               "(0.33, no WP2 gain);\nRF-DC and CU-AL rows show the biggest "
               "WP2 recovery.\n";
  return 0;
}
