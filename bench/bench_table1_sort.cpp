// E1 — Table 1, Extraction Sort section (paper rows 1-13, pipelined CPU):
// the ideal system, one relay station on each single connection, all-1
// except CU-IC, and the optimizer's "Optimal 1 (no CU-IC)" placement.
#include <iostream>

#include "bench_common.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp::proc;

  const ProgramSpec program = extraction_sort_program(16, 1);
  const CpuConfig cpu;  // pipelined

  std::vector<ExperimentRow> rows;
  for (const auto& config : table1_sort_configs())
    rows.push_back(run_experiment(program, cpu, config));

  // Row 13, "Optimal 1 (no CU-IC)": all-1 demand with up to three
  // connections relieved to zero (kept short by the floorplan), chosen
  // exhaustively to maximize the simulated WP2 throughput.
  std::map<std::string, int> demand, relieved;
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") {
      demand[name] = 1;
      relieved[name] = 0;
    }
  const RsConfig optimal =
      optimal_config("Optimal 1 (no CU-IC)", program, cpu, demand, relieved,
                     /*budget=*/3);
  rows.push_back(run_experiment(program, cpu, optimal));

  wp::bench::print_table1(
      "Table 1 — Extraction Sort (pipelined case), program " + program.name,
      rows);
  wp::bench::maybe_write_csv("table1_sort", rows);

  std::cout << "Paper shape targets: WP1 Th = m/(m+n) per worst excited "
               "loop;\nCU-IC worst (0.5, ~no WP2 gain); RF-DC-class links "
               "~0.667 with the\nlargest WP2 recovery (paper: +49% on "
               "RF-DC); all WP2 >= WP1.\n";
  return 0;
}
