// E12 (extension) — workload sensitivity: the paper picks extraction sort
// and matrix multiply "to cover the spectrum of applications". This bench
// adds a third class — pointer chasing, where every iteration serializes
// on a load — and compares the per-connection WP2 recovery across all
// three, quantifying §3's "the advantage depends on the features of the
// communication channel at stake".
#include <iostream>

#include "bench_common.hpp"
#include "proc/blocks.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp::proc;

  const std::vector<ProgramSpec> programs = {
      extraction_sort_program(16, 1), matmul_program(4, 2),
      pointer_chase_program(32, 3)};

  ExperimentOptions options;
  options.check_equivalence = false;  // correctness covered by the tests

  wp::TextTable table({"connection (1 RS)", "WP1 bound", "sort WP2",
                       "matmul WP2", "chase WP2"});
  table.add_section("WP2 throughput by workload class (pipelined CPU)");
  table.add_separator();
  for (const auto& name : cpu_connections()) {
    const RsConfig config{"Only " + name, {{name, 1}}};
    std::vector<ExperimentRow> rows;
    for (const auto& program : programs)
      rows.push_back(run_experiment(program, {}, config, options));
    table.add_row({name, wp::fmt_fixed(rows[0].th_wp1, 3),
                   wp::fmt_fixed(rows[0].th_wp2, 3),
                   wp::fmt_fixed(rows[1].th_wp2, 3),
                   wp::fmt_fixed(rows[2].th_wp2, 3)});
  }
  table.print(std::cout);

  wp::TextTable ipc({"program", "golden cycles", "instructions",
                     "golden IPC"});
  ipc.add_section("Workload character");
  ipc.add_separator();
  for (const auto& program : programs) {
    wp::SystemSpec spec = make_cpu_system(program, {});
    wp::GoldenSim golden(spec, false);
    const std::uint64_t cycles = golden.run_until_halt(2000000);
    const auto& cu =
        dynamic_cast<const ControlUnit&>(golden.process("CU"));
    ipc.add_row({program.name, std::to_string(cycles),
                 std::to_string(cu.instructions_retired()),
                 wp::fmt_fixed(static_cast<double>(cu.instructions_retired()) /
                                   static_cast<double>(cycles),
                               3)});
  }
  ipc.print(std::cout);
  std::cout << "CU-IC stays pinned near 0.5 for all three classes — the "
               "fetch loop is\nworkload-independent. The data-path links "
               "are profile-dependent: the\nload-serial chase recovers "
               "fully on RF-DC (it issues a single store),\nwhile matmul's "
               "dense ALU traffic trims the ALU-RF and RF-ALU recovery.\n";
  return 0;
}
