// E5 — wrapper area overhead (paper §1: "the overhead was always less than
// 1% with respect to an IP of 100 kgates", 130 nm synthesis). Sweeps the
// wrapper geometry and reports NAND2-equivalent gates and the overhead
// ratio for WP1 and WP2 wrappers, plus relay-station cost per width.
#include <iostream>

#include "core/area.hpp"
#include "util/table.hpp"

int main() {
  using namespace wp;

  TextTable table({"in x out", "width", "depth", "WP1 gates", "WP2 gates",
                   "WP2 oracle share", "overhead vs 100 kgate IP"});
  table.add_section("Wrapper gate-count model (NAND2 equivalents)");
  table.add_separator();

  for (const std::size_t channels : {2u, 3u, 4u}) {
    for (const std::size_t width : {16u, 32u, 64u}) {
      for (const std::size_t depth : {2u, 4u}) {
        WrapperGeometry g;
        g.num_inputs = channels;
        g.num_outputs = channels;
        g.data_width = width;
        g.fifo_depth = depth;
        g.counter_bits = 4;
        const double wp1 = estimate_wrapper_area(g).total();
        g.oracle = true;
        const WrapperArea wp2 = estimate_wrapper_area(g);
        table.add_row({std::to_string(channels) + "x" +
                           std::to_string(channels),
                       std::to_string(width), std::to_string(depth),
                       fmt_fixed(wp1, 0), fmt_fixed(wp2.total(), 0),
                       fmt_percent(wp2.oracle_logic / wp2.total(), 1),
                       fmt_percent(wp2.total() / 100000.0, 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "Paper claim: < 1% of a 100-kgate IP; our conservative "
               "estimate lands\nat 0.5-3% across the sweep (same order; "
               "lean interfaces < 1%), and the\nWP2 oracle adds only a few "
               "percent of the wrapper (\"the effort was minimal\").\n\n";

  TextTable rs({"payload width", "relay station gates",
                "overhead vs 100 kgate IP"});
  rs.add_section("Relay station cost");
  rs.add_separator();
  for (const std::size_t width : {8u, 16u, 32u, 64u}) {
    const double gates = estimate_relay_station_area(width);
    rs.add_row({std::to_string(width), fmt_fixed(gates, 0),
                fmt_percent(gates / 100000.0, 2)});
  }
  rs.print(std::cout);
  return 0;
}
