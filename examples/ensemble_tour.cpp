// Guided tour of the topology ensemble subsystem: one sample from each
// generator family, shown at every stage of the pipeline — the generated
// digraph's structure, the dressed floorplan instance and netlist, the
// throughput-aware annealed placement, the relay stations it implies, and
// the resulting min-cycle-ratio system throughput with its critical loop.
#include <algorithm>
#include <iostream>

#include "core/netlist_text.hpp"
#include "floorplan/annealer.hpp"
#include "gen/instances.hpp"
#include "gen/topologies.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "util/table.hpp"

namespace {

wp::gen::TopologyConfig family_config(wp::gen::TopologyFamily family) {
  wp::gen::TopologyConfig config;
  config.family = family;
  config.num_nodes = 16;
  config.ws_neighbors = 4;
  config.mesh_rows = 4;
  config.mesh_cols = 4;
  config.mesh_torus = true;
  config.er_clusters = 4;
  return config;
}

}  // namespace

int main() {
  using namespace wp;
  using gen::TopologyFamily;

  TextTable table({"family", "nodes", "edges", "max deg", "clustering",
                   "area", "RS total", "system Th", "critical loop len"});
  table.add_separator();

  for (const TopologyFamily family :
       {TopologyFamily::kBarabasiAlbert, TopologyFamily::kWattsStrogatz,
        TopologyFamily::kMesh, TopologyFamily::kClusteredErdosRenyi}) {
    Rng rng(7 + static_cast<std::uint64_t>(family));
    const gen::TopologyConfig topo_config = family_config(family);
    const graph::Digraph topology = gen::generate_topology(topo_config, rng);

    gen::SystemConfig sys_config;
    sys_config.name = gen::family_name(family) + "16";
    const gen::GeneratedSystem sys =
        gen::dress_topology(topology, sys_config, rng);

    // The netlist view really is a runnable system description.
    const ParsedSystem parsed = parse_system(sys.netlist, default_registry());

    // Throughput-aware floorplan of the dressed instance; the evaluator
    // scores the placement-implied relay stations on the topology itself.
    graph::Digraph base = topology;
    for (graph::EdgeId e = 0; e < base.num_edges(); ++e)
      base.edge(e).relay_stations = 0;
    graph::ThroughputEvaluator evaluator(base);
    fplan::AnnealOptions options;
    options.iterations = 4000;
    options.weight_wirelength = 0.05;
    options.weight_throughput = 50.0;
    options.seed = 99;
    options.throughput_fn =
        [&evaluator](const std::vector<std::pair<std::string, int>>& demand) {
          return evaluator(demand);
        };
    const fplan::AnnealResult result = fplan::anneal(sys.instance, options);
    const auto demand =
        fplan::rs_demand(sys.instance, result.placement, options.delay_model);
    int total_rs = 0;
    for (const auto& [connection, rs] : demand) {
      (void)connection;
      total_rs += rs;
    }
    // Critical loop straight from the solver (no full enumeration — hub
    // families have far too many elementary cycles to list).
    graph::Digraph scored = topology;
    for (graph::EdgeId e = 0; e < scored.num_edges(); ++e)
      scored.edge(e).relay_stations = 0;
    for (const auto& [connection, rs] : demand)
      for (graph::EdgeId e = 0; e < scored.num_edges(); ++e)
        if (scored.edge(e).label == connection)
          scored.edge(e).relay_stations = rs;
    const auto mcr = graph::min_cycle_ratio_howard(scored);

    const auto degrees = gen::undirected_degrees(topology);
    table.add_row(
        {gen::family_name(family) + " (" + parsed.name + ")",
         std::to_string(topology.num_nodes()),
         std::to_string(topology.num_edges()),
         std::to_string(*std::max_element(degrees.begin(), degrees.end())),
         fmt_fixed(gen::average_clustering(topology), 3),
         fmt_fixed(result.area, 1), std::to_string(total_rs),
         fmt_fixed(mcr.ratio, 3), std::to_string(mcr.critical_cycle.size())});
  }
  table.print(std::cout);
  std::cout << "Each family generated with 16 nodes, dressed into blocks "
               "(log-uniform areas),\nfloorplanned throughput-aware, and "
               "scored by min cycle ratio over the derived\nrelay-station "
               "demand. See bench_ensembles for full distributions.\n";
  return 0;
}
