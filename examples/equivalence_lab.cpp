// Equivalence lab: the paper's formal side, hands-on. Builds a random
// system of Moore machines with communication oracles, runs golden / WP1 /
// WP2, shows the τ-filtered streams side by side, and demonstrates how an
// UNSOUND oracle is caught by the poisoning instrumentation.
#include <iostream>

#include "core/procs.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

namespace {

// A deliberately broken block: claims it never needs input "b" but reads it.
class LyingProcess final : public wp::Process {
 public:
  LyingProcess() : Process("liar") {
    add_input("a");
    add_input("b");
    add_output("out", 0);
  }
  wp::InputMask required(const wp::PeekView&) const override { return 0b01; }
  void fire(const wp::Word* in, wp::Word* out) override {
    out[0] = in[0] ^ in[1];  // reads b despite not asking for it
  }
  void reset() override {}
};

}  // namespace

int main() {
  using namespace wp;

  // --- Part 1: a sound random system is N-equivalent for every N --------
  SystemSpec spec;
  Rng rng(2025);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed = rng();
    spec.add_process("m" + std::to_string(i), [seed]() {
      Rng r(seed);
      return std::make_unique<RandomMooreProcess>("m", 2, 2, 4, r);
    });
  }
  for (int i = 0; i < 3; ++i) {
    spec.add_channel("m" + std::to_string(i), "out0",
                     "m" + std::to_string((i + 1) % 3), "in0");
    spec.add_channel("m" + std::to_string(i), "out1",
                     "m" + std::to_string((i + 2) % 3), "in1");
  }
  spec.set_all_rs(2);

  GoldenSim golden(spec, true);
  for (int i = 0; i < 300; ++i) golden.step();

  for (const bool oracle : {false, true}) {
    ShellOptions options;
    options.use_oracle = oracle;
    LidSystem lid = build_lid(spec, options, true);
    for (int i = 0; i < 1200; ++i) lid.network->step();
    const auto eq = check_equivalence(golden.trace(), lid.trace);
    std::cout << (oracle ? "WP2" : "WP1") << ": checked "
              << eq.events_checked << " events, equivalent: "
              << (eq.equivalent ? "yes" : "NO (" + eq.detail + ")") << "\n";
  }

  // Show the first few τ-filtered values of one stream.
  std::cout << "\nFirst 6 values of stream m0.out0 (tag order): ";
  const auto& stream = golden.trace().at("m0.out0");
  for (std::size_t k = 0; k < 6 && k < stream.size(); ++k)
    std::cout << stream[k] << (k + 1 < 6 ? ", " : "\n");

  // --- Part 2: an unsound oracle is caught ------------------------------
  SystemSpec bad;
  bad.add_process("liar", []() { return std::make_unique<LyingProcess>(); });
  bad.add_process("echo1", []() {
    return std::make_unique<IdentityProcess>("echo1", 1);
  });
  bad.add_process("echo2", []() {
    return std::make_unique<IdentityProcess>("echo2", 2);
  });
  bad.add_channel("liar", "out", "echo1", "in");
  bad.add_channel("echo1", "out", "liar", "a");
  bad.add_channel("liar", "out", "echo2", "in");
  bad.add_channel("echo2", "out", "liar", "b", "slow");
  bad.set_connection_rs("slow", 2);

  GoldenSim bad_golden(bad, true);
  for (int i = 0; i < 100; ++i) bad_golden.step();
  ShellOptions wp2;
  wp2.use_oracle = true;  // poison_unrequired defaults to true
  LidSystem lid = build_lid(bad, wp2, true);
  for (int i = 0; i < 400; ++i) lid.network->step();
  const auto eq = check_equivalence(bad_golden.trace(), lid.trace);
  std::cout << "\nUnsound oracle demo: equivalent? "
            << (eq.equivalent ? "yes (BUG NOT CAUGHT)" : "no — caught")
            << "\n  " << eq.detail << "\n"
            << "The wrapper poisons available-but-unrequested inputs, so a "
               "process\nthat lies about its communication profile diverges "
               "loudly instead of\nsilently depending on arrival timing.\n";
  return 0;
}
