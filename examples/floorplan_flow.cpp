// Floorplan flow: the methodology end to end on the case-study CPU —
// anneal a floorplan, measure the wires, derive relay-station counts from
// the wire-delay model, and simulate the resulting wire-pipelined system.
#include <iostream>

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "graph/cycle_ratio.hpp"
#include "proc/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wp;

  // 1. The physical view of Fig. 1: five blocks with mm extents, eleven
  //    point-to-point nets grouped into the ten Table-1 connections.
  const fplan::Instance cpu = fplan::cpu_instance();
  std::cout << "Instance '" << cpu.name << "': " << cpu.blocks.size()
            << " blocks, " << cpu.nets.size() << " nets\n";

  // 2. Floorplan it (area + wirelength objective).
  fplan::AnnealOptions anneal_options;
  anneal_options.iterations = 8000;
  anneal_options.delay_model.clock_ps = 250.0;  // aggressive target clock
  const fplan::AnnealResult plan = fplan::anneal(cpu, anneal_options);
  std::cout << "Annealed floorplan: " << plan.area << " mm^2, wirelength "
            << plan.wirelength << " mm\n\n";

  TextTable placement({"block", "x", "y", "w", "h"});
  for (std::size_t i = 0; i < cpu.blocks.size(); ++i)
    placement.add_row({cpu.blocks[i].name,
                       fmt_fixed(plan.placement.x[i], 2),
                       fmt_fixed(plan.placement.y[i], 2),
                       fmt_fixed(cpu.blocks[i].width, 2),
                       fmt_fixed(cpu.blocks[i].height, 2)});
  placement.print(std::cout);

  // 3. Wire lengths -> relay-station demand.
  const auto demand =
      rs_demand(cpu, plan.placement, anneal_options.delay_model);
  proc::RsConfig config{"from floorplan", {}};
  TextTable wires({"connection", "relay stations"});
  for (const auto& [name, rs] : demand) {
    config.rs[name] = rs;
    wires.add_row({name, std::to_string(rs)});
  }
  std::cout << "\nPer-connection relay stations at clock "
            << anneal_options.delay_model.clock_ps << " ps ("
            << fmt_fixed(anneal_options.delay_model.reachable_mm(), 2)
            << " mm reachable per cycle):\n";
  wires.print(std::cout);

  // 4. Simulate the wire-pipelined system with both wrappers.
  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  const proc::ExperimentRow row = run_experiment(program, {}, config);
  std::cout << "\nExtraction sort on the floorplanned system:\n"
            << "  golden " << row.golden_cycles << " cycles\n"
            << "  WP1    " << row.wp1_cycles << " cycles (Th "
            << fmt_fixed(row.th_wp1, 3) << ")\n"
            << "  WP2    " << row.wp2_cycles << " cycles (Th "
            << fmt_fixed(row.th_wp2, 3) << ", "
            << fmt_percent(row.improvement) << " over WP1)\n"
            << "  checks: "
            << ((row.result_ok && row.wp1_equivalent && row.wp2_equivalent)
                    ? "all pass"
                    : row.detail)
            << "\n";
  return 0;
}
