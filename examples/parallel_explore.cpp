// Parallel exploration engine tour: the same 8-restart throughput-driven
// annealing job run (a) sequentially and (b) on the thread pool, with a
// bit-identical-result check and the wall-clock speedup, followed by a
// relay-station sweep fanned out over the pool with its per-point critical
// loops. Exits non-zero if the parallel best diverges from the sequential
// best — this example doubles as the determinism smoke test.
#include <chrono>
#include <iostream>

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "graph/throughput_engine.hpp"
#include "proc/cpu.hpp"
#include "proc/experiment.hpp"
#include "sim/oracle.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool same_result(const wp::fplan::AnnealResult& a,
                 const wp::fplan::AnnealResult& b) {
  return a.cost == b.cost && a.area == b.area &&
         a.wirelength == b.wirelength && a.throughput == b.throughput &&
         a.seed == b.seed &&
         a.sequence_pair.positive == b.sequence_pair.positive &&
         a.sequence_pair.negative == b.sequence_pair.negative &&
         a.placement.x == b.placement.x && a.placement.y == b.placement.y;
}

}  // namespace

int main() {
  using namespace wp;

  const fplan::Instance cpu = fplan::cpu_instance();
  const graph::Digraph cpu_graph = proc::make_cpu_graph();

  fplan::ParallelAnnealOptions job;
  job.base.iterations = 20000;
  job.base.seed = 11;
  job.base.weight_throughput = 500.0;
  job.base.delay_model.clock_ps = 350.0;
  job.restarts = 8;
  job.engine_factory = [&cpu_graph]() {
    return std::make_unique<graph::ThroughputEngine>(cpu_graph);
  };

  std::cout << "Parallel exploration engine — " << job.restarts
            << " annealing restarts, " << ThreadPool::shared().size()
            << " pool workers\n\n";

  // (a) Sequential reference: the same seeds, one after another, reduced
  // in seed order (strict improvement, ties to the lowest seed).
  const auto sequential_start = Clock::now();
  fplan::AnnealResult sequential;
  for (int i = 0; i < job.restarts; ++i) {
    fplan::AnnealOptions options = job.base;
    options.seed = job.base.seed + static_cast<std::uint64_t>(i);
    const auto engine = job.engine_factory();
    options.throughput_engine = engine.get();
    fplan::AnnealResult restart = fplan::anneal(cpu, options);
    if (i == 0 || restart.cost < sequential.cost)
      sequential = std::move(restart);
  }
  const double sequential_s = seconds_since(sequential_start);

  // (b) The same job on the pool.
  const auto parallel_start = Clock::now();
  const fplan::AnnealResult parallel = fplan::anneal_parallel(cpu, job);
  const double parallel_s = seconds_since(parallel_start);

  TextTable table({"run", "wall (s)", "best cost", "best seed", "area",
                   "static Th"});
  table.add_separator();
  table.add_row({"sequential x8", fmt_fixed(sequential_s, 2),
                 fmt_fixed(sequential.cost, 4),
                 std::to_string(sequential.seed),
                 fmt_fixed(sequential.area, 2),
                 fmt_fixed(sequential.throughput, 3)});
  table.add_row({"anneal_parallel", fmt_fixed(parallel_s, 2),
                 fmt_fixed(parallel.cost, 4), std::to_string(parallel.seed),
                 fmt_fixed(parallel.area, 2),
                 fmt_fixed(parallel.throughput, 3)});
  table.print(std::cout);

  const bool identical = same_result(sequential, parallel);
  std::cout << "speedup: " << fmt_fixed(sequential_s / parallel_s, 2)
            << "x   best results bit-identical: "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  std::cout << "cache: " << parallel.throughput_evals
            << " min-cycle-ratio queries, " << parallel.throughput_cache_hits
            << " served from the demand memo; engine: "
            << parallel.engine_incremental << " incremental / "
            << parallel.engine_fallbacks
            << " cold re-solves (best restart)\n\n";

  // A relay-station sweep fanned over the same pool: every point is a
  // WP1/WP2 simulation pair against the shared cached golden (the
  // simulation oracle runs the golden once for the whole sweep), plus a
  // static loop inventory.
  const sim::GoldenCache::Stats oracle_before =
      sim::SimOracle::shared().stats();
  proc::ExperimentOptions options;
  options.check_equivalence = false;
  const proc::ParallelSweep sweep(proc::extraction_sort_program(16, 1), {},
                                  options);
  std::vector<proc::RsConfig> configs;
  for (int n = 0; n <= 4; ++n)
    configs.push_back({"CU-RF x" + std::to_string(n), {{"CU-RF", n}}});

  const auto sweep_start = Clock::now();
  const auto rows = sweep.run(configs);
  const auto reports = sweep.analyze(configs);
  const double sweep_s = seconds_since(sweep_start);

  TextTable sweep_table({"point", "Th WP1", "Th WP2", "critical loop"});
  sweep_table.add_section("CU-RF depth sweep on the pool (" +
                          fmt_fixed(sweep_s, 2) + " s)");
  sweep_table.add_separator();
  for (std::size_t i = 0; i < rows.size(); ++i)
    sweep_table.add_row({rows[i].label, fmt_fixed(rows[i].th_wp1, 3),
                         fmt_fixed(rows[i].th_wp2, 3),
                         reports[i].critical_loop.empty()
                             ? "(acyclic)"
                             : reports[i].critical_loop});
  sweep_table.print(std::cout);
  const sim::GoldenCache::Stats oracle_after =
      sim::SimOracle::shared().stats();
  std::cout << "simulation oracle: golden simulated "
            << oracle_after.golden_runs - oracle_before.golden_runs
            << "x for " << rows.size() << " sweep points ("
            << oracle_after.hits - oracle_before.hits << " cache hits)\n";

  return identical ? 0 : 1;
}
