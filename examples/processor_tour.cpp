// Processor tour: assemble a custom program, run it on the golden machine
// and on a wire-pipelined WP2 machine, verify the results and equivalence,
// and dump a VCD waveform of the CU-IC bundle for a waveform viewer.
#include <fstream>
#include <iostream>

#include "core/vcd.hpp"
#include "proc/assembler.hpp"
#include "proc/blocks.hpp"
#include "proc/cpu.hpp"
#include "proc/experiment.hpp"

int main() {
  using namespace wp;
  using namespace wp::proc;

  // A program of your own: mem[i] = fib(i) for i in 0..9.
  ProgramSpec program;
  program.name = "fibonacci";
  program.source = R"(
        li   r1, 0         ; fib(i-2)
        li   r2, 1         ; fib(i-1)
        li   r3, 0         ; i
        li   r4, 10        ; bound
        st   r1, 0(r3)
        addi r3, r3, 1
        st   r2, 0(r3)
loop:   addi r3, r3, 1
        cmp  r3, r4
        bge  done
        add  r5, r1, r2    ; fib(i)
        st   r5, 0(r3)
        add  r1, r2, r0    ; shift window
        add  r2, r5, r0
        jmp  loop
done:   halt
  )";
  program.ram.assign(16, 0);
  program.verify = [](const std::vector<std::uint32_t>& ram,
                      std::string* error) {
    const std::uint32_t expected[10] = {0, 1, 1, 2, 3, 5, 8, 13, 21, 34};
    for (int i = 0; i < 10; ++i)
      if (ram[static_cast<std::size_t>(i)] != expected[i]) {
        if (error) *error = "fib mismatch at " + std::to_string(i);
        return false;
      }
    return true;
  };

  // Show the assembler's listing.
  const AssemblyResult assembly = assemble(program.source);
  std::cout << "Assembled " << assembly.rom.size() << " instructions:\n";
  for (std::size_t pc = 0; pc < assembly.listing.size(); ++pc)
    std::cout << "  " << pc << ": " << to_string(assembly.listing[pc])
              << "\n";

  // One experiment row: golden + WP1 + WP2 under a mixed RS configuration.
  RsConfig config{"demo", {{"CU-IC", 1}, {"RF-DC", 2}, {"ALU-RF", 1}}};
  const ExperimentRow row = run_experiment(program, {}, config);
  std::cout << "\ngolden " << row.golden_cycles << " cycles, WP1 "
            << row.wp1_cycles << " (Th " << row.th_wp1 << "), WP2 "
            << row.wp2_cycles << " (Th " << row.th_wp2 << ")\n"
            << "results correct: " << (row.result_ok ? "yes" : "NO")
            << ", equivalent: "
            << (row.wp1_equivalent && row.wp2_equivalent ? "yes" : "NO")
            << "\n";

  // Waveform of the fetch bundle in the WP2 machine.
  SystemSpec spec = make_cpu_system(program, {});
  spec.set_rs_map(config.rs);
  ShellOptions shell;
  shell.use_oracle = true;
  LidSystem lid = build_lid(spec, shell, false);
  std::ofstream file("processor_tour.vcd");
  VcdWriter vcd(file, "wp2_cpu");
  // Channel wires are named "CU.iaddr->IC.addr#k"; record the CU-IC bundle.
  for (std::size_t i = 0; i < lid.network->wire_count(); ++i) {
    Wire* w = lid.network->wire_at(i);
    if (w->name().find("CU.iaddr") != std::string::npos ||
        w->name().find("IC.instr") != std::string::npos)
      vcd.add_wire(w);
  }
  vcd.finalize_header();
  for (Cycle c = 0; c < 200 && !lid.shells.at("CU")->halted(); ++c) {
    lid.network->step();
    vcd.sample(c);
  }
  std::cout << "\nWrote processor_tour.vcd (open with GTKWave).\n";
  return 0;
}
