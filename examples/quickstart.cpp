// Quickstart: build a three-process latency-insensitive system, pipeline a
// wire with relay stations, and watch the WP2 oracle recover the
// throughput the strict WP1 wrapper loses.
//
//   src ──► duty ──► echo ─┐         duty reads the feedback input only
//            ▲             │         once every 4 firings; the loopback
//            └── loopback ◄┘         wire carries 2 relay stations.
#include <iostream>

#include "core/procs.hpp"
#include "core/system.hpp"

int main() {
  using namespace wp;

  // 1. Describe the system once; instantiate it per execution style.
  SystemSpec spec;
  spec.add_process("src", []() { return std::make_unique<CounterSource>("src"); });
  spec.add_process("duty", []() {
    return std::make_unique<DutyCycleProcess>("duty", /*period=*/4);
  });
  spec.add_process("echo", []() {
    return std::make_unique<IdentityProcess>("echo", /*reset_out=*/0);
  });
  spec.add_channel("src", "out", "duty", "a");
  spec.add_channel("duty", "out", "echo", "in");
  spec.add_channel("echo", "out", "duty", "b", "loopback");

  // 2. Wire pipelining: the loopback wire is too long for one clock and
  //    gets two relay stations.
  spec.set_connection_rs("loopback", 2);

  // 3. Golden reference (the original synchronous system).
  GoldenSim golden(spec, /*record_trace=*/true);
  for (int i = 0; i < 2000; ++i) golden.step();

  // 4. Run the wire-pipelined system with both wrappers.
  for (const bool oracle : {false, true}) {
    ShellOptions options;
    options.use_oracle = oracle;
    LidSystem lid = build_lid(spec, options, /*record_trace=*/true);
    for (int i = 0; i < 2000; ++i) lid.network->step();

    const auto& stats = lid.shells.at("duty")->stats();
    const double throughput = static_cast<double>(stats.firings) / 2000.0;
    const auto eq = check_equivalence(golden.trace(), lid.trace);

    std::cout << (oracle ? "WP2 (oracle wrapper):  " : "WP1 (strict wrapper):  ")
              << "throughput " << throughput
              << ", discarded stale tokens " << stats.discarded_tokens
              << ", equivalent to golden: "
              << (eq.equivalent ? "yes" : "NO — " + eq.detail) << "\n";
  }
  std::cout << "\nThe strict wrapper is pinned to the loop bound "
               "m/(m+n) = 2/4 = 0.5;\nthe oracle wrapper only waits on the "
               "1-in-4 firings that read the\nfeedback input (loop "
               "round-trip 4+2 cycles per 4 firings = 0.667) —\nthe paper's "
               "headline effect.\n";
  return 0;
}
