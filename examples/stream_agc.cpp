// Stream AGC: the second case study as a walkthrough. Builds the DSP
// pipeline, profiles its communication, pipelines the feedback wire, and
// shows the amortization law Th_WP2 = K/(K+n) against Th_WP1 = m/(m+n).
#include <iostream>

#include "core/profile.hpp"
#include "core/system.hpp"
#include "stream/stream.hpp"
#include "util/table.hpp"

int main() {
  using namespace wp;

  stream::StreamConfig config;
  config.samples = 4000;
  config.agc_period = 16;

  // 1. Profile the golden system: which inputs does each stage read?
  const SystemSpec spec_for_profile = stream::make_stream_system(config);
  const CommunicationProfile profile =
      profile_communication(spec_for_profile, 100000);
  std::cout << "Communication profile (AGC updates every "
            << config.agc_period << " samples):\n";
  for (const auto& input : profile.inputs)
    std::cout << "  " << input.process << "." << input.port
              << "  excitation " << fmt_fixed(input.excitation_rate(), 3)
            << "\n";

  // 2. The feedback wire is long and needs 2 relay stations.
  SystemSpec spec = stream::make_stream_system(config);
  spec.set_connection_rs("AGC-GAIN", 2);

  GoldenSim golden(spec, false);
  const std::uint64_t golden_cycles = golden.run_until_halt(1000000);
  const auto& golden_sink =
      dynamic_cast<const stream::StreamSink&>(golden.process("SNK"));
  std::cout << "\ngolden: " << golden_cycles << " cycles for "
            << golden_sink.samples().size() << " samples\n";

  // 3. Wire-pipelined runs.
  for (const bool oracle : {false, true}) {
    ShellOptions shell;
    shell.use_oracle = oracle;
    LidSystem lid = build_lid(spec, shell, false);
    const std::uint64_t cycles = lid.run_until_halt(3000000);
    const auto& sink = dynamic_cast<const stream::StreamSink&>(
        lid.shells.at("SNK")->process());
    bool same = sink.samples().size() >= golden_sink.samples().size();
    for (std::size_t i = 0; same && i < golden_sink.samples().size(); ++i)
      same = sink.samples()[i] == golden_sink.samples()[i];
    std::cout << (oracle ? "WP2" : "WP1") << ":    " << cycles
              << " cycles, throughput "
              << fmt_fixed(static_cast<double>(golden_cycles) /
                               static_cast<double>(cycles),
                           3)
              << ", output stream identical: " << (same ? "yes" : "NO")
              << "\n";
  }
  std::cout << "\nWP1 is bound by the feedback loop (m/(m+n) = 3/5 = 0.6); "
               "WP2 pays the\nrelay-station latency only on the 1-in-16 "
               "firings that read the gain\n(K/(K+n) = 16/18 = 0.889).\n";
  return 0;
}
