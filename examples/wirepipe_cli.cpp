// wirepipe_cli — drive the library from a netlist file, no C++ required.
//
//   wirepipe_cli analyze  <netlist>            loop inventory + system Th
//   wirepipe_cli simulate <netlist> [options]  golden/WP1/WP2 run
//       --cycles N      simulate N cycles (default 10000, or until halt)
//       --mode M        golden | wp1 | wp2 (default wp2)
//       --noise P       per-channel stall probability
//   wirepipe_cli profile  <netlist> [--cycles N]   communication profile
//   wirepipe_cli dot      <netlist>            Graphviz of the topology
//   wirepipe_cli types                          list registered blocks
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/netlist_text.hpp"
#include "util/assert.hpp"
#include "core/profile.hpp"
#include "core/system.hpp"
#include "graph/dot.hpp"
#include "graph/throughput.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace wp;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  WP_REQUIRE(file.good(), "cannot open netlist file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

graph::Digraph to_graph(const SystemSpec& spec) {
  graph::Digraph g;
  for (const auto& name : spec.process_names()) g.add_node(name);
  for (const auto& ch : spec.channels())
    g.add_edge(g.find_node(ch.from), g.find_node(ch.to), ch.connection,
               ch.relay_stations);
  return g;
}

int cmd_analyze(const ParsedSystem& parsed) {
  const auto report = graph::analyze_throughput(to_graph(parsed.spec));
  TextTable table({"Netlist loop", "m", "n", "Th = m/(m+n)"});
  for (const auto& loop : report.loops)
    table.add_row({loop.description, std::to_string(loop.m),
                   std::to_string(loop.n), fmt_fixed(loop.throughput, 3)});
  table.print(std::cout);
  std::cout << "system throughput (WP1 bound): "
            << fmt_fixed(report.system_throughput, 3);
  if (!report.critical_loop.empty())
    std::cout << "  [" << report.critical_loop << "]";
  std::cout << "\n";
  return 0;
}

int cmd_simulate(const ParsedSystem& parsed, std::uint64_t cycles,
                 const std::string& mode, double noise_p) {
  if (mode == "golden") {
    GoldenSim golden(parsed.spec, false);
    const std::uint64_t ran = golden.run_until_halt(cycles);
    std::cout << "golden: ran " << ran << " cycles, halted: "
              << (golden.halted() ? "yes" : "no") << "\n";
    return 0;
  }
  ShellOptions shell;
  shell.use_oracle = mode == "wp2";
  NoiseOptions noise;
  noise.stall_probability = noise_p;
  LidSystem lid = build_lid(parsed.spec, shell, false, noise);
  const std::uint64_t ran = lid.run_until_halt(cycles, 0);
  TextTable table({"shell", "firings", "throughput", "input stalls",
                   "output stalls", "discarded"});
  for (const auto& [name, s] : lid.shells) {
    const auto& st = s->stats();
    table.add_row({name, std::to_string(st.firings),
                   fmt_fixed(static_cast<double>(st.firings) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     ran, 1)),
                             3),
                   std::to_string(st.stalls_input),
                   std::to_string(st.stalls_output),
                   std::to_string(st.discarded_tokens)});
  }
  std::cout << mode << ": ran " << ran << " cycles\n";
  table.print(std::cout);
  return 0;
}

int cmd_profile(const ParsedSystem& parsed, std::uint64_t cycles) {
  const CommunicationProfile profile =
      profile_communication(parsed.spec, cycles);
  TextTable table({"consumer input", "firings", "required",
                   "excitation rate"});
  for (const auto& input : profile.inputs)
    table.add_row({input.process + "." + input.port,
                   std::to_string(input.firings),
                   std::to_string(input.required),
                   fmt_fixed(input.excitation_rate(), 3)});
  table.print(std::cout);
  std::cout << "Rates near 1.0: the WP2 wrapper cannot relax that channel; "
               "low rates\npredict large WP2 recovery when the channel is "
               "pipelined.\n";
  return 0;
}

int usage() {
  std::cout <<
      "usage: wirepipe_cli <analyze|simulate|profile|dot|types> "
      "[netlist] [options]\n"
      "  simulate options: --cycles N  --mode golden|wp1|wp2  --noise P\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const ProcessRegistry registry = default_registry();

    if (command == "types") {
      for (const auto& type : registry.types()) std::cout << type << "\n";
      return 0;
    }
    if (argc < 3) return usage();
    const ParsedSystem parsed =
        parse_system(read_file(argv[2]), registry);

    std::uint64_t cycles = 10000;
    std::string mode = "wp2";
    double noise = 0.0;
    for (int i = 3; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string value = argv[i + 1];
      if (flag == "--cycles")
        cycles = static_cast<std::uint64_t>(wp::parse_int(value));
      else if (flag == "--mode")
        mode = value;
      else if (flag == "--noise")
        noise = wp::parse_double(value);
      else
        return usage();
    }

    if (command == "analyze") return cmd_analyze(parsed);
    if (command == "simulate") {
      if (mode != "golden" && mode != "wp1" && mode != "wp2") return usage();
      return cmd_simulate(parsed, cycles, mode, noise);
    }
    if (command == "profile") return cmd_profile(parsed, cycles);
    if (command == "dot") {
      wp::graph::DotOptions options;
      options.title = parsed.name.empty() ? "wirepipe system" : parsed.name;
      std::cout << to_dot(to_graph(parsed.spec), options);
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
