// wirepipe_evald — the evaluation daemon.
//
// Boots an svc::EvalServer on a local socket and serves EvalRequest
// batches until a shutdown frame arrives. One process = one SimOracle:
// goldens are cached in memory per daemon, and --golden-dir (or
// $WIREPIPE_GOLDEN_DIR) adds the persistent store as a shared cache tier
// across a worker fleet.
//
//   wirepipe_evald --socket /tmp/eval.sock --workers 2
//   wirepipe_evald --trace-mode prefix:64   # digest goldens, drop traces
#include <iostream>
#include <string>

#include "cli/arg_parser.hpp"
#include "svc/eval_server.hpp"
#include "svc/ports.hpp"

int main(int argc, char** argv) {
  using namespace wp;

  cli::ArgParser parser(
      "wirepipe_evald",
      "Wirepipe evaluation daemon: serves EvalRequest batches over a "
      "local socket until asked to shut down.");
  parser.option("--socket", "PATH", "",
                "endpoint (default: this user's eval port socket)");
  parser.option("--workers", "N", "0",
                "evaluation threads (0 = hardware concurrency)");
  parser.option("--cache", "N", "64", "LRU cap on cached golden records");
  parser.option("--golden-dir", "DIR", "",
                "persistent golden store (default: $WIREPIPE_GOLDEN_DIR)");
  parser.option("--trace-mode", "full|prefix[:W]", "",
                "golden trace retention (default: $WIREPIPE_GOLDEN_TRACE "
                "or full)");
  parser.flag("--quiet", "no startup/shutdown banner");
  parser.parse_or_exit(argc, argv);

  svc::EvalServerOptions options;
  options.socket_path = parser.get("--socket");
  options.workers = static_cast<std::size_t>(parser.get_int("--workers"));
  options.oracle.max_cached_goldens =
      static_cast<std::size_t>(parser.get_int("--cache"));
  if (!parser.get("--golden-dir").empty())
    options.oracle.persist_dir = parser.get("--golden-dir");

  const std::string trace_mode = parser.get("--trace-mode");
  if (!trace_mode.empty()) {
    options.oracle.use_env_trace_mode = false;
    if (trace_mode == "full") {
      options.oracle.trace_mode = sim::TraceMode::kFull;
    } else if (trace_mode.rfind("prefix", 0) == 0) {
      options.oracle.trace_mode = sim::TraceMode::kPrefixHash;
      const std::size_t colon = trace_mode.find(':');
      if (colon != std::string::npos) {
        try {
          options.oracle.prefix_window =
              std::stoull(trace_mode.substr(colon + 1));
        } catch (...) {
          std::cerr << "--trace-mode window must be a number, got '"
                    << trace_mode << "'\n";
          return 2;
        }
      }
    } else {
      std::cerr << "--trace-mode must be 'full' or 'prefix[:window]', got '"
                << trace_mode << "'\n";
      return 2;
    }
  }

  const bool quiet = parser.has("--quiet");
  try {
    svc::EvalServer server(options);
    server.start();
    if (!quiet)
      std::cout << "wirepipe_evald serving on " << server.socket_path()
                << "\n";
    server.wait();
    const svc::EvalServer::Stats stats = server.stats();
    server.stop();
    if (!quiet)
      std::cout << "wirepipe_evald done: " << stats.requests
                << " evaluations over " << stats.connections
                << " connections, " << stats.error_frames
                << " error frames\n";
  } catch (const svc::ProtocolError& e) {
    std::cerr << "wirepipe_evald: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
