// wirepipe_shard — the sharded evaluation fabric driver.
//
// Boots a WorkerFleet of wirepipe_evald daemons and proves the service's
// central claim: a sharded run is byte-identical to the single-process
// run. Three modes (default "all"):
//
//   sweep     Table-1 relay-station sweep: the same EvalRequest list
//             through in-process eval::evaluate_batch and through the
//             fleet; the two CSV renderings must match byte for byte.
//   ensemble  A small multi-family ensemble via gen::ensemble_jobs; the
//             merged sharded samples CSV must match the single-process
//             CSV byte for byte (wall-clock columns zeroed on both
//             sides — timing is the one legitimately nondeterministic
//             field).
//   bench     Throughput demo: a stream of small floorplan-anneal
//             requests through the fleet, reporting evals/min and the
//             p99 batch round-trip latency to BENCH_service.json.
//
// Exits nonzero on any sharded-vs-single mismatch — CI runs this as the
// service's end-to-end gate.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/arg_parser.hpp"
#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "gen/ensemble.hpp"
#include "proc/experiment.hpp"
#include "sim/oracle.hpp"
#include "svc/eval_client.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

// The JSON artifact writer shared with the benches.
#include "../bench/bench_common.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace wp;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string dir_of(const char* argv0) {
  const std::string path(argv0);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

// ------------------------------------------------------------ sweep mode

std::vector<eval::EvalRequest> sweep_requests() {
  // A wireable program reference: the daemon regenerates the program from
  // (generator, size, seed) — no closure crosses the socket.
  const eval::ProgramRef program = eval::ProgramRef::extraction_sort(10, 7);
  proc::CpuConfig cpu;
  proc::ExperimentOptions options;
  std::vector<eval::EvalRequest> requests;
  for (const proc::RsConfig& config : proc::table1_sort_configs()) {
    eval::ExperimentJob job;
    job.program = program;
    job.cpu = cpu;
    job.rs = config;
    job.options = options;
    requests.emplace_back(std::move(job));
  }
  return requests;
}

std::string sweep_csv(const std::vector<eval::EvalReply>& replies) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"label", "golden_cycles", "wp1_cycles", "wp2_cycles", "th_wp1",
           "th_wp2", "improvement", "static_wp1", "checks"});
  for (const eval::EvalReply& reply : replies) {
    const proc::ExperimentRow& row = eval::unwrap_row(reply);
    csv.row({row.label, std::to_string(row.golden_cycles),
             std::to_string(row.wp1_cycles), std::to_string(row.wp2_cycles),
             fmt_fixed(row.th_wp1, 6), fmt_fixed(row.th_wp2, 6),
             fmt_fixed(row.improvement, 6), fmt_fixed(row.static_wp1, 6),
             (row.wp1_equivalent && row.wp2_equivalent && row.result_ok)
                 ? "ok"
                 : row.detail});
  }
  return os.str();
}

// --------------------------------------------------------- ensemble mode

gen::EnsembleConfig ensemble_config(int samples) {
  gen::EnsembleConfig config;
  config.samples_per_family = samples;
  config.seed = 11;
  config.anneal.iterations = 400;
  config.simulate.enabled = true;
  config.simulate.golden_cycles = 64;
  config.simulate.wp_cycles = 256;

  gen::FamilySpec mesh;
  mesh.name = "mesh-9";
  mesh.topology.family = gen::TopologyFamily::kMesh;
  mesh.topology.num_nodes = 9;
  config.families.push_back(mesh);

  gen::FamilySpec ba;
  ba.name = "ba-12";
  ba.topology.family = gen::TopologyFamily::kBarabasiAlbert;
  ba.topology.num_nodes = 12;
  config.families.push_back(ba);
  return config;
}

gen::EnsembleReport report_from_replies(
    const gen::EnsembleConfig& config,
    const std::vector<eval::EvalReply>& replies) {
  gen::EnsembleReport report;
  report.samples.reserve(replies.size());
  for (const eval::EvalReply& reply : replies)
    report.samples.push_back(eval::unwrap_sample(reply));
  // Wall-clock columns are the one legitimately machine-dependent field;
  // zero them on BOTH sides so the byte comparison tests determinism of
  // results, not of timers.
  for (gen::SampleResult& sample : report.samples) {
    sample.anneal_ms = 0.0;
    sample.throughput_ms = 0.0;
  }
  report.families = gen::aggregate_families(config, report.samples);
  return report;
}

std::string report_csv(const gen::EnsembleReport& report) {
  std::ostringstream os;
  gen::write_samples_csv(report, os);
  gen::write_families_csv(report, os);
  return os.str();
}

// ------------------------------------------------------------ bench mode

std::vector<eval::EvalRequest> bench_requests(int count) {
  // The cheapest meaningful evaluation: a tiny mesh annealed for a
  // handful of iterations, distinct seed per request (so nothing is
  // amortizable across requests — this measures the service, not a cache).
  std::vector<eval::EvalRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    eval::FloorplanJob job;
    job.topology.family = gen::TopologyFamily::kMesh;
    job.topology.num_nodes = 9;
    job.seed = 1000 + static_cast<std::uint64_t>(i);
    job.anneal.iterations = 12;
    job.anneal.weight_throughput = 10.0;
    requests.emplace_back(std::move(job));
  }
  return requests;
}

double percentile_ms(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p / 100.0 *
                               static_cast<double>(values.size())));
  return values[index];
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser(
      "wirepipe_shard",
      "Sharded evaluation fabric driver: proves sharded == single-process "
      "byte for byte and benchmarks the service.");
  parser.positional("mode", "all", "all | sweep | ensemble | bench");
  parser.option("--workers", "N", "4", "worker daemons to fork");
  parser.option("--evald", "PATH", "",
                "wirepipe_evald binary (default: next to this binary)");
  parser.option("--json", "PATH", "BENCH_service.json",
                "service bench artifact");
  parser.option("--samples", "N", "4", "ensemble samples per family");
  parser.option("--evals", "N", "1200", "bench-mode request count");
  parser.option("--base-port", "N", "16", "first worker port");
  parser.option("--out-prefix", "P", "wirepipe_shard",
                "CSV artifact prefix");
  parser.flag("--stats",
              "scrape each worker's live stats (kStatsRequest) before "
              "shutdown and print the JSON documents");
  parser.parse_or_exit(argc, argv);

  const std::string mode = parser.positional_value();
  if (mode != "all" && mode != "sweep" && mode != "ensemble" &&
      mode != "bench") {
    std::cerr << "unknown mode '" << mode
              << "' — expected all, sweep, ensemble or bench\n";
    return 2;
  }
  const bool do_sweep = mode == "all" || mode == "sweep";
  const bool do_ensemble = mode == "all" || mode == "ensemble";
  const bool do_bench = mode == "all" || mode == "bench";
  const std::string prefix = parser.get("--out-prefix");

  svc::FleetOptions fleet_options;
  fleet_options.workers =
      static_cast<std::size_t>(parser.get_int("--workers"));
  fleet_options.base_port =
      static_cast<svc::port_name>(parser.get_int("--base-port"));
  fleet_options.evald_path = parser.get("--evald");
  if (fleet_options.evald_path.empty())
    fleet_options.evald_path = dir_of(argv[0]) + "/wirepipe_evald";
  fleet_options.extra_args = {"--quiet"};

  svc::WorkerFleet fleet(fleet_options);
  try {
    fleet.start();
  } catch (const std::exception& e) {
    std::cerr << "could not start the worker fleet: " << e.what() << "\n";
    return 1;
  }
  std::cout << "worker fleet: " << fleet.workers() << " x "
            << fleet_options.evald_path << "\n";

  bool ok = true;
  double sweep_ms = 0.0, ensemble_ms = 0.0;
  double evals_per_min = 0.0, p99_ms = 0.0, mean_ms = 0.0;
  double inproc_evals_per_min = 0.0;
  int bench_evals = 0;

  if (do_sweep) {
    const std::vector<eval::EvalRequest> requests = sweep_requests();
    const auto start = Clock::now();
    const std::string single = sweep_csv(eval::evaluate_batch(requests, {}));
    const std::string sharded = sweep_csv(fleet.evaluate_sharded(requests));
    sweep_ms = ms_since(start);
    const bool match = single == sharded;
    ok = ok && match;
    std::ofstream(prefix + "_sweep_single.csv") << single;
    std::ofstream(prefix + "_sweep_sharded.csv") << sharded;
    std::cout << "sweep: " << requests.size() << " experiment rows, "
              << (match ? "sharded == single (byte-identical CSV)"
                        : "MISMATCH between sharded and single CSV")
              << "\n";
  }

  if (do_ensemble) {
    const gen::EnsembleConfig config =
        ensemble_config(parser.get_int("--samples"));
    const std::vector<gen::SampleJob> jobs = gen::ensemble_jobs(config);
    std::vector<eval::EvalRequest> requests;
    requests.reserve(jobs.size());
    for (const gen::SampleJob& job : jobs) requests.emplace_back(job);

    const auto start = Clock::now();
    // Single-process side: a private oracle, exactly how run_ensemble
    // wires one per run.
    const std::shared_ptr<sim::SimOracle> oracle =
        sim::SimOracle::make_shared();
    eval::EvalContext context;
    context.oracle = oracle.get();
    const std::string single = report_csv(
        report_from_replies(config, eval::evaluate_batch(requests, context)));
    const std::string sharded = report_csv(
        report_from_replies(config, fleet.evaluate_sharded(requests)));
    ensemble_ms = ms_since(start);
    const bool match = single == sharded;
    ok = ok && match;
    std::ofstream(prefix + "_ensemble_single.csv") << single;
    std::ofstream(prefix + "_ensemble_sharded.csv") << sharded;
    std::cout << "ensemble: " << jobs.size() << " samples across "
              << config.families.size() << " families, "
              << (match ? "sharded == single (byte-identical CSV)"
                        : "MISMATCH between sharded and single CSV")
              << "\n";
  }

  if (do_bench) {
    bench_evals = parser.get_int("--evals");
    const std::vector<eval::EvalRequest> requests =
        bench_requests(bench_evals);

    // In-process baseline for the artifact (and a full equality check —
    // the bench replies must match in-process replies value for value).
    const auto inproc_start = Clock::now();
    const std::vector<eval::EvalReply> inproc =
        eval::evaluate_batch(requests, {});
    const double inproc_ms = ms_since(inproc_start);
    inproc_evals_per_min =
        static_cast<double>(requests.size()) / inproc_ms * 60000.0;

    // Fleet side: each worker is driven from its own thread with
    // fixed-size batches; batch round trips land in per-thread latency
    // logs for the p99.
    const std::size_t n = fleet.workers();
    constexpr std::size_t kBatch = 32;
    std::vector<std::vector<eval::EvalRequest>> shards(n);
    for (std::size_t i = 0; i < requests.size(); ++i)
      shards[i % n].push_back(requests[i]);
    std::vector<std::vector<eval::EvalReply>> shard_replies(n);
    std::vector<std::vector<double>> latencies(n);

    const auto start = Clock::now();
    std::vector<std::thread> drivers;
    for (std::size_t w = 0; w < n; ++w) {
      drivers.emplace_back([&, w] {
        for (std::size_t b = 0; b < shards[w].size(); b += kBatch) {
          const std::size_t end = std::min(b + kBatch, shards[w].size());
          const std::vector<eval::EvalRequest> batch(
              shards[w].begin() + static_cast<std::ptrdiff_t>(b),
              shards[w].begin() + static_cast<std::ptrdiff_t>(end));
          const auto sent = Clock::now();
          std::vector<eval::EvalReply> replies =
              fleet.client(w).evaluate(batch);
          latencies[w].push_back(ms_since(sent));
          for (eval::EvalReply& reply : replies)
            shard_replies[w].push_back(std::move(reply));
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    const double elapsed_ms = ms_since(start);

    // Merge and compare against the in-process baseline.
    bool match = true;
    std::vector<std::size_t> cursor(n, 0);
    std::vector<double> all_latencies;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const eval::EvalReply& reply = shard_replies[i % n][cursor[i % n]++];
      match = match && reply.ok() && inproc[i].ok() &&
              reply.floorplan == inproc[i].floorplan;
    }
    for (const std::vector<double>& lane : latencies)
      all_latencies.insert(all_latencies.end(), lane.begin(), lane.end());
    ok = ok && match;

    evals_per_min =
        static_cast<double>(requests.size()) / elapsed_ms * 60000.0;
    p99_ms = percentile_ms(all_latencies, 99.0);
    double total = 0.0;
    for (const double v : all_latencies) total += v;
    mean_ms = all_latencies.empty()
                  ? 0.0
                  : total / static_cast<double>(all_latencies.size());
    std::cout << "bench: " << requests.size() << " floorplan evals in "
              << fmt_fixed(elapsed_ms, 0) << " ms across " << n
              << " workers = " << fmt_fixed(evals_per_min, 0)
              << " evals/min (in-process baseline "
              << fmt_fixed(inproc_evals_per_min, 0) << "), batch p99 "
              << fmt_fixed(p99_ms, 2) << " ms, "
              << (match ? "replies match in-process"
                        : "MISMATCH vs in-process replies")
              << "\n";
  }

  if (parser.has("--stats")) {
    // Live scrape over the same sockets the work went through — the
    // daemons are still up, so the counters reflect this run.
    for (std::size_t w = 0; w < fleet.workers(); ++w) {
      try {
        std::cout << "worker " << w << " stats: "
                  << fleet.client(w).stats_json();
      } catch (const std::exception& e) {
        std::cerr << "worker " << w << " stats scrape failed: " << e.what()
                  << "\n";
        ok = false;
      }
    }
  }

  fleet.stop();

  const std::string json_path = parser.get("--json");
  std::ofstream json_file(json_path);
  bench::JsonWriter json(json_file);
  json.begin_object();
  json.field("bench", "service");
  json.field("mode", mode);
  json.field("workers", static_cast<int>(fleet_options.workers));
  json.field("ok", ok);
  json.key("sweep").begin_object();
  json.field("ran", do_sweep);
  json.field("total_ms", sweep_ms);
  json.end_object();
  json.key("ensemble").begin_object();
  json.field("ran", do_ensemble);
  json.field("total_ms", ensemble_ms);
  json.end_object();
  json.key("service").begin_object();
  json.field("ran", do_bench);
  json.field("evals", bench_evals);
  json.field("evals_per_min", evals_per_min);
  json.field("inprocess_evals_per_min", inproc_evals_per_min);
  json.field("reply_p99_ms", p99_ms);
  json.field("reply_mean_ms", mean_ms);
  json.end_object();
  json.end_object();
  json_file << "\n";
  std::cout << "wrote " << json_path << "\n";

  if (!ok) {
    std::cerr << "wirepipe_shard: sharded results diverged from "
                 "single-process results\n";
    return 1;
  }
  return 0;
}
