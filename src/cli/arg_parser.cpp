#include "cli/arg_parser.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace wp::cli {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  // Built-in: every ArgParser binary (benches, both daemons) accepts
  // --log-level without declaring it; parse() applies it. Empty default =
  // keep the process threshold (WIREPIPE_LOG or warn).
  option("--log-level", "trace|debug|info|warn|error|off", "",
         "override the log threshold for this run");
}

void ArgParser::flag(const std::string& name, const std::string& help) {
  WP_REQUIRE(name.rfind("--", 0) == 0, "flag names start with --");
  WP_REQUIRE(find_flag(name) == nullptr && find_option(name) == nullptr,
             "duplicate argument declaration: " + name);
  flags_.push_back({name, help, false});
}

void ArgParser::option(const std::string& name, const std::string& value_name,
                       const std::string& fallback, const std::string& help) {
  WP_REQUIRE(name.rfind("--", 0) == 0, "option names start with --");
  WP_REQUIRE(find_flag(name) == nullptr && find_option(name) == nullptr,
             "duplicate argument declaration: " + name);
  options_.push_back({name, value_name, fallback, help, fallback});
}

void ArgParser::positional(const std::string& value_name,
                           const std::string& fallback,
                           const std::string& help) {
  WP_REQUIRE(!has_positional_, "at most one positional argument");
  has_positional_ = true;
  positional_name_ = value_name;
  positional_help_ = help;
  positional_value_ = fallback;
}

ArgParser::Flag* ArgParser::find_flag(const std::string& name) {
  for (auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

ArgParser::Option* ArgParser::find_option(const std::string& name) {
  for (auto& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

const ArgParser::Option& ArgParser::require_option(
    const std::string& name) const {
  for (const auto& o : options_)
    if (o.name == name) return o;
  WP_CHECK(false, "option was never declared: " + name);
  std::abort();  // unreachable: WP_CHECK throws
}

bool ArgParser::parse(int argc, char** argv) {
  bool saw_positional = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (Flag* f = find_flag(arg)) {
      f->present = true;
    } else if (Option* o = find_option(arg)) {
      if (i + 1 >= argc) {
        error_ = o->name + " needs a value (" + o->value_name + ")";
        return false;
      }
      o->value = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      error_ = "unknown flag '" + arg + "'";
      return false;
    } else if (has_positional_ && !saw_positional) {
      positional_value_ = arg;
      saw_positional = true;
    } else {
      error_ = "unexpected argument '" + arg + "'";
      return false;
    }
  }
  const std::string level_name = get("--log-level");
  if (!level_name.empty()) {
    LogLevel level = LogLevel::kWarn;
    if (!parse_log_level(level_name, level)) {
      error_ = "--log-level must be one of "
               "trace|debug|info|warn|error|off, got '" + level_name + "'";
      return false;
    }
    set_log_level(level);
  }
  return true;
}

void ArgParser::parse_or_exit(int argc, char** argv) {
  // --help works even when not declared by the binary.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::cout << usage();
      std::exit(0);
    }
  }
  if (!parse(argc, argv)) {
    std::cerr << program_ << ": " << error_ << "\n\n" << usage();
    std::exit(2);
  }
}

bool ArgParser::has(const std::string& name) const {
  for (const auto& f : flags_)
    if (f.name == name) return f.present;
  WP_CHECK(false, "flag was never declared: " + name);
  return false;
}

std::string ArgParser::get(const std::string& name) const {
  return require_option(name).value;
}

int ArgParser::get_int(const std::string& name) const {
  const Option& o = require_option(name);
  try {
    std::size_t used = 0;
    const int v = std::stoi(o.value, &used);
    if (used != o.value.size()) throw std::invalid_argument(o.value);
    return v;
  } catch (...) {
    std::cerr << program_ << ": " << name << " needs an integer, got '"
              << o.value << "'\n";
    std::exit(2);
  }
}

double ArgParser::get_double(const std::string& name) const {
  const Option& o = require_option(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(o.value, &used);
    if (used != o.value.size()) throw std::invalid_argument(o.value);
    return v;
  } catch (...) {
    std::cerr << program_ << ": " << name << " needs a number, got '"
              << o.value << "'\n";
    std::exit(2);
  }
}

std::vector<std::string> ArgParser::get_list(const std::string& name) const {
  std::vector<std::string> items;
  std::istringstream stream(require_option(name).value);
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) items.push_back(item);
  return items;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nusage: " << program_;
  if (!options_.empty() || !flags_.empty()) os << " [options]";
  if (has_positional_) os << " [" << positional_name_ << "]";
  os << "\n\n";
  for (const auto& o : options_) {
    os << "  " << o.name << " <" << o.value_name << ">  " << o.help
       << " (default: " << (o.fallback.empty() ? "none" : o.fallback)
       << ")\n";
  }
  for (const auto& f : flags_) os << "  " << f.name << "  " << f.help << "\n";
  if (has_positional_)
    os << "  " << positional_name_ << "  " << positional_help_ << "\n";
  os << "  --help  print this text\n";
  return os.str();
}

}  // namespace wp::cli
