// One flag vocabulary for every binary with a command line.
//
// The benches each grew their own copy of the --samples/--families/--seed
// parsing loop (bench_common.hpp's arg_value/arg_int helpers plus a
// hand-rolled unknown-flag scan per main). ArgParser collapses that into a
// declarative parser shared by the benches and the service binaries
// (wirepipe_evald / wirepipe_shard): declare flags and valued options up
// front, parse once, and get unknown-flag rejection, --help text, typed
// accessors and positional handling for free — the two passes that used
// to be able to drift (value extraction vs unknown-flag detection) are now
// one pass over one table.
#pragma once

#include <string>
#include <vector>

namespace wp::cli {

class ArgParser {
 public:
  /// `program` and `description` head the --help text.
  ArgParser(std::string program, std::string description);

  /// Boolean flag: `--name` (no value).
  void flag(const std::string& name, const std::string& help);

  /// Valued option: `--name <value_name>`; `fallback` when absent.
  void option(const std::string& name, const std::string& value_name,
              const std::string& fallback, const std::string& help);

  /// At most one bare (non-flag) argument; `fallback` when absent.
  void positional(const std::string& value_name, const std::string& fallback,
                  const std::string& help);

  /// Parses argv. Returns false — with error() set — on an unknown flag,
  /// a valued option missing its value, or an unexpected extra positional.
  bool parse(int argc, char** argv);

  /// parse() + the standard exit policy: --help prints usage and exits 0,
  /// a parse error prints the error and usage to stderr and exits 2.
  void parse_or_exit(int argc, char** argv);

  bool has(const std::string& name) const;          ///< flag present?
  std::string get(const std::string& name) const;   ///< option value
  int get_int(const std::string& name) const;       ///< exits 2 on non-int
  double get_double(const std::string& name) const; ///< exits 2 on non-num
  /// Comma-separated option value split into items; empty when absent.
  std::vector<std::string> get_list(const std::string& name) const;
  const std::string& positional_value() const { return positional_value_; }

  const std::string& error() const { return error_; }
  std::string usage() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    bool present = false;
  };
  struct Option {
    std::string name;
    std::string value_name;
    std::string fallback;
    std::string help;
    std::string value;
  };

  Flag* find_flag(const std::string& name);
  Option* find_option(const std::string& name);
  const Option& require_option(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<Option> options_;
  bool has_positional_ = false;
  std::string positional_name_;
  std::string positional_help_;
  std::string positional_value_;
  std::string error_;
};

}  // namespace wp::cli
