#include "core/area.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wp {

namespace {
// NAND2-equivalent weights (typical standard-cell figures).
constexpr double kGatesPerFlop = 6.0;
constexpr double kGatesPerMux2 = 3.0;
constexpr double kGatesPerXor = 2.5;
constexpr double kGatesPerAnd = 1.0;
constexpr double kGatesPerCounterBit = 8.0;  // flop + increment logic
}  // namespace

WrapperArea estimate_wrapper_area(const WrapperGeometry& g) {
  WP_REQUIRE(g.num_inputs >= 1 && g.num_outputs >= 1,
             "wrapper needs at least one input and one output");
  WP_REQUIRE(g.fifo_depth >= 1, "FIFO depth must be >= 1");
  WrapperArea a;

  // Token buffers: depth × (payload + valid) flops per input channel.
  const double bits_per_entry = static_cast<double>(g.data_width + 1);
  a.fifo_storage = static_cast<double>(g.num_inputs) *
                   static_cast<double>(g.fifo_depth) * bits_per_entry *
                   kGatesPerFlop;

  // Read/write pointers (log2 depth bits each) + full/empty comparators.
  const double ptr_bits =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(g.fifo_depth))));
  a.fifo_control = static_cast<double>(g.num_inputs) *
                   (2.0 * ptr_bits * kGatesPerCounterBit +
                    2.0 * ptr_bits * kGatesPerXor + 4.0 * kGatesPerAnd);

  // One lag counter per input channel plus the firing counter.
  a.counters = static_cast<double>(g.num_inputs + 1) *
               static_cast<double>(g.counter_bits) * kGatesPerCounterBit;

  // Availability comparator per input (counter equality) + fire AND tree.
  a.synchronizer = static_cast<double>(g.num_inputs) *
                       (static_cast<double>(g.counter_bits) * kGatesPerXor +
                        2.0 * kGatesPerAnd) +
                   static_cast<double>(g.num_inputs + g.num_outputs) *
                       kGatesPerAnd;

  // Pending-output register + valid flop + τ mux per output channel.
  a.output_stage = static_cast<double>(g.num_outputs) *
                   (bits_per_entry * kGatesPerFlop +
                    static_cast<double>(g.data_width) * kGatesPerMux2);

  if (g.oracle) {
    // A small PLA over the state register and peeked control bits:
    // `oracle_terms` product terms of ~4 literals feeding one mask bit per
    // input channel. Matches the paper's "the effort was minimal".
    a.oracle_logic = static_cast<double>(g.oracle_terms) *
                         (4.0 * kGatesPerAnd + kGatesPerAnd) +
                     static_cast<double>(g.num_inputs) * kGatesPerAnd;
  }
  return a;
}

double estimate_relay_station_area(std::size_t data_width) {
  // Main + aux registers (payload + valid each) plus a 2-state FSM and the
  // stop/mux logic.
  const double bits_per_entry = static_cast<double>(data_width + 1);
  return 2.0 * bits_per_entry * kGatesPerFlop +
         static_cast<double>(data_width) * kGatesPerMux2 + 10.0;
}

double wrapper_overhead_ratio(const WrapperGeometry& geometry,
                              double ip_gates) {
  WP_REQUIRE(ip_gates > 0, "IP gate count must be positive");
  return estimate_wrapper_area(geometry).total() / ip_gates;
}

}  // namespace wp
