// Analytical gate-count model of the wrapper and relay-station hardware,
// standing in for the paper's 130 nm synthesis runs (§1: "the overhead was
// always less than 1% with respect to an IP of 100 kgates").
//
// Costs are expressed in NAND2-equivalent gates with the usual textbook
// weights (DFF ≈ 6, 2:1 mux ≈ 3 per bit, etc.). The absolute numbers are
// technology-independent estimates; the bench compares the *ratio* to the
// IP size, which is what the paper reports.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wp {

/// Geometry of one wrapped IP block's communication interface.
struct WrapperGeometry {
  std::size_t num_inputs = 2;       ///< input channels
  std::size_t num_outputs = 2;      ///< output channels
  std::size_t data_width = 32;      ///< payload bits per channel
  std::size_t fifo_depth = 2;       ///< tokens buffered per input channel
  std::size_t counter_bits = 8;     ///< lag counters (paper §1)
  bool oracle = false;              ///< WP2: add the oracle decision logic
  std::size_t oracle_terms = 8;     ///< product terms in the oracle PLA
};

/// NAND2-equivalent gate counts, broken down by function.
struct WrapperArea {
  double fifo_storage = 0;   ///< token buffers (payload + valid bits)
  double fifo_control = 0;   ///< pointers, full/empty logic
  double counters = 0;       ///< per-channel lag counters + firing counter
  double synchronizer = 0;   ///< availability comparators and fire AND-tree
  double output_stage = 0;   ///< pending-output registers + τ muxing
  double oracle_logic = 0;   ///< WP2 only
  double total() const {
    return fifo_storage + fifo_control + counters + synchronizer +
           output_stage + oracle_logic;
  }
};

/// Gate-count estimate for a wrapper with the given geometry.
WrapperArea estimate_wrapper_area(const WrapperGeometry& geometry);

/// Gate-count estimate for one relay station (2 registers + FSM) of the
/// given payload width.
double estimate_relay_station_area(std::size_t data_width);

/// Overhead ratio of a wrapper against an IP of `ip_gates` NAND2-equivalent
/// gates (the paper uses 100 kgates).
double wrapper_overhead_ratio(const WrapperGeometry& geometry,
                              double ip_gates);

}  // namespace wp
