#include "core/netlist_text.hpp"

#include <algorithm>

#include "core/procs.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace wp {

// ---------------------------------------------------------------------------
// ProcessRegistry
// ---------------------------------------------------------------------------

void ProcessRegistry::add(const std::string& type, ProcessBuilder builder) {
  WP_REQUIRE(static_cast<bool>(builder), "null process builder");
  WP_REQUIRE(builders_.find(type) == builders_.end(),
             "process type registered twice: " + type);
  builders_.emplace(type, std::move(builder));
}

bool ProcessRegistry::contains(const std::string& type) const {
  return builders_.count(type) != 0;
}

ProcessFactory ProcessRegistry::build(const std::string& type,
                                      const ProcessParams& params) const {
  auto it = builders_.find(type);
  WP_REQUIRE(it != builders_.end(),
             "unknown process type '" + type + "' (known: " +
                 join(types(), ", ") + ")");
  return it->second(params);
}

std::vector<std::string> ProcessRegistry::types() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) {
    (void)builder;
    names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Parameter helpers
// ---------------------------------------------------------------------------

long long param_int(const ProcessParams& params, const std::string& key,
                    long long fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : parse_int(it->second);
}

double param_double(const ProcessParams& params, const std::string& key,
                    double fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : parse_double(it->second);
}

long long param_int_required(const ProcessParams& params,
                             const std::string& key) {
  auto it = params.find(key);
  WP_REQUIRE(it != params.end(), "missing required parameter '" + key + "'");
  return parse_int(it->second);
}

// ---------------------------------------------------------------------------
// default_registry
// ---------------------------------------------------------------------------

ProcessRegistry default_registry() {
  ProcessRegistry registry;
  registry.add("counter", [](const ProcessParams& params) -> ProcessFactory {
    const auto start = static_cast<Word>(param_int(params, "start", 0));
    const auto stride = static_cast<Word>(param_int(params, "stride", 1));
    const auto limit =
        static_cast<std::uint64_t>(param_int(params, "limit", 0));
    return [start, stride, limit]() {
      return std::make_unique<CounterSource>("counter", start, stride,
                                             limit);
    };
  });
  registry.add("identity", [](const ProcessParams& params) -> ProcessFactory {
    const auto reset = static_cast<Word>(param_int(params, "reset", 0));
    return [reset]() {
      return std::make_unique<IdentityProcess>("identity", reset);
    };
  });
  registry.add("adder", [](const ProcessParams&) -> ProcessFactory {
    return []() { return std::make_unique<AdderProcess>("adder"); };
  });
  registry.add("accumulator", [](const ProcessParams&) -> ProcessFactory {
    return []() { return std::make_unique<AccumulatorProcess>("acc"); };
  });
  registry.add("dutycycle", [](const ProcessParams& params) -> ProcessFactory {
    const auto period =
        static_cast<std::uint64_t>(param_int_required(params, "period"));
    return [period]() {
      return std::make_unique<DutyCycleProcess>("duty", period);
    };
  });
  registry.add("sink", [](const ProcessParams& params) -> ProcessFactory {
    const auto limit =
        static_cast<std::uint64_t>(param_int(params, "limit", 0));
    return [limit]() { return std::make_unique<SinkProcess>("sink", limit); };
  });
  registry.add("randommoore", [](const ProcessParams& params) -> ProcessFactory {
    const auto inputs =
        static_cast<std::size_t>(param_int(params, "inputs", 2));
    const auto outputs =
        static_cast<std::size_t>(param_int(params, "outputs", 2));
    const auto states =
        static_cast<std::size_t>(param_int(params, "states", 4));
    const auto seed =
        static_cast<std::uint64_t>(param_int(params, "seed", 1));
    return [inputs, outputs, states, seed]() {
      Rng rng(seed);
      return std::make_unique<RandomMooreProcess>("moore", inputs, outputs,
                                                  states, rng);
    };
  });
  return registry;
}

// ---------------------------------------------------------------------------
// parse_system
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  WP_REQUIRE(false,
             "netlist error at line " + std::to_string(line) + ": " + msg);
  __builtin_unreachable();
}

/// Splits "proc.port" (exactly one dot).
std::pair<std::string, std::string> split_endpoint(const std::string& text,
                                                   int line) {
  const auto dot = text.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == text.size() ||
      text.find('.', dot + 1) != std::string::npos)
    fail(line, "expected <process>.<port>, got '" + text + "'");
  return {text.substr(0, dot), text.substr(dot + 1)};
}

}  // namespace

ParsedSystem parse_system(const std::string& text,
                          const ProcessRegistry& registry) {
  ParsedSystem parsed;
  int line_no = 0;
  int processes = 0;
  for (const auto& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "system") {
      if (tokens.size() != 2) fail(line_no, "system expects a name");
      parsed.name = tokens[1];
    } else if (tokens[0] == "process") {
      if (tokens.size() < 3)
        fail(line_no, "process expects <name> <type> [key=value ...]");
      const std::string& name = tokens[1];
      const std::string& type = tokens[2];
      ProcessParams params;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0)
          fail(line_no, "expected key=value, got '" + tokens[i] + "'");
        params[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
      }
      try {
        parsed.spec.add_process(name, registry.build(type, params));
      } catch (const ContractViolation& e) {
        fail(line_no, e.what());
      }
      ++processes;
    } else if (tokens[0] == "channel") {
      // channel a.out -> b.in [connection=label] [rs=n]
      if (tokens.size() < 4 || tokens[2] != "->")
        fail(line_no,
             "channel expects <from>.<port> -> <to>.<port> [options]");
      const auto [from, from_port] = split_endpoint(tokens[1], line_no);
      const auto [to, to_port] = split_endpoint(tokens[3], line_no);
      std::string connection;
      int rs = 0;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        if (starts_with(tokens[i], "connection=")) {
          connection = tokens[i].substr(11);
        } else if (starts_with(tokens[i], "rs=")) {
          rs = static_cast<int>(parse_int(tokens[i].substr(3)));
          if (rs < 0) fail(line_no, "rs must be >= 0");
        } else {
          fail(line_no, "unknown channel option '" + tokens[i] + "'");
        }
      }
      try {
        parsed.spec.add_channel(from, from_port, to, to_port, connection);
        if (rs > 0) {
          const auto& decl = parsed.spec.channels().back();
          parsed.spec.set_connection_rs(decl.connection, rs);
        }
      } catch (const ContractViolation& e) {
        fail(line_no, e.what());
      }
    } else if (tokens[0] == "rs") {
      if (tokens.size() != 3) fail(line_no, "rs expects <connection> <count>");
      try {
        parsed.spec.set_connection_rs(
            tokens[1], static_cast<int>(parse_int(tokens[2])));
      } catch (const ContractViolation& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  WP_REQUIRE(processes > 0, "netlist defines no processes");
  return parsed;
}

}  // namespace wp
