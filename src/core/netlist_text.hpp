// Textual system description: define a latency-insensitive system (its
// processes, channels, connection groups and relay-station counts) in a
// small netlist language instead of C++, so experiments can be scripted.
//
//   # three-stage loop, long feedback wire
//   system demo
//   process src  counter   start=5 stride=3
//   process duty dutycycle period=4
//   process echo identity  reset=0
//   channel src.out  -> duty.a
//   channel duty.out -> echo.in
//   channel echo.out -> duty.b  connection=loopback rs=2
//
// Process types come from a ProcessRegistry; default_registry() exposes
// the library blocks (counter, identity, adder, accumulator, dutycycle,
// sink, randommoore). Applications register their own types the same way.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/process.hpp"
#include "core/system.hpp"

namespace wp {

/// key=value parameters of one `process` line (values still textual).
using ProcessParams = std::map<std::string, std::string>;

/// Builds a fresh-instance factory from parameters; throws on bad/missing
/// parameters (with the offending key in the message).
using ProcessBuilder =
    std::function<ProcessFactory(const ProcessParams& params)>;

class ProcessRegistry {
 public:
  /// Registers a type; overwriting an existing name is an error.
  void add(const std::string& type, ProcessBuilder builder);

  bool contains(const std::string& type) const;
  ProcessFactory build(const std::string& type,
                       const ProcessParams& params) const;

  /// Sorted type names (for error messages and --help output).
  std::vector<std::string> types() const;

 private:
  std::map<std::string, ProcessBuilder> builders_;
};

/// The library blocks from core/procs.hpp.
ProcessRegistry default_registry();

struct ParsedSystem {
  std::string name;
  SystemSpec spec;
};

/// Parses the netlist language; throws wp::ContractViolation with a
/// line-numbered message on any error (unknown type, bad parameter,
/// duplicate process, unknown port, malformed channel, …).
ParsedSystem parse_system(const std::string& text,
                          const ProcessRegistry& registry);

// --- parameter helpers for ProcessBuilder implementations ---------------
long long param_int(const ProcessParams& params, const std::string& key,
                    long long fallback);
double param_double(const ProcessParams& params, const std::string& key,
                    double fallback);
/// Required variant: throws if the key is absent.
long long param_int_required(const ProcessParams& params,
                             const std::string& key);

}  // namespace wp
