#include "core/network.hpp"

#include "util/assert.hpp"

namespace wp {

Wire* Network::make_wire(std::string name) {
  wires_.emplace_back(std::move(name));
  return &wires_.back();
}

void Network::step() {
  for (auto& node : nodes_) node->eval(cycle_);
  for (auto& node : nodes_) node->commit(cycle_);
  ++cycle_;
}

std::uint64_t Network::run(std::uint64_t max_cycles,
                           const std::function<bool()>& stop) {
  std::uint64_t executed = 0;
  std::uint64_t idle = 0;
  while (executed < max_cycles) {
    if (stop && stop()) break;
    step();
    ++executed;
    if (watchdog_) {
      if (watchdog_()) {
        idle = 0;
      } else if (++idle >= watchdog_window_) {
        WP_CHECK(false, "deadlock watchdog: no progress for " +
                            std::to_string(idle) + " cycles at cycle " +
                            std::to_string(cycle_));
      }
    }
  }
  return executed;
}

void Network::arm_watchdog(std::function<bool()> progress,
                           std::uint64_t window) {
  WP_REQUIRE(window > 0, "watchdog window must be positive");
  watchdog_ = std::move(progress);
  watchdog_window_ = window;
}

void Network::reset() {
  for (auto& wire : wires_) wire.reset();
  for (auto& node : nodes_) node->reset();
  cycle_ = 0;
}

Wire* Network::wire_at(std::size_t index) {
  WP_REQUIRE(index < wires_.size(), "wire index out of range");
  return &wires_[index];
}

Node* Network::find(const std::string& name) const {
  for (const auto& node : nodes_)
    if (node->name() == name) return node.get();
  return nullptr;
}

}  // namespace wp
