// The clocked simulation kernel: owns nodes and wires and advances them with
// the two-phase (eval/commit) clock. Because every node is a Moore machine,
// phase-internal ordering is irrelevant and the kernel is trivially
// deterministic.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "core/wire.hpp"

namespace wp {

class Network {
 public:
  Network() = default;

  /// Creates a wire owned by the network (stable address).
  Wire* make_wire(std::string name = {});

  /// Adds a node; returns a borrowed pointer of the concrete type.
  template <typename T>
  T* add_node(std::unique_ptr<T> node) {
    T* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  /// Advances one clock cycle (eval all, then commit all).
  void step();

  /// Runs until `stop()` returns true or `max_cycles` elapse. Returns the
  /// number of cycles executed. Throws if the deadlock watchdog trips (no
  /// progress callback signal for `deadlock_window` cycles, if armed).
  std::uint64_t run(std::uint64_t max_cycles,
                    const std::function<bool()>& stop);

  /// Arms a watchdog: `progress()` is polled each cycle; if it returns false
  /// for `window` consecutive cycles, run() throws. Used by tests to turn
  /// protocol deadlocks into failures instead of timeouts.
  void arm_watchdog(std::function<bool()> progress, std::uint64_t window);

  /// Resets every node, every wire and the cycle counter.
  void reset();

  Cycle cycle() const { return cycle_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t wire_count() const { return wires_.size(); }

  /// Access to owned wires for instrumentation (e.g. VCD sampling).
  Wire* wire_at(std::size_t index);

  /// Finds a node by name; nullptr if absent.
  Node* find(const std::string& name) const;

 private:
  std::deque<Wire> wires_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Cycle cycle_ = 0;
  std::function<bool()> watchdog_;
  std::uint64_t watchdog_window_ = 0;
};

}  // namespace wp
