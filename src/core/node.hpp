// Base class for every clocked element of a latency-insensitive network:
// relay stations, shells, sources and sinks.
//
// The kernel advances the system with a two-phase clock:
//   eval(c)   — drive all output wires (token and stop lines) as pure
//               functions of registered state; must not read wires;
//   commit(c) — sample input wires and update registered state.
// Keeping every node Moore-style makes the network's behaviour independent
// of node ordering and mirrors the fully synchronous RTL of the paper.
#pragma once

#include <string>

#include "core/token.hpp"

namespace wp {

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Phase 1: drive output wires from registered state only.
  virtual void eval(Cycle cycle) = 0;

  /// Phase 2: sample input wires, update registered state.
  virtual void commit(Cycle cycle) = 0;

  /// Returns the node to its power-on state.
  virtual void reset() = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace wp
