#include "core/process.hpp"

#include "util/assert.hpp"

namespace wp {

std::size_t Process::input_index(std::string_view port) const {
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    if (inputs_[i].name == port) return i;
  WP_REQUIRE(false, "no such input port: " + std::string(port) + " on " +
                        name_);
  return 0;  // unreachable
}

std::size_t Process::output_index(std::string_view port) const {
  for (std::size_t i = 0; i < outputs_.size(); ++i)
    if (outputs_[i].name == port) return i;
  WP_REQUIRE(false, "no such output port: " + std::string(port) + " on " +
                        name_);
  return 0;  // unreachable
}

std::size_t Process::add_input(std::string port_name, Word reset_value) {
  WP_REQUIRE(inputs_.size() < 32, "at most 32 input ports per process");
  for (const auto& p : inputs_)
    WP_REQUIRE(p.name != port_name, "duplicate input port " + port_name);
  inputs_.push_back({std::move(port_name), reset_value});
  return inputs_.size() - 1;
}

std::size_t Process::add_output(std::string port_name, Word reset_value) {
  for (const auto& p : outputs_)
    WP_REQUIRE(p.name != port_name, "duplicate output port " + port_name);
  outputs_.push_back({std::move(port_name), reset_value});
  return outputs_.size() - 1;
}

}  // namespace wp
