// The pearl (IP block) interface: a synchronous Moore process with named
// input/output ports, plus the paper's "oracle" — the communication profile
// that tells the WP2 wrapper which inputs the next transition actually reads.
//
// Contract that makes WP1/WP2 equivalence hold (and that the test suite
// checks on every block):
//   * fire() is called once per firing (tag); it receives one word per input
//     port and must write one word per output port. In the golden system a
//     firing is simply a clock cycle.
//   * required() may inspect its own registered state and may *peek* at the
//     values of current-tag tokens that have already arrived. It must be
//     monotone (seeing more tokens never removes requirements) and sound:
//     fire()'s result must not depend on any input the final required set
//     excluded. The default requires every input — that is exactly the WP1
//     wrapper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/token.hpp"

namespace wp {

/// Bitmask over a process's input ports (bit i = input i). At most 32 ports.
using InputMask = std::uint32_t;

inline constexpr InputMask all_inputs_mask(std::size_t n) {
  return n >= 32 ? ~InputMask{0} : ((InputMask{1} << n) - 1);
}

/// A port declaration. reset_value is the word the corresponding golden
/// register holds at reset; it seeds the channel's single initial token.
struct PortSpec {
  std::string name;
  Word reset_value = 0;
};

/// What the oracle may look at: which current-tag tokens have arrived, and
/// their values (peeking is the paper's "processing signal" mechanism — e.g.
/// the ALU peeks at the opcode token from the CU to decide whether the
/// operand tokens from the RF are needed at all).
class PeekView {
 public:
  PeekView(const std::uint8_t* available, const Word* values, std::size_t n)
      : available_(available), values_(values), n_(n) {}

  std::size_t size() const { return n_; }

  bool available(std::size_t i) const {
    return i < n_ && available_[i] != 0;
  }

  /// Value of an arrived current-tag token; poison if not available.
  Word value(std::size_t i) const {
    return available(i) ? values_[i] : kPoisonWord;
  }

 private:
  const std::uint8_t* available_;
  const Word* values_;
  std::size_t n_;
};

class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<PortSpec>& inputs() const { return inputs_; }
  const std::vector<PortSpec>& outputs() const { return outputs_; }

  std::size_t input_index(std::string_view port) const;
  std::size_t output_index(std::string_view port) const;

  /// The oracle. Default: every input is required (strict synchronicity).
  virtual InputMask required(const PeekView& peek) const {
    (void)peek;
    return all_inputs_mask(inputs_.size());
  }

  /// One synchronous transition. `in` has one word per input port (words of
  /// inputs the oracle excluded are poison and must not be read); `out` must
  /// be fully written (one word per output port).
  virtual void fire(const Word* in, Word* out) = 0;

  /// Returns the process to its power-on state.
  virtual void reset() = 0;

  /// True once the process has reached a terminal state (used by the kernel
  /// to stop the clock; only meaningful for designated "halting" processes).
  virtual bool halted() const { return false; }

 protected:
  /// Builders used by subclasses' constructors.
  std::size_t add_input(std::string port_name, Word reset_value = 0);
  std::size_t add_output(std::string port_name, Word reset_value = 0);

 private:
  std::string name_;
  std::vector<PortSpec> inputs_;
  std::vector<PortSpec> outputs_;
};

/// Factory so a system description can be instantiated several times (once
/// per golden / WP1 / WP2 simulation) with fresh process state.
using ProcessFactory = std::function<std::unique_ptr<Process>()>;

}  // namespace wp
