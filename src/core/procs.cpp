#include "core/procs.hpp"

#include "util/assert.hpp"

namespace wp {

Word hash_mix(Word x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------

CounterSource::CounterSource(std::string name, Word start, Word stride,
                             std::uint64_t limit)
    : Process(std::move(name)), start_(start), stride_(stride),
      limit_(limit), next_(start) {
  add_output("out", start);
}

void CounterSource::fire(const Word* /*in*/, Word* out) {
  out[0] = next_;
  next_ += stride_;
  ++fired_;
}

void CounterSource::reset() {
  next_ = start_;
  fired_ = 0;
}

bool CounterSource::halted() const { return limit_ != 0 && fired_ >= limit_; }

// ---------------------------------------------------------------------------

IdentityProcess::IdentityProcess(std::string name, Word reset_out)
    : Process(std::move(name)) {
  add_input("in");
  add_output("out", reset_out);
}

void IdentityProcess::fire(const Word* in, Word* out) { out[0] = in[0]; }

// ---------------------------------------------------------------------------

AdderProcess::AdderProcess(std::string name) : Process(std::move(name)) {
  add_input("a");
  add_input("b");
  add_output("sum", 0);
}

void AdderProcess::fire(const Word* in, Word* out) { out[0] = in[0] + in[1]; }

// ---------------------------------------------------------------------------

AccumulatorProcess::AccumulatorProcess(std::string name)
    : Process(std::move(name)) {
  add_input("in");
  add_output("out", 0);
}

void AccumulatorProcess::fire(const Word* in, Word* out) {
  out[0] = acc_;
  acc_ += in[0];
}

// ---------------------------------------------------------------------------

SinkProcess::SinkProcess(std::string name, std::uint64_t limit)
    : Process(std::move(name)), limit_(limit) {
  add_input("in");
}

void SinkProcess::fire(const Word* in, Word* /*out*/) {
  received_.push_back(in[0]);
}

void SinkProcess::reset() { received_.clear(); }

bool SinkProcess::halted() const {
  return limit_ != 0 && received_.size() >= limit_;
}

// ---------------------------------------------------------------------------

DutyCycleProcess::DutyCycleProcess(std::string name, std::uint64_t period)
    : Process(std::move(name)), period_(period) {
  WP_REQUIRE(period_ >= 1, "duty-cycle period must be >= 1");
  add_input("a");
  add_input("b");
  add_output("out", 0);
}

InputMask DutyCycleProcess::required(const PeekView& /*peek*/) const {
  // Input b's token is read only on the firings where phase hits 0.
  return phase_ == 0 ? 0b11u : 0b01u;
}

void DutyCycleProcess::fire(const Word* in, Word* out) {
  out[0] = phase_ == 0 ? in[0] + in[1] : in[0];
  phase_ = (phase_ + 1) % period_;
}

// ---------------------------------------------------------------------------

RandomMooreProcess::RandomMooreProcess(std::string name,
                                       std::size_t num_inputs,
                                       std::size_t num_outputs,
                                       std::size_t num_states, Rng& rng,
                                       bool use_peek_gate)
    : Process(std::move(name)), use_peek_gate_(use_peek_gate) {
  // 32 is the InputMask width; scale-free topology hubs (gen/) get here
  // with fan-ins well past the old cap of 8.
  WP_REQUIRE(num_inputs >= 1 && num_inputs <= 32, "1..32 inputs supported");
  WP_REQUIRE(num_outputs >= 1, "need at least one output");
  WP_REQUIRE(num_states >= 1, "need at least one state");
  for (std::size_t i = 0; i < num_inputs; ++i)
    add_input("in" + std::to_string(i));
  for (std::size_t o = 0; o < num_outputs; ++o)
    add_output("out" + std::to_string(o),
               hash_mix(0xABCD0000 + o));  // distinctive reset values

  gate_input_ = static_cast<std::size_t>(rng.below(num_inputs));
  const InputMask all = all_inputs_mask(num_inputs);
  // Widen before the +1: at 32 inputs `all` is 0xFFFFFFFF and the uint32
  // sum would wrap to a zero bound.
  const std::uint64_t mask_bound = static_cast<std::uint64_t>(all) + 1;
  table_.resize(num_states);
  for (auto& entry : table_) {
    entry.base_mask = static_cast<InputMask>(rng.below(mask_bound));
    if (use_peek_gate_) entry.base_mask |= InputMask{1} << gate_input_;
    entry.extra_mask = static_cast<InputMask>(rng.below(mask_bound)) & all;
  }
}

InputMask RandomMooreProcess::final_mask(InputMask base,
                                         Word gate_value) const {
  InputMask mask = base;
  if (use_peek_gate_ && (gate_value & 1))
    mask |= table_[state_].extra_mask;
  return mask;
}

InputMask RandomMooreProcess::required(const PeekView& peek) const {
  const InputMask base = table_[state_].base_mask;
  if (!use_peek_gate_) return base;
  // Monotone growth: until the gate token is here, ask only for the base
  // set; once it is peekable, its low bit may add the extra mask.
  if (!peek.available(gate_input_)) return base;
  return final_mask(base, peek.value(gate_input_));
}

void RandomMooreProcess::fire(const Word* in, Word* out) {
  const InputMask base = table_[state_].base_mask;
  const Word gate_value = use_peek_gate_ ? in[gate_input_] : 0;
  const InputMask mask = final_mask(base, gate_value);

  // Digest exactly the inputs named by the final mask (oracle soundness).
  Word digest = hash_mix(static_cast<Word>(state_) * 0x51ED2701u + 17);
  for (std::size_t i = 0; i < inputs().size(); ++i)
    if ((mask >> i) & 1u) digest = hash_mix(digest ^ in[i] ^ (Word{i} << 56));

  for (std::size_t o = 0; o < outputs().size(); ++o)
    out[o] = hash_mix(digest + o);
  state_ = static_cast<std::size_t>(digest % table_.size());
}

}  // namespace wp
