// A small zoo of ready-made processes: token sources/sinks and arithmetic
// pipes for examples and unit tests, plus RandomMooreProcess — a randomly
// generated Moore machine with a *sound by construction* communication
// oracle, used by the property-based equivalence tests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "util/rng.hpp"

namespace wp {

/// Emits value, value+stride, value+2*stride, … on its single output "out".
/// Halts (optionally) after `limit` firings.
class CounterSource final : public Process {
 public:
  CounterSource(std::string name, Word start = 0, Word stride = 1,
                std::uint64_t limit = 0);

  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

 private:
  Word start_, stride_;
  std::uint64_t limit_;
  Word next_ = 0;
  std::uint64_t fired_ = 0;
};

/// Single-input single-output identity ("wire with a register").
class IdentityProcess final : public Process {
 public:
  explicit IdentityProcess(std::string name, Word reset_out = 0);
  void fire(const Word* in, Word* out) override;
  void reset() override {}
};

/// out = a + b each firing.
class AdderProcess final : public Process {
 public:
  explicit AdderProcess(std::string name);
  void fire(const Word* in, Word* out) override;
  void reset() override {}
};

/// Accumulator with feedback through the network: out = acc; acc += in.
/// Used to build explicit loops in the loop-formula experiments.
class AccumulatorProcess final : public Process {
 public:
  explicit AccumulatorProcess(std::string name);
  void fire(const Word* in, Word* out) override;
  void reset() override { acc_ = 0; }

 private:
  Word acc_ = 0;
};

/// Captures everything it receives; halts after `limit` firings.
class SinkProcess final : public Process {
 public:
  SinkProcess(std::string name, std::uint64_t limit = 0);
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

  const std::vector<Word>& received() const { return received_; }

 private:
  std::uint64_t limit_;
  std::vector<Word> received_;
};

/// A process that alternates between "reading" and "ignoring" its second
/// input with a fixed duty cycle: input "a" is always required, input "b"
/// only every `period`-th firing. The simplest system whose WP2 throughput
/// beats WP1 — used by unit tests and the quickstart example.
class DutyCycleProcess final : public Process {
 public:
  DutyCycleProcess(std::string name, std::uint64_t period);

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override { phase_ = 0; }

 private:
  std::uint64_t period_;
  std::uint64_t phase_ = 0;
};

/// A randomly generated Moore machine over `num_inputs` inputs and
/// `num_outputs` outputs with `num_states` states. Each state has a random
/// required-input mask; optionally, one designated *gate* input is peeked
/// and its low bit adds an extra mask (exercising the "processing signal"
/// path). fire() reads exactly the inputs of the final mask, so the oracle
/// is sound by construction; outputs and the next state are avalanche hashes
/// of (state, read inputs), so any protocol bug shows up as an equivalence
/// failure with overwhelming probability.
class RandomMooreProcess final : public Process {
 public:
  RandomMooreProcess(std::string name, std::size_t num_inputs,
                     std::size_t num_outputs, std::size_t num_states,
                     Rng& rng, bool use_peek_gate = true);

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override { state_ = 0; }

 private:
  InputMask final_mask(InputMask base, Word gate_value) const;

  struct StateEntry {
    InputMask base_mask = 0;
    InputMask extra_mask = 0;  // added when the gate input's low bit is set
  };

  std::vector<StateEntry> table_;
  std::size_t gate_input_ = 0;  // always in base_mask when gating is enabled
  bool use_peek_gate_;
  std::size_t state_ = 0;
};

/// Mixes 64-bit values (splitmix64 finalizer); shared by RandomMooreProcess
/// and tests that need an order-sensitive digest of a stream.
Word hash_mix(Word x);

}  // namespace wp
