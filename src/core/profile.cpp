#include "core/profile.hpp"

#include <algorithm>

#include "graph/cycles.hpp"
#include "util/assert.hpp"

namespace wp {

const InputProfile& CommunicationProfile::at(const std::string& process,
                                             const std::string& port) const {
  for (const auto& input : inputs)
    if (input.process == process && input.port == port) return input;
  WP_REQUIRE(false, "no profile entry for " + process + "." + port);
  return inputs.front();  // unreachable
}

CommunicationProfile profile_communication(const SystemSpec& spec,
                                           std::uint64_t max_cycles) {
  CommunicationProfile profile;
  std::map<std::pair<std::string, std::string>, std::size_t> index;

  GoldenSim golden(spec, false);
  std::vector<std::uint8_t> avail;  // in golden runs everything is present
  golden.set_pre_fire_observer([&](const std::string& name,
                                   const Process& process,
                                   const Word* inputs) {
    const std::size_t n = process.inputs().size();
    if (avail.size() < n) avail.assign(n, 1);
    const InputMask mask =
        process.required(PeekView(avail.data(), inputs, n));
    for (std::size_t i = 0; i < n; ++i) {
      const auto key = std::make_pair(name, process.inputs()[i].name);
      auto it = index.find(key);
      if (it == index.end()) {
        index.emplace(key, profile.inputs.size());
        profile.inputs.push_back({name, process.inputs()[i].name, 0, 0});
        it = index.find(key);
      }
      auto& entry = profile.inputs[it->second];
      ++entry.firings;
      if ((mask >> i) & 1u) ++entry.required;
    }
  });
  golden.run_until_halt(max_cycles);
  return profile;
}

std::vector<Wp2Estimate> estimate_wp2(
    const graph::Digraph& g, const CommunicationProfile& profile,
    const std::map<std::string, std::string>& edge_to_input) {
  std::vector<Wp2Estimate> estimates;
  for (const auto& cycle : graph::enumerate_cycles(g)) {
    Wp2Estimate est;
    est.loop = cycle_to_string(g, cycle);
    est.wp1 = cycle.throughput();
    est.excitation = 1.0;
    for (graph::EdgeId e : cycle.edges) {
      auto it = edge_to_input.find(g.edge(e).label);
      if (it == edge_to_input.end()) continue;  // treated as always excited
      const auto dot = it->second.find('.');
      WP_REQUIRE(dot != std::string::npos,
                 "edge_to_input values must be process.port");
      const auto& entry = profile.at(it->second.substr(0, dot),
                                     it->second.substr(dot + 1));
      est.excitation = std::min(est.excitation, entry.excitation_rate());
    }
    // Interpolate: a loop crossed only r of the time behaves as if its
    // extra latency were paid r of the time.
    const double m = static_cast<double>(cycle.tokens);
    const double n = static_cast<double>(cycle.relay_stations);
    est.wp2 = std::min(1.0, m / (m + n * est.excitation));
    estimates.push_back(std::move(est));
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const Wp2Estimate& a, const Wp2Estimate& b) {
              return a.wp2 < b.wp2;
            });
  return estimates;
}

}  // namespace wp
