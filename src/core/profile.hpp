// Communication-profile extraction (paper §Abstract: "takes advantage of a
// minimal knowledge of the IP's communication profile").
//
// The profiler runs the golden system and, before every firing, asks each
// process's oracle which inputs that transition reads. The per-input
// *excitation rate* (fraction of firings that require the input) is the
// communication profile: a rate near 1 means the WP2 wrapper cannot relax
// that channel (no gain over WP1); a low rate predicts a large WP2
// recovery when the channel is pipelined. predicted_wp2_throughput() turns
// the rates into a first-order throughput estimate per loop.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "graph/digraph.hpp"

namespace wp {

struct InputProfile {
  std::string process;
  std::string port;
  std::uint64_t firings = 0;
  std::uint64_t required = 0;

  /// Fraction of firings whose transition read this input.
  double excitation_rate() const {
    return firings == 0 ? 0.0
                        : static_cast<double>(required) /
                              static_cast<double>(firings);
  }
};

struct CommunicationProfile {
  std::vector<InputProfile> inputs;

  const InputProfile& at(const std::string& process,
                         const std::string& port) const;
};

/// Runs the golden system until halt (or max_cycles) with the profiling
/// observer attached and returns the measured profile.
CommunicationProfile profile_communication(const SystemSpec& spec,
                                           std::uint64_t max_cycles);

/// First-order WP2 throughput estimate of one loop: a loop of latency L
/// (processes + relay stations) whose most-relaxed crossing is excited with
/// rate r sustains roughly min(1, m / (m + n·r̂)) where r̂ interpolates
/// between "never excited" (loop invisible) and "always excited" (the WP1
/// bound m/(m+n)). Used to rank connections, not to replace simulation.
struct Wp2Estimate {
  std::string loop;
  double wp1 = 1.0;       ///< m/(m+n)
  double excitation = 1;  ///< min excitation rate along the loop
  double wp2 = 1.0;       ///< interpolated estimate
};

/// Per-loop estimates for a system graph whose edges are labelled with
/// "process.port" consumer endpoints found in the profile; edges without a
/// matching profile entry are treated as always-excited.
std::vector<Wp2Estimate> estimate_wp2(const graph::Digraph& g,
                                      const CommunicationProfile& profile,
                                      const std::map<std::string,
                                                     std::string>&
                                          edge_to_input);

}  // namespace wp
