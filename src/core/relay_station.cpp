#include "core/relay_station.hpp"

#include "util/assert.hpp"

namespace wp {

RelayStation::RelayStation(std::string name, Wire* in, Wire* out)
    : Node(std::move(name)), in_(in), out_(out) {
  WP_REQUIRE(in_ != nullptr && out_ != nullptr,
             "relay station requires both wires");
  WP_REQUIRE(in_ != out_, "relay station input and output must differ");
}

void RelayStation::eval(Cycle /*cycle*/) {
  out_->drive(main_);
  // Back-pressure: only when the auxiliary register is also full is the stop
  // propagated to the previous stage (paper §1).
  in_->drive_stop(aux_.valid);
}

void RelayStation::commit(Cycle /*cycle*/) {
  const bool stopped_down = out_->stop();
  // Incoming token is transferred to us iff we did not drive stop this cycle
  // (the line we drove equals aux_.valid, which is still our current state).
  const Token incoming =
      (in_->token().valid && !aux_.valid) ? in_->token() : Token::tau();

  if (main_.valid && stopped_down) {
    // Downstream held us: keep main, absorb any in-flight token into aux.
    ++stall_cycles_;
    if (incoming.valid) {
      WP_CHECK(!aux_.valid, "relay station auxiliary register overflow");
      aux_ = incoming;
    }
  } else {
    // Either main was empty or it has been consumed downstream this cycle.
    if (main_.valid) ++tokens_forwarded_;
    if (aux_.valid) {
      // Drain the skid buffer first; our stop was high so nothing arrives.
      WP_CHECK(!incoming.valid,
               "token arrived while stop was asserted (protocol violation)");
      main_ = aux_;
      aux_ = Token::tau();
    } else {
      main_ = incoming;
    }
  }
}

void RelayStation::reset() {
  main_ = Token::tau();
  aux_ = Token::tau();
  tokens_forwarded_ = 0;
  stall_cycles_ = 0;
}

int RelayStation::occupancy() const {
  return (main_.valid ? 1 : 0) + (aux_.valid ? 1 : 0);
}

}  // namespace wp
