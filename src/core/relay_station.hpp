// Relay station (RS): the wire-pipelining element of Carloni's
// latency-insensitive protocol, as used by the paper (§1): a pipeline
// register plus one auxiliary register so that a valid datum in flight when
// a stop arrives is not lost; when the auxiliary register is also full the
// stop is propagated to the previous relay station, up to the source.
//
// The FSM has three occupancies:
//   EMPTY (0 items)  — drives τ forward, stop low backward;
//   HALF  (1 item)   — drives the main register forward, stop low;
//   FULL  (2 items)  — drives main forward, asserts stop backward.
// A forward token is accepted in a cycle iff our stop line was low in that
// cycle; our own forward token is transferred iff the downstream stop line
// is low. Both rules use lines driven from registered state, so the stop
// chain is itself pipelined hop by hop — exactly the paper's behaviour.
#pragma once

#include "core/node.hpp"
#include "core/wire.hpp"

namespace wp {

class RelayStation final : public Node {
 public:
  /// in: wire from the upstream element; out: wire to the downstream one.
  RelayStation(std::string name, Wire* in, Wire* out);

  void eval(Cycle cycle) override;
  void commit(Cycle cycle) override;
  void reset() override;

  /// Number of buffered valid items (0, 1 or 2). Exposed for tests.
  int occupancy() const;

  /// Lifetime statistics, for the benches.
  std::uint64_t tokens_forwarded() const { return tokens_forwarded_; }
  std::uint64_t stall_cycles() const { return stall_cycles_; }

 private:
  Wire* in_;
  Wire* out_;

  Token main_ = Token::tau();  // drives the output
  Token aux_ = Token::tau();   // skid buffer used while stopped
  std::uint64_t tokens_forwarded_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace wp
