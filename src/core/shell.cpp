#include "core/shell.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wp {

Shell::Shell(std::string name, std::unique_ptr<Process> process,
             ShellOptions options)
    : Node(std::move(name)),
      process_(std::move(process)),
      options_(options) {
  WP_REQUIRE(process_ != nullptr, "shell requires a process");
  WP_REQUIRE(options_.fifo_capacity >= 1, "FIFO capacity must be >= 1");
  in_.resize(process_->inputs().size());
  for (auto& input : in_) input.fifo.set_capacity(options_.fifo_capacity);
  initial_seed_.resize(in_.size(), kPoisonWord);
  out_.resize(process_->outputs().size());
  avail_.resize(in_.size());
  peek_values_.resize(in_.size());
  fire_in_.resize(in_.size());
  fire_out_.resize(out_.size());
}

void Shell::connect_input(std::size_t port, Wire* wire, Word initial_value) {
  WP_REQUIRE(port < in_.size(), "input port index out of range");
  WP_REQUIRE(wire != nullptr, "null wire");
  WP_REQUIRE(in_[port].wire == nullptr,
             "input port connected twice: " + process_->inputs()[port].name);
  in_[port].wire = wire;
  initial_seed_[port] = initial_value;
  // The channel's single initial token: the golden register's reset value.
  in_[port].fifo.push_back({0, initial_value});
  in_[port].received = 1;
}

void Shell::add_output_wire(std::size_t port, Wire* wire) {
  WP_REQUIRE(port < out_.size(), "output port index out of range");
  WP_REQUIRE(wire != nullptr, "null wire");
  out_[port].wires.push_back(wire);
  out_[port].delivered.push_back(true);  // nothing pending yet
}

void Shell::set_fire_observer(FireObserver observer) {
  observer_ = std::move(observer);
}

void Shell::eval(Cycle /*cycle*/) {
  for (auto& input : in_) {
    WP_CHECK(input.wire != nullptr, "unconnected input port on " + name());
    input.stop_driven = input.fifo.size() >= options_.fifo_capacity;
    input.wire->drive_stop(input.stop_driven);
  }
  for (auto& output : out_) {
    for (std::size_t k = 0; k < output.wires.size(); ++k) {
      const bool must_drive = output.pending.valid && !output.delivered[k];
      output.wires[k]->drive(must_drive ? output.pending : Token::tau());
    }
  }
}

bool Shell::all_outputs_delivered() const {
  for (const auto& output : out_)
    if (output.pending.valid) return false;
  return true;
}

void Shell::commit(Cycle cycle) {
  // 1. Delivery bookkeeping: a pending token is transferred on each branch
  //    whose stop line is low this cycle.
  for (auto& output : out_) {
    if (!output.pending.valid) continue;
    bool all = true;
    for (std::size_t k = 0; k < output.wires.size(); ++k) {
      if (!output.delivered[k] && !output.wires[k]->stop())
        output.delivered[k] = true;
      all = all && output.delivered[k];
    }
    if (all) output.pending = Token::tau();
  }

  // 2. Accept arriving tokens. A token is transferred to us iff we drove the
  //    stop line low; tags are assigned by arrival order.
  for (auto& input : in_) {
    const Token& tok = input.wire->token();
    if (!tok.valid || input.stop_driven) continue;
    const Tag tag = input.received++;
    if (tag >= firing_counter_) {
      WP_CHECK(input.fifo.size() < options_.fifo_capacity,
               "input FIFO overflow on " + name());
      input.fifo.push_back({tag, tok.value});
    } else {
      // The process already advanced past this tag without reading the
      // channel (WP2 blindness): discard on arrival.
      ++stats_.discarded_tokens;
    }
  }

  // 3. Purge fronts that aged below the firing counter (they were skipped by
  //    the oracle in an earlier firing and arrived before it completed).
  for (auto& input : in_) {
    while (!input.fifo.empty() && input.fifo.front().tag < firing_counter_) {
      input.fifo.pop_front();
      ++stats_.discarded_tokens;
    }
  }

  try_fire(cycle);
}

void Shell::try_fire(Cycle cycle) {
  if (process_->halted()) return;

  if (!all_outputs_delivered()) {
    ++stats_.stalls_output;
    return;
  }

  // Availability of current-tag tokens.
  for (std::size_t i = 0; i < in_.size(); ++i) {
    const auto& fifo = in_[i].fifo;
    if (!fifo.empty()) {
      WP_CHECK(fifo.front().tag >= firing_counter_,
               "stale token survived purge on " + name());
      avail_[i] = fifo.front().tag == firing_counter_;
      peek_values_[i] = avail_[i] ? fifo.front().value : kPoisonWord;
    } else {
      avail_[i] = false;
      peek_values_[i] = kPoisonWord;
    }
  }

  InputMask required = all_inputs_mask(in_.size());
  if (options_.use_oracle) {
    const PeekView peek(avail_.data(), peek_values_.data(), in_.size());
    required = process_->required(peek);
  }

  for (std::size_t i = 0; i < in_.size(); ++i) {
    if ((required >> i) & 1u) {
      if (!avail_[i]) {
        ++stats_.stalls_input;
        return;  // a required current-tag token is missing: stall, emit τ
      }
    }
  }

  // Fire: build the input vector, consume current-tag tokens, transition.
  for (std::size_t i = 0; i < in_.size(); ++i) {
    const bool is_required = ((required >> i) & 1u) != 0;
    if (avail_[i]) {
      fire_in_[i] = (is_required || !options_.use_oracle ||
                     !options_.poison_unrequired)
                        ? in_[i].fifo.front().value
                        : kPoisonWord;
      in_[i].fifo.pop_front();  // tag consumed (or dead)
    } else {
      WP_CHECK(!is_required, "firing without a required input");
      fire_in_[i] = kPoisonWord;  // will arrive later; discarded on arrival
    }
  }

  process_->fire(fire_in_.data(), fire_out_.data());

  for (std::size_t o = 0; o < out_.size(); ++o) {
    out_[o].pending = Token::make(fire_out_[o]);
    std::fill(out_[o].delivered.begin(), out_[o].delivered.end(), false);
    if (out_[o].wires.empty()) out_[o].pending = Token::tau();  // dropped
  }

  const Tag tag = firing_counter_++;
  ++stats_.firings;
  if (observer_) observer_(cycle, tag, fire_out_.data());
}

void Shell::reset() {
  process_->reset();
  firing_counter_ = 0;
  stats_ = ShellStats{};
  for (std::size_t i = 0; i < in_.size(); ++i) {
    auto& input = in_[i];
    input.fifo.clear();
    if (input.wire != nullptr) {
      // Re-seed the initial token; its value was recorded at connect time as
      // the first FIFO entry, so keep it across resets.
      input.fifo.push_back({0, initial_seed_[i]});
      input.received = 1;
    } else {
      input.received = 0;
    }
    input.stop_driven = false;
  }
  for (auto& output : out_) {
    output.pending = Token::tau();
    std::fill(output.delivered.begin(), output.delivered.end(), true);
  }
}

std::size_t Shell::fifo_size(std::size_t port) const {
  WP_REQUIRE(port < in_.size(), "input port index out of range");
  return in_[port].fifo.size();
}

}  // namespace wp
