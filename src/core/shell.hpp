// The wrapper ("shell") that encloses an unmodified IP block — the paper's
// central object, in both variants:
//
//   WP1 (strict, Carloni-style): τ-filtered inputs are buffered in tagged
//   FIFOs; the process fires only when *all* inputs carrying the current tag
//   are present; on a stall, τ is emitted on every output.
//
//   WP2 (this paper): an oracle — Process::required(), possibly peeking at
//   already-arrived current-tag tokens ("processing signals") — names the
//   inputs the next transition actually reads. The shell fires as soon as
//   those are present; tokens whose tag is older than the firing counter are
//   discarded, which is safe because the process was blind to them.
//
// Tags never travel on wires: each input keeps a received counter (the k-th
// valid token on a channel has tag k) and the shell keeps a firing counter,
// per the paper's "initialized counter that records the lag".
//
// Finite FIFOs create back-pressure: the shell asserts stop on an input when
// its FIFO is full; relay stations propagate the stop toward the source.
// Each channel carries exactly one initial token (the reset value of the
// producer's golden output register), which gives the marked-graph semantics
// behind the paper's Th = m/(m+n) loop formula.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/node.hpp"
#include "core/process.hpp"
#include "core/token_ring.hpp"
#include "core/wire.hpp"

namespace wp {

struct ShellOptions {
  /// false → WP1 strict wrapper; true → WP2 wrapper with oracle.
  bool use_oracle = false;
  /// Input FIFO capacity in tokens (≥ 1). Back-pressure point.
  std::size_t fifo_capacity = 16;
  /// When using the oracle, pass poison instead of the real value for
  /// available-but-not-required inputs, so an unsound oracle (a transition
  /// that reads an input it did not request) diverges loudly in equivalence
  /// tests instead of silently working.
  bool poison_unrequired = true;
};

/// Per-shell statistics, reported by the benches.
struct ShellStats {
  std::uint64_t firings = 0;           ///< completed transitions
  std::uint64_t stalls_input = 0;      ///< cycles stalled waiting for tokens
  std::uint64_t stalls_output = 0;     ///< cycles stalled by back-pressure
  std::uint64_t discarded_tokens = 0;  ///< stale tokens dropped (WP2 only)
};

class Shell final : public Node {
 public:
  Shell(std::string name, std::unique_ptr<Process> process,
        ShellOptions options);

  /// Connects input port `port` to `wire`. `initial_value` is the reset
  /// value of the producing golden register; it seeds the channel's single
  /// initial token (tag 0). Every input must be connected exactly once.
  void connect_input(std::size_t port, Wire* wire, Word initial_value);

  /// Adds a fan-out branch of output port `port`. A fired token counts as
  /// delivered only once every branch has accepted it. Ports with no branch
  /// are silently dropped.
  void add_output_wire(std::size_t port, Wire* wire);

  /// Called after every firing with (cycle, tag, output words).
  using FireObserver =
      std::function<void(Cycle cycle, Tag tag, const Word* outs)>;
  void set_fire_observer(FireObserver observer);

  void eval(Cycle cycle) override;
  void commit(Cycle cycle) override;
  void reset() override;

  const Process& process() const { return *process_; }
  Process& process() { return *process_; }
  const ShellStats& stats() const { return stats_; }
  Tag firing_counter() const { return firing_counter_; }
  bool halted() const { return process_->halted(); }

  /// Current occupancy of one input FIFO (tests / ablation).
  std::size_t fifo_size(std::size_t port) const;

 private:
  struct InputState {
    Wire* wire = nullptr;
    TokenRing fifo;            // preallocated ring: no allocation per token
    Tag received = 0;          // tags handed out so far on this channel
    bool stop_driven = false;  // what we drove on the stop line
  };
  struct OutputState {
    std::vector<Wire*> wires;
    std::vector<bool> delivered;  // per fan-out branch
    Token pending = Token::tau(); // valid until all branches delivered
  };

  bool all_outputs_delivered() const;
  void try_fire(Cycle cycle);

  std::unique_ptr<Process> process_;
  ShellOptions options_;
  std::vector<InputState> in_;
  std::vector<Word> initial_seed_;  // per input: the channel's initial token
  std::vector<OutputState> out_;
  Tag firing_counter_ = 0;
  ShellStats stats_;
  FireObserver observer_;

  // scratch buffers reused across firings
  std::vector<std::uint8_t> avail_;
  std::vector<Word> peek_values_;
  std::vector<Word> fire_in_;
  std::vector<Word> fire_out_;
};

}  // namespace wp
