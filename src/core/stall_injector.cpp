#include "core/stall_injector.hpp"

#include "util/assert.hpp"

namespace wp {

StallInjector::StallInjector(std::string name, Wire* in, Wire* out,
                             double stall_probability, std::uint64_t seed)
    : Node(std::move(name)),
      in_(in),
      out_(out),
      stall_probability_(stall_probability),
      seed_(seed),
      rng_(seed) {
  WP_REQUIRE(in_ != nullptr && out_ != nullptr, "injector requires wires");
  WP_REQUIRE(in_ != out_, "injector input and output must differ");
  WP_REQUIRE(stall_probability >= 0.0 && stall_probability <= 1.0,
             "stall probability must be in [0, 1]");
}

void StallInjector::eval(Cycle /*cycle*/) {
  // A relay station that sometimes pretends its consumer stopped: while
  // "moody" it withholds the main register and lets the auxiliary one
  // absorb the in-flight token, so no token is ever lost. At probability 0
  // it behaves as exactly one extra relay station.
  stalling_ = rng_.chance(stall_probability_);
  if (stalling_) ++injected_stalls_;
  out_->drive(stalling_ ? Token::tau() : main_);
  in_->drive_stop(aux_.valid);
}

void StallInjector::commit(Cycle /*cycle*/) {
  const bool stopped_down = out_->stop() || stalling_;
  const Token incoming =
      (in_->token().valid && !aux_.valid) ? in_->token() : Token::tau();

  if (main_.valid && stopped_down) {
    if (incoming.valid) {
      WP_CHECK(!aux_.valid, "stall injector auxiliary register overflow");
      aux_ = incoming;
    }
  } else {
    if (main_.valid) ++tokens_forwarded_;
    if (aux_.valid) {
      WP_CHECK(!incoming.valid,
               "token arrived while stop was asserted (protocol violation)");
      main_ = aux_;
      aux_ = Token::tau();
    } else {
      main_ = incoming;
    }
  }
}

void StallInjector::reset() {
  main_ = Token::tau();
  aux_ = Token::tau();
  stalling_ = false;
  injected_stalls_ = 0;
  tokens_forwarded_ = 0;
  rng_ = Rng(seed_);
}

}  // namespace wp
