// Congestion / latency-noise injection: a pass-through node that randomly
// asserts stop toward its producer and withholds its token, emulating
// crossbar congestion, voltage-droop throttling or any other source of
// latency variation.
//
// Latency-insensitive theory promises functional correctness under *any*
// latency variation; splicing injectors into channels and re-checking
// τ-filtered equivalence turns that promise into an executable property.
#pragma once

#include "core/node.hpp"
#include "core/wire.hpp"
#include "util/rng.hpp"

namespace wp {

class StallInjector final : public Node {
 public:
  /// Forwards in → out like a relay station (one cycle of latency, two
  /// registers, lossless), but in any cycle additionally pretends its
  /// consumer stopped with probability `stall_probability`. At probability
  /// zero it is exactly one extra relay station.
  StallInjector(std::string name, Wire* in, Wire* out,
                double stall_probability, std::uint64_t seed);

  void eval(Cycle cycle) override;
  void commit(Cycle cycle) override;
  void reset() override;

  std::uint64_t injected_stalls() const { return injected_stalls_; }
  std::uint64_t tokens_forwarded() const { return tokens_forwarded_; }

 private:
  Wire* in_;
  Wire* out_;
  double stall_probability_;
  std::uint64_t seed_;
  Rng rng_;

  Token main_ = Token::tau();  // forwarding register (as in a relay station)
  Token aux_ = Token::tau();   // skid buffer protecting in-flight tokens
  bool stalling_ = false;      // this cycle's injected virtual stop
  std::uint64_t injected_stalls_ = 0;
  std::uint64_t tokens_forwarded_ = 0;
};

}  // namespace wp
