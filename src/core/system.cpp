#include "core/system.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/relay_station.hpp"
#include "core/stall_injector.hpp"
#include "util/rng.hpp"
#include "util/assert.hpp"

namespace wp {

// ---------------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------------

EquivalenceResult check_equivalence(const Trace& golden, const Trace& wp) {
  EquivalenceResult result;
  for (const auto& [stream, golden_values] : golden) {
    auto it = wp.find(stream);
    if (it == wp.end()) continue;  // stream not observed in the WP run
    const auto& wp_values = it->second;
    const std::size_t n = std::min(golden_values.size(), wp_values.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (golden_values[k] != wp_values[k]) {
        result.equivalent = false;
        std::ostringstream os;
        os << "stream " << stream << " diverges at tag " << k << ": golden="
           << golden_values[k] << " wp=" << wp_values[k];
        result.detail = os.str();
        return result;
      }
    }
    result.events_checked += n;
  }
  return result;
}

// ---------------------------------------------------------------------------
// SystemSpec
// ---------------------------------------------------------------------------

void SystemSpec::add_process(std::string name, ProcessFactory factory) {
  WP_REQUIRE(static_cast<bool>(factory), "null process factory");
  WP_REQUIRE(factories_.find(name) == factories_.end(),
             "duplicate process name: " + name);
  names_.push_back(name);
  factories_.emplace(std::move(name), std::move(factory));
}

void SystemSpec::add_channel(const std::string& from,
                             const std::string& from_port,
                             const std::string& to,
                             const std::string& to_port,
                             std::string connection) {
  WP_REQUIRE(factories_.count(from) == 1, "unknown process: " + from);
  WP_REQUIRE(factories_.count(to) == 1, "unknown process: " + to);
  if (connection.empty()) connection = from + "-" + to;
  channels_.push_back({from, from_port, to, to_port, std::move(connection), 0});
}

void SystemSpec::set_connection_rs(const std::string& connection, int count) {
  WP_REQUIRE(count >= 0, "relay station count must be non-negative");
  bool found = false;
  for (auto& ch : channels_) {
    if (ch.connection == connection) {
      ch.relay_stations = count;
      found = true;
    }
  }
  WP_REQUIRE(found, "unknown connection: " + connection);
}

void SystemSpec::set_all_rs(int count) {
  WP_REQUIRE(count >= 0, "relay station count must be non-negative");
  for (auto& ch : channels_) ch.relay_stations = count;
}

void SystemSpec::set_rs_map(const std::map<std::string, int>& counts) {
  for (auto& ch : channels_) {
    auto it = counts.find(ch.connection);
    ch.relay_stations = it == counts.end() ? 0 : it->second;
  }
  for (const auto& [name, count] : counts) {
    (void)count;
    WP_REQUIRE(std::any_of(channels_.begin(), channels_.end(),
                           [&](const ChannelDecl& ch) {
                             return ch.connection == name;
                           }),
               "unknown connection in RS map: " + name);
  }
}

std::vector<std::string> SystemSpec::connections() const {
  std::set<std::string> names;
  for (const auto& ch : channels_) names.insert(ch.connection);
  return {names.begin(), names.end()};
}

std::unique_ptr<Process> SystemSpec::instantiate(
    const std::string& name) const {
  auto it = factories_.find(name);
  WP_REQUIRE(it != factories_.end(), "unknown process: " + name);
  auto process = it->second();
  WP_ENSURE(process != nullptr, "factory returned null for " + name);
  return process;
}

// ---------------------------------------------------------------------------
// LID build
// ---------------------------------------------------------------------------

LidSystem build_lid(const SystemSpec& spec, const ShellOptions& options,
                    bool record_trace, const NoiseOptions& noise) {
  WP_REQUIRE(noise.stall_probability >= 0.0 &&
                 noise.stall_probability <= 1.0,
             "stall probability must be in [0, 1]");
  LidSystem lid;
  lid.network = std::make_unique<Network>();
  Rng noise_rng(noise.seed);

  for (const auto& name : spec.process_names()) {
    auto process = spec.instantiate(name);
    auto shell =
        std::make_unique<Shell>(name, std::move(process), options);
    lid.shells[name] = lid.network->add_node(std::move(shell));
  }

  for (const auto& ch : spec.channels()) {
    Shell* from = lid.shells.at(ch.from);
    Shell* to = lid.shells.at(ch.to);
    const std::size_t out_port = from->process().output_index(ch.from_port);
    const std::size_t in_port = to->process().input_index(ch.to_port);
    const Word seed = from->process().outputs()[out_port].reset_value;

    // Wire chain: from → RS_1 → … → RS_n → to.
    const std::string base =
        ch.from + "." + ch.from_port + "->" + ch.to + "." + ch.to_port;
    Wire* head = lid.network->make_wire(base + "#0");
    from->add_output_wire(out_port, head);
    Wire* tail = head;
    for (int k = 0; k < ch.relay_stations; ++k) {
      Wire* next = lid.network->make_wire(base + "#" + std::to_string(k + 1));
      lid.network->add_node(std::make_unique<RelayStation>(
          base + ".rs" + std::to_string(k), tail, next));
      tail = next;
    }
    if (noise.stall_probability > 0.0) {
      Wire* next = lid.network->make_wire(base + "#noise");
      lid.network->add_node(std::make_unique<StallInjector>(
          base + ".noise", tail, next, noise.stall_probability,
          noise_rng()));
      tail = next;
    }
    to->connect_input(in_port, tail, seed);
  }

  if (record_trace) {
    for (auto& [name, shell] : lid.shells) {
      Shell* s = shell;
      Trace* trace = &lid.trace;
      const auto& outs = s->process().outputs();
      std::vector<std::string> keys;
      keys.reserve(outs.size());
      for (const auto& port : outs) keys.push_back(name + "." + port.name);
      s->set_fire_observer(
          [trace, keys](Cycle, Tag, const Word* values) {
            for (std::size_t o = 0; o < keys.size(); ++o)
              (*trace)[keys[o]].push_back(values[o]);
          });
    }
  }

  return lid;
}

std::uint64_t LidSystem::total_firings() const {
  std::uint64_t total = 0;
  for (const auto& [name, shell] : shells) {
    (void)name;
    total += shell->stats().firings;
  }
  return total;
}

std::uint64_t LidSystem::run_until_halt(std::uint64_t max_cycles,
                                        std::uint64_t grace) {
  std::uint64_t last_firings = 0;
  network->arm_watchdog(
      [this, &last_firings]() {
        const std::uint64_t now = total_firings();
        const bool progressed = now != last_firings;
        last_firings = now;
        return progressed;
      },
      /*window=*/100000);
  const std::uint64_t halt_cycle =
      network->run(max_cycles, [this]() {
        for (const auto& [name, shell] : shells) {
          (void)name;
          if (shell->halted()) return true;
        }
        return false;
      });
  for (std::uint64_t i = 0; i < grace; ++i) network->step();
  return halt_cycle;
}

// ---------------------------------------------------------------------------
// GoldenSim
// ---------------------------------------------------------------------------

GoldenSim::GoldenSim(const SystemSpec& spec, bool record_trace)
    : record_trace_(record_trace) {
  std::map<std::string, std::size_t> index;
  for (const auto& name : spec.process_names()) {
    Proc p;
    p.name = name;
    p.process = spec.instantiate(name);
    p.regs.reserve(p.process->outputs().size());
    for (const auto& port : p.process->outputs())
      p.regs.push_back(port.reset_value);
    p.next_regs = p.regs;
    p.sources.resize(p.process->inputs().size());
    p.in_buf.resize(p.process->inputs().size());
    index[name] = procs_.size();
    procs_.push_back(std::move(p));
  }
  for (const auto& ch : spec.channels()) {
    Proc& to = procs_[index.at(ch.to)];
    const Proc& from = procs_[index.at(ch.from)];
    const std::size_t in_port = to.process->input_index(ch.to_port);
    const std::size_t out_port = from.process->output_index(ch.from_port);
    WP_REQUIRE(!to.sources[in_port].has_value(),
               "input connected twice: " + ch.to + "." + ch.to_port);
    to.sources[in_port] = {index.at(ch.from), out_port};
  }
}

void GoldenSim::step() {
  for (auto& p : procs_) {
    for (std::size_t i = 0; i < p.sources.size(); ++i) {
      if (p.sources[i].has_value()) {
        const auto [src, port] = *p.sources[i];
        p.in_buf[i] = procs_[src].regs[port];
      } else {
        p.in_buf[i] = p.process->inputs()[i].reset_value;
      }
    }
    if (pre_fire_) pre_fire_(p.name, *p.process, p.in_buf.data());
    p.process->fire(p.in_buf.data(), p.next_regs.data());
    if (record_trace_) {
      for (std::size_t o = 0; o < p.next_regs.size(); ++o)
        trace_[p.name + "." + p.process->outputs()[o].name].push_back(
            p.next_regs[o]);
    }
  }
  for (auto& p : procs_) p.regs = p.next_regs;
  ++cycle_;
}

std::uint64_t GoldenSim::run_until_halt(std::uint64_t max_cycles) {
  std::uint64_t executed = 0;
  while (executed < max_cycles && !halted()) {
    step();
    ++executed;
  }
  return executed;
}

bool GoldenSim::halted() const {
  for (const auto& p : procs_)
    if (p.process->halted()) return true;
  return false;
}

void GoldenSim::set_pre_fire_observer(PreFireObserver observer) {
  pre_fire_ = std::move(observer);
}

const Process& GoldenSim::process(const std::string& name) const {
  for (const auto& p : procs_)
    if (p.name == name) return *p.process;
  WP_REQUIRE(false, "unknown process: " + name);
  return *procs_.front().process;  // unreachable
}

}  // namespace wp
