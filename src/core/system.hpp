// System-level description and the three ways to execute it:
//   * GoldenSim      — the original fully synchronous system (no wrappers);
//   * build_lid(...) — the wire-pipelined system: every process enclosed in
//                      a Shell (WP1 or WP2) and every channel segmented by
//                      its configured number of relay stations.
//
// A SystemSpec is instantiated afresh for every run (ProcessFactory), so the
// golden, WP1 and WP2 executions never share mutable state.
//
// Channels belong to named *connections* (default "FROM-TO"): the physical
// link of the paper's Table 1. Setting the relay-station count of a
// connection applies to every channel in it — which is how the bidirectional
// CU-IC bundle of the case study gets relay stations on both the address and
// the instruction wire from a single table row.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/process.hpp"
#include "core/shell.hpp"

namespace wp {

/// Execution trace: for each "process.port" stream, the sequence of valid
/// values in tag order (τ symbols carry no information and are not stored —
/// this is exactly the τ-filtering of the paper's equivalence definition).
using Trace = std::map<std::string, std::vector<Word>>;

/// Result of comparing two τ-filtered traces up to the shared prefix.
struct EquivalenceResult {
  bool equivalent = true;
  std::uint64_t events_checked = 0;
  std::string detail;  // first mismatch, if any
};

/// Checks N-equivalence (paper §1): for every stream present in both traces,
/// the first min(|a|,|b|) values must agree.
EquivalenceResult check_equivalence(const Trace& golden, const Trace& wp);

class SystemSpec {
 public:
  struct ChannelDecl {
    std::string from, from_port, to, to_port;
    std::string connection;  // Table-1-style link name, e.g. "CU-RF"
    int relay_stations = 0;
  };

  /// Registers a process; the factory must yield a fresh instance each call.
  void add_process(std::string name, ProcessFactory factory);

  /// Declares a channel from.from_port → to.to_port. `connection` groups
  /// channels into one physical link (defaults to "FROM-TO").
  void add_channel(const std::string& from, const std::string& from_port,
                   const std::string& to, const std::string& to_port,
                   std::string connection = {});

  /// Sets the relay-station count of every channel of a connection.
  void set_connection_rs(const std::string& connection, int count);

  /// Sets every connection's relay-station count.
  void set_all_rs(int count);

  /// Per-connection counts, e.g. {{"CU-IC", 1}, ...}; missing names → 0.
  void set_rs_map(const std::map<std::string, int>& counts);

  /// Sorted list of distinct connection names.
  std::vector<std::string> connections() const;

  const std::vector<ChannelDecl>& channels() const { return channels_; }
  const std::vector<std::string>& process_names() const { return names_; }

  std::unique_ptr<Process> instantiate(const std::string& name) const;

 private:
  friend class GoldenSim;
  friend struct LidSystem;

  std::vector<std::string> names_;
  std::map<std::string, ProcessFactory> factories_;
  std::vector<ChannelDecl> channels_;
};

/// The wire-pipelined instantiation: a Network plus name → shell map.
struct LidSystem {
  std::unique_ptr<Network> network;
  std::map<std::string, Shell*> shells;
  Trace trace;  // populated while running if tracing was requested

  /// Runs until any shell's process halts (or max_cycles elapse), then runs
  /// `grace` further cycles so in-flight tokens (e.g. trailing stores that
  /// lag the halting block by the relay-station latency) drain. Returns the
  /// cycle at which the halt was observed — the Table-1 "Cycles" metric.
  std::uint64_t run_until_halt(std::uint64_t max_cycles,
                               std::uint64_t grace = 256);

  /// Sum of firings over all shells (used by the deadlock watchdog).
  std::uint64_t total_firings() const;
};

/// Latency-noise injection applied at build time: when stall_probability is
/// positive, one StallInjector is spliced into every channel (adding one
/// relay-station-equivalent latency each), emulating congestion. The LID
/// protocol must keep the system equivalent under any such noise.
struct NoiseOptions {
  double stall_probability = 0.0;
  std::uint64_t seed = 1;
};

/// Builds the LID network: shells per process (WP1 if !options.use_oracle,
/// WP2 otherwise), relay-station chains per channel, initial tokens seeded
/// from the producers' output reset values. If `record_trace`, every firing
/// appends its outputs to lid.trace.
LidSystem build_lid(const SystemSpec& spec, const ShellOptions& options,
                    bool record_trace = false,
                    const NoiseOptions& noise = {});

/// Reference simulator of the original synchronous system: every process
/// fires every cycle with all inputs (ideal zero-delay wiring discipline,
/// one register per channel).
class GoldenSim {
 public:
  explicit GoldenSim(const SystemSpec& spec, bool record_trace = false);

  /// Advances one clock cycle.
  void step();

  /// Runs until any process halts or max_cycles elapse; returns cycles run.
  std::uint64_t run_until_halt(std::uint64_t max_cycles);

  Cycle cycle() const { return cycle_; }
  bool halted() const;
  const Trace& trace() const { return trace_; }

  const Process& process(const std::string& name) const;

  /// Called immediately before every fire() with the gathered input words;
  /// instrumentation (e.g. the communication profiler) hangs off this.
  using PreFireObserver = std::function<void(
      const std::string& name, const Process& process, const Word* inputs)>;
  void set_pre_fire_observer(PreFireObserver observer);

 private:
  struct Proc {
    std::string name;
    std::unique_ptr<Process> process;
    std::vector<Word> regs;       // output registers (current cycle values)
    std::vector<Word> next_regs;  // being written this cycle
    // For each input port: (producer index, producer output port) or nullopt
    // for unconnected inputs (which then read their own reset value).
    std::vector<std::optional<std::pair<std::size_t, std::size_t>>> sources;
    std::vector<Word> in_buf;
  };

  std::vector<Proc> procs_;
  Cycle cycle_ = 0;
  bool record_trace_ = false;
  Trace trace_;
  PreFireObserver pre_fire_;
};

}  // namespace wp
