#include "core/token.hpp"

namespace wp {

std::ostream& operator<<(std::ostream& os, const Token& t) {
  if (!t.valid) return os << "τ";
  return os << t.value;
}

}  // namespace wp
