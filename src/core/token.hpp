// Tagged-signal model of the paper's §1: a signal is a sequence of events
// (v, t); wire pipelining interleaves the valid events with void symbols τ.
//
// On a physical channel only the value and a valid bit travel ("it is not
// necessary to send the tag together with the signal, but only a bit
// indicating its validity"); tags are reconstructed by per-channel counters
// because valid events stay ordered.
#pragma once

#include <cstdint>
#include <ostream>

namespace wp {

/// Payload word carried by every channel. 64 bits is wide enough to pack any
/// of the case-study bundles (instruction words, operands, control).
using Word = std::uint64_t;

/// Clock-cycle index of the simulation kernel.
using Cycle = std::uint64_t;

/// Firing tag: the k-th valid event on a channel has tag k.
using Tag = std::uint64_t;

/// Pattern written into the value of void tokens and of unread inputs so
/// accidental reads are conspicuous in traces and tests.
inline constexpr Word kPoisonWord = 0xDEADBEEFDEADBEEFULL;

/// One event on a wire: either a valid value or the void symbol τ.
struct Token {
  Word value = kPoisonWord;
  bool valid = false;

  /// The void symbol τ.
  static constexpr Token tau() { return Token{}; }

  /// A valid event carrying v.
  static constexpr Token make(Word v) { return Token{v, true}; }

  friend bool operator==(const Token& a, const Token& b) {
    if (a.valid != b.valid) return false;
    return !a.valid || a.value == b.value;  // all τ compare equal
  }
};

std::ostream& operator<<(std::ostream& os, const Token& t);

/// A valid token annotated with its reconstructed tag, as stored in the
/// shells' input queues.
struct TaggedToken {
  Tag tag = 0;
  Word value = kPoisonWord;
};

}  // namespace wp
