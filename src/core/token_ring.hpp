// Fixed-capacity ring of tagged tokens — the shells' input FIFO.
//
// The original implementation was a std::vector with erase(begin()) on
// every consumed token: each handoff between shell stages paid an O(depth)
// memmove, and the vector's growth path put heap allocation on the token
// path. Under the streaming harness (millions of tokens through a
// multi-stage graph) that allocation rate is the difference between a
// steady-state pipeline and a GC-like churn. The ring allocates its
// storage once, at capacity, when the shell is built; push/pop are index
// arithmetic, and a token is never moved after it is written — the
// zero-copy handoff the heavy-traffic harness measures.
#pragma once

#include <cstddef>
#include <vector>

#include "core/token.hpp"
#include "util/assert.hpp"

namespace wp {

class TokenRing {
 public:
  TokenRing() = default;

  /// Allocates storage for exactly `capacity` tokens (the shell's FIFO
  /// bound). Called once at build time; clears any content.
  void set_capacity(std::size_t capacity) {
    WP_REQUIRE(capacity >= 1, "token ring capacity must be >= 1");
    buffer_.assign(capacity, TaggedToken{});
    head_ = 0;
    size_ = 0;
  }

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buffer_.size(); }

  const TaggedToken& front() const {
    WP_CHECK(size_ > 0, "front() on an empty token ring");
    return buffer_[head_];
  }

  void push_back(const TaggedToken& token) {
    WP_CHECK(size_ < buffer_.size(), "token ring overflow");
    buffer_[index_of(size_)] = token;
    ++size_;
  }

  void pop_front() {
    WP_CHECK(size_ > 0, "pop_front() on an empty token ring");
    head_ = head_ + 1 == buffer_.size() ? 0 : head_ + 1;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t index_of(std::size_t offset) const {
    const std::size_t i = head_ + offset;
    return i >= buffer_.size() ? i - buffer_.size() : i;
  }

  std::vector<TaggedToken> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wp
