#include "core/vcd.hpp"

#include <bitset>

#include "util/assert.hpp"

namespace wp {

VcdWriter::VcdWriter(std::ostream& os, std::string module)
    : os_(os), module_(std::move(module)) {}

std::string VcdWriter::make_id(std::size_t index) {
  // Printable VCD identifier characters: '!' (33) .. '~' (126).
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::add_wire(const Wire* wire, std::string display_name) {
  WP_REQUIRE(!header_done_, "add_wire after finalize_header");
  WP_REQUIRE(wire != nullptr, "null wire");
  Entry e;
  e.wire = wire;
  e.name = display_name.empty() ? wire->name() : std::move(display_name);
  if (e.name.empty()) e.name = "wire" + std::to_string(entries_.size());
  for (char& c : e.name)
    if (c == ' ') c = '_';
  e.id_value = make_id(next_id_++);
  e.id_valid = make_id(next_id_++);
  e.id_stop = make_id(next_id_++);
  entries_.push_back(std::move(e));
}

void VcdWriter::finalize_header() {
  WP_REQUIRE(!header_done_, "finalize_header called twice");
  os_ << "$timescale 1 ns $end\n$scope module " << module_ << " $end\n";
  for (const auto& e : entries_) {
    os_ << "$var wire 64 " << e.id_value << ' ' << e.name << "_data $end\n";
    os_ << "$var wire 1 " << e.id_valid << ' ' << e.name << "_valid $end\n";
    os_ << "$var wire 1 " << e.id_stop << ' ' << e.name << "_stop $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
  header_done_ = true;
}

void VcdWriter::sample(Cycle cycle) {
  WP_REQUIRE(header_done_, "sample before finalize_header");
  bool stamped = false;
  auto stamp = [&] {
    if (!stamped) {
      os_ << '#' << cycle << '\n';
      stamped = true;
    }
  };
  for (auto& e : entries_) {
    const Token& tok = e.wire->token();
    const int valid = tok.valid ? 1 : 0;
    const int stop = e.wire->stop() ? 1 : 0;
    const Word value = tok.valid ? tok.value : 0;
    if (valid != e.last_valid) {
      stamp();
      os_ << valid << e.id_valid << '\n';
      e.last_valid = valid;
    }
    if (stop != e.last_stop) {
      stamp();
      os_ << stop << e.id_stop << '\n';
      e.last_stop = stop;
    }
    if (value != e.last_value) {
      stamp();
      os_ << 'b' << std::bitset<64>(value).to_string() << ' ' << e.id_value
          << '\n';
      e.last_value = value;
    }
  }
}

}  // namespace wp
