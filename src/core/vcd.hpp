// Value-change-dump writer: records selected wires of a Network per cycle so
// WP runs can be inspected in any waveform viewer (GTKWave etc.). Each wire
// contributes a 64-bit value vector plus `valid` and `stop` bits.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/wire.hpp"

namespace wp {

class VcdWriter {
 public:
  /// Writes the VCD header to `os` immediately; `module` names the scope.
  VcdWriter(std::ostream& os, std::string module = "wirepipe");

  /// Registers a wire before the first sample() call.
  void add_wire(const Wire* wire, std::string display_name = {});

  /// Emits the header. Must be called once, after all add_wire() calls and
  /// before the first sample().
  void finalize_header();

  /// Samples all registered wires at time `cycle` (call once per cycle,
  /// after Network::step()).
  void sample(Cycle cycle);

 private:
  struct Entry {
    const Wire* wire;
    std::string id_value, id_valid, id_stop;
    std::string name;
    Word last_value = ~Word{0};
    int last_valid = -1;
    int last_stop = -1;
  };

  static std::string make_id(std::size_t index);

  std::ostream& os_;
  std::string module_;
  std::vector<Entry> entries_;
  bool header_done_ = false;
  std::size_t next_id_ = 0;
};

}  // namespace wp
