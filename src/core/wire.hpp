// A point-to-point wire segment between two clocked nodes.
//
// Per cycle it carries one forward token (data + valid) and one backward
// stop bit. Both are driven during the eval phase from *registered* state
// (all nodes are Moore machines), so there are no combinational cycles and
// evaluation order is irrelevant. A valid token is transferred in a cycle
// iff the consumer's stop line is low in that same cycle; otherwise the
// producer is responsible for holding (re-driving) it.
#pragma once

#include <string>

#include "core/token.hpp"

namespace wp {

class Wire {
 public:
  explicit Wire(std::string name = {}) : name_(std::move(name)) {}

  // --- driven by the producer during eval ---
  void drive(const Token& t) { token_ = t; }

  // --- driven by the consumer during eval ---
  void drive_stop(bool s) { stop_ = s; }

  // --- sampled by either side during commit ---
  const Token& token() const { return token_; }
  bool stop() const { return stop_; }

  /// True iff a valid token is being transferred this cycle.
  bool transferring() const { return token_.valid && !stop_; }

  const std::string& name() const { return name_; }

  /// Returns wires to the reset state (τ, no stop).
  void reset() {
    token_ = Token::tau();
    stop_ = false;
  }

 private:
  std::string name_;
  Token token_ = Token::tau();
  bool stop_ = false;
};

}  // namespace wp
