#include "eval/evaluate.hpp"

#include <exception>
#include <string>
#include <utility>

#include "floorplan/annealer.hpp"
#include "floorplan/model.hpp"
#include "gen/instances.hpp"
#include "gen/topologies.hpp"
#include "graph/throughput_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/oracle.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wp::eval {

namespace {

/// Per-kind request counter + latency histogram, resolved once. This is
/// THE choke point every evaluation path funnels through (in-process and
/// daemon alike), so instrumenting it covers experiments, the optimizer,
/// the ensembles and the service in one place.
struct KindMetrics {
  obs::Counter& requests;
  obs::Histogram& latency_ns;
};

KindMetrics& kind_metrics(RequestKind kind) {
  obs::Registry& registry = obs::Registry::global();
  auto make = [&registry](RequestKind k) {
    const std::string name = request_kind_name(k);
    return KindMetrics{registry.counter("eval/requests/" + name),
                       registry.histogram("eval/latency_ns/" + name)};
  };
  static KindMetrics experiment = make(RequestKind::kExperiment);
  static KindMetrics throughput = make(RequestKind::kWp2Throughput);
  static KindMetrics floorplan = make(RequestKind::kFloorplanAnneal);
  static KindMetrics sample = make(RequestKind::kEnsembleSample);
  static KindMetrics stream_run = make(RequestKind::kStreamRun);
  switch (kind) {
    case RequestKind::kExperiment:
      return experiment;
    case RequestKind::kWp2Throughput:
      return throughput;
    case RequestKind::kFloorplanAnneal:
      return floorplan;
    case RequestKind::kEnsembleSample:
      return sample;
    case RequestKind::kStreamRun:
      return stream_run;
  }
  return experiment;  // unknown kinds fail below; attribute arbitrarily
}

EvalReply eval_experiment(const ExperimentJob& job, sim::SimOracle& oracle) {
  EvalReply reply;
  reply.kind = ReplyKind::kExperiment;
  reply.row = oracle.run_experiment(job.program.materialize(), job.cpu,
                                    job.rs, job.options);
  return reply;
}

EvalReply eval_throughput(const ThroughputJob& job, sim::SimOracle& oracle) {
  EvalReply reply;
  reply.kind = ReplyKind::kThroughput;
  reply.throughput = oracle.wp2_throughput(
      job.program.materialize(), job.cpu, job.rs,
      static_cast<std::size_t>(job.fifo_capacity));
  return reply;
}

// The floorplan portion of the ensemble pipeline as a standalone request:
// generate → dress → anneal with a private incremental throughput engine →
// placement-derived RS demand → exact min-cycle-ratio throughput.
EvalReply eval_floorplan(const FloorplanJob& job) {
  Rng rng(job.seed);
  const graph::Digraph topology = gen::generate_topology(job.topology, rng);
  const gen::GeneratedSystem sys =
      gen::dress_topology(topology, job.system, rng);

  graph::Digraph base = topology;
  for (graph::EdgeId e = 0; e < base.num_edges(); ++e)
    base.edge(e).relay_stations = 0;
  graph::ThroughputEngine engine(std::move(base));

  fplan::AnnealOptions options = job.anneal.to_options();
  options.throughput_fn = nullptr;
  options.throughput_engine = &engine;
  const fplan::AnnealResult annealed = fplan::anneal(sys.instance, options);

  EvalReply reply;
  reply.kind = ReplyKind::kFloorplan;
  reply.floorplan.area = annealed.area;
  reply.floorplan.wirelength = annealed.wirelength;
  reply.floorplan.cost = annealed.cost;
  reply.floorplan.accepted_moves = annealed.accepted_moves;
  reply.floorplan.evaluations = annealed.evaluations;

  const auto demand =
      fplan::rs_demand(sys.instance, annealed.placement, options.delay_model);
  for (const auto& [connection, rs] : demand) {
    (void)connection;
    reply.floorplan.total_rs += rs;
  }
  reply.floorplan.throughput = engine.throughput(demand);
  reply.floorplan.engine_incremental = engine.stats().incremental();
  reply.floorplan.engine_fallbacks = engine.stats().fallbacks;
  return reply;
}

EvalReply eval_sample(const gen::SampleJob& job, sim::GoldenCache* cache) {
  EvalReply reply;
  reply.kind = ReplyKind::kSample;
  reply.sample =
      gen::run_sample_job(job, job.simulate.enabled ? cache : nullptr);
  return reply;
}

// A stream run served remotely: force stats-only sinks (the reply carries
// digests and counts, never samples — see StreamJob), run the harness, and
// project the deterministic core of the HarnessResult into the reply. The
// harness flushes its counters into the obs registry, so a daemon serving
// stream runs exposes stream/* through its stats scrape for free.
EvalReply eval_stream(const StreamJob& job) {
  stream::StreamGraphConfig config = job.graph;
  config.sink.keep_samples = false;
  config.sink.tail_window = 0;

  stream::HarnessOptions options;
  options.mode = job.mode;
  options.fifo_capacity = static_cast<std::size_t>(job.fifo_capacity);
  const stream::HarnessResult run = stream::run_stream_graph(config, options);

  EvalReply reply;
  reply.kind = ReplyKind::kStream;
  reply.stream.tokens = run.tokens;
  reply.stream.cycles = run.cycles;
  reply.stream.digest = run.digest;
  reply.stream.sink_digests = run.sink_digests;
  reply.stream.sink_counts = run.sink_counts;
  reply.stream.input_stalls = run.input_stalls;
  reply.stream.output_stalls = run.output_stalls;
  reply.stream.discarded_tokens = run.discarded_tokens;
  reply.stream.tokens_per_sec = run.tokens_per_sec;
  return reply;
}

[[noreturn]] void unwrap_fail(const EvalReply& reply, ReplyKind wanted) {
  if (reply.kind == ReplyKind::kError)
    WP_CHECK(false, "evaluation failed: " + reply.error.message);
  WP_CHECK(false, std::string("reply kind mismatch: wanted ") +
                      std::to_string(static_cast<int>(wanted)) + ", got " +
                      std::to_string(static_cast<int>(reply.kind)));
  std::terminate();  // unreachable: WP_CHECK(false, ...) throws
}

}  // namespace

EvalReply evaluate(const EvalRequest& request, const EvalContext& context) {
  WP_SPAN("eval/evaluate");
  KindMetrics& metrics = kind_metrics(request.kind);
  metrics.requests.inc();
  const obs::ScopedTimer timer(metrics.latency_ns);
  try {
    sim::SimOracle& oracle =
        context.oracle != nullptr ? *context.oracle : sim::SimOracle::shared();
    sim::GoldenCache* netlist_cache = context.netlist_cache != nullptr
                                          ? context.netlist_cache
                                          : &oracle.cache();
    switch (request.kind) {
      case RequestKind::kExperiment:
        return eval_experiment(request.experiment, oracle);
      case RequestKind::kWp2Throughput:
        return eval_throughput(request.throughput, oracle);
      case RequestKind::kFloorplanAnneal:
        return eval_floorplan(request.floorplan);
      case RequestKind::kEnsembleSample:
        return eval_sample(request.sample, netlist_cache);
      case RequestKind::kStreamRun:
        return eval_stream(request.stream);
    }
    return EvalReply::make_error(
        ErrorCode::kMalformedRequest,
        "unknown request kind " +
            std::to_string(static_cast<int>(request.kind)));
  } catch (const std::exception& e) {
    obs::Registry::global().counter("eval/errors").inc();
    return EvalReply::make_error(ErrorCode::kEvalFailed, e.what());
  } catch (...) {
    obs::Registry::global().counter("eval/errors").inc();
    return EvalReply::make_error(ErrorCode::kEvalFailed,
                                 "non-standard exception");
  }
}

std::vector<EvalReply> evaluate_batch(const std::vector<EvalRequest>& requests,
                                      const EvalContext& context,
                                      ThreadPool* pool) {
  std::vector<EvalReply> replies(requests.size());
  if (pool == nullptr) pool = &ThreadPool::shared();
  pool->parallel_for(0, requests.size(), [&](std::size_t i) {
    replies[i] = evaluate(requests[i], context);
  });
  return replies;
}

const proc::ExperimentRow& unwrap_row(const EvalReply& reply) {
  if (reply.kind != ReplyKind::kExperiment)
    unwrap_fail(reply, ReplyKind::kExperiment);
  return reply.row;
}

double unwrap_throughput(const EvalReply& reply) {
  if (reply.kind != ReplyKind::kThroughput)
    unwrap_fail(reply, ReplyKind::kThroughput);
  return reply.throughput;
}

const FloorplanResult& unwrap_floorplan(const EvalReply& reply) {
  if (reply.kind != ReplyKind::kFloorplan)
    unwrap_fail(reply, ReplyKind::kFloorplan);
  return reply.floorplan;
}

const gen::SampleResult& unwrap_sample(const EvalReply& reply) {
  if (reply.kind != ReplyKind::kSample)
    unwrap_fail(reply, ReplyKind::kSample);
  return reply.sample;
}

const StreamResult& unwrap_stream(const EvalReply& reply) {
  if (reply.kind != ReplyKind::kStream) unwrap_fail(reply, ReplyKind::kStream);
  return reply.stream;
}

}  // namespace wp::eval
