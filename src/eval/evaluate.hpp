// eval::evaluate — the ONE executor behind the ONE evaluation surface.
//
// evaluate(request, context) runs any EvalRequest and never throws: an
// evaluation failure (contract violation, bad program, anything) comes
// back as a typed kError reply, so batch callers — the in-process
// ParallelSweep as much as the daemon worker pool — keep their remaining
// work. evaluate_batch fans a request vector over a ThreadPool and
// returns replies in input order.
//
// The unwrap_* helpers are for adapters that preserve historical throwing
// behavior: they return the payload of a success reply and rethrow error
// replies as ContractViolation.
#pragma once

#include <vector>

#include "eval/request.hpp"

namespace wp {
class ThreadPool;
}
namespace wp::sim {
class GoldenCache;
class SimOracle;
}

namespace wp::eval {

/// Where an evaluation finds its caches. Defaults resolve lazily inside
/// evaluate(): a null oracle means sim::SimOracle::shared(); a null
/// netlist_cache means the oracle's own GoldenCache (netlist golden keys
/// and oracle cpu keys live in distinct key spaces, so one cache serves
/// both).
struct EvalContext {
  sim::SimOracle* oracle = nullptr;
  sim::GoldenCache* netlist_cache = nullptr;
};

/// Evaluates one request. Never throws: failures become kError replies
/// (code kEvalFailed, message = the exception text).
EvalReply evaluate(const EvalRequest& request, const EvalContext& context);

/// Evaluates a batch on `pool` (nullptr = ThreadPool::shared()), replies
/// in input order. The context is shared across workers — both caches are
/// thread-safe.
std::vector<EvalReply> evaluate_batch(const std::vector<EvalRequest>& requests,
                                      const EvalContext& context,
                                      ThreadPool* pool = nullptr);

/// Success-payload accessors: rethrow kError replies as ContractViolation
/// (with the reply's message), require the matching kind otherwise.
const proc::ExperimentRow& unwrap_row(const EvalReply& reply);
double unwrap_throughput(const EvalReply& reply);
const FloorplanResult& unwrap_floorplan(const EvalReply& reply);
const gen::SampleResult& unwrap_sample(const EvalReply& reply);
const StreamResult& unwrap_stream(const EvalReply& reply);

}  // namespace wp::eval
