#include "eval/request.hpp"

#include <utility>

#include "proc/programs.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::eval {

namespace {

using wire::Reader;
using wire::WireError;
using wire::Writer;

// --------------------------------------------------------- small helpers

void encode_rs_map(Writer& w, const std::map<std::string, int>& rs) {
  w.u32(static_cast<std::uint32_t>(rs.size()));
  for (const auto& [name, count] : rs) {  // std::map: deterministic order
    w.str(name);
    w.i64(count);
  }
}

std::map<std::string, int> decode_rs_map(Reader& r) {
  std::map<std::string, int> rs;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.str();
    const std::int64_t value = r.i64();
    rs[std::move(name)] = static_cast<int>(value);
  }
  return rs;
}

// ----------------------------------------------------------- ProgramRef

void encode_program(Writer& w, const ProgramRef& program, bool for_hash) {
  w.u8(static_cast<std::uint8_t>(program.generator));
  if (program.generator == ProgramRef::Generator::kInline) {
    if (!for_hash)
      throw WireError(
          "inline ProgramSpec is not wire-serializable (its verify closure "
          "cannot cross a process); use a generator ProgramRef");
    // Hash mode: digest the program content. The verify closure is
    // excluded — it is assumed to be a pure function of (source, ram),
    // the same assumption sim::SimOracle's golden key already makes.
    w.str(program.inline_spec.name);
    w.str(program.inline_spec.source);
    w.u64(program.inline_spec.ram.size());
    for (const std::uint32_t word : program.inline_spec.ram) w.u32(word);
    return;
  }
  w.u64(program.size);
  w.u64(program.seed);
}

ProgramRef decode_program(Reader& r) {
  ProgramRef program;
  const std::uint8_t generator = r.u8();
  if (generator == 0)
    throw WireError("inline ProgramSpec cannot arrive over the wire");
  if (generator > static_cast<std::uint8_t>(ProgramRef::Generator::kPointerChase))
    throw WireError("unknown program generator tag");
  program.generator = static_cast<ProgramRef::Generator>(generator);
  program.size = r.u64();
  program.seed = r.u64();
  return program;
}

// --------------------------------------------------------- proc configs

void encode_cpu(Writer& w, const proc::CpuConfig& cpu) {
  w.b(cpu.multicycle);
  w.i32(cpu.fetch_window);
  w.i32(cpu.drain_firings);
  w.b(cpu.relax_squashed_fetches);
}

proc::CpuConfig decode_cpu(Reader& r) {
  proc::CpuConfig cpu;
  cpu.multicycle = r.b();
  cpu.fetch_window = r.i32();
  cpu.drain_firings = r.i32();
  cpu.relax_squashed_fetches = r.b();
  return cpu;
}

void encode_experiment_options(Writer& w,
                               const proc::ExperimentOptions& options) {
  w.b(options.check_equivalence);
  w.b(options.verify_result);
  w.u64(options.max_cycles);
  w.u64(options.fifo_capacity);
}

proc::ExperimentOptions decode_experiment_options(Reader& r) {
  proc::ExperimentOptions options;
  options.check_equivalence = r.b();
  options.verify_result = r.b();
  options.max_cycles = r.u64();
  options.fifo_capacity = static_cast<std::size_t>(r.u64());
  return options;
}

// ----------------------------------------------------------- gen configs

void encode_topology(Writer& w, const gen::TopologyConfig& t) {
  w.u8(static_cast<std::uint8_t>(t.family));
  w.i32(t.num_nodes);
  w.i32(t.max_relay_stations);
  w.f64(t.bidirectional_probability);
  w.b(t.ensure_strongly_connected);
  w.i32(t.ba_attach);
  w.i32(t.ws_neighbors);
  w.f64(t.ws_rewire_probability);
  w.i32(t.mesh_rows);
  w.i32(t.mesh_cols);
  w.b(t.mesh_torus);
  w.i32(t.er_clusters);
  w.f64(t.er_intra_probability);
  w.f64(t.er_inter_probability);
}

gen::TopologyConfig decode_topology(Reader& r) {
  gen::TopologyConfig t;
  const std::uint8_t family = r.u8();
  if (family >
      static_cast<std::uint8_t>(gen::TopologyFamily::kClusteredErdosRenyi))
    throw WireError("unknown topology family tag");
  t.family = static_cast<gen::TopologyFamily>(family);
  t.num_nodes = r.i32();
  t.max_relay_stations = r.i32();
  t.bidirectional_probability = r.f64();
  t.ensure_strongly_connected = r.b();
  t.ba_attach = r.i32();
  t.ws_neighbors = r.i32();
  t.ws_rewire_probability = r.f64();
  t.mesh_rows = r.i32();
  t.mesh_cols = r.i32();
  t.mesh_torus = r.b();
  t.er_clusters = r.i32();
  t.er_intra_probability = r.f64();
  t.er_inter_probability = r.f64();
  return t;
}

void encode_system(Writer& w, const gen::SystemConfig& s) {
  w.str(s.name);
  w.f64(s.blocks.min_area_mm2);
  w.f64(s.blocks.max_area_mm2);
  w.f64(s.blocks.min_aspect);
  w.f64(s.blocks.max_aspect);
  w.i32(s.moore_states);
  // v2: netlist-free dressing for families whose hubs exceed the
  // randommoore port model (scale-free topologies at 256+ nodes).
  w.b(s.build_netlist);
}

gen::SystemConfig decode_system(Reader& r) {
  gen::SystemConfig s;
  s.name = r.str();
  s.blocks.min_area_mm2 = r.f64();
  s.blocks.max_area_mm2 = r.f64();
  s.blocks.min_aspect = r.f64();
  s.blocks.max_aspect = r.f64();
  s.moore_states = r.i32();
  s.build_netlist = r.b();
  return s;
}

void encode_family(Writer& w, const gen::FamilySpec& f) {
  w.str(f.name);
  encode_topology(w, f.topology);
  encode_system(w, f.system);
  w.i32(f.anneal_iterations);
  // v2: per-family diameter-scaled simulation horizons (0 = inherit the
  // ensemble-wide EnsembleSimOptions).
  w.u64(f.golden_cycles);
  w.u64(f.wp_cycles);
}

gen::FamilySpec decode_family(Reader& r) {
  gen::FamilySpec f;
  f.name = r.str();
  f.topology = decode_topology(r);
  f.system = decode_system(r);
  f.anneal_iterations = r.i32();
  f.golden_cycles = r.u64();
  f.wp_cycles = r.u64();
  return f;
}

void encode_sim_options(Writer& w, const gen::EnsembleSimOptions& s) {
  w.b(s.enabled);
  w.u64(s.golden_cycles);
  w.u64(s.wp_cycles);
  w.u64(s.fifo_capacity);
  w.b(s.check_equivalence);
}

gen::EnsembleSimOptions decode_sim_options(Reader& r) {
  gen::EnsembleSimOptions s;
  s.enabled = r.b();
  s.golden_cycles = r.u64();
  s.wp_cycles = r.u64();
  s.fifo_capacity = static_cast<std::size_t>(r.u64());
  s.check_equivalence = r.b();
  return s;
}

// ----------------------------------------------------------- AnnealKnobs

void encode_knobs(Writer& w, const AnnealKnobs& k) {
  w.f64(k.weight_area);
  w.f64(k.weight_wirelength);
  w.f64(k.weight_throughput);
  w.f64(k.ps_per_mm);
  w.f64(k.clock_ps);
  w.i32(k.iterations);
  w.f64(k.initial_temperature);
  w.f64(k.cooling);
  w.u64(k.seed);
  w.u8(static_cast<std::uint8_t>(k.pack_engine));
}

AnnealKnobs decode_knobs(Reader& r) {
  AnnealKnobs k;
  k.weight_area = r.f64();
  k.weight_wirelength = r.f64();
  k.weight_throughput = r.f64();
  k.ps_per_mm = r.f64();
  k.clock_ps = r.f64();
  k.iterations = r.i32();
  k.initial_temperature = r.f64();
  k.cooling = r.f64();
  k.seed = r.u64();
  const std::uint8_t engine = r.u8();
  if (engine > static_cast<std::uint8_t>(fplan::PackEngine::kParallel))
    throw WireError("unknown pack-engine tag");
  k.pack_engine = static_cast<fplan::PackEngine>(engine);
  return k;
}

// --------------------------------------------------------- job payloads

void encode_experiment_job(Writer& w, const ExperimentJob& job,
                           bool for_hash) {
  encode_program(w, job.program, for_hash);
  encode_cpu(w, job.cpu);
  w.str(job.rs.label);
  encode_rs_map(w, job.rs.rs);
  encode_experiment_options(w, job.options);
}

ExperimentJob decode_experiment_job(Reader& r) {
  ExperimentJob job;
  job.program = decode_program(r);
  job.cpu = decode_cpu(r);
  job.rs.label = r.str();
  job.rs.rs = decode_rs_map(r);
  job.options = decode_experiment_options(r);
  return job;
}

void encode_throughput_job(Writer& w, const ThroughputJob& job,
                           bool for_hash) {
  encode_program(w, job.program, for_hash);
  encode_cpu(w, job.cpu);
  encode_rs_map(w, job.rs);
  w.u64(job.fifo_capacity);
}

ThroughputJob decode_throughput_job(Reader& r) {
  ThroughputJob job;
  job.program = decode_program(r);
  job.cpu = decode_cpu(r);
  job.rs = decode_rs_map(r);
  job.fifo_capacity = r.u64();
  return job;
}

void encode_floorplan_job(Writer& w, const FloorplanJob& job) {
  encode_topology(w, job.topology);
  encode_system(w, job.system);
  w.u64(job.seed);
  encode_knobs(w, job.anneal);
}

FloorplanJob decode_floorplan_job(Reader& r) {
  FloorplanJob job;
  job.topology = decode_topology(r);
  job.system = decode_system(r);
  job.seed = r.u64();
  job.anneal = decode_knobs(r);
  return job;
}

void encode_sample_job(Writer& w, const gen::SampleJob& job) {
  encode_family(w, job.family);
  w.i32(job.sample);
  w.u64(job.ensemble_seed);
  encode_sim_options(w, job.simulate);
  encode_knobs(w, AnnealKnobs::from_options(job.anneal));
  w.u64(job.max_cycle_enumeration);
}

gen::SampleJob decode_sample_job(Reader& r) {
  gen::SampleJob job;
  job.family = decode_family(r);
  job.sample = r.i32();
  job.ensemble_seed = r.u64();
  job.simulate = decode_sim_options(r);
  job.anneal = decode_knobs(r).to_options();
  job.max_cycle_enumeration = static_cast<std::size_t>(r.u64());
  return job;
}

void encode_stream_job(Writer& w, const StreamJob& job) {
  const stream::StreamGraphConfig& g = job.graph;
  w.u64(g.tokens);
  w.u64(g.fir_stages);
  w.u64(g.branches);
  w.u64(g.agc_period);
  w.u64(g.gain_period);
  w.f64(g.agc_target);
  w.u64(g.seed);
  w.u32(static_cast<std::uint32_t>(g.fir.size()));
  for (const double tap : g.fir) w.f64(tap);
  w.i64(g.feedback_rs);
  w.i64(g.forward_rs);
  // g.sink is intentionally not encoded: the evaluator always runs
  // stats-only sinks (see StreamJob doc).
  w.u8(static_cast<std::uint8_t>(job.mode));
  w.u64(job.fifo_capacity);
}

StreamJob decode_stream_job(Reader& r) {
  StreamJob job;
  stream::StreamGraphConfig& g = job.graph;
  g.tokens = r.u64();
  g.fir_stages = static_cast<std::size_t>(r.u64());
  g.branches = static_cast<std::size_t>(r.u64());
  g.agc_period = r.u64();
  g.gain_period = r.u64();
  g.agc_target = r.f64();
  g.seed = r.u64();
  g.fir.clear();
  const std::uint32_t taps = r.u32();
  for (std::uint32_t i = 0; i < taps; ++i) g.fir.push_back(r.f64());
  g.feedback_rs = static_cast<int>(r.i64());
  g.forward_rs = static_cast<int>(r.i64());
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(stream::RunMode::kWp2))
    throw WireError("unknown stream run-mode tag " + std::to_string(mode));
  job.mode = static_cast<stream::RunMode>(mode);
  job.fifo_capacity = r.u64();
  return job;
}

void encode_request_body(Writer& w, const EvalRequest& request,
                         bool for_hash) {
  w.u8(kEvalVersion);
  w.u8(static_cast<std::uint8_t>(request.kind));
  switch (request.kind) {
    case RequestKind::kExperiment:
      encode_experiment_job(w, request.experiment, for_hash);
      return;
    case RequestKind::kWp2Throughput:
      encode_throughput_job(w, request.throughput, for_hash);
      return;
    case RequestKind::kFloorplanAnneal:
      encode_floorplan_job(w, request.floorplan);
      return;
    case RequestKind::kEnsembleSample:
      encode_sample_job(w, request.sample);
      return;
    case RequestKind::kStreamRun:
      encode_stream_job(w, request.stream);
      return;
  }
  throw WireError("unknown request kind");
}

// --------------------------------------------------------- reply pieces

void encode_row(Writer& w, const proc::ExperimentRow& row) {
  w.str(row.label);
  w.u64(row.golden_cycles);
  w.u64(row.wp1_cycles);
  w.u64(row.wp2_cycles);
  w.f64(row.th_wp1);
  w.f64(row.th_wp2);
  w.f64(row.improvement);
  w.f64(row.static_wp1);
  w.b(row.wp1_equivalent);
  w.b(row.wp2_equivalent);
  w.b(row.result_ok);
  w.str(row.detail);
}

proc::ExperimentRow decode_row(Reader& r) {
  proc::ExperimentRow row;
  row.label = r.str();
  row.golden_cycles = r.u64();
  row.wp1_cycles = r.u64();
  row.wp2_cycles = r.u64();
  row.th_wp1 = r.f64();
  row.th_wp2 = r.f64();
  row.improvement = r.f64();
  row.static_wp1 = r.f64();
  row.wp1_equivalent = r.b();
  row.wp2_equivalent = r.b();
  row.result_ok = r.b();
  row.detail = r.str();
  return row;
}

void encode_floorplan_result(Writer& w, const FloorplanResult& fp) {
  w.f64(fp.area);
  w.f64(fp.wirelength);
  w.f64(fp.cost);
  w.f64(fp.throughput);
  w.i32(fp.total_rs);
  w.i32(fp.accepted_moves);
  w.i32(fp.evaluations);
  w.u64(fp.engine_incremental);
  w.u64(fp.engine_fallbacks);
}

FloorplanResult decode_floorplan_result(Reader& r) {
  FloorplanResult fp;
  fp.area = r.f64();
  fp.wirelength = r.f64();
  fp.cost = r.f64();
  fp.throughput = r.f64();
  fp.total_rs = r.i32();
  fp.accepted_moves = r.i32();
  fp.evaluations = r.i32();
  fp.engine_incremental = r.u64();
  fp.engine_fallbacks = r.u64();
  return fp;
}

void encode_sample_result(Writer& w, const gen::SampleResult& s) {
  w.str(s.family);
  w.i32(s.sample);
  w.u64(s.seed);
  w.i32(s.nodes);
  w.i32(s.edges);
  w.i64(s.cycles);
  w.i32(s.total_rs);
  w.f64(s.area);
  w.f64(s.wirelength);
  w.f64(s.throughput);
  w.b(s.simulated);
  w.f64(s.th_wp1_sim);
  w.f64(s.th_wp2_sim);
  w.b(s.sim_ok);
  w.u64(s.engine_incremental);
  w.u64(s.engine_fallbacks);
  // Wall-clock fields ride along so a sharded CSV can still report
  // worker-side timings; they stay excluded from SampleResult::operator==.
  w.f64(s.anneal_ms);
  w.f64(s.throughput_ms);
}

gen::SampleResult decode_sample_result(Reader& r) {
  gen::SampleResult s;
  s.family = r.str();
  s.sample = r.i32();
  s.seed = r.u64();
  s.nodes = r.i32();
  s.edges = r.i32();
  s.cycles = r.i64();
  s.total_rs = r.i32();
  s.area = r.f64();
  s.wirelength = r.f64();
  s.throughput = r.f64();
  s.simulated = r.b();
  s.th_wp1_sim = r.f64();
  s.th_wp2_sim = r.f64();
  s.sim_ok = r.b();
  s.engine_incremental = r.u64();
  s.engine_fallbacks = r.u64();
  s.anneal_ms = r.f64();
  s.throughput_ms = r.f64();
  return s;
}

void encode_stream_result(Writer& w, const StreamResult& s) {
  w.u64(s.tokens);
  w.u64(s.cycles);
  w.u64(s.digest);
  w.u32(static_cast<std::uint32_t>(s.sink_digests.size()));
  for (const std::uint64_t digest : s.sink_digests) w.u64(digest);
  w.u32(static_cast<std::uint32_t>(s.sink_counts.size()));
  for (const std::uint64_t count : s.sink_counts) w.u64(count);
  w.u64(s.input_stalls);
  w.u64(s.output_stalls);
  w.u64(s.discarded_tokens);
  // Wall-clock throughput rides along for worker-side reporting; it stays
  // excluded from StreamResult::operator==.
  w.f64(s.tokens_per_sec);
}

StreamResult decode_stream_result(Reader& r) {
  StreamResult s;
  s.tokens = r.u64();
  s.cycles = r.u64();
  s.digest = r.u64();
  const std::uint32_t digests = r.u32();
  for (std::uint32_t i = 0; i < digests; ++i)
    s.sink_digests.push_back(r.u64());
  const std::uint32_t counts = r.u32();
  for (std::uint32_t i = 0; i < counts; ++i) s.sink_counts.push_back(r.u64());
  s.input_stalls = r.u64();
  s.output_stalls = r.u64();
  s.discarded_tokens = r.u64();
  s.tokens_per_sec = r.f64();
  return s;
}

}  // namespace

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kExperiment: return "experiment";
    case RequestKind::kWp2Throughput: return "wp2-throughput";
    case RequestKind::kFloorplanAnneal: return "floorplan-anneal";
    case RequestKind::kEnsembleSample: return "ensemble-sample";
    case RequestKind::kStreamRun: return "stream-run";
  }
  return "unknown";
}

// ----------------------------------------------------------- ProgramRef

ProgramRef ProgramRef::extraction_sort(std::uint64_t n, std::uint64_t seed) {
  ProgramRef ref;
  ref.generator = Generator::kExtractionSort;
  ref.size = n;
  ref.seed = seed;
  return ref;
}

ProgramRef ProgramRef::matmul(std::uint64_t dim, std::uint64_t seed) {
  ProgramRef ref;
  ref.generator = Generator::kMatmul;
  ref.size = dim;
  ref.seed = seed;
  return ref;
}

ProgramRef ProgramRef::pointer_chase(std::uint64_t n, std::uint64_t seed) {
  ProgramRef ref;
  ref.generator = Generator::kPointerChase;
  ref.size = n;
  ref.seed = seed;
  return ref;
}

ProgramRef ProgramRef::inlined(proc::ProgramSpec spec) {
  ProgramRef ref;
  ref.generator = Generator::kInline;
  ref.inline_spec = std::move(spec);
  return ref;
}

proc::ProgramSpec ProgramRef::materialize() const {
  switch (generator) {
    case Generator::kInline:
      return inline_spec;
    case Generator::kExtractionSort:
      return proc::extraction_sort_program(static_cast<std::size_t>(size),
                                           seed);
    case Generator::kMatmul:
      return proc::matmul_program(static_cast<std::size_t>(size), seed);
    case Generator::kPointerChase:
      return proc::pointer_chase_program(static_cast<std::size_t>(size),
                                         seed);
  }
  WP_CHECK(false, "unknown program generator");
  return {};
}

// ----------------------------------------------------------- AnnealKnobs

AnnealKnobs AnnealKnobs::from_options(const fplan::AnnealOptions& options) {
  AnnealKnobs k;
  k.weight_area = options.weight_area;
  k.weight_wirelength = options.weight_wirelength;
  k.weight_throughput = options.weight_throughput;
  k.ps_per_mm = options.delay_model.ps_per_mm;
  k.clock_ps = options.delay_model.clock_ps;
  k.iterations = options.iterations;
  k.initial_temperature = options.initial_temperature;
  k.cooling = options.cooling;
  k.seed = options.seed;
  k.pack_engine = options.pack_engine;
  return k;
}

fplan::AnnealOptions AnnealKnobs::to_options() const {
  fplan::AnnealOptions options;
  options.weight_area = weight_area;
  options.weight_wirelength = weight_wirelength;
  options.weight_throughput = weight_throughput;
  options.delay_model.ps_per_mm = ps_per_mm;
  options.delay_model.clock_ps = clock_ps;
  options.iterations = iterations;
  options.initial_temperature = initial_temperature;
  options.cooling = cooling;
  options.seed = seed;
  options.pack_engine = pack_engine;
  return options;
}

// -------------------------------------------------------------- requests

EvalRequest::EvalRequest(ExperimentJob job)
    : kind(RequestKind::kExperiment), experiment(std::move(job)) {}

EvalRequest::EvalRequest(ThroughputJob job)
    : kind(RequestKind::kWp2Throughput), throughput(std::move(job)) {}

EvalRequest::EvalRequest(FloorplanJob job)
    : kind(RequestKind::kFloorplanAnneal), floorplan(std::move(job)) {}

EvalRequest::EvalRequest(gen::SampleJob job)
    : kind(RequestKind::kEnsembleSample), sample(std::move(job)) {}

EvalRequest::EvalRequest(StreamJob job)
    : kind(RequestKind::kStreamRun), stream(std::move(job)) {}

std::uint64_t EvalRequest::content_hash() const {
  Writer w;
  encode_request_body(w, *this, /*for_hash=*/true);
  return hash_bytes(w.bytes().data(), w.size());
}

void EvalRequest::encode(Writer& w) const {
  encode_request_body(w, *this, /*for_hash=*/false);
}

EvalRequest EvalRequest::decode(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kEvalVersion)
    throw WireError("unsupported EvalRequest version " +
                    std::to_string(version));
  EvalRequest request;
  const std::uint8_t kind = r.u8();
  switch (static_cast<RequestKind>(kind)) {
    case RequestKind::kExperiment:
      request.kind = RequestKind::kExperiment;
      request.experiment = decode_experiment_job(r);
      return request;
    case RequestKind::kWp2Throughput:
      request.kind = RequestKind::kWp2Throughput;
      request.throughput = decode_throughput_job(r);
      return request;
    case RequestKind::kFloorplanAnneal:
      request.kind = RequestKind::kFloorplanAnneal;
      request.floorplan = decode_floorplan_job(r);
      return request;
    case RequestKind::kEnsembleSample:
      request.kind = RequestKind::kEnsembleSample;
      request.sample = decode_sample_job(r);
      return request;
    case RequestKind::kStreamRun:
      request.kind = RequestKind::kStreamRun;
      request.stream = decode_stream_job(r);
      return request;
  }
  throw WireError("unknown request kind tag " + std::to_string(kind));
}

// --------------------------------------------------------------- replies

bool FloorplanResult::operator==(const FloorplanResult& other) const {
  return area == other.area && wirelength == other.wirelength &&
         cost == other.cost && throughput == other.throughput &&
         total_rs == other.total_rs &&
         accepted_moves == other.accepted_moves &&
         evaluations == other.evaluations &&
         engine_incremental == other.engine_incremental &&
         engine_fallbacks == other.engine_fallbacks;
}

bool StreamResult::operator==(const StreamResult& other) const {
  return tokens == other.tokens && cycles == other.cycles &&
         digest == other.digest && sink_digests == other.sink_digests &&
         sink_counts == other.sink_counts &&
         input_stalls == other.input_stalls &&
         output_stalls == other.output_stalls &&
         discarded_tokens == other.discarded_tokens;
}

EvalReply EvalReply::make_error(ErrorCode code, std::string message) {
  EvalReply reply;
  reply.kind = ReplyKind::kError;
  reply.error.code = code;
  reply.error.message = std::move(message);
  return reply;
}

void EvalReply::encode(Writer& w) const {
  w.u8(kEvalVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case ReplyKind::kError:
      w.u32(static_cast<std::uint32_t>(error.code));
      w.str(error.message);
      return;
    case ReplyKind::kExperiment:
      encode_row(w, row);
      return;
    case ReplyKind::kThroughput:
      w.f64(throughput);
      return;
    case ReplyKind::kFloorplan:
      encode_floorplan_result(w, floorplan);
      return;
    case ReplyKind::kSample:
      encode_sample_result(w, sample);
      return;
    case ReplyKind::kStream:
      encode_stream_result(w, stream);
      return;
  }
  throw WireError("unknown reply kind");
}

EvalReply EvalReply::decode(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kEvalVersion)
    throw WireError("unsupported EvalReply version " +
                    std::to_string(version));
  EvalReply reply;
  const std::uint8_t kind = r.u8();
  switch (static_cast<ReplyKind>(kind)) {
    case ReplyKind::kError: {
      reply.kind = ReplyKind::kError;
      const std::uint32_t code = r.u32();
      if (code > static_cast<std::uint32_t>(ErrorCode::kInternal))
        throw WireError("unknown error code tag");
      reply.error.code = static_cast<ErrorCode>(code);
      reply.error.message = r.str();
      return reply;
    }
    case ReplyKind::kExperiment:
      reply.kind = ReplyKind::kExperiment;
      reply.row = decode_row(r);
      return reply;
    case ReplyKind::kThroughput:
      reply.kind = ReplyKind::kThroughput;
      reply.throughput = r.f64();
      return reply;
    case ReplyKind::kFloorplan:
      reply.kind = ReplyKind::kFloorplan;
      reply.floorplan = decode_floorplan_result(r);
      return reply;
    case ReplyKind::kSample:
      reply.kind = ReplyKind::kSample;
      reply.sample = decode_sample_result(r);
      return reply;
    case ReplyKind::kStream:
      reply.kind = ReplyKind::kStream;
      reply.stream = decode_stream_result(r);
      return reply;
  }
  throw WireError("unknown reply kind tag " + std::to_string(kind));
}

}  // namespace wp::eval
