// EvalRequest / EvalReply — the ONE public evaluation surface.
//
// Every evaluation the repo performs — a Table-1 experiment row, the
// optimizer's WP2-throughput objective, a floorplan anneal, an ensemble
// sample — is described by an EvalRequest and answered by an EvalReply.
// The five historical entry points (proc::run_experiment,
// proc::simulate_wp2_throughput, proc::optimal_config, proc::ParallelSweep,
// gen::run_ensemble) are thin adapters that build a request and call
// eval::evaluate, and the service daemon (src/svc) decodes the identical
// request type off the wire and calls the identical eval::evaluate — the
// in-process path and the daemon path execute literally the same code.
//
// Value-type contract:
//   * tagged union over the four request kinds (RequestKind selects the
//     engaged payload member);
//   * versioned serialization (kEvalVersion byte leads every encoded
//     request/reply; decoders reject other versions loudly) shared with
//     the wire protocol;
//   * content-hash keyed: content_hash() is a stable FNV digest of the
//     canonical encoding, usable as a cache/shard key across processes.
//
// Programs are carried as ProgramRef: either a *generator reference*
// (extraction-sort / matmul / pointer-chase plus parameters — the wire
// representation) or an inline proc::ProgramSpec (in-process only: the
// spec's verify closure cannot cross a process boundary, and silently
// dropping it would change result_ok verdicts; serializing an inline
// program throws wire::WireError instead).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "gen/ensemble.hpp"
#include "proc/experiment.hpp"
#include "stream/harness.hpp"
#include "util/wire.hpp"

namespace wp::eval {

/// Version byte leading every encoded EvalRequest/EvalReply. Bump on any
/// layout change; decoders reject foreign versions with WireError.
/// v2: FamilySpec carries per-family simulation horizons, and the
/// pack-engine tag admits kParallel.
constexpr std::uint8_t kEvalVersion = 2;

enum class RequestKind : std::uint8_t {
  kExperiment = 1,      ///< golden/WP1/WP2 triple → ExperimentRow
  kWp2Throughput = 2,   ///< optimizer objective → double
  kFloorplanAnneal = 3, ///< generate+dress+anneal → FloorplanResult
  kEnsembleSample = 4,  ///< full pipeline sample → gen::SampleResult
  kStreamRun = 5,       ///< stream-graph harness run → StreamResult
};

const char* request_kind_name(RequestKind kind);

// ------------------------------------------------------------ ProgramRef

struct ProgramRef {
  enum class Generator : std::uint8_t {
    kInline = 0,          ///< carries a full ProgramSpec; NOT wireable
    kExtractionSort = 1,  ///< proc::extraction_sort_program(size, seed)
    kMatmul = 2,          ///< proc::matmul_program(size, seed)
    kPointerChase = 3,    ///< proc::pointer_chase_program(size, seed)
  };

  Generator generator = Generator::kExtractionSort;
  std::uint64_t size = 16;  ///< n / dim, generator-dependent
  std::uint64_t seed = 1;
  /// Engaged only for kInline (generator invocations materialize lazily).
  proc::ProgramSpec inline_spec;

  static ProgramRef extraction_sort(std::uint64_t n = 16,
                                    std::uint64_t seed = 1);
  static ProgramRef matmul(std::uint64_t dim = 4, std::uint64_t seed = 2);
  static ProgramRef pointer_chase(std::uint64_t n = 32,
                                  std::uint64_t seed = 3);
  static ProgramRef inlined(proc::ProgramSpec spec);

  bool wireable() const { return generator != Generator::kInline; }
  /// Builds the ProgramSpec this ref names (inline: returns the copy).
  proc::ProgramSpec materialize() const;
};

// ------------------------------------------------------------ AnnealKnobs

/// The serializable subset of fplan::AnnealOptions: every knob that shapes
/// an annealing trajectory, minus the in-process-only oracle hooks
/// (throughput_fn / throughput_engine — the evaluator always wires a
/// private incremental engine per job).
struct AnnealKnobs {
  double weight_area = 1.0;
  double weight_wirelength = 0.1;
  double weight_throughput = 0.0;
  double ps_per_mm = 150.0;   ///< WireDelayModel
  double clock_ps = 500.0;
  std::int32_t iterations = 20000;
  double initial_temperature = 1.0;
  double cooling = 0.9995;
  std::uint64_t seed = 42;
  /// Engine tag crosses the wire (kParallel included: the evaluating
  /// process fans windows over its own ThreadPool::shared()); pool/window
  /// tuning knobs do not — they are trajectory-invariant by contract, so
  /// the reply is bit-identical whatever the worker picks.
  fplan::PackEngine pack_engine = fplan::PackEngine::kBatched;

  static AnnealKnobs from_options(const fplan::AnnealOptions& options);
  fplan::AnnealOptions to_options() const;
};

// ------------------------------------------------------ request payloads

struct ExperimentJob {
  ProgramRef program;
  proc::CpuConfig cpu;
  proc::RsConfig rs;
  proc::ExperimentOptions options;
};

struct ThroughputJob {
  ProgramRef program;
  proc::CpuConfig cpu;
  std::map<std::string, int> rs;
  std::uint64_t fifo_capacity = 16;
};

struct FloorplanJob {
  gen::TopologyConfig topology;
  gen::SystemConfig system;
  std::uint64_t seed = 1;
  AnnealKnobs anneal;
};

// The ensemble-sample payload is gen::SampleJob itself — the unit of work
// run_ensemble executes in process.

/// A stream-graph harness run served remotely: the daemon builds the graph
/// from `graph` and executes stream::run_stream_graph in `mode`. The
/// evaluator always forces stats-only sinks (the graph's SinkOptions never
/// cross the wire — a remote keep-all sink would buffer millions of words
/// in the daemon to no observable effect, since the reply carries digests
/// and counts, not samples). Determinism of the harness makes the remote
/// digest byte-for-byte comparable with an in-process run.
struct StreamJob {
  stream::StreamGraphConfig graph;
  stream::RunMode mode = stream::RunMode::kWp2;
  std::uint64_t fifo_capacity = 16;
};

// -------------------------------------------------------------- requests

struct EvalRequest {
  RequestKind kind = RequestKind::kExperiment;
  // Engaged member selected by `kind` (plain members rather than a
  // std::variant keep the serializers flat and the accessors cheap).
  ExperimentJob experiment;
  ThroughputJob throughput;
  FloorplanJob floorplan;
  gen::SampleJob sample;
  StreamJob stream;

  EvalRequest() = default;
  explicit EvalRequest(ExperimentJob job);
  explicit EvalRequest(ThroughputJob job);
  explicit EvalRequest(FloorplanJob job);
  explicit EvalRequest(gen::SampleJob job);
  explicit EvalRequest(StreamJob job);

  /// Stable content digest of the canonical encoding — the cache/shard
  /// key. Inline programs hash their name/source/ram (the verify closure
  /// is assumed to be a pure function of those, the same assumption the
  /// golden cache already makes).
  std::uint64_t content_hash() const;

  /// Versioned wire encoding. Throws wire::WireError for requests that
  /// cannot cross a process boundary (inline programs).
  void encode(wire::Writer& w) const;
  static EvalRequest decode(wire::Reader& r);
};

// --------------------------------------------------------------- replies

enum class ReplyKind : std::uint8_t {
  kError = 0,
  kExperiment = 1,
  kThroughput = 2,
  kFloorplan = 3,
  kSample = 4,
  kStream = 5,
};

/// Typed error codes carried by kError replies (and by protocol-level
/// error frames, which reuse the same vocabulary).
enum class ErrorCode : std::uint32_t {
  kNone = 0,
  kMalformedRequest = 1,  ///< payload failed to decode
  kBadVersion = 2,        ///< version byte mismatch
  kNotWireable = 3,       ///< inline program asked to cross a process
  kEvalFailed = 4,        ///< the evaluation itself threw
  kMalformedFrame = 5,    ///< framing violation (svc layer)
  kOversizedFrame = 6,    ///< declared length over the frame cap
  kInternal = 7,
};

struct EvalError {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

/// Reply of a kFloorplanAnneal request.
struct FloorplanResult {
  double area = 0.0;
  double wirelength = 0.0;
  double cost = 0.0;
  double throughput = 1.0;
  std::int32_t total_rs = 0;
  std::int32_t accepted_moves = 0;
  std::int32_t evaluations = 0;
  std::uint64_t engine_incremental = 0;
  std::uint64_t engine_fallbacks = 0;

  bool operator==(const FloorplanResult& other) const;
};

/// Reply of a kStreamRun request: the deterministic core of a
/// HarnessResult. tokens_per_sec rides along for worker-side reporting but
/// is excluded from operator== (wall clock is not part of the contract).
struct StreamResult {
  std::uint64_t tokens = 0;
  std::uint64_t cycles = 0;
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> sink_digests;
  std::vector<std::uint64_t> sink_counts;
  std::uint64_t input_stalls = 0;
  std::uint64_t output_stalls = 0;
  std::uint64_t discarded_tokens = 0;
  double tokens_per_sec = 0.0;

  bool operator==(const StreamResult& other) const;
};

struct EvalReply {
  ReplyKind kind = ReplyKind::kError;
  EvalError error;               ///< kError
  proc::ExperimentRow row;       ///< kExperiment
  double throughput = 0.0;       ///< kThroughput
  FloorplanResult floorplan;     ///< kFloorplan
  gen::SampleResult sample;      ///< kSample
  StreamResult stream;           ///< kStream

  bool ok() const { return kind != ReplyKind::kError; }

  static EvalReply make_error(ErrorCode code, std::string message);

  void encode(wire::Writer& w) const;
  static EvalReply decode(wire::Reader& r);
};

}  // namespace wp::eval
