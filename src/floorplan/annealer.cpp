#include "floorplan/annealer.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wp::fplan {

double placement_cost(const Instance& inst, const Placement& placement,
                      const AnnealOptions& options, double* area_out,
                      double* wl_out, double* th_out) {
  const double area = placement.area();
  const double wl = total_wirelength(inst, placement);
  double th = 1.0;
  if (options.weight_throughput > 0.0) {
    WP_REQUIRE(static_cast<bool>(options.throughput_fn),
               "throughput weight set but no throughput_fn provided");
    th = options.throughput_fn(
        rs_demand(inst, placement, options.delay_model));
  }
  if (area_out) *area_out = area;
  if (wl_out) *wl_out = wl;
  if (th_out) *th_out = th;
  return options.weight_area * area + options.weight_wirelength * wl +
         options.weight_throughput * (1.0 - th);
}

AnnealResult anneal(const Instance& inst, const AnnealOptions& options) {
  WP_REQUIRE(inst.blocks.size() >= 2, "need at least two blocks");
  WP_REQUIRE(options.iterations > 0, "need at least one iteration");
  wp::Rng rng(options.seed);

  AnnealResult best;
  SequencePair current = SequencePair::random(inst.blocks.size(), rng);
  Placement placement = pack(inst, current);
  double current_cost =
      placement_cost(inst, placement, options, nullptr, nullptr, nullptr);

  best.sequence_pair = current;
  best.placement = placement;
  best.cost = current_cost;

  double temperature = options.initial_temperature *
                       std::max(current_cost, 1e-9);
  for (int it = 0; it < options.iterations; ++it) {
    const AppliedMove move = random_move(current, rng);
    const Placement candidate = pack(inst, current);
    const double cost = placement_cost(inst, candidate, options, nullptr,
                                       nullptr, nullptr);
    ++best.evaluations;
    const double delta = cost - current_cost;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current_cost = cost;
      ++best.accepted_moves;
      if (cost < best.cost) {
        best.cost = cost;
        best.sequence_pair = current;
        best.placement = candidate;
      }
    } else {
      undo_move(current, move);
    }
    temperature *= options.cooling;
  }

  placement_cost(inst, best.placement, options, &best.area,
                 &best.wirelength, &best.throughput);
  return best;
}

}  // namespace wp::fplan
