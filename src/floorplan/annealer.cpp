#include "floorplan/annealer.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "floorplan/batch_pack.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/parallel_pack.hpp"
#include "graph/throughput_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wp::fplan {

namespace {

using Clock = std::chrono::steady_clock;

/// Anneal counters flushed ONCE per run from the AnnealResult tallies the
/// hot loop already keeps — the loop itself stays free of atomics, so the
/// obs layer costs nothing per move.
struct AnnealMetrics {
  obs::Counter& runs;
  obs::Counter& evaluations;
  obs::Counter& accepted_moves;
  obs::Counter& throughput_evals;
  obs::Counter& throughput_cache_hits;
  obs::Histogram& run_ns;

  static AnnealMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static AnnealMetrics metrics{
        registry.counter("anneal/runs"),
        registry.counter("anneal/evaluations"),
        registry.counter("anneal/accepted_moves"),
        registry.counter("anneal/throughput_evals"),
        registry.counter("anneal/throughput_cache_hits"),
        registry.histogram("anneal/run_ns")};
    return metrics;
  }
};

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The single place the annealing objective is assembled; CostModel (the
/// search path) and placement_cost (the reporting path) must agree.
double combine_cost(const AnnealOptions& options, double area, double wl,
                    double th) {
  return options.weight_area * area + options.weight_wirelength * wl +
         options.weight_throughput * (1.0 - th);
}

/// Memoizing cost evaluator for one annealing run. Area and wirelength are
/// cheap closed forms; the throughput term means a min-cycle-ratio solve,
/// so demands are memoized by value. Most moves (accepted or rejected)
/// leave the per-connection RS demand unchanged or revisit a recent one,
/// which turns the hot path of a throughput-driven run into a hash lookup.
class CostModel {
 public:
  CostModel(const Instance& inst, const AnnealOptions& options)
      : inst_(inst), options_(options),
        use_throughput_(options.weight_throughput > 0.0) {
    if (use_throughput_) {
      WP_REQUIRE(options_.throughput_engine != nullptr ||
                     static_cast<bool>(options_.throughput_fn),
                 "throughput weight set but neither throughput_engine nor "
                 "throughput_fn provided");
    }
  }

  double cost(const Placement& placement, double wirelength,
              AnnealResult* stats) {
    double th = 1.0;
    if (use_throughput_)
      th = throughput(rs_demand(inst_, placement, options_.delay_model),
                      stats);
    return combine_cost(options_, placement.area(), wirelength, th);
  }

  /// Same objective, assembled from pre-computed ingredients: the
  /// kParallel loop derives area/wirelength/demand in the worker fan-out
  /// (all pure functions of the candidate placement), and only the
  /// stateful part — the throughput oracle and its memo — runs here, on
  /// the serial retirement path, in exactly the serial candidate order.
  /// Bitwise-identical to cost(): rs_demand is deterministic, so the
  /// demand a worker computed is the demand cost() would have derived.
  double cost_terms(double area, double wirelength,
                    const std::vector<std::pair<std::string, int>>* demand,
                    AnnealResult* stats) {
    double th = 1.0;
    if (use_throughput_) {
      WP_REQUIRE(demand != nullptr,
                 "throughput-weighted cost needs a demand vector");
      th = throughput(*demand, stats);
    }
    return combine_cost(options_, area, wirelength, th);
  }

 private:
  double throughput(const std::vector<std::pair<std::string, int>>& demand,
                    AnnealResult* stats) {
    std::string key;
    for (const auto& [label, rs] : demand) {
      key += label;
      key += ':';
      key += std::to_string(rs);
      key += ';';
    }
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (stats) ++stats->throughput_cache_hits;
      return it->second;
    }
    WP_SPAN("anneal/throughput");
    const auto oracle_start = Clock::now();
    const double th = options_.throughput_engine != nullptr
                          ? options_.throughput_engine->throughput(demand)
                          : options_.throughput_fn(demand);
    if (stats) stats->throughput_ms += ms_since(oracle_start);
    if (cache_.size() >= kMaxEntries) cache_.clear();
    cache_.emplace(std::move(key), th);
    if (stats) ++stats->throughput_evals;
    return th;
  }

  static constexpr std::size_t kMaxEntries = 1 << 16;

  const Instance& inst_;
  const AnnealOptions& options_;
  const bool use_throughput_;
  std::unordered_map<std::string, double> cache_;
};

/// The single-threaded move loop shared by kNaive/kFast/kBatched. The
/// fast engine keeps an IncrementalPacker in lockstep with `current` and
/// delta-evaluates each move; the batched engine speculates windows of
/// candidates against a pinned baseline (BatchedMoveEvaluator); the naive
/// engine re-packs from scratch. Placements are bit-identical across all
/// three, so the accept/reject stream — and hence the whole trajectory —
/// is engine-independent. Wirelength is a sequential full scan on every
/// engine: under uniform global swaps a candidate moves ~n/3 blocks,
/// touching most nets, and a hardware-prefetched pass over the net array
/// beats any dirty-set walk at that density (measured; an incremental
/// tracker was tried and lost at every instance family).
void run_serial_loop(const Instance& inst, const AnnealOptions& options,
                     CostModel& model, SequencePair& current, Rng& rng,
                     AnnealResult& best) {
  const bool fast = options.pack_engine == PackEngine::kFast;
  const bool batched = options.pack_engine == PackEngine::kBatched;
  const auto initial_pack_start = Clock::now();
  std::optional<IncrementalPacker> packer;
  std::optional<BatchedMoveEvaluator> evaluator;
  {
    WP_SPAN("anneal/pack");
    if (fast) packer.emplace(inst, current);
    if (batched) {
      BatchOptions batch;
      batch.batch_size = options.speculation_batch;
      evaluator.emplace(inst, current, batch);
    }
  }
  Placement scratch;
  if (!fast && !batched) scratch = pack(inst, current);
  best.pack_ms += ms_since(initial_pack_start);
  const Placement* placement = batched ? &evaluator->placement()
                               : fast  ? &packer->placement()
                                       : &scratch;
  double wirelength = total_wirelength(inst, *placement);
  double current_cost = model.cost(*placement, wirelength, &best);

  best.sequence_pair = current;
  best.placement = *placement;
  best.cost = current_cost;

  double temperature = options.initial_temperature *
                       std::max(current_cost, 1e-9);
  for (int it = 0; it < options.iterations; ++it) {
    const AppliedMove move = random_move(current, rng);
    const auto pack_start = Clock::now();
    const Placement* candidate;
    if (batched) {
      candidate = &evaluator->apply(move);
    } else if (fast) {
      candidate = &packer->apply(move);
    } else {
      scratch = pack(inst, current);
      candidate = &scratch;
    }
    best.pack_ms += ms_since(pack_start);
    wirelength = total_wirelength(inst, *candidate);
    const double cost = model.cost(*candidate, wirelength, &best);
    ++best.evaluations;
    const double delta = cost - current_cost;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current_cost = cost;
      ++best.accepted_moves;
      if (batched) evaluator->commit();
      if (cost < best.cost) {
        best.cost = cost;
        best.sequence_pair = current;
        best.placement = *candidate;
      }
    } else {
      undo_move(current, move);
      if (batched) {
        evaluator->revert();
      } else if (fast) {
        packer->revert();
      }
    }
    temperature *= options.cooling;
  }

  if (batched) {
    const BatchedMoveEvaluator::Stats& batch_stats = evaluator->stats();
    best.batch_persistent_evals = batch_stats.persistent_evals;
    best.batch_prime_evals = batch_stats.prime_evals;
    best.batch_full_packs = batch_stats.full_packs;
    best.batch_index_rebuilds = batch_stats.index_rebuilds;
    best.batch_reprime_saved = batch_stats.reprime_positions_saved;
  }
}

/// The kParallel move loop: speculation windows fanned across the pool,
/// retired serially. Mirrors the serial loop decision for decision — each
/// candidate's cost is assembled from worker-computed ingredients
/// (cost_terms), the Metropolis test consumes the pre-drawn uniform, and
/// on acceptance the RNG is rewound to the snapshot serial execution
/// would have left behind — so the trajectory, the oracle query stream
/// and every draw after the run are bit-identical to the serial engines.
void run_parallel_window(const Instance& inst, const AnnealOptions& options,
                         CostModel& model, SequencePair& current, Rng& rng,
                         AnnealResult& best) {
  ThreadPool& pool =
      options.eval_pool != nullptr ? *options.eval_pool : ThreadPool::shared();
  ParallelWindowOptions popts;
  popts.window = options.parallel_window;
  popts.batch.batch_size = options.speculation_batch;
  popts.want_demand = options.weight_throughput > 0.0;
  popts.delay_model = options.delay_model;
  const auto initial_pack_start = Clock::now();
  std::optional<ParallelWindowEvaluator> evaluator;
  {
    WP_SPAN("anneal/pack");
    evaluator.emplace(inst, current, &pool, popts);
  }
  best.pack_ms += ms_since(initial_pack_start);
  const double initial_wl = total_wirelength(inst, evaluator->placement());
  double current_cost = model.cost(evaluator->placement(), initial_wl, &best);

  best.sequence_pair = current;
  best.placement = evaluator->placement();
  best.cost = current_cost;

  double temperature =
      options.initial_temperature * std::max(current_cost, 1e-9);
  int it = 0;
  while (it < options.iterations) {
    const std::size_t k =
        std::min(evaluator->window(),
                 static_cast<std::size_t>(options.iterations - it));
    const auto pack_start = Clock::now();
    const std::vector<SpeculativeCandidate>& window =
        evaluator->speculate(current, rng, k);
    best.pack_ms += ms_since(pack_start);
    bool committed = false;
    for (std::size_t t = 0; t < k && !committed; ++t) {
      const SpeculativeCandidate& cand = window[t];
      const double cost = model.cost_terms(
          cand.area, cand.wirelength,
          popts.want_demand ? &cand.demand : nullptr, &best);
      ++best.evaluations;
      ++it;
      const double delta = cost - current_cost;
      if (delta <= 0 ||
          cand.accept_u < std::exp(-delta / std::max(temperature, 1e-12))) {
        current_cost = cost;
        ++best.accepted_moves;
        apply_move(current, cand.move);
        // Rewind to the serial stream position: a delta <= 0 accept never
        // drew its acceptance uniform, a delta > 0 accept consumed it.
        rng = delta <= 0 ? cand.rng_after_move : cand.rng_after_uniform;
        const auto commit_start = Clock::now();
        evaluator->commit(t);
        best.pack_ms += ms_since(commit_start);
        if (cost < best.cost) {
          best.cost = cost;
          best.sequence_pair = current;
          best.placement = evaluator->placement();
        }
        committed = true;
      }
      temperature *= options.cooling;
    }
    // Full-window rejection: every rejection consumed its uniform, so the
    // RNG already sits at the post-window serial position.
    if (!committed) evaluator->discard();
  }

  const ParallelWindowEvaluator::Stats& stats = evaluator->stats();
  best.parallel_windows = stats.windows;
  best.parallel_drawn = stats.drawn;
  best.parallel_wasted = stats.wasted;
}

}  // namespace

double placement_cost(const Instance& inst, const Placement& placement,
                      const AnnealOptions& options, double* area_out,
                      double* wl_out, double* th_out) {
  const double area = placement.area();
  const double wl = total_wirelength(inst, placement);
  double th = 1.0;
  if (options.weight_throughput > 0.0) {
    WP_REQUIRE(options.throughput_engine != nullptr ||
                   static_cast<bool>(options.throughput_fn),
               "throughput weight set but neither throughput_engine nor "
               "throughput_fn provided");
    const auto demand = rs_demand(inst, placement, options.delay_model);
    th = options.throughput_engine != nullptr
             ? options.throughput_engine->throughput(demand)
             : options.throughput_fn(demand);
  }
  if (area_out) *area_out = area;
  if (wl_out) *wl_out = wl;
  if (th_out) *th_out = th;
  return combine_cost(options, area, wl, th);
}

AnnealResult anneal(const Instance& inst, const AnnealOptions& options) {
  WP_SPAN("anneal/run");
  WP_REQUIRE(inst.blocks.size() >= 2, "need at least two blocks");
  WP_REQUIRE(options.iterations > 0, "need at least one iteration");
  const std::uint64_t run_start_ns = obs::now_ns();
  wp::Rng rng(options.seed);

  AnnealResult best;
  best.seed = options.seed;
  const graph::ThroughputEngine::Stats engine_before =
      options.throughput_engine != nullptr ? options.throughput_engine->stats()
                                           : graph::ThroughputEngine::Stats{};
  CostModel model(inst, options);
  SequencePair current = SequencePair::random(inst.blocks.size(), rng);

  if (options.pack_engine == PackEngine::kParallel) {
    run_parallel_window(inst, options, model, current, rng, best);
  } else {
    run_serial_loop(inst, options, model, current, rng, best);
  }

  placement_cost(inst, best.placement, options, &best.area,
                 &best.wirelength, &best.throughput);
  if (options.throughput_engine != nullptr) {
    const graph::ThroughputEngine::Stats after =
        options.throughput_engine->stats();
    best.engine_incremental =
        after.incremental() - engine_before.incremental();
    best.engine_fallbacks = after.fallbacks - engine_before.fallbacks;
  }
  // One flush per run (not per move): the registry sees the aggregate at
  // hot-loop-free cost.
  AnnealMetrics& metrics = AnnealMetrics::get();
  metrics.runs.inc();
  metrics.evaluations.add(static_cast<std::uint64_t>(best.evaluations));
  metrics.accepted_moves.add(
      static_cast<std::uint64_t>(best.accepted_moves));
  metrics.throughput_evals.add(
      static_cast<std::uint64_t>(best.throughput_evals));
  metrics.throughput_cache_hits.add(
      static_cast<std::uint64_t>(best.throughput_cache_hits));
  metrics.run_ns.record(obs::now_ns() - run_start_ns);
  return best;
}

AnnealResult anneal_parallel(const Instance& inst,
                             const ParallelAnnealOptions& options) {
  WP_REQUIRE(options.restarts > 0, "need at least one restart");
  // A ThroughputEngine is stateful and single-threaded; a pre-set
  // base.throughput_engine would be shared by every pool worker. Refuse
  // loudly instead of racing.
  WP_REQUIRE(options.base.throughput_engine == nullptr ||
                 static_cast<bool>(options.engine_factory),
             "base.throughput_engine cannot be shared across restarts — "
             "provide engine_factory for per-restart engines");
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::shared();

  const auto restarts = static_cast<std::size_t>(options.restarts);
  std::vector<AnnealResult> results(restarts);
  pool.parallel_for(0, restarts, [&](std::size_t i) {
    AnnealOptions per_restart = options.base;
    per_restart.seed = options.base.seed + i;
    std::unique_ptr<graph::ThroughputEngine> engine;
    if (options.engine_factory) {
      // A private incremental oracle per restart: the engine's Howard
      // state, mutation trail and certificate are all worker-local.
      engine = options.engine_factory();
      per_restart.throughput_engine = engine.get();
    } else if (options.throughput_factory) {
      per_restart.throughput_fn = options.throughput_factory();
    }
    results[i] = anneal(inst, per_restart);
  });

  // Deterministic reduction: scan in seed order, keep strict improvements,
  // so ties resolve to the lowest seed no matter how the restarts were
  // scheduled across workers.
  std::size_t best = 0;
  for (std::size_t i = 1; i < restarts; ++i)
    if (results[i].cost < results[best].cost) best = i;
  return std::move(results[best]);
}

}  // namespace wp::fplan
