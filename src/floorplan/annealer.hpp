// Simulated-annealing floorplanner over sequence pairs, with a cost that
// can mix area, wirelength and — the wire-pipelining twist — the system
// throughput computed from the relay stations each placement implies.
// An area-driven run and a throughput-driven run of the same instance give
// the ablation of the paper's methodology (bench_floorplan_flow).
#pragma once

#include <functional>

#include "floorplan/model.hpp"
#include "floorplan/sequence_pair.hpp"
#include "util/rng.hpp"

namespace wp::fplan {

struct AnnealOptions {
  double weight_area = 1.0;
  double weight_wirelength = 0.1;
  /// Weight on (1 - system throughput); 0 = classic area/WL floorplanning.
  double weight_throughput = 0.0;
  /// Computes the system throughput from per-connection RS demand; required
  /// when weight_throughput > 0 (typically graph min-cycle-ratio).
  std::function<double(
      const std::vector<std::pair<std::string, int>>& demand)>
      throughput_fn;
  WireDelayModel delay_model;

  int iterations = 20000;
  double initial_temperature = 1.0;
  double cooling = 0.9995;       ///< geometric cooling per iteration
  std::uint64_t seed = 42;
};

struct AnnealResult {
  SequencePair sequence_pair;
  Placement placement;
  double cost = 0;
  double area = 0;
  double wirelength = 0;
  double throughput = 1.0;  ///< only meaningful when throughput_fn is set
  int accepted_moves = 0;
  int evaluations = 0;
};

/// Runs the annealer from a random start.
AnnealResult anneal(const Instance& inst, const AnnealOptions& options);

/// Evaluates the cost terms of one placement under the options (exposed for
/// tests and reporting).
double placement_cost(const Instance& inst, const Placement& placement,
                      const AnnealOptions& options, double* area_out,
                      double* wl_out, double* th_out);

}  // namespace wp::fplan
