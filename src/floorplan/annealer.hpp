// Simulated-annealing floorplanner over sequence pairs, with a cost that
// can mix area, wirelength and — the wire-pipelining twist — the system
// throughput computed from the relay stations each placement implies.
// An area-driven run and a throughput-driven run of the same instance give
// the ablation of the paper's methodology (bench_floorplan_flow).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "floorplan/model.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/sequence_pair.hpp"
#include "util/rng.hpp"

namespace wp {
class ThreadPool;
}

namespace wp::graph {
class ThroughputEngine;
}

namespace wp::fplan {

/// Signature of the system-throughput oracle the annealer consults.
using ThroughputFn = std::function<double(
    const std::vector<std::pair<std::string, int>>& demand)>;

struct AnnealOptions {
  double weight_area = 1.0;
  double weight_wirelength = 0.1;
  /// Weight on (1 - system throughput); 0 = classic area/WL floorplanning.
  double weight_throughput = 0.0;
  /// Computes the system throughput from per-connection RS demand; required
  /// when weight_throughput > 0 (typically graph min-cycle-ratio) unless
  /// `throughput_engine` is set.
  ThroughputFn throughput_fn;
  /// Incremental throughput oracle (non-owning). When set it takes
  /// precedence over throughput_fn: the annealer queries it directly —
  /// results are bit-identical to a fresh min-cycle-ratio solve per demand
  /// (the engine's exact-fallback contract) — and records its
  /// hit/fallback counters in AnnealResult. Engines are stateful and not
  /// thread-safe: one engine per concurrent run (anneal_parallel spawns
  /// one per restart via ParallelAnnealOptions::engine_factory).
  graph::ThroughputEngine* throughput_engine = nullptr;
  WireDelayModel delay_model;

  int iterations = 20000;
  double initial_temperature = 1.0;
  double cooling = 0.9995;       ///< geometric cooling per iteration
  std::uint64_t seed = 42;
  /// Packing implementation for the move loop. All engines yield
  /// bit-identical placements (and therefore identical annealing
  /// trajectories under a fixed seed): kNaive re-runs the O(n²) relaxation
  /// per move and stays the differential oracle, kFast delta-evaluates
  /// moves with the IncrementalPacker, kBatched (the default) runs the
  /// speculative BatchedMoveEvaluator — windows of candidates share one
  /// pinned baseline, rejected candidates cost O(dirty·polylog n) via the
  /// persistent dominance index — and kParallel fans each speculation
  /// window's candidate evaluations across a thread pool
  /// (ParallelWindowEvaluator) while retiring acceptances serially, so
  /// the trajectory stays bit-identical at every thread count.
  PackEngine pack_engine = PackEngine::kBatched;
  /// Speculation-window cap K for kBatched (BatchOptions::batch_size):
  /// how many candidates may share one baseline before the window closes.
  /// Trajectory-invariant — K only moves cost, never results.
  std::size_t speculation_batch = 8;
  /// kParallel only: pool the window evaluations fan over; nullptr uses
  /// ThreadPool::shared(). When the anneal itself already runs on a worker
  /// of this pool (anneal_parallel restarts, pooled ensembles), the
  /// fan-out degrades to inline evaluation on that worker — correct and
  /// deterministic, the outer parallelism owns the cores.
  wp::ThreadPool* eval_pool = nullptr;
  /// kParallel only: speculation-window size K per fan-out; 0 auto-scales
  /// to twice the pool width. Trajectory-invariant — K moves the
  /// speculation-efficiency/parallelism trade, never results.
  std::size_t parallel_window = 0;
};

struct AnnealResult {
  SequencePair sequence_pair;
  Placement placement;
  double cost = 0;
  double area = 0;
  double wirelength = 0;
  double throughput = 1.0;  ///< only meaningful when throughput_fn is set
  int accepted_moves = 0;
  int evaluations = 0;
  /// Full throughput-oracle calls vs. demands served from the memo cache;
  /// most rejected moves leave the RS demand untouched, so the expensive
  /// min-cycle-ratio query is skipped for them.
  int throughput_evals = 0;
  int throughput_cache_hits = 0;
  /// ThroughputEngine counter deltas for this run (zeros when the run used
  /// a plain throughput_fn): oracle queries resolved incrementally
  /// (unchanged demand, or the dual certificate held/repaired) vs cold
  /// certified re-solves. incremental + fallbacks equals the engine
  /// queries the run issued.
  std::uint64_t engine_incremental = 0;
  std::uint64_t engine_fallbacks = 0;
  /// BatchedMoveEvaluator path counters for this run (zeros for the other
  /// engines): candidates served by the persistent dominance index vs the
  /// incrementally-primed shared Fenwick trees vs full repacks, dominance
  /// rebuilds paid, and the Γ− prime positions the batched paths skipped
  /// relative to a per-candidate from-scratch prime.
  std::uint64_t batch_persistent_evals = 0;
  std::uint64_t batch_prime_evals = 0;
  std::uint64_t batch_full_packs = 0;
  std::uint64_t batch_index_rebuilds = 0;
  std::uint64_t batch_reprime_saved = 0;
  /// ParallelWindowEvaluator accounting for this run (zeros for the other
  /// engines): windows fanned, candidates evaluated past the commit point
  /// (speculation the serial trajectory never consumed — the wasted-work
  /// price of the parallel fan-out). Deterministic in (instance, seed, K);
  /// independent of the thread count, so cross-thread-count equality
  /// tests may compare them. parallel_drawn - parallel_wasted ==
  /// evaluations always holds.
  std::uint64_t parallel_windows = 0;
  std::uint64_t parallel_drawn = 0;
  std::uint64_t parallel_wasted = 0;
  /// Wall-clock breakdown (informational, never compared): time inside
  /// packing calls and inside the throughput oracle, for the bench
  /// tables/JSON showing each stage's share of the anneal.
  double pack_ms = 0.0;
  double throughput_ms = 0.0;
  std::uint64_t seed = 0;  ///< seed this restart ran with
};

/// Runs the annealer from a random start.
AnnealResult anneal(const Instance& inst, const AnnealOptions& options);

struct ParallelAnnealOptions {
  /// Options shared by every restart. Restart i runs with seed
  /// `base.seed + i`, so the restart set is reproducible from one master
  /// seed and matches the equivalent sequential best-of loop exactly.
  AnnealOptions base;
  int restarts = 8;
  /// Pool to fan the restarts over; nullptr uses ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// When set, called once per restart to build a private throughput
  /// oracle, overriding base.throughput_fn. Required for stateful oracles
  /// (e.g. graph::ThroughputEvaluator with its warm-started Howard policy),
  /// which must not be shared across worker threads.
  std::function<ThroughputFn()> throughput_factory;
  /// When set, called once per restart to build that restart's private
  /// incremental throughput engine (overrides base.throughput_engine and
  /// throughput_factory). The engine lives for the duration of the
  /// restart; its counters land in the restart's AnnealResult.
  std::function<std::unique_ptr<graph::ThroughputEngine>()> engine_factory;
};

/// Runs `restarts` independently-seeded annealing restarts on the pool and
/// returns the best result. Selection is deterministic: strictly lower cost
/// wins, ties go to the lowest seed — bit-identical to running the restarts
/// sequentially through anneal() and reducing in seed order.
AnnealResult anneal_parallel(const Instance& inst,
                             const ParallelAnnealOptions& options);

/// Evaluates the cost terms of one placement under the options (exposed for
/// tests and reporting).
double placement_cost(const Instance& inst, const Placement& placement,
                      const AnnealOptions& options, double* area_out,
                      double* wl_out, double* th_out);

}  // namespace wp::fplan
