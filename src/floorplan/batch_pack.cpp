#include "floorplan/batch_pack.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wp::fplan {

namespace {

/// pack/batch/* counters. Candidates run millions of times per anneal, so
/// the record path is one relaxed fetch_add per event — same discipline as
/// PackMetrics in pack_engine.cpp.
struct BatchMetrics {
  obs::Counter& candidates;
  obs::Counter& commits;
  obs::Counter& windows;
  obs::Counter& persistent_evals;
  obs::Counter& prime_evals;
  obs::Counter& full_packs;
  obs::Counter& index_rebuilds;
  obs::Counter& reprime_positions_saved;
  obs::Histogram& window_len;

  static BatchMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static BatchMetrics metrics{
        registry.counter("pack/batch/candidates"),
        registry.counter("pack/batch/commits"),
        registry.counter("pack/batch/windows"),
        registry.counter("pack/batch/persistent_evals"),
        registry.counter("pack/batch/prime_evals"),
        registry.counter("pack/batch/full_packs"),
        registry.counter("pack/batch/index_rebuilds"),
        registry.counter("pack/batch/reprime_positions_saved"),
        registry.histogram("pack/batch/window_len")};
    return metrics;
  }
};

/// Fused two-axis full relaxation — the same recurrence as pack_engine's
/// evaluate_pass with from = 0, used for baselines and the fallback full
/// repack. One walk over Γ− drives both axis trees (the per-position
/// block/key lookups are shared), `widths`/`heights` are flat per-block
/// extent arrays (Block structs carry a name string, so walking them
/// trashes the hot loop's locality), and the bounding box falls out of
/// the same coord+extent reaches the trees are fed — no separate O(n)
/// bbox loop. This loop is the annealer's single hottest kernel: under
/// uniform global swaps most candidates dirty most of the suffix, so the
/// full repack is the common case, not the fallback.
void full_pass_xy(const std::vector<int>& negative,
                  const std::vector<std::size_t>& pos_p,
                  const std::vector<double>& widths,
                  const std::vector<double>& heights,
                  wp::fplan::detail::MaxFenwick& fx,
                  wp::fplan::detail::MaxFenwick& fy, Placement& placement) {
  const std::size_t n = negative.size();
  fx.reset(n);
  fy.reset(n);
  double width = 0.0;
  double height = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const auto b = static_cast<std::size_t>(negative[k]);
    const std::size_t kx = pos_p[b];
    const std::size_t ky = n - 1 - kx;
    const double x = fx.prefix_max(kx);
    const double y = fy.prefix_max(ky);
    placement.x[b] = x;
    placement.y[b] = y;
    const double x_reach = x + widths[b];
    const double y_reach = y + heights[b];
    fx.update(kx, x_reach);
    fy.update(ky, y_reach);
    width = std::max(width, x_reach);
    height = std::max(height, y_reach);
  }
  placement.width = width;
  placement.height = height;
}

}  // namespace

namespace detail {

void DominanceIndex::build(const std::vector<std::uint32_t>& leaf_keys,
                           const std::vector<double>& leaf_values) {
  WP_REQUIRE(leaf_keys.size() == leaf_values.size(),
             "dominance index: key/value length mismatch");
  n_ = leaf_keys.size();
  padded_ = 1;
  while (padded_ < std::max<std::size_t>(n_, 1)) padded_ <<= 1;
  levels_ = 1;
  for (std::size_t m = padded_; m > 1; m >>= 1) ++levels_;
  const std::size_t total = levels_ * padded_;
  if (keys_.size() < total) {
    keys_.resize(total);
    vals_.resize(total);
    pmax_.resize(total);
  }

  // Level 0: one leaf per slab (trivially key-sorted), padded with a
  // sentinel key no real query bound can reach and the identity value.
  for (std::size_t i = 0; i < n_; ++i) {
    WP_REQUIRE(leaf_keys[i] < std::numeric_limits<std::uint32_t>::max(),
               "dominance index: key collides with the padding sentinel");
    keys_[i] = leaf_keys[i];
    vals_[i] = leaf_values[i];
  }
  for (std::size_t i = n_; i < padded_; ++i) {
    keys_[i] = std::numeric_limits<std::uint32_t>::max();
    vals_[i] = 0.0;
  }

  // Merge children pairwise: the slab of 2^ℓ leaves at level ℓ is the
  // key-sorted merge of its two level ℓ−1 halves.
  for (std::size_t lvl = 1; lvl < levels_; ++lvl) {
    const std::size_t width = std::size_t{1} << lvl;
    const std::size_t child = (lvl - 1) * padded_;
    const std::size_t cur = lvl * padded_;
    for (std::size_t slab = 0; slab < padded_; slab += width) {
      std::size_t a = child + slab;
      const std::size_t a_end = a + width / 2;
      std::size_t b = a_end;
      const std::size_t b_end = child + slab + width;
      std::size_t out = cur + slab;
      while (a < a_end && b < b_end) {
        const std::size_t pick = keys_[a] <= keys_[b] ? a++ : b++;
        keys_[out] = keys_[pick];
        vals_[out] = vals_[pick];
        ++out;
      }
      for (; a < a_end; ++a, ++out) {
        keys_[out] = keys_[a];
        vals_[out] = vals_[a];
      }
      for (; b < b_end; ++b, ++out) {
        keys_[out] = keys_[b];
        vals_[out] = vals_[b];
      }
    }
  }

  // Running prefix maxima within every slab of every level; 0.0 is the
  // identity (values are non-negative coordinates plus positive extents).
  for (std::size_t lvl = 0; lvl < levels_; ++lvl) {
    const std::size_t width = std::size_t{1} << lvl;
    const std::size_t base = lvl * padded_;
    for (std::size_t slab = 0; slab < padded_; slab += width) {
      double run = 0.0;
      for (std::size_t i = base + slab; i < base + slab + width; ++i) {
        run = std::max(run, vals_[i]);
        pmax_[i] = run;
      }
    }
  }
}

double DominanceIndex::query(std::size_t prefix,
                             std::uint32_t key_bound) const {
  WP_REQUIRE(prefix <= n_, "dominance index: prefix out of range");
  double best = 0.0;
  std::size_t offset = 0;
  std::size_t remaining = prefix;
  // Decompose [0, prefix) into left-aligned power-of-two slabs (the set
  // bits of `prefix`, high to low so offsets stay slab-aligned), answer
  // each with one binary search over its key-sorted entries.
  for (std::size_t lvl = levels_; lvl-- > 0;) {
    const std::size_t width = std::size_t{1} << lvl;
    if (remaining < width) continue;
    remaining -= width;
    const auto begin = keys_.begin() + static_cast<std::ptrdiff_t>(
                                           lvl * padded_ + offset);
    const auto split = std::lower_bound(begin,
                                        begin + static_cast<std::ptrdiff_t>(
                                                    width),
                                        key_bound);
    if (split != begin) {
      const std::size_t idx =
          lvl * padded_ + offset +
          static_cast<std::size_t>(split - begin) - 1;
      best = std::max(best, pmax_[idx]);
    }
    offset += width;
  }
  return best;
}

}  // namespace detail

BatchedMoveEvaluator::BatchedMoveEvaluator(const Instance& inst,
                                           const SequencePair& sp,
                                           const BatchOptions& options)
    : inst_(&inst), n_(inst.blocks.size()), options_(options) {
  WP_REQUIRE(options.batch_size >= 1, "batch_size must be at least 1");
  WP_REQUIRE(
      options.fallback_fraction >= 0.0 && options.fallback_fraction <= 1.0,
      "fallback_fraction must lie in [0, 1]");
  WP_REQUIRE(options.persistent_fraction >= 0.0 &&
                 options.persistent_fraction <= 1.0,
             "persistent_fraction must lie in [0, 1]");
  prime_mark_x_.resize(n_);
  prime_mark_y_.resize(n_);
  prefix_bbox_x_.resize(n_ + 1);
  prefix_bbox_y_.resize(n_ + 1);
  dirty_stamp_.assign(n_, 0);
  widths_.resize(n_);
  heights_.resize(n_);
  for (std::size_t b = 0; b < n_; ++b) {
    widths_[b] = inst.blocks[b].width;
    heights_[b] = inst.blocks[b].height;
  }
  reset(sp);
}

void BatchedMoveEvaluator::reset(const SequencePair& sp) {
  WP_REQUIRE(sp.valid(n_), "invalid sequence pair for this instance");
  sp_ = sp;
  pos_p_.resize(n_);
  pos_n_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    pos_p_[static_cast<std::size_t>(sp_.positive[k])] = k;
    pos_n_[static_cast<std::size_t>(sp_.negative[k])] = k;
  }
  placement_.x.assign(n_, 0.0);
  placement_.y.assign(n_, 0.0);
  full_pass_xy(sp_.negative, pos_p_, widths_, heights_, local_x_, local_y_,
               placement_);
  // Pre-size the trail's parking arrays: the full-repack path swaps the
  // live coordinate arrays into them before overwriting every entry.
  trail_.x_full.assign(n_, 0.0);
  trail_.y_full.assign(n_, 0.0);
  pending_ = false;
  full_diff_pending_ = false;
  window_len_ = 0;
  last_was_full_ = false;
  dirty_blocks_.clear();
  rebuild_prefix_bbox();
  invalidate_prime();
  rebuild_index();
}

std::size_t BatchedMoveEvaluator::first_dirty_position(
    const AppliedMove& move) const {
  if (move.i == move.j) return n_;
  // Tighter than IncrementalPacker's span scan. Packing processes blocks
  // in Γ− order, each with key pos_p[block]; a Γ+ swap changes the keys of
  // exactly the two swapped blocks, so every Γ− position before the
  // earlier of THEIR Γ− positions processes an unchanged (block, key)
  // stream over an unchanged prefix state — by induction its coordinate
  // is unchanged. (Blocks between the swapped Γ+ positions can still move,
  // but only at Γ− positions after that bound.) A Γ− swap changes the
  // processing order itself from the earlier swapped position. O(1),
  // where the span scan paid O(|i − j|) and returned a far smaller `from`
  // (the min over the whole span) than necessary.
  std::size_t from = n_;
  const std::size_t lo = std::min(move.i, move.j);
  const std::size_t hi = std::max(move.i, move.j);
  const auto swapped_negative_min = [&] {
    // Valid on either side of the mirror swap: the two swapped blocks sit
    // at Γ+ positions lo and hi regardless, and for kSwapBoth a swapped
    // block's Γ− position changes only if it is one of the Γ−-swapped
    // slots i/j — both ≥ lo, so the min(lo, ·) below is unaffected.
    const auto a = static_cast<std::size_t>(sp_.positive[lo]);
    const auto b = static_cast<std::size_t>(sp_.positive[hi]);
    return std::min(pos_n_[a], pos_n_[b]);
  };
  switch (move.kind) {
    case SpMove::kSwapPositive:
      from = swapped_negative_min();
      break;
    case SpMove::kSwapNegative:
      from = lo;
      break;
    case SpMove::kSwapBoth:
      from = std::min(lo, swapped_negative_min());
      break;
    case SpMove::kCount:
      break;
  }
  return from;
}

void BatchedMoveEvaluator::apply_to_mirror(const AppliedMove& move) {
  auto swap_in = [&](std::vector<int>& seq, std::vector<std::size_t>& pos) {
    std::swap(seq[move.i], seq[move.j]);
    pos[static_cast<std::size_t>(seq[move.i])] = move.i;
    pos[static_cast<std::size_t>(seq[move.j])] = move.j;
  };
  switch (move.kind) {
    case SpMove::kSwapPositive:
      swap_in(sp_.positive, pos_p_);
      break;
    case SpMove::kSwapNegative:
      swap_in(sp_.negative, pos_n_);
      break;
    case SpMove::kSwapBoth:
      swap_in(sp_.positive, pos_p_);
      swap_in(sp_.negative, pos_n_);
      break;
    case SpMove::kCount:
      break;
  }
}

const std::vector<std::uint32_t>& BatchedMoveEvaluator::dirty_blocks() {
  if (full_diff_pending_) {
    // The full-repack path deferred its baseline diff to here. Whether
    // the candidate is still pending, committed or reverted, one of
    // {placement_, trail_.x_full/y_full} holds the candidate and the
    // other the baseline (revert swaps them back), and membership in the
    // diff is symmetric — so the same compare works in every state.
    full_diff_pending_ = false;
    for (std::size_t b = 0; b < n_; ++b) {
      if (placement_.x[b] != trail_.x_full[b] ||
          placement_.y[b] != trail_.y_full[b]) {
        mark_dirty(b);
      }
    }
  }
  return dirty_blocks_;
}

void BatchedMoveEvaluator::mark_dirty(std::size_t block) {
  if (dirty_stamp_[block] != stamp_) {
    dirty_stamp_[block] = stamp_;
    dirty_blocks_.push_back(static_cast<std::uint32_t>(block));
  }
}

void BatchedMoveEvaluator::rebuild_prefix_bbox() {
  prefix_bbox_stale_ = false;
  prefix_bbox_x_[0] = 0.0;
  prefix_bbox_y_[0] = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    const auto b = static_cast<std::size_t>(sp_.negative[k]);
    prefix_bbox_x_[k + 1] =
        std::max(prefix_bbox_x_[k], placement_.x[b] + widths_[b]);
    prefix_bbox_y_[k + 1] =
        std::max(prefix_bbox_y_[k], placement_.y[b] + heights_[b]);
  }
}

void BatchedMoveEvaluator::invalidate_prime() {
  shared_x_.reset(n_);
  shared_y_.reset(n_);
  primed_to_ = 0;
}

void BatchedMoveEvaluator::rebuild_index() {
  leaf_keys_.resize(n_);
  leaf_vals_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const auto b = static_cast<std::size_t>(sp_.negative[k]);
    leaf_keys_[k] = static_cast<std::uint32_t>(pos_p_[b]);
    leaf_vals_[k] = placement_.x[b] + widths_[b];
  }
  dom_x_.build(leaf_keys_, leaf_vals_);
  for (std::size_t k = 0; k < n_; ++k) {
    const auto b = static_cast<std::size_t>(sp_.negative[k]);
    leaf_keys_[k] = static_cast<std::uint32_t>(n_ - 1 - pos_p_[b]);
    leaf_vals_[k] = placement_.y[b] + heights_[b];
  }
  dom_y_.build(leaf_keys_, leaf_vals_);
  index_stale_ = false;
  ++stats_.index_rebuilds;
  BatchMetrics::get().index_rebuilds.inc();
}

void BatchedMoveEvaluator::ensure_primed(std::size_t from) {
  // Serial cost to compare against: an IncrementalPacker primes [0, from)
  // from scratch for every candidate. Here the shared trees stay primed
  // across the window and only the |primed_to_ − from| delta is paid.
  if (primed_to_ >= from) {
    if (primed_to_ > from) {
      shared_x_.rewind(prime_mark_x_[from]);
      shared_y_.rewind(prime_mark_y_[from]);
    }
    const std::size_t rewound = primed_to_ - from;
    const std::size_t saved = from > rewound ? from - rewound : 0;
    stats_.reprime_positions_saved += saved;
    BatchMetrics::get().reprime_positions_saved.add(saved);
    primed_to_ = from;
    return;
  }
  stats_.reprime_positions_saved += primed_to_;
  BatchMetrics::get().reprime_positions_saved.add(primed_to_);
  while (primed_to_ < from) {
    const auto a = static_cast<std::size_t>(sp_.negative[primed_to_]);
    const std::size_t kx = pos_p_[a];
    prime_mark_x_[primed_to_] = shared_x_.mark();
    prime_mark_y_[primed_to_] = shared_y_.mark();
    shared_x_.update_logged(kx, placement_.x[a] + widths_[a]);
    shared_y_.update_logged(n_ - 1 - kx, placement_.y[a] + heights_[a]);
    ++primed_to_;
  }
}

void BatchedMoveEvaluator::evaluate_suffix(std::size_t from, bool use_index) {
  trail_.kind = Trail::kEval;
  trail_.x_full = placement_.x;
  trail_.y_full = placement_.y;
  local_x_.reset(n_);
  local_y_.reset(n_);
  double width_dirty = 0.0;
  double height_dirty = 0.0;
  for (std::size_t k = from; k < n_; ++k) {
    const auto b = static_cast<std::size_t>(sp_.negative[k]);
    const std::size_t kx = pos_p_[b];
    const std::size_t ky = n_ - 1 - kx;
    // Clean-prefix answer from the baseline-scoped structure, dirty-region
    // answer from the local overlay tree; their max ranges over exactly
    // the naive packer's candidate set, so the split is bitwise exact.
    const double prefix_x =
        use_index ? dom_x_.query(from, static_cast<std::uint32_t>(kx))
                  : shared_x_.prefix_max(kx);
    const double prefix_y =
        use_index ? dom_y_.query(from, static_cast<std::uint32_t>(ky))
                  : shared_y_.prefix_max(ky);
    const double xv = std::max(prefix_x, local_x_.prefix_max(kx));
    const double yv = std::max(prefix_y, local_y_.prefix_max(ky));
    if (xv != placement_.x[b]) {
      placement_.x[b] = xv;
      mark_dirty(b);
    }
    if (yv != placement_.y[b]) {
      placement_.y[b] = yv;
      mark_dirty(b);
    }
    const double x_reach = xv + widths_[b];
    const double y_reach = yv + heights_[b];
    local_x_.update(kx, x_reach);
    local_y_.update(ky, y_reach);
    width_dirty = std::max(width_dirty, x_reach);
    height_dirty = std::max(height_dirty, y_reach);
  }
  placement_.width = std::max(prefix_bbox_x_[from], width_dirty);
  placement_.height = std::max(prefix_bbox_y_[from], height_dirty);
}

void BatchedMoveEvaluator::evaluate_full_candidate() {
  trail_.kind = Trail::kEval;
  // Park the baseline by swapping, not copying: the fused pass rewrites
  // every coordinate anyway, so the stale contents never get read.
  placement_.x.swap(trail_.x_full);
  placement_.y.swap(trail_.y_full);
  full_pass_xy(sp_.negative, pos_p_, widths_, heights_, local_x_, local_y_,
               placement_);
  // Even a full repack usually moves only a subset of blocks; diffing
  // against the parked baseline keeps dirty_blocks() exact, so the report
  // means the same thing on every path — but the diff is deferred to
  // dirty_blocks() itself, so callers that never ask (the annealer) never
  // pay for it.
  full_diff_pending_ = true;
  last_was_full_ = true;
  ++stats_.full_packs;
  BatchMetrics::get().full_packs.inc();
}

void BatchedMoveEvaluator::close_window(bool accepted) {
  if (window_len_ == 0) return;
  ++stats_.windows;
  BatchMetrics::get().windows.inc();
  BatchMetrics::get().window_len.record(window_len_);
  window_len_ = 0;
  // A window that closed without a single accept is the rejection-heavy
  // regime the dominance index exists for — rebuild it now so the next
  // window's candidates take the persistent path. Demand-gated: only
  // after a qualifying candidate (dirty small enough for the persistent
  // path) actually found the index stale. Workloads whose moves never
  // produce small dirty suffixes — uniform global swaps at the tuned
  // default thresholds, most of the time — never pay a build nothing
  // would read; local-move workloads re-arm the build every time.
  if (!accepted && index_stale_ && index_demand_) {
    rebuild_index();
    index_demand_ = false;
  }
}

const Placement& BatchedMoveEvaluator::apply(const AppliedMove& move) {
  WP_REQUIRE(move.i < n_ && move.j < n_, "move indices out of range");
  BatchMetrics& metrics = BatchMetrics::get();
  if (pending_) commit();  // the annealer moving on *is* acceptance
  if (window_len_ >= options_.batch_size) close_window(false);
  ++window_len_;
  ++stats_.candidates;
  metrics.candidates.inc();

  trail_.move = move;
  trail_.kind = Trail::kNone;
  trail_.width = placement_.width;
  trail_.height = placement_.height;
  ++stamp_;
  dirty_blocks_.clear();
  full_diff_pending_ = false;
  last_was_full_ = false;
  pending_ = true;

  // Path selection and the baseline-scoped prep (bbox rebuild, shared
  // prime) happen *before* the mirror swap: they walk the baseline Γ−
  // prefix, and first_dirty_position answers the same either side of the
  // mirror (see its comment).
  const std::size_t from = first_dirty_position(move);
  const std::size_t dirty = n_ - std::min(from, n_);
  if (dirty == 0) {  // degenerate i == j move
    apply_to_mirror(move);
    return placement_;
  }
  if (static_cast<double>(dirty) >
      options_.fallback_fraction * static_cast<double>(n_)) {
    apply_to_mirror(move);
    evaluate_full_candidate();
    return placement_;
  }
  if (prefix_bbox_stale_) rebuild_prefix_bbox();
  const bool qualifies =
      static_cast<double>(dirty) <=
          options_.persistent_fraction * static_cast<double>(n_);
  if (qualifies && index_stale_) index_demand_ = true;
  const bool use_index = qualifies && !index_stale_;
  if (use_index) {
    ++stats_.persistent_evals;
    metrics.persistent_evals.inc();
    stats_.reprime_positions_saved += from;
    metrics.reprime_positions_saved.add(from);
  } else {
    ensure_primed(from);
    ++stats_.prime_evals;
    metrics.prime_evals.inc();
  }
  apply_to_mirror(move);
  evaluate_suffix(from, use_index);
  return placement_;
}

void BatchedMoveEvaluator::commit() {
  WP_REQUIRE(pending_, "commit() without a pending candidate");
  pending_ = false;
  ++stats_.commits;
  BatchMetrics::get().commits.inc();
  if (trail_.kind != Trail::kNone) {
    // The candidate is the new baseline: every baseline-scoped structure
    // now describes the wrong state. The shared prime restarts here; the
    // prefix-bbox and dominance-index rebuilds are deferred until a
    // suffix-path candidate (resp. a rejection-heavy window close)
    // actually needs them — accept-heavy full-repack phases never pay.
    prefix_bbox_stale_ = true;
    invalidate_prime();
    index_stale_ = true;
  }
  close_window(true);
}

void BatchedMoveEvaluator::revert() {
  WP_REQUIRE(pending_, "revert() without a pending candidate");
  pending_ = false;
  if (trail_.kind == Trail::kEval) {
    placement_.x.swap(trail_.x_full);
    placement_.y.swap(trail_.y_full);
  }
  placement_.width = trail_.width;
  placement_.height = trail_.height;
  apply_to_mirror(trail_.move);  // moves are involutions
}

}  // namespace wp::fplan
