// Batched speculative packing: sub-linear candidate evaluation for the
// annealer's move loop.
//
// The IncrementalPacker (pack_engine.hpp) made a move O(n log n) instead of
// O(n²), but every candidate still re-primes a Fenwick tree over the clean
// Γ− prefix — for a *rejected* move that prefix work is pure waste, and at
// annealing temperatures where most moves are rejected it dominates.
// BatchedMoveEvaluator removes it two ways, both pinned to the same law as
// everything else in this stack: placements bitwise equal to naive pack().
//
// 1. Speculation windows over a pinned baseline. Candidates are grouped
//    into windows of up to K = BatchOptions::batch_size moves that are all
//    evaluated against one shared baseline placement (the last committed
//    state). While a window is open, every baseline-derived structure —
//    the dominance index, the incrementally-primed shared Fenwick trees,
//    the prefix bounding-box arrays — stays valid and is reused from one
//    candidate to the next, so the per-candidate cost is proportional to
//    the dirty suffix, not to n. Acceptance decisions stay strictly
//    sequential (the annealer's RNG draws its acceptance uniform only
//    after seeing each candidate's cost), so the accepted trajectory is
//    bit-identical to the serial annealer: batching amortizes the
//    *baseline-scoped* work across the window, never the decisions.
//
// 2. A persistent 2D dominance index over (Γ−, Γ+) positions. The clean-
//    prefix question a candidate asks is "max of coord+extent over blocks
//    at Γ− position < from whose Γ+ key is < q". detail::DominanceIndex
//    answers it in O(log² n) from a merge-tree built once per baseline:
//    level ℓ stores, for each aligned slab of 2^ℓ consecutive Γ− positions,
//    the slab's entries sorted by Γ+ key with running prefix maxima. A
//    prefix [0, from) decomposes into ≤ log n aligned slabs (the set bits
//    of `from`), each answered by one binary search. A rejected candidate
//    with dirty suffix d therefore costs O(d·log² n) — no prefix re-prime
//    at all. The index survives every rejected candidate and every
//    rewind; only a *committed* move (a new baseline) invalidates it, and
//    rebuilds are deferred until a window closes rejection-heavy *and* a
//    qualifying candidate has actually found the index stale — exactly
//    the regime where the build amortizes.
//
// Path selection per candidate (all bit-identical, purely a cost trade):
//   - dirty == 0 (degenerate i == j move): nothing to do;
//   - dirty > fallback_fraction·n: full repack (same trade as
//     IncrementalPacker);
//   - index fresh and dirty ≤ persistent_fraction·n: persistent path —
//     dominance-index queries + a small local Fenwick over the dirty
//     suffix only;
//   - otherwise: classic path — shared Fenwick trees primed exactly to
//     [0, from), maintained *incrementally* across candidates with
//     update_logged()/rewind() so consecutive candidates pay only the
//     |from − previous from| prime delta.
//
// Why the overlay split is exact: for every SpMove kind, blocks in the
// clean Γ− prefix [0, from) keep their Γ− positions, their Γ+ keys and
// their coordinates (first_dirty_position guarantees swapped blocks land
// at Γ− ≥ from), so baseline-keyed prefix answers are valid mid-candidate.
// A dirty block's coordinate is then max(prefix answer, local dirty-region
// Fenwick answer) — the same multiset of IEEE doubles the naive relaxation
// maxes over (∪ {0.0}, the identity), and IEEE max over non-negative
// doubles is order- and grouping-independent, so the result is bitwise
// identical however the set is split. The differential suite
// (tests/test_pack_equivalence.cpp) enforces this against naive pack()
// for every path and every window size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "floorplan/model.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/sequence_pair.hpp"

namespace wp::fplan {

namespace detail {

/// Static prefix-dominance index over one packing axis: leaf k holds the
/// baseline (Γ+ key, coord+extent) of the block at Γ− position k.
/// query(prefix, key_bound) returns the max value over leaves [0, prefix)
/// with key < key_bound, 0.0 when empty — exactly the clean-prefix
/// question of the weighted-LCS relaxation, in O(log² n).
///
/// Rebuilds reuse the level buffers (the structure is "versioned" the same
/// way MaxFenwick is epoch-stamped: storage persists, contents are stamped
/// over), so a rebuild is an allocation-free O(n log n) merge pass after
/// the first.
class DominanceIndex {
 public:
  /// Rebuilds from per-leaf keys/values given in Γ− order. Keys must be
  /// < UINT32_MAX (padding sentinel). Values must be non-negative.
  void build(const std::vector<std::uint32_t>& leaf_keys,
             const std::vector<double>& leaf_values);

  /// Max value over leaves [0, prefix) whose key < key_bound; 0.0 if none.
  double query(std::size_t prefix, std::uint32_t key_bound) const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;       ///< leaf count (logical)
  std::size_t padded_ = 0;  ///< leaves padded to a power of two
  std::size_t levels_ = 0;  ///< log2(padded_) + 1
  /// Flat per-level storage: level ℓ occupies [ℓ·padded_, (ℓ+1)·padded_),
  /// laid out slab-by-slab in leaf order; each slab is sorted by key.
  std::vector<std::uint32_t> keys_;
  std::vector<double> vals_;  ///< raw values (build input for level ℓ+1)
  std::vector<double> pmax_;  ///< running prefix max within each slab
};

}  // namespace detail

/// Tuning knobs for the batched evaluator. Every setting is trajectory-
/// safe: paths differ only in cost, never in results.
struct BatchOptions {
  /// Speculation-window cap K: how many candidates may share one baseline
  /// before the window is closed (and a stale dominance index rebuilt).
  std::size_t batch_size = 8;
  /// Dirty-suffix share of n above which a candidate takes the full-repack
  /// path (same trade as IncrementalPacker::fallback_fraction, but tuned
  /// much lower: the fused two-axis full pass is a sequential kernel at
  /// ~n·30ns, while a suffix evaluation pays the shared-prime delta plus
  /// ~100ns per dirty position — measured crossover near dirty ≈ 0.2n.
  /// Under uniform global swaps most candidates dirty most of the suffix,
  /// so the full pass is the common case and the suffix machinery earns
  /// its keep on the minority of prefix-preserving moves).
  double fallback_fraction = 0.15;
  /// Dirty-suffix share of n up to which a fresh dominance index is
  /// preferred over the incrementally-primed shared Fenwick trees. The
  /// O(log² n) query costs ~25x a primed prefix_max, but skips the prime
  /// entirely — it pays only when the dirty suffix is far smaller than
  /// the clean prefix it would have primed.
  double persistent_fraction = 0.05;
};

/// Speculative per-move packing against a pinned baseline. Usage mirrors
/// IncrementalPacker, with an explicit commit for accepted moves:
///
///   BatchedMoveEvaluator eval(inst, sp);
///   AppliedMove move = random_move(sp, rng);
///   const Placement& candidate = eval.apply(move);   // speculative
///   ... accept: eval.commit();                        // new baseline
///   ... reject: undo_move(sp, move); eval.revert();   // baseline kept
///
/// apply() while a candidate is pending commits it first (the annealer
/// moving on *is* acceptance — the same implicit-accept ergonomics as
/// IncrementalPacker's apply-after-apply). commit()/revert() without a
/// pending candidate die loudly.
class BatchedMoveEvaluator {
 public:
  explicit BatchedMoveEvaluator(const Instance& inst, const SequencePair& sp,
                                const BatchOptions& options = {});

  const Placement& placement() const { return placement_; }
  const SequencePair& sequence_pair() const { return sp_; }

  /// Evaluates `move` speculatively against the current baseline. The
  /// caller must have applied the same move to its own SequencePair
  /// (random_move already did). Returns the candidate placement — bitwise
  /// equal to pack(inst, caller's sp).
  const Placement& apply(const AppliedMove& move);

  /// Accepts the pending candidate: it becomes the new baseline.
  void commit();

  /// Rejects the pending candidate: the baseline placement is restored.
  /// The caller must have undone the move on its own pair (undo_move).
  void revert();

  /// Full resynchronisation to an arbitrary sequence pair (new baseline).
  void reset(const SequencePair& sp);

  /// Blocks whose coordinates changed in the pending/last candidate
  /// (unique, unspecified order). Exact on every evaluation path: full
  /// repacks diff against the parked baseline, so incremental consumers
  /// can always work from this list. The full-repack diff is computed on
  /// first call (valid until the next apply()/reset()), so callers that
  /// never ask never pay it — hence non-const.
  const std::vector<std::uint32_t>& dirty_blocks();
  /// True when the pending/last candidate was evaluated by a full repack
  /// (the fallback path) — a cost signal, not a correctness one;
  /// dirty_blocks() is exact either way.
  bool last_was_full() const { return last_was_full_; }

  /// Evaluation-path counters (bench/test introspection); mirrored into
  /// the obs registry under pack/batch/*.
  struct Stats {
    std::uint64_t candidates = 0;        ///< apply() calls
    std::uint64_t commits = 0;           ///< accepted candidates
    std::uint64_t windows = 0;           ///< speculation windows closed
    std::uint64_t persistent_evals = 0;  ///< dominance-index path
    std::uint64_t prime_evals = 0;       ///< shared incremental-prime path
    std::uint64_t full_packs = 0;        ///< fallback full repacks
    std::uint64_t index_rebuilds = 0;    ///< dominance-index builds
    /// Γ− prime positions *not* re-primed thanks to incremental prime
    /// maintenance and the dominance index (vs an IncrementalPacker that
    /// primes [0, from) from scratch every candidate).
    std::uint64_t reprime_positions_saved = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Trail {
    AppliedMove move;
    /// kNone: degenerate move, nothing to restore. kEval: the baseline
    /// coordinate arrays are parked in x_full/y_full (a bulk copy is ~two
    /// cache-line streams — far cheaper than a per-coordinate undo log at
    /// annealing dirty sizes) and revert() swaps them back.
    enum Kind { kNone, kEval } kind = kNone;
    std::vector<double> x_full, y_full;
    double width = 0.0;
    double height = 0.0;
  };

  std::size_t first_dirty_position(const AppliedMove& move) const;
  void apply_to_mirror(const AppliedMove& move);
  void evaluate_full_candidate();
  void evaluate_suffix(std::size_t from, bool use_index);
  void ensure_primed(std::size_t from);
  void rebuild_index();
  void rebuild_prefix_bbox();
  void invalidate_prime();
  void close_window(bool accepted);
  void mark_dirty(std::size_t block);

  const Instance* inst_;
  std::size_t n_ = 0;
  BatchOptions options_;
  /// Flat copies of the block extents: the packing loops touch nothing
  /// else of Block, and Block carries a std::string name that would drag
  /// cold bytes through the hot loop's cache lines.
  std::vector<double> widths_, heights_;

  SequencePair sp_;                 ///< mirror of the caller's pair
  std::vector<std::size_t> pos_p_;  ///< block -> position in Γ+
  std::vector<std::size_t> pos_n_;  ///< block -> position in Γ−
  Placement placement_;

  // Baseline-scoped structures (valid until the next commit/reset):
  detail::DominanceIndex dom_x_, dom_y_;  ///< persistent prefix answers
  bool index_stale_ = true;
  bool index_demand_ = false;  ///< a qualifying candidate found it stale
  detail::MaxFenwick shared_x_, shared_y_;  ///< primed to [0, primed_to_)
  std::size_t primed_to_ = 0;
  bool prefix_bbox_stale_ = false;  ///< rebuilt lazily by suffix paths
  std::vector<std::size_t> prime_mark_x_, prime_mark_y_;  ///< per position
  /// prefix_bbox_*_[p] = max over Γ− positions [0, p) of coord+extent
  /// under the baseline — O(dirty) bounding boxes instead of O(n).
  std::vector<double> prefix_bbox_x_, prefix_bbox_y_;

  // Per-candidate scratch:
  detail::MaxFenwick local_x_, local_y_;  ///< dirty-region overlay
  Trail trail_;
  bool pending_ = false;
  std::vector<std::uint32_t> dirty_blocks_;
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t stamp_ = 0;
  bool last_was_full_ = false;
  bool full_diff_pending_ = false;  ///< full-repack diff not materialized

  // Window state:
  std::size_t window_len_ = 0;

  // Index build scratch (reused across rebuilds):
  std::vector<std::uint32_t> leaf_keys_;
  std::vector<double> leaf_vals_;

  Stats stats_;
};

}  // namespace wp::fplan
