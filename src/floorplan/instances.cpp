#include "floorplan/instances.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace wp::fplan {

Instance parse_instance(const std::string& text) {
  Instance inst;
  int line_no = 0;
  for (const auto& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& msg) {
      WP_REQUIRE(false, "instance parse error at line " +
                            std::to_string(line_no) + ": " + msg);
    };
    if (tokens[0] == "instance") {
      if (tokens.size() != 2) fail("instance expects a name");
      inst.name = tokens[1];
    } else if (tokens[0] == "block") {
      if (tokens.size() != 4) fail("block expects <name> <w> <h>");
      Block b;
      b.name = tokens[1];
      b.width = parse_double(tokens[2]);
      b.height = parse_double(tokens[3]);
      if (b.width <= 0 || b.height <= 0) fail("non-positive block extent");
      if (inst.block_index(b.name) >= 0) fail("duplicate block " + b.name);
      inst.blocks.push_back(std::move(b));
    } else if (tokens[0] == "net") {
      if (tokens.size() != 4) fail("net expects <connection> <src> <dst>");
      Net n;
      n.connection = tokens[1];
      n.src_block = inst.block_index(tokens[2]);
      n.dst_block = inst.block_index(tokens[3]);
      if (n.src_block < 0) fail("unknown block " + tokens[2]);
      if (n.dst_block < 0) fail("unknown block " + tokens[3]);
      inst.nets.push_back(std::move(n));
    } else {
      fail("unknown directive '" + tokens[0] + "'");
    }
  }
  WP_REQUIRE(!inst.blocks.empty(), "instance has no blocks");
  return inst;
}

std::string serialize_instance(const Instance& inst) {
  std::ostringstream os;
  if (!inst.name.empty()) os << "instance " << inst.name << "\n";
  for (const auto& b : inst.blocks)
    os << "block " << b.name << ' ' << b.width << ' ' << b.height << "\n";
  for (const auto& n : inst.nets)
    os << "net " << n.connection << ' '
       << inst.blocks[static_cast<std::size_t>(n.src_block)].name << ' '
       << inst.blocks[static_cast<std::size_t>(n.dst_block)].name << "\n";
  return os.str();
}

Instance cpu_instance() {
  return parse_instance(R"(
instance casu-macchiarulo-cpu
# Five blocks of the DATE'05 case study; extents in mm (130 nm scale).
block CU  1.2 1.0
block IC  2.4 2.0
block DC  2.4 2.0
block RF  1.0 0.8
block ALU 1.4 1.2
net CU-IC  CU  IC
net CU-IC  IC  CU
net CU-RF  CU  RF
net CU-AL  CU  ALU
net CU-DC  CU  DC
net RF-ALU RF  ALU
net RF-DC  RF  DC
net ALU-CU ALU CU
net ALU-RF ALU RF
net ALU-DC ALU DC
net DC-RF  DC  RF
)");
}

Instance synthetic_instance(std::size_t num_blocks, std::uint64_t seed,
                            double min_mm, double max_mm,
                            double extra_net_probability) {
  WP_REQUIRE(num_blocks >= 2, "need at least two blocks");
  WP_REQUIRE(min_mm > 0 && max_mm >= min_mm, "bad extent range");
  wp::Rng rng(seed);
  Instance inst;
  inst.name = "synthetic" + std::to_string(num_blocks) + "-" +
              std::to_string(seed);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    Block b;
    b.name = "b" + std::to_string(i);
    b.width = min_mm + rng.uniform() * (max_mm - min_mm);
    b.height = min_mm + rng.uniform() * (max_mm - min_mm);
    inst.blocks.push_back(std::move(b));
  }
  // A ring keeps the system graph strongly connected (so throughput is
  // loop-limited, the interesting regime), plus random extra nets.
  for (std::size_t i = 0; i < num_blocks; ++i) {
    Net n;
    n.connection = "ring" + std::to_string(i);
    n.src_block = static_cast<int>(i);
    n.dst_block = static_cast<int>((i + 1) % num_blocks);
    inst.nets.push_back(std::move(n));
  }
  int extra = 0;
  for (std::size_t u = 0; u < num_blocks; ++u)
    for (std::size_t v = 0; v < num_blocks; ++v) {
      if (u == v || !rng.chance(extra_net_probability)) continue;
      Net n;
      n.connection = "x" + std::to_string(extra++);
      n.src_block = static_cast<int>(u);
      n.dst_block = static_cast<int>(v);
      inst.nets.push_back(std::move(n));
    }
  return inst;
}

}  // namespace wp::fplan
