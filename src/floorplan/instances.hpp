// Floorplan instances: a GSRC/MCNC-style text parser plus embedded
// benchmark-flavoured instances (the public suites are not redistributable
// verbatim here, so deterministic look-alikes with the same block-count
// scale are generated — n10- and ami33-class — alongside the exact
// five-block instance of the paper's case study).
#pragma once

#include <string>

#include "floorplan/model.hpp"
#include "util/rng.hpp"

namespace wp::fplan {

/// Parses the simple exchange format:
///   block <name> <width> <height>
///   net   <connection> <src_block> <dst_block>
/// '#' starts a comment. Throws on malformed input.
Instance parse_instance(const std::string& text);

/// Serializes back to the exchange format (round-trips with parse).
std::string serialize_instance(const Instance& inst);

/// The paper's five-block processor with physical extents chosen so the
/// longest connections need pipelining at the default delay model: block
/// sizes in mm.
Instance cpu_instance();

/// GSRC n10-class instance: `num_blocks` soft-ish rectangles with a ring +
/// random extra connections (deterministic in `seed`).
Instance synthetic_instance(std::size_t num_blocks, std::uint64_t seed,
                            double min_mm = 0.5, double max_mm = 3.0,
                            double extra_net_probability = 0.15);

}  // namespace wp::fplan
