#include "floorplan/model.hpp"

#include <cmath>
#include <map>

#include "util/assert.hpp"

namespace wp::fplan {

int Instance::block_index(const std::string& block_name) const {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].name == block_name) return static_cast<int>(i);
  return -1;
}

double net_length(const Instance& inst, const Placement& placement,
                  const Net& net) {
  WP_REQUIRE(net.src_block >= 0 &&
                 net.src_block < static_cast<int>(inst.blocks.size()),
             "net source block out of range");
  WP_REQUIRE(net.dst_block >= 0 &&
                 net.dst_block < static_cast<int>(inst.blocks.size()),
             "net destination block out of range");
  const auto s = static_cast<std::size_t>(net.src_block);
  const auto d = static_cast<std::size_t>(net.dst_block);
  const double sx = placement.x[s] + inst.blocks[s].width / 2;
  const double sy = placement.y[s] + inst.blocks[s].height / 2;
  const double dx = placement.x[d] + inst.blocks[d].width / 2;
  const double dy = placement.y[d] + inst.blocks[d].height / 2;
  return std::abs(sx - dx) + std::abs(sy - dy);
}

double total_wirelength(const Instance& inst, const Placement& placement) {
  double total = 0;
  for (const auto& net : inst.nets) total += net_length(inst, placement, net);
  return total;
}

int relay_stations_for_length(double mm, const WireDelayModel& model) {
  WP_REQUIRE(mm >= 0, "negative wire length");
  WP_REQUIRE(model.ps_per_mm > 0 && model.clock_ps > 0,
             "delay model parameters must be positive");
  const double delay = mm * model.ps_per_mm;
  const int stages = std::max(1, static_cast<int>(std::ceil(
                                     delay / model.clock_ps - 1e-9)));
  return stages - 1;
}

std::vector<std::pair<std::string, int>> rs_demand(
    const Instance& inst, const Placement& placement,
    const WireDelayModel& model) {
  std::map<std::string, int> demand;
  for (const auto& net : inst.nets) {
    const int rs =
        relay_stations_for_length(net_length(inst, placement, net), model);
    auto [it, inserted] = demand.emplace(net.connection, rs);
    if (!inserted) it->second = std::max(it->second, rs);
  }
  return {demand.begin(), demand.end()};
}

}  // namespace wp::fplan
