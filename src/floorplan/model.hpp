// Block-level floorplanning model: hard rectangular blocks, point-to-point
// nets between block centers, half-perimeter wirelength, and the wire-delay
// model that converts routed length into a relay-station count — the
// front-end that decides how many relay stations each Table-1 connection
// needs in a real wire-pipelined SoC flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wp::fplan {

struct Block {
  std::string name;
  double width = 0;
  double height = 0;
};

/// A point-to-point net; `connection` links it to a system-graph edge label
/// (e.g. "CU-IC") so derived relay-station counts flow into the throughput
/// analysis.
struct Net {
  std::string connection;
  int src_block = -1;
  int dst_block = -1;
};

struct Instance {
  std::string name;
  std::vector<Block> blocks;
  std::vector<Net> nets;

  int block_index(const std::string& name) const;  ///< -1 if absent
};

/// A placed floorplan: lower-left coordinates per block, same order as the
/// instance's block list.
struct Placement {
  std::vector<double> x;
  std::vector<double> y;
  double width = 0;   ///< bounding box
  double height = 0;

  double area() const { return width * height; }
};

/// Manhattan center-to-center length of a net under a placement.
double net_length(const Instance& inst, const Placement& placement,
                  const Net& net);

/// Sum of net lengths (HPWL for 2-pin nets).
double total_wirelength(const Instance& inst, const Placement& placement);

/// Wire-delay model: a repeatered global wire has delay ~ ps_per_mm · L.
/// A wire whose delay exceeds one clock period must be pipelined into
/// ceil(delay / period) stages, i.e. stages-1 relay stations.
struct WireDelayModel {
  double ps_per_mm = 150.0;     ///< delay slope of a repeatered wire
  double clock_ps = 500.0;      ///< clock period (2 GHz at 130 nm-ish)
  double reachable_mm() const { return clock_ps / ps_per_mm; }
};

/// Relay stations needed by a wire of length `mm`.
int relay_stations_for_length(double mm, const WireDelayModel& model);

/// Per-connection relay-station demand of a placement: the max over the
/// connection's nets of relay_stations_for_length().
std::vector<std::pair<std::string, int>> rs_demand(
    const Instance& inst, const Placement& placement,
    const WireDelayModel& model);

}  // namespace wp::fplan
