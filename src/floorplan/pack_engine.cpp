#include "floorplan/pack_engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wp::fplan {

namespace {

/// Pack-path counters. Packs run millions of times per anneal, so the
/// record path is exactly one relaxed fetch_add per pack — no locks, no
/// registry lookups after the first call.
struct PackMetrics {
  obs::Counter& fast_packs;
  obs::Counter& delta_packs;
  obs::Counter& full_packs;

  static PackMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static PackMetrics metrics{
        registry.counter("pack/fast_packs"),
        registry.counter("pack/incremental/delta_packs"),
        registry.counter("pack/incremental/full_packs")};
    return metrics;
  }
};

}  // namespace

const char* pack_engine_name(PackEngine engine) {
  switch (engine) {
    case PackEngine::kNaive: return "naive";
    case PackEngine::kFast: return "fast";
    case PackEngine::kBatched: return "batched";
    case PackEngine::kParallel: return "parallel";
  }
  return "?";
}

namespace detail {

void MaxFenwick::reset(std::size_t size) {
  if (tree_.size() < size + 1) {
    tree_.assign(size + 1, 0.0);
    epoch_.assign(size + 1, 0);
    current_epoch_ = 0;
  }
  ++current_epoch_;
  trail_.clear();
}

void MaxFenwick::update(std::size_t index, double value) {
  for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
    if (epoch_[i] != current_epoch_) {
      epoch_[i] = current_epoch_;
      tree_[i] = value;
    } else {
      tree_[i] = std::max(tree_[i], value);
    }
  }
}

void MaxFenwick::update_logged(std::size_t index, double value) {
  for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
    if (epoch_[i] != current_epoch_) {
      trail_.push_back({i, epoch_[i], tree_[i]});
      epoch_[i] = current_epoch_;
      tree_[i] = value;
    } else if (value > tree_[i]) {
      trail_.push_back({i, epoch_[i], tree_[i]});
      tree_[i] = value;
    }
  }
}

void MaxFenwick::rewind(std::size_t mark) {
  WP_REQUIRE(mark <= trail_.size(), "rewind mark is ahead of the trail");
  while (trail_.size() > mark) {
    const TrailEntry& entry = trail_.back();
    epoch_[entry.node] = entry.epoch;
    tree_[entry.node] = entry.value;
    trail_.pop_back();
  }
}

double MaxFenwick::prefix_max(std::size_t count) const {
  double best = 0.0;
  for (std::size_t i = count; i > 0; i -= i & (~i + 1))
    if (epoch_[i] == current_epoch_) best = std::max(best, tree_[i]);
  return best;
}

}  // namespace detail

namespace {

/// Shared core of pack_fast() and the IncrementalPacker's full/suffix
/// evaluation: recompute x (and symmetrically y) for Γ− positions
/// [from, n). The Fenwick tree is keyed by Γ+ position for the x pass and
/// by the reversed Γ+ position for the y pass, so prefix_max() asks exactly
/// the naive packer's question — max over blocks earlier in Γ− whose Γ+
/// position is smaller (x) resp. larger (y).
struct PassSpec {
  bool horizontal;  ///< true: x/width, false: y/height
};

void evaluate_pass(const Instance& inst, const std::vector<int>& negative,
                   const std::vector<std::size_t>& pos_p,
                   detail::MaxFenwick& fenwick, std::size_t from,
                   PassSpec pass, std::vector<double>& coord,
                   std::vector<std::pair<std::size_t, double>>* trail) {
  const std::size_t n = negative.size();
  auto key = [&](std::size_t block) {
    return pass.horizontal ? pos_p[block] : n - 1 - pos_p[block];
  };
  auto extent = [&](std::size_t block) {
    return pass.horizontal ? inst.blocks[block].width
                           : inst.blocks[block].height;
  };
  fenwick.reset(n);
  for (std::size_t k = 0; k < from; ++k) {
    const auto a = static_cast<std::size_t>(negative[k]);
    fenwick.update(key(a), coord[a] + extent(a));
  }
  for (std::size_t k = from; k < n; ++k) {
    const auto b = static_cast<std::size_t>(negative[k]);
    const double value = fenwick.prefix_max(key(b));
    if (value != coord[b]) {
      if (trail) trail->emplace_back(b, coord[b]);
      coord[b] = value;
    }
    fenwick.update(key(b), coord[b] + extent(b));
  }
}

}  // namespace

Placement pack_fast(const Instance& inst, const SequencePair& sp) {
  PackMetrics::get().fast_packs.inc();
  const std::size_t n = inst.blocks.size();
  WP_REQUIRE(sp.valid(n), "invalid sequence pair for this instance");

  std::vector<std::size_t> pos_p(n);
  for (std::size_t k = 0; k < n; ++k)
    pos_p[static_cast<std::size_t>(sp.positive[k])] = k;

  Placement placement;
  placement.x.assign(n, 0.0);
  placement.y.assign(n, 0.0);

  detail::MaxFenwick fenwick;
  evaluate_pass(inst, sp.negative, pos_p, fenwick, 0, {true}, placement.x,
                nullptr);
  evaluate_pass(inst, sp.negative, pos_p, fenwick, 0, {false}, placement.y,
                nullptr);
  for (std::size_t b = 0; b < n; ++b) {
    placement.width =
        std::max(placement.width, placement.x[b] + inst.blocks[b].width);
    placement.height =
        std::max(placement.height, placement.y[b] + inst.blocks[b].height);
  }
  return placement;
}

IncrementalPacker::IncrementalPacker(const Instance& inst,
                                     const SequencePair& sp,
                                     double fallback_fraction)
    : inst_(&inst), n_(inst.blocks.size()),
      fallback_fraction_(fallback_fraction) {
  WP_REQUIRE(fallback_fraction >= 0.0 && fallback_fraction <= 1.0,
             "fallback_fraction must lie in [0, 1]");
  reset(sp);
}

void IncrementalPacker::reset(const SequencePair& sp) {
  WP_REQUIRE(sp.valid(n_), "invalid sequence pair for this instance");
  sp_ = sp;
  pos_p_.resize(n_);
  pos_n_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    pos_p_[static_cast<std::size_t>(sp_.positive[k])] = k;
    pos_n_[static_cast<std::size_t>(sp_.negative[k])] = k;
  }
  placement_.x.assign(n_, 0.0);
  placement_.y.assign(n_, 0.0);
  evaluate_full();
  can_revert_ = false;
}

void IncrementalPacker::evaluate_full() {
  evaluate_pass(*inst_, sp_.negative, pos_p_, fenwick_, 0, {true},
                placement_.x, nullptr);
  evaluate_pass(*inst_, sp_.negative, pos_p_, fenwick_, 0, {false},
                placement_.y, nullptr);
  refresh_bounding_box();
}

void IncrementalPacker::evaluate_suffix(std::size_t from) {
  if (from >= n_) return;  // degenerate move: nothing dirty
  evaluate_pass(*inst_, sp_.negative, pos_p_, fenwick_, from, {true},
                placement_.x, &trail_.x_delta);
  evaluate_pass(*inst_, sp_.negative, pos_p_, fenwick_, from, {false},
                placement_.y, &trail_.y_delta);
  refresh_bounding_box();
}

void IncrementalPacker::refresh_bounding_box() {
  placement_.width = 0.0;
  placement_.height = 0.0;
  for (std::size_t b = 0; b < n_; ++b) {
    placement_.width =
        std::max(placement_.width, placement_.x[b] + inst_->blocks[b].width);
    placement_.height = std::max(placement_.height,
                                 placement_.y[b] + inst_->blocks[b].height);
  }
}

std::size_t IncrementalPacker::first_dirty_position(
    const AppliedMove& move) const {
  if (move.i == move.j) return n_;
  // A Γ− swap dirties everything from the earlier swapped position: later
  // blocks keep their predecessor *sets* but may see changed upstream
  // coordinates. A Γ+ swap exchanges the Γ+ positions of two blocks, which
  // can only flip left-of/below relations among blocks whose Γ+ position
  // lies in the swapped span — find the earliest such block in Γ−.
  std::size_t from = n_;
  const auto scan_positive_span = [&](std::size_t lo, std::size_t hi) {
    std::size_t earliest = n_;
    for (std::size_t k = lo; k <= hi; ++k) {
      const auto block = static_cast<std::size_t>(sp_.positive[k]);
      earliest = std::min(earliest, pos_n_[block]);
    }
    return earliest;
  };
  const std::size_t lo = std::min(move.i, move.j);
  const std::size_t hi = std::max(move.i, move.j);
  switch (move.kind) {
    case SpMove::kSwapPositive:
      from = scan_positive_span(lo, hi);
      break;
    case SpMove::kSwapNegative:
      from = lo;
      break;
    case SpMove::kSwapBoth:
      from = std::min(lo, scan_positive_span(lo, hi));
      break;
    case SpMove::kCount:
      break;
  }
  return from;
}

void IncrementalPacker::apply_to_mirror(const AppliedMove& move) {
  auto swap_in = [&](std::vector<int>& seq, std::vector<std::size_t>& pos) {
    std::swap(seq[move.i], seq[move.j]);
    pos[static_cast<std::size_t>(seq[move.i])] = move.i;
    pos[static_cast<std::size_t>(seq[move.j])] = move.j;
  };
  switch (move.kind) {
    case SpMove::kSwapPositive:
      swap_in(sp_.positive, pos_p_);
      break;
    case SpMove::kSwapNegative:
      swap_in(sp_.negative, pos_n_);
      break;
    case SpMove::kSwapBoth:
      swap_in(sp_.positive, pos_p_);
      swap_in(sp_.negative, pos_n_);
      break;
    case SpMove::kCount:
      break;
  }
}

const Placement& IncrementalPacker::apply(const AppliedMove& move) {
  WP_REQUIRE(move.i < n_ && move.j < n_, "move indices out of range");
  apply_to_mirror(move);

  trail_.move = move;
  trail_.x_delta.clear();
  trail_.y_delta.clear();
  trail_.width = placement_.width;
  trail_.height = placement_.height;

  const std::size_t from = first_dirty_position(move);
  const std::size_t dirty = n_ - std::min(from, n_);
  if (static_cast<double>(dirty) >
      fallback_fraction_ * static_cast<double>(n_)) {
    trail_.full = true;
    trail_.x_full = placement_.x;
    trail_.y_full = placement_.y;
    evaluate_full();
    ++full_packs_;
    PackMetrics::get().full_packs.inc();
  } else {
    trail_.full = false;
    evaluate_suffix(from);
    ++delta_packs_;
    PackMetrics::get().delta_packs.inc();
  }
  can_revert_ = true;
  return placement_;
}

void IncrementalPacker::revert() {
  WP_REQUIRE(can_revert_, "revert() without a preceding apply()");
  if (trail_.full) {
    placement_.x.swap(trail_.x_full);
    placement_.y.swap(trail_.y_full);
  } else {
    for (auto it = trail_.x_delta.rbegin(); it != trail_.x_delta.rend(); ++it)
      placement_.x[it->first] = it->second;
    for (auto it = trail_.y_delta.rbegin(); it != trail_.y_delta.rend(); ++it)
      placement_.y[it->first] = it->second;
  }
  placement_.width = trail_.width;
  placement_.height = trail_.height;
  apply_to_mirror(trail_.move);  // moves are involutions
  can_revert_ = false;
}

}  // namespace wp::fplan
