// Fast sequence-pair packing engine: the O(n log n) weighted-LCS
// evaluation of Tang/Wong (match-position arrays + a Fenwick tree of
// prefix maxima over Γ+ positions) and an incremental re-evaluator that
// delta-packs annealing moves by recomputing only the dirty Γ− suffix.
//
// Bit-identity contract: both pack_fast() and IncrementalPacker produce
// Placements bitwise equal to the naive O(n²) pack(). The naive relaxation
// computes each coordinate as a max over a candidate set of x[a]+w[a]
// (resp. y[a]+h[a]) terms; the fast paths take the max over exactly the
// same set of exactly the same double terms, and IEEE max is associative
// and commutative, so evaluation order cannot change the result. The
// differential suite (tests/test_pack_equivalence.cpp) enforces this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "floorplan/model.hpp"
#include "floorplan/sequence_pair.hpp"

namespace wp::fplan {

/// Which packing implementation the annealer (and everything layered on
/// it) uses. All engines produce bitwise-identical placements; kNaive is
/// the O(n²) reference kept as the differential-testing oracle, kFast the
/// per-move O(n log n) IncrementalPacker, kBatched the speculative
/// BatchedMoveEvaluator (batch_pack.hpp) that amortizes the clean-prefix
/// work across a window of candidate moves against one pinned baseline,
/// and kParallel the ParallelWindowEvaluator (parallel_pack.hpp) that
/// additionally fans the window's candidate evaluations across a
/// ThreadPool — same trajectory, more cores.
enum class PackEngine { kNaive, kFast, kBatched, kParallel };

const char* pack_engine_name(PackEngine engine);

namespace detail {

/// Fenwick (binary-indexed) tree of prefix maxima over sequence positions.
/// Values are non-negative (coordinates plus positive extents), so 0.0 is
/// the identity and matches the naive packer's x = 0 start. reset() is
/// O(1) via epoch stamping: stale nodes are treated as empty rather than
/// cleared, so a re-pack never pays an O(n) wipe up front.
class MaxFenwick {
 public:
  void reset(std::size_t size);

  /// Raises the stored maximum at `index` (0-based) to at least `value`.
  void update(std::size_t index, double value);

  /// Max over indices [0, count); 0.0 when the range is empty.
  double prefix_max(std::size_t count) const;

  /// Like update(), but records every node it changes so rewind() can
  /// restore the tree to an earlier mark(). This is what lets the batched
  /// evaluator keep one shared tree primed to a *moving* Γ− prefix: advance
  /// with update_logged(), retreat with rewind(), never re-prime from zero.
  void update_logged(std::size_t index, double value);

  /// Trail position for a later rewind(). Only monotone while mutations go
  /// through update_logged(); reset() clears the trail and all marks.
  std::size_t mark() const { return trail_.size(); }

  /// Undoes every update_logged() recorded after `mark`, restoring both
  /// node values and epoch stamps.
  void rewind(std::size_t mark);

 private:
  struct TrailEntry {
    std::size_t node;
    std::uint64_t epoch;
    double value;
  };

  std::vector<double> tree_;
  std::vector<std::uint64_t> epoch_;
  std::uint64_t current_epoch_ = 0;
  std::vector<TrailEntry> trail_;
};

}  // namespace detail

/// Packs the sequence pair in O(n log n): blocks are processed in Γ− order
/// while a Fenwick tree keyed by Γ+ position answers the
/// max-over-predecessors query of the weighted longest-common-subsequence
/// formulation. Bitwise identical to pack().
Placement pack_fast(const Instance& inst, const SequencePair& sp);

/// Keeps a packed placement in sync with an annealer's sequence pair by
/// delta-evaluating each SpMove: only the Γ− suffix whose constraints (or
/// upstream coordinates) could have changed is recomputed, with an exact
/// fallback to a full O(n log n) repack when the dirty region covers most
/// of the instance. Mirrors the caller's SequencePair internally, so the
/// caller keeps using random_move()/undo_move() on its own copy and
/// forwards each AppliedMove here.
///
/// Cost honesty: the delta path here still re-primes the Fenwick tree over
/// the clean Γ− prefix, so a move costs O(n log n) like a full repack — the
/// delta machinery buys a smaller constant (coordinate writes, change
/// trail and revert() touch only the dirty suffix) on top of the
/// engine's real win, which is O(n log n) vs the naive O(n²) relaxation
/// per move (~8–10× at 100–150 blocks, see bench_floorplan_flow).
/// The sub-linear round lives in batch_pack.hpp: BatchedMoveEvaluator pins
/// a baseline per speculation window and answers the clean-prefix query
/// from a persistent 2D dominance index over (Γ−, Γ+) positions
/// (O(dirty·log² n) per rejected candidate, no re-prime at all), falling
/// back to a shared incrementally-primed tree (update_logged/rewind) when
/// the index is stale and to a full repack when the dirty suffix covers
/// most of the instance. This class remains the simple one-move engine and
/// the reference the batched paths are differentially tested against.
///
/// Usage (one outstanding move at a time, the annealer's shape):
///   IncrementalPacker packer(inst, sp);
///   AppliedMove move = random_move(sp, rng);
///   const Placement& candidate = packer.apply(move);
///   ... accept: keep going; reject: undo_move(sp, move); packer.revert();
class IncrementalPacker {
 public:
  /// `fallback_fraction` is the dirty-suffix share of n above which apply()
  /// abandons the delta path and repacks fully (still bit-identical; purely
  /// a cost trade). 0 forces every move through the full repack, 1 forces
  /// every move through the delta path.
  explicit IncrementalPacker(const Instance& inst, const SequencePair& sp,
                             double fallback_fraction = 0.75);

  const Placement& placement() const { return placement_; }
  const SequencePair& sequence_pair() const { return sp_; }

  /// Applies `move` to the internal sequence-pair mirror and re-evaluates
  /// the affected region. The caller must have applied the same move to its
  /// own SequencePair (random_move already did).
  const Placement& apply(const AppliedMove& move);

  /// Reverts the most recent apply() — one level deep, matching the
  /// annealer's accept/reject shape. The caller must have undone the move
  /// on its own SequencePair (undo_move).
  void revert();

  /// Full resynchronisation to an arbitrary sequence pair.
  void reset(const SequencePair& sp);

  /// Evaluation-path counters (bench/test introspection).
  std::size_t delta_packs() const { return delta_packs_; }
  std::size_t full_packs() const { return full_packs_; }

 private:
  void evaluate_full();
  void evaluate_suffix(std::size_t from);
  void refresh_bounding_box();
  std::size_t first_dirty_position(const AppliedMove& move) const;
  void apply_to_mirror(const AppliedMove& move);

  const Instance* inst_;
  std::size_t n_ = 0;
  double fallback_fraction_;
  SequencePair sp_;                 ///< mirror of the caller's pair
  std::vector<std::size_t> pos_p_;  ///< block -> position in Γ+
  std::vector<std::size_t> pos_n_;  ///< block -> position in Γ−
  Placement placement_;
  detail::MaxFenwick fenwick_;

  /// One-deep undo trail for revert().
  struct Trail {
    AppliedMove move;
    bool full = false;
    std::vector<double> x_full, y_full;                      ///< full path
    std::vector<std::pair<std::size_t, double>> x_delta;     ///< (block, old)
    std::vector<std::pair<std::size_t, double>> y_delta;
    double width = 0.0;
    double height = 0.0;
  };
  Trail trail_;
  bool can_revert_ = false;

  std::size_t delta_packs_ = 0;
  std::size_t full_packs_ = 0;
};

}  // namespace wp::fplan
