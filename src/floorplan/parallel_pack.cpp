#include "floorplan/parallel_pack.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wp::fplan {

namespace {

/// pack/parallel/* observability. Counters are bumped from the retiring
/// (serial) thread; the prime histogram is recorded from pool workers —
/// obs instruments are atomic, so that is free of coordination.
struct ParallelMetrics {
  obs::Counter& windows;
  obs::Counter& drawn;
  obs::Counter& wasted;
  obs::Counter& commits;
  obs::Histogram& prime_ns;        ///< per-arena commit resync cost
  obs::Histogram& efficiency_pct;  ///< used/drawn per retired window

  static ParallelMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static ParallelMetrics metrics{
        registry.counter("pack/parallel/windows"),
        registry.counter("pack/parallel/candidates"),
        registry.counter("pack/parallel/wasted"),
        registry.counter("pack/parallel/commits"),
        registry.histogram("pack/parallel/prime_ns"),
        registry.histogram("pack/parallel/efficiency_pct")};
    return metrics;
  }
};

}  // namespace

/// A pool slot's private evaluation state: a BatchedMoveEvaluator synced
/// to the shared baseline (its Fenwick trees, prefix-bbox table and
/// dominance index are this thread's scratch — nothing here is ever
/// touched by two workers at once, because the candidate → arena mapping
/// is the non-overlapping grain partition of parallel_for).
struct ParallelWindowEvaluator::Arena {
  BatchedMoveEvaluator eval;

  Arena(const Instance& inst, const SequencePair& sp,
        const BatchOptions& options)
      : eval(inst, sp, options) {}
};

ParallelWindowEvaluator::ParallelWindowEvaluator(
    const Instance& inst, const SequencePair& sp, ThreadPool* pool,
    const ParallelWindowOptions& options)
    : inst_(&inst), pool_(pool), options_(options) {
  WP_REQUIRE(pool_ != nullptr, "ParallelWindowEvaluator needs a pool");
  WP_REQUIRE(inst.blocks.size() >= 2, "need at least two blocks");
  const std::size_t slots = std::max<std::size_t>(1, pool_->size());
  window_ = options_.window > 0 ? options_.window
                                : std::max<std::size_t>(2, 2 * slots);
  // One arena per pool slot; more would just multiply the resync cost a
  // commit pays without adding concurrency.
  const std::size_t arenas = std::min(slots, window_);
  arenas_.reserve(arenas);
  for (std::size_t s = 0; s < arenas; ++s)
    arenas_.push_back(std::make_unique<Arena>(inst, sp, options_.batch));
  candidates_.resize(window_);
}

ParallelWindowEvaluator::~ParallelWindowEvaluator() = default;

const Placement& ParallelWindowEvaluator::placement() const {
  return arenas_.front()->eval.placement();
}

const std::vector<SpeculativeCandidate>& ParallelWindowEvaluator::speculate(
    SequencePair& sp, Rng& rng, std::size_t k) {
  WP_REQUIRE(open_ == 0, "speculate() with a window still open");
  WP_REQUIRE(k >= 1 && k <= window_, "window size out of range");
  WP_SPAN("pack/parallel/speculate");

  // Pre-draw the whole window from the serial RNG stream. Every move is
  // drawn against the baseline pair (serial rejects undo before the next
  // draw, and moves are involutions, so apply + undo reproduces that),
  // and the acceptance uniform is drawn unconditionally with the stream
  // snapshotted on both sides — the annealer rewinds to whichever
  // position serial execution would have left (see header).
  for (std::size_t t = 0; t < k; ++t) {
    SpeculativeCandidate& cand = candidates_[t];
    cand.move = random_move(sp, rng);
    cand.rng_after_move = rng;
    cand.accept_u = rng.uniform();
    cand.rng_after_uniform = rng;
    undo_move(sp, cand.move);
  }

  // Fan the evaluations. The grain partition assigns candidate i to
  // arena i / grain deterministically and without overlap, so each arena
  // is single-threaded within the fan-out; inside one arena candidates
  // run in ascending order, each speculated and reverted against the
  // shared baseline. All outputs are pure in (baseline, move): the
  // thread count cannot change a bit of them.
  const std::size_t grain = (k + arenas_.size() - 1) / arenas_.size();
  pool_->parallel_for(
      0, k,
      [this, grain](std::size_t i) {
        Arena& arena = *arenas_[i / grain];
        SpeculativeCandidate& cand = candidates_[i];
        const Placement& candidate = arena.eval.apply(cand.move);
        cand.area = candidate.area();
        cand.wirelength = total_wirelength(*inst_, candidate);
        if (options_.want_demand)
          cand.demand = rs_demand(*inst_, candidate, options_.delay_model);
        arena.eval.revert();
      },
      grain);

  open_ = k;
  stats_.drawn += k;
  ParallelMetrics::get().drawn.add(k);
  return candidates_;
}

void ParallelWindowEvaluator::commit(std::size_t t) {
  WP_REQUIRE(open_ > 0, "commit() without an open window");
  WP_REQUIRE(t < open_, "commit index past the open window");
  WP_SPAN("pack/parallel/commit");
  const AppliedMove move = candidates_[t].move;
  // Re-sync every arena to the new baseline: speculate the accepted move
  // and commit it, re-priming each arena's baseline-scoped scratch. This
  // is the per-thread prime cost a commit pays for keeping the arenas
  // independent — fanned across the pool and recorded per arena.
  ParallelMetrics& metrics = ParallelMetrics::get();
  pool_->parallel_for(
      0, arenas_.size(),
      [this, &move, &metrics](std::size_t s) {
        const std::uint64_t start_ns = obs::now_ns();
        arenas_[s]->eval.apply(move);
        arenas_[s]->eval.commit();
        metrics.prime_ns.record(obs::now_ns() - start_ns);
      },
      /*grain=*/1);
  retire(t + 1, /*committed=*/true);
}

void ParallelWindowEvaluator::discard() {
  WP_REQUIRE(open_ > 0, "discard() without an open window");
  retire(open_, /*committed=*/false);
}

void ParallelWindowEvaluator::retire(std::size_t used, bool committed) {
  const std::size_t wasted = open_ - used;
  stats_.windows += 1;
  stats_.used += used;
  stats_.wasted += wasted;
  if (committed) stats_.commits += 1;
  ParallelMetrics& metrics = ParallelMetrics::get();
  metrics.windows.inc();
  metrics.wasted.add(wasted);
  if (committed) metrics.commits.inc();
  metrics.efficiency_pct.record(used * 100 / open_);
  open_ = 0;
}

}  // namespace wp::fplan
