// Parallel speculative packing: the batched window, fanned across cores.
//
// BatchedMoveEvaluator (batch_pack.hpp) already groups candidates into
// speculation windows against one pinned baseline, but evaluates them one
// at a time on one thread. The candidates of a window are independent by
// construction — each is (baseline + one move) — which is exactly the
// shape CPU speculative execution exploits: evaluate K candidates in
// parallel, then retire them in serial order and discard everything past
// the first acceptance. ParallelWindowEvaluator does that on a
// wp::ThreadPool while keeping the repo's law intact: the accepted
// trajectory is bitwise identical to serial naive pack() at every thread
// count and every window size.
//
// Why bit-identity survives parallelism:
//
// 1. Move pre-draw. Serial annealing draws move t+1 only after rejecting
//    move t and undoing it — i.e. against the same baseline pair move t
//    was drawn against. Moves are involutions and random_move's draws
//    depend only on the block count, so the whole window's moves can be
//    pre-drawn up front (apply + undo per draw) and the draws consume the
//    exact serial RNG stream.
//
// 2. Acceptance-uniform snapshots. Serial annealing draws its Metropolis
//    uniform *conditionally* — only when delta > 0 (the accept test
//    short-circuits on delta <= 0). The evaluator therefore snapshots the
//    RNG state before and after each pre-drawn uniform; at the commit
//    point the annealer restores the snapshot serial execution would have
//    left behind (post-move for a delta <= 0 accept, post-uniform for a
//    delta > 0 accept or a full-window rejection). The stream rewinds to
//    exactly the serial position, so every later draw matches.
//
// 3. Arena evaluation. Each pool slot owns a private BatchedMoveEvaluator
//    synced to the shared baseline — per-thread Fenwick/bbox/dominance
//    scratch, no shared mutable state on the evaluation path. A
//    candidate's placement, area and wirelength are pure functions of
//    (baseline, move), and every arena inherits the batched engine's
//    bitwise-equality contract, so the values are identical no matter
//    which arena computes them. The candidate → arena mapping is the
//    deterministic grain partition of ThreadPool::parallel_for.
//
// 4. Serial retirement. The annealer scans the window's results in order,
//    completes each candidate's cost serially (the throughput oracle and
//    its memo cache are stateful and stay on the calling thread), accepts
//    the first candidate serial annealing would have accepted, commits it
//    to every arena, and discards the rest as wasted speculation. Wasted
//    candidates are the price of parallelism — counted, never observable
//    in the trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "floorplan/batch_pack.hpp"
#include "floorplan/model.hpp"
#include "floorplan/sequence_pair.hpp"
#include "util/rng.hpp"

namespace wp {
class ThreadPool;
}

namespace wp::fplan {

/// Knobs for the parallel window. Every setting is trajectory-safe: it
/// moves cost across threads, never results.
struct ParallelWindowOptions {
  /// Window size K: candidates speculated per fan-out. 0 auto-scales to
  /// twice the pool width (enough speculation depth to keep every worker
  /// busy while bounding the work wasted past the commit point).
  std::size_t window = 0;
  /// Forwarded to every per-slot arena (their internal window cap etc.).
  BatchOptions batch;
  /// Also compute each candidate's RS demand (rs_demand) in the worker,
  /// so a throughput-driven anneal keeps only the stateful oracle query on
  /// the serial path. Off for pure area/wirelength runs.
  bool want_demand = false;
  WireDelayModel delay_model;  ///< demand derivation (want_demand only)
};

/// One pre-drawn speculative candidate: the move, the RNG bookkeeping that
/// lets the annealer rewind the stream to the serial position, and the
/// worker-computed cost ingredients.
struct SpeculativeCandidate {
  AppliedMove move;
  /// RNG state after drawing the move, before the acceptance uniform —
  /// what serial execution holds when it accepts with delta <= 0.
  Rng rng_after_move{0};
  double accept_u = 0.0;  ///< pre-drawn Metropolis acceptance uniform
  /// RNG state after the acceptance uniform — what serial execution holds
  /// when it accepts with delta > 0, or after rejecting this candidate.
  Rng rng_after_uniform{0};
  // Worker-computed (pure functions of baseline + move, bitwise equal to
  // the serial evaluation):
  double area = 0.0;
  double wirelength = 0.0;
  std::vector<std::pair<std::string, int>> demand;  ///< want_demand only
};

/// Fans speculative candidate evaluation across a thread pool. Usage
/// (the annealer's kParallel loop):
///
///   ParallelWindowEvaluator eval(inst, sp, &pool, options);
///   const auto& window = eval.speculate(sp, rng, k);  // fan out
///   for (t over window) { ... serial accept test ... }
///   accepted at t: apply_move(sp, window[t].move);
///                  rng = snapshot;  eval.commit(t);
///   none accepted: eval.discard();   // rng already at serial position
///
/// Calling speculate() from a worker of the same pool (nested
/// parallelism: ensemble samples, anneal_parallel restarts) degrades to
/// inline evaluation on that worker — same results, restart/sample-level
/// parallelism already owns the cores.
class ParallelWindowEvaluator {
 public:
  ParallelWindowEvaluator(const Instance& inst, const SequencePair& sp,
                          ThreadPool* pool,
                          const ParallelWindowOptions& options = {});
  ~ParallelWindowEvaluator();

  ParallelWindowEvaluator(const ParallelWindowEvaluator&) = delete;
  ParallelWindowEvaluator& operator=(const ParallelWindowEvaluator&) = delete;

  /// The committed baseline placement (bitwise equal to pack(inst, sp) of
  /// the last committed pair).
  const Placement& placement() const;

  std::size_t slots() const { return arenas_.size(); }
  /// Resolved window size K (never 0).
  std::size_t window() const { return window_; }

  /// Pre-draws up to `k` moves and acceptance uniforms from `rng` (leaving
  /// it at the all-rejected stream position) and evaluates every candidate
  /// against the committed baseline across the pool. `sp` must be the
  /// caller's baseline pair; it is perturbed and restored during the
  /// pre-draw (involutions) and returned unchanged. The returned window is
  /// valid until the next speculate()/commit()/discard().
  const std::vector<SpeculativeCandidate>& speculate(SequencePair& sp,
                                                     Rng& rng, std::size_t k);

  /// Retires the open window at candidate `t` (0-based): candidate t
  /// becomes the new baseline in every arena, candidates past t are
  /// discarded as wasted speculation. The caller applies window[t].move to
  /// its own pair and restores its RNG from the matching snapshot.
  void commit(std::size_t t);

  /// Retires the open window with no acceptance: the baseline stands and
  /// the whole window counts as used (serial would have evaluated — and
  /// rejected — every candidate).
  void discard();

  /// Wasted-speculation accounting. Deterministic in (instance, seed, K):
  /// window boundaries depend only on the accept/reject trajectory, never
  /// on the thread count, so these participate in cross-thread-count
  /// equality tests. Invariant: drawn == used + wasted, and used equals
  /// the serial iteration count retired so far.
  struct Stats {
    std::uint64_t windows = 0;  ///< speculate() calls retired
    std::uint64_t drawn = 0;    ///< candidates pre-drawn and evaluated
    std::uint64_t used = 0;     ///< candidates the serial scan consumed
    std::uint64_t wasted = 0;   ///< candidates past the commit point
    std::uint64_t commits = 0;  ///< windows retired by an acceptance
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Arena;

  void retire(std::size_t used, bool committed);

  const Instance* inst_;
  ThreadPool* pool_;
  ParallelWindowOptions options_;
  std::size_t window_ = 0;
  /// One arena per pool slot, each a private BatchedMoveEvaluator plus
  /// demand scratch, kept synced to the shared baseline.
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<SpeculativeCandidate> candidates_;
  std::size_t open_ = 0;  ///< candidates in the currently open window
  Stats stats_;
};

}  // namespace wp::fplan
