#include "floorplan/sequence_pair.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace wp::fplan {

SequencePair SequencePair::identity(std::size_t num_blocks) {
  SequencePair sp;
  sp.positive.resize(num_blocks);
  std::iota(sp.positive.begin(), sp.positive.end(), 0);
  sp.negative = sp.positive;
  return sp;
}

SequencePair SequencePair::random(std::size_t num_blocks, wp::Rng& rng) {
  SequencePair sp = identity(num_blocks);
  rng.shuffle(sp.positive);
  rng.shuffle(sp.negative);
  return sp;
}

bool SequencePair::valid(std::size_t num_blocks) const {
  auto is_perm = [num_blocks](const std::vector<int>& seq) {
    if (seq.size() != num_blocks) return false;
    std::vector<bool> seen(num_blocks, false);
    for (int v : seq) {
      if (v < 0 || static_cast<std::size_t>(v) >= num_blocks ||
          seen[static_cast<std::size_t>(v)])
        return false;
      seen[static_cast<std::size_t>(v)] = true;
    }
    return true;
  };
  return is_perm(positive) && is_perm(negative);
}

Placement pack(const Instance& inst, const SequencePair& sp) {
  const std::size_t n = inst.blocks.size();
  WP_REQUIRE(sp.valid(n), "invalid sequence pair for this instance");

  // Position of each block in each sequence.
  std::vector<std::size_t> pos_p(n), pos_n(n);
  for (std::size_t k = 0; k < n; ++k) {
    pos_p[static_cast<std::size_t>(sp.positive[k])] = k;
    pos_n[static_cast<std::size_t>(sp.negative[k])] = k;
  }

  Placement placement;
  placement.x.assign(n, 0.0);
  placement.y.assign(n, 0.0);

  // Longest-path evaluation: b left-of c iff pos_p[b]<pos_p[c] and
  // pos_n[b]<pos_n[c]; b below c iff pos_p[b]>pos_p[c] and pos_n[b]<pos_n[c].
  // Process blocks in Γ− order for x (all left-of predecessors appear
  // earlier in Γ−) and in reversed-Γ+ ∩ Γ− order for y; an O(n²) relaxation
  // keeps it simple.
  for (std::size_t k = 0; k < n; ++k) {
    const auto b = static_cast<std::size_t>(sp.negative[k]);
    double x = 0.0;
    for (std::size_t m = 0; m < k; ++m) {
      const auto a = static_cast<std::size_t>(sp.negative[m]);
      if (pos_p[a] < pos_p[b])
        x = std::max(x, placement.x[a] + inst.blocks[a].width);
    }
    placement.x[b] = x;
    placement.width =
        std::max(placement.width, x + inst.blocks[b].width);
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto b = static_cast<std::size_t>(sp.negative[k]);
    double y = 0.0;
    for (std::size_t m = 0; m < k; ++m) {
      const auto a = static_cast<std::size_t>(sp.negative[m]);
      if (pos_p[a] > pos_p[b])
        y = std::max(y, placement.y[a] + inst.blocks[a].height);
    }
    placement.y[b] = y;
    placement.height =
        std::max(placement.height, y + inst.blocks[b].height);
  }
  return placement;
}

void apply_move(SequencePair& sp, const AppliedMove& move) {
  switch (move.kind) {
    case SpMove::kSwapPositive:
      std::swap(sp.positive[move.i], sp.positive[move.j]);
      break;
    case SpMove::kSwapNegative:
      std::swap(sp.negative[move.i], sp.negative[move.j]);
      break;
    case SpMove::kSwapBoth:
      std::swap(sp.positive[move.i], sp.positive[move.j]);
      std::swap(sp.negative[move.i], sp.negative[move.j]);
      break;
    case SpMove::kCount:
      break;
  }
}

AppliedMove random_move(SequencePair& sp, wp::Rng& rng) {
  const std::size_t n = sp.positive.size();
  WP_REQUIRE(n >= 2, "need at least two blocks to perturb");
  AppliedMove move;
  move.kind = static_cast<SpMove>(rng.below(
      static_cast<std::uint64_t>(SpMove::kCount)));
  move.i = static_cast<std::size_t>(rng.below(n));
  do {
    move.j = static_cast<std::size_t>(rng.below(n));
  } while (move.j == move.i);
  apply_move(sp, move);
  return move;
}

void undo_move(SequencePair& sp, const AppliedMove& move) {
  apply_move(sp, move);
}

}  // namespace wp::fplan
