// Sequence-pair floorplan representation (Murata et al.) and its packing:
// block b is left of c iff b precedes c in both sequences; below c iff b
// precedes c in the second but follows it in the first. Packing evaluates
// the induced horizontal/vertical constraint graphs with the classic
// weighted longest-common-subsequence formulation.
#pragma once

#include <vector>

#include "floorplan/model.hpp"
#include "util/rng.hpp"

namespace wp::fplan {

struct SequencePair {
  std::vector<int> positive;  ///< Γ+ : permutation of block indices
  std::vector<int> negative;  ///< Γ− : permutation of block indices

  /// Identity sequence pair (all blocks in a row).
  static SequencePair identity(std::size_t num_blocks);

  /// Random permutations.
  static SequencePair random(std::size_t num_blocks, wp::Rng& rng);

  bool valid(std::size_t num_blocks) const;
};

/// Packs the sequence pair into lower-left coordinates (O(n²) constraint
/// evaluation — ample for block-level instances).
Placement pack(const Instance& inst, const SequencePair& sp);

/// Neighbourhood moves for annealing.
enum class SpMove { kSwapPositive, kSwapNegative, kSwapBoth, kCount };

/// Applies a random move in place; returns a description of the move so it
/// can be undone by applying it again (all moves are involutions).
struct AppliedMove {
  SpMove kind = SpMove::kSwapBoth;
  std::size_t i = 0;
  std::size_t j = 0;
};

/// Applies a described move: swaps positions i/j of the sequences the move
/// kind names. Every move is an involution — applying it twice is the
/// identity — and the degenerate i == j case is a no-op.
void apply_move(SequencePair& sp, const AppliedMove& move);

AppliedMove random_move(SequencePair& sp, wp::Rng& rng);

/// Undoes a move by re-applying it (involution).
void undo_move(SequencePair& sp, const AppliedMove& move);

}  // namespace wp::fplan
