#include "gen/ensemble.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>
#include <utility>

#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "graph/cycles.hpp"
#include "sim/oracle.hpp"
#include "graph/throughput_engine.hpp"
#include "sim/netlist_sim.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace wp::gen {

/// Arithmetic (not stream-dependent) per-sample seed, so sequential,
/// pooled and sharded runs derive identical streams in any execution
/// order. Keyed on the family *name*, not its index, so filtering or
/// reordering the family list (bench_ensembles --families) reproduces the
/// unfiltered run's rows bit for bit. Families must have distinct names
/// (the CSV key already assumes this).
std::uint64_t derive_sample_seed(std::uint64_t ensemble_seed,
                                 const std::string& family_name,
                                 int sample) {
  const std::uint64_t lane = hash_string(family_name) * 1000003ULL +
                             static_cast<std::uint64_t>(sample) + 1ULL;
  return ensemble_seed + 0x9e3779b97f4a7c15ULL * lane;
}

SampleResult run_sample_job(const SampleJob& job,
                            sim::GoldenCache* golden_cache) {
  const FamilySpec& family = job.family;
  SampleResult result;
  result.family = family.name;
  result.sample = job.sample;
  result.seed = derive_sample_seed(job.ensemble_seed, family.name,
                                   job.sample);

  Rng rng(result.seed);
  const graph::Digraph topology =
      generate_topology(family.topology, rng);
  const GeneratedSystem sys = dress_topology(topology, family.system, rng);
  result.nodes = topology.num_nodes();
  result.edges = topology.num_edges();

  // Throughput must be placement-driven: score against the topology with
  // its generator RS annotations cleared, then apply the demand the
  // annealed placement implies. The sample owns one incremental engine for
  // its whole lifetime — the RS graph is built once here and every anneal
  // move mutates it in place.
  graph::Digraph base = topology;
  for (graph::EdgeId e = 0; e < base.num_edges(); ++e)
    base.edge(e).relay_stations = 0;
  graph::ThroughputEngine engine(std::move(base));

  fplan::AnnealOptions options = job.anneal;
  options.throughput_fn = nullptr;  // the private engine is the oracle
  if (family.anneal_iterations > 0)
    options.iterations = family.anneal_iterations;
  options.seed = result.seed;
  options.throughput_engine = &engine;
  const auto anneal_start = std::chrono::steady_clock::now();
  const fplan::AnnealResult annealed = fplan::anneal(sys.instance, options);
  result.anneal_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - anneal_start)
                         .count();
  result.throughput_ms = annealed.throughput_ms;
  result.area = annealed.area;
  result.wirelength = annealed.wirelength;

  const auto demand =
      fplan::rs_demand(sys.instance, annealed.placement, options.delay_model);
  for (const auto& [connection, rs] : demand) {
    (void)connection;
    result.total_rs += rs;
  }
  result.throughput = engine.throughput(demand);
  result.engine_incremental = engine.stats().incremental();
  result.engine_fallbacks = engine.stats().fallbacks;

  if (job.simulate.enabled) {
    WP_REQUIRE(!sys.netlist.empty(),
               "family " + family.name +
                   " asked for simulation but dressed netlist-free "
                   "(system.build_netlist = false)");
    // Simulated counterpart of the static bound: the generated netlist's
    // golden/WP1/WP2 triple under the same placement-derived RS demand.
    // The golden run is keyed by the netlist text, so WP1, WP2 and the two
    // equivalence checks share one cached record.
    sim::NetlistSimOptions sim_options;
    sim_options.golden_cycles = job.simulate.golden_cycles;
    sim_options.wp_cycles = job.simulate.wp_cycles;
    sim_options.fifo_capacity = job.simulate.fifo_capacity;
    sim_options.check_equivalence = job.simulate.check_equivalence;
    const std::map<std::string, int> rs_map(demand.begin(), demand.end());
    const sim::NetlistSimResult sim_result =
        sim::simulate_netlist(sys.netlist, rs_map, sim_options, golden_cache);
    result.simulated = true;
    result.th_wp1_sim = sim_result.th_wp1;
    result.th_wp2_sim = sim_result.th_wp2;
    result.sim_ok = sim_result.wp1_equivalent && sim_result.wp2_equivalent &&
                    sim_result.wp1_firings > 0 && sim_result.wp2_firings > 0;
  }

  if (job.max_cycle_enumeration == 0) {
    result.cycles = -1;
  } else {
    try {
      result.cycles = static_cast<long long>(
          graph::enumerate_cycles(topology, job.max_cycle_enumeration)
              .size());
    } catch (const ContractViolation&) {
      result.cycles = -1;  // count explosion, not an error
    }
  }
  return result;
}

std::vector<FamilyStats> aggregate_families(
    const EnsembleConfig& config, const std::vector<SampleResult>& samples) {
  std::vector<FamilyStats> families;
  const auto per_family = static_cast<std::size_t>(
      std::max(config.samples_per_family, 0));
  for (std::size_t f = 0; f < config.families.size(); ++f) {
    FamilyStats stats;
    stats.family = config.families[f].name;
    RunningStats th, rs, area, wl, cycles, anneal_ms, th_ms, th1_sim,
        th2_sim;
    std::vector<double> th_values;
    for (std::size_t i = f * per_family; i < (f + 1) * per_family; ++i) {
      const SampleResult& s = samples[i];
      th.add(s.throughput);
      th_values.push_back(s.throughput);
      rs.add(static_cast<double>(s.total_rs));
      area.add(s.area);
      wl.add(s.wirelength);
      anneal_ms.add(s.anneal_ms);
      th_ms.add(s.throughput_ms);
      if (s.cycles >= 0) cycles.add(static_cast<double>(s.cycles));
      if (s.simulated) {
        th1_sim.add(s.th_wp1_sim);
        th2_sim.add(s.th_wp2_sim);
        if (!s.sim_ok) ++stats.sim_failures;
      }
    }
    stats.samples = th.count();
    if (stats.samples > 0) {
      stats.th_mean = th.mean();
      stats.th_median = percentile(th_values, 50.0);
      stats.th_p95 = percentile(th_values, 95.0);
      stats.th_min = th.min();
      stats.th_max = th.max();
      stats.rs_mean = rs.mean();
      stats.area_mean = area.mean();
      stats.wirelength_mean = wl.mean();
      stats.anneal_ms_mean = anneal_ms.mean();
      stats.throughput_ms_mean = th_ms.mean();
    }
    stats.cycles_counted = cycles.count();
    if (stats.cycles_counted > 0) stats.cycles_mean = cycles.mean();
    stats.sim_samples = th2_sim.count();
    if (stats.sim_samples > 0) {
      stats.th_wp1_sim_mean = th1_sim.mean();
      stats.th_wp2_sim_mean = th2_sim.mean();
    }
    families.push_back(std::move(stats));
  }
  return families;
}

namespace {

EnsembleReport run_jobs(const EnsembleConfig& config, ThreadPool* pool) {
  const std::vector<SampleJob> jobs = ensemble_jobs(config);
  EnsembleReport report;
  report.samples.resize(jobs.size());
  // One oracle for the whole run, wired through the factory (thread-safe,
  // per-key once-semantics): every sample's WP1/WP2 pair replays one
  // cached golden, and repeat netlists across samples are cache hits.
  // Generated netlists are all distinct in a typical ensemble, so a cap
  // around the worker count keeps memory flat without costing hits.
  sim::OracleOptions oracle_options;
  oracle_options.max_cached_goldens = 64;
  const std::shared_ptr<sim::SimOracle> oracle =
      sim::SimOracle::make_shared(oracle_options);
  eval::EvalContext context;
  context.oracle = oracle.get();
  // Every sample goes through the ONE evaluation surface — the same
  // eval::evaluate the service daemon calls for a remote ensemble-sample
  // request, so in-process and sharded ensembles execute literally the
  // same code.
  auto body = [&](std::size_t i) {
    report.samples[i] =
        eval::unwrap_sample(eval::evaluate(eval::EvalRequest(jobs[i]),
                                           context));
  };
  if (pool == nullptr) {
    for (std::size_t i = 0; i < jobs.size(); ++i) body(i);
  } else {
    pool->parallel_for(0, jobs.size(), body);
  }
  const sim::GoldenCache::Stats cache_stats = oracle->stats();
  report.sim_golden_runs = cache_stats.golden_runs;
  report.sim_cache_hits = cache_stats.hits;
  for (const SampleResult& s : report.samples) {
    report.engine_incremental += s.engine_incremental;
    report.engine_fallbacks += s.engine_fallbacks;
  }
  report.families = aggregate_families(config, report.samples);
  return report;
}

}  // namespace

std::vector<FamilySpec> scale_family_specs() {
  // Horizons from a per-family diameter estimate: the golden run must let
  // a token cross the network and settle (64 warmup + 16 cycles per hop
  // of diameter), and the WP horizons keep the stock 6× ratio to the
  // golden horizon (long enough to average out relay-station beat
  // patterns). BA diameter grows ~log2 n; a rows×cols mesh's is
  // rows+cols. Anneal budgets shrink with n so a scale sweep stays
  // within a CI bench budget — per-sample cost is what the kParallel
  // engine attacks, not what this spec should hide.
  const auto horizons = [](FamilySpec& f, int diameter) {
    f.golden_cycles = 64 + 16 * static_cast<std::uint64_t>(diameter);
    f.wp_cycles = 6 * f.golden_cycles;
  };
  std::vector<FamilySpec> families;
  for (const int nodes : {256, 512, 1024}) {
    FamilySpec ba;
    ba.name = "ba-" + std::to_string(nodes);
    ba.topology.family = TopologyFamily::kBarabasiAlbert;
    ba.topology.num_nodes = nodes;
    ba.topology.ba_attach = 2;
    ba.anneal_iterations = nodes >= 1024 ? 300 : nodes >= 512 ? 450 : 700;
    // Scale-free hubs at these sizes exceed the randommoore 32-input
    // port model; the BA families dress floorplan/throughput-only, so
    // the anneal → RS demand → min-cycle-ratio pipeline runs in full
    // while simulation stays a mesh-family capability.
    ba.system.build_netlist = false;
    int log2n = 0;
    while ((1 << log2n) < nodes) ++log2n;
    horizons(ba, log2n);
    families.push_back(std::move(ba));
  }
  const int mesh_dims[][2] = {{16, 16}, {16, 32}, {32, 32}};
  for (const auto& dims : mesh_dims) {
    const int nodes = dims[0] * dims[1];
    FamilySpec mesh;
    mesh.name = "mesh-" + std::to_string(dims[0]) + "x" +
                std::to_string(dims[1]);
    mesh.topology.family = TopologyFamily::kMesh;
    mesh.topology.num_nodes = nodes;
    mesh.topology.mesh_rows = dims[0];
    mesh.topology.mesh_cols = dims[1];
    mesh.anneal_iterations = nodes >= 1024 ? 300 : nodes >= 512 ? 450 : 700;
    horizons(mesh, dims[0] + dims[1]);
    families.push_back(std::move(mesh));
  }
  return families;
}

std::vector<SampleJob> ensemble_jobs(const EnsembleConfig& config) {
  WP_REQUIRE(!config.families.empty(), "ensemble needs at least one family");
  WP_REQUIRE(config.samples_per_family > 0,
             "samples_per_family must be > 0");
  std::vector<SampleJob> jobs;
  jobs.reserve(config.families.size() *
               static_cast<std::size_t>(config.samples_per_family));
  for (const FamilySpec& family : config.families) {
    for (int s = 0; s < config.samples_per_family; ++s) {
      SampleJob job;
      job.family = family;
      job.sample = s;
      job.ensemble_seed = config.seed;
      job.simulate = config.simulate;
      // Diameter-scaled horizons: a family that declares its own
      // simulation horizons overrides the ensemble-wide ones, so one
      // config can mix 24-node and 1024-node families without simulating
      // the former too long or the latter too short.
      if (family.golden_cycles > 0)
        job.simulate.golden_cycles = family.golden_cycles;
      if (family.wp_cycles > 0) job.simulate.wp_cycles = family.wp_cycles;
      job.anneal = config.anneal;
      job.max_cycle_enumeration = config.max_cycle_enumeration;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

bool SampleResult::operator==(const SampleResult& other) const {
  // anneal_ms/throughput_ms are wall-clock and intentionally absent: the
  // sequential vs pooled determinism check compares results, not timings.
  // The engine counters ARE compared — path selection inside the
  // throughput engine must be deterministic.
  return family == other.family && sample == other.sample &&
         seed == other.seed && nodes == other.nodes &&
         edges == other.edges && cycles == other.cycles &&
         total_rs == other.total_rs && area == other.area &&
         wirelength == other.wirelength && throughput == other.throughput &&
         simulated == other.simulated && th_wp1_sim == other.th_wp1_sim &&
         th_wp2_sim == other.th_wp2_sim && sim_ok == other.sim_ok &&
         engine_incremental == other.engine_incremental &&
         engine_fallbacks == other.engine_fallbacks;
}

EnsembleReport run_ensemble(const EnsembleConfig& config, ThreadPool* pool) {
  return run_jobs(config, pool == nullptr ? &ThreadPool::shared() : pool);
}

EnsembleReport run_ensemble_sequential(const EnsembleConfig& config) {
  return run_jobs(config, nullptr);
}

void write_samples_csv(const EnsembleReport& report, std::ostream& os) {
  CsvWriter csv(os);
  csv.row({"family", "sample", "seed", "nodes", "edges", "cycles",
           "total_rs", "area_mm2", "wirelength_mm", "throughput",
           "th_wp1_sim", "th_wp2_sim", "sim_ok", "anneal_ms",
           "throughput_ms", "engine_incremental", "engine_fallbacks"});
  for (const auto& s : report.samples)
    csv.row({s.family, std::to_string(s.sample), std::to_string(s.seed),
             std::to_string(s.nodes), std::to_string(s.edges),
             std::to_string(s.cycles), std::to_string(s.total_rs),
             fmt_fixed(s.area, 6), fmt_fixed(s.wirelength, 6),
             fmt_fixed(s.throughput, 6),
             s.simulated ? fmt_fixed(s.th_wp1_sim, 6) : std::string(),
             s.simulated ? fmt_fixed(s.th_wp2_sim, 6) : std::string(),
             std::string(s.simulated ? (s.sim_ok ? "1" : "0") : ""),
             fmt_fixed(s.anneal_ms, 3), fmt_fixed(s.throughput_ms, 3),
             std::to_string(s.engine_incremental),
             std::to_string(s.engine_fallbacks)});
}

void write_families_csv(const EnsembleReport& report, std::ostream& os) {
  CsvWriter csv(os);
  csv.row({"family", "samples", "th_mean", "th_median", "th_p95", "th_min",
           "th_max", "rs_mean", "cycles_mean", "cycles_counted", "area_mean",
           "wirelength_mean", "th_wp1_sim_mean", "th_wp2_sim_mean",
           "sim_failures", "anneal_ms_mean", "throughput_ms_mean"});
  for (const auto& f : report.families)
    csv.row({f.family, std::to_string(f.samples), fmt_fixed(f.th_mean, 6),
             fmt_fixed(f.th_median, 6), fmt_fixed(f.th_p95, 6),
             fmt_fixed(f.th_min, 6), fmt_fixed(f.th_max, 6),
             fmt_fixed(f.rs_mean, 3), fmt_fixed(f.cycles_mean, 3),
             std::to_string(f.cycles_counted), fmt_fixed(f.area_mean, 3),
             fmt_fixed(f.wirelength_mean, 3),
             f.sim_samples > 0 ? fmt_fixed(f.th_wp1_sim_mean, 6)
                               : std::string(),
             f.sim_samples > 0 ? fmt_fixed(f.th_wp2_sim_mean, 6)
                               : std::string(),
             f.sim_samples > 0 ? std::to_string(f.sim_failures)
                               : std::string(),
             fmt_fixed(f.anneal_ms_mean, 3),
             fmt_fixed(f.throughput_ms_mean, 3)});
}

}  // namespace wp::gen
