// Ensemble runner: fans N seeded samples per topology family through the
// full methodology pipeline — generate topology, dress it into a
// floorplannable system, anneal a throughput-aware floorplan, derive the
// placement's relay-station demand, and score the resulting min-cycle-
// ratio system throughput — then aggregates per-family distribution
// statistics and writes tidy CSV. Opt-in (EnsembleSimOptions): simulate
// each sample's generated netlist as a golden/WP1/WP2 triple through the
// simulation oracle, so rows carry *simulated* throughput next to the
// static m/(m+n) bound.
//
// Determinism contract: every sample owns an Rng derived arithmetically
// from (ensemble seed, family name, sample index) and a private
// graph::ThroughputEngine (the incremental min-cycle-ratio oracle), so the
// pooled run writes results into input-order slots and is bit-identical to
// the sequential run under the same config (checked by test_gen and by
// bench_ensembles on every invocation).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "floorplan/annealer.hpp"
#include "gen/instances.hpp"
#include "gen/topologies.hpp"

namespace wp {
class ThreadPool;
}
namespace wp::sim {
class GoldenCache;
}

namespace wp::gen {

/// One family of the ensemble: how to generate and how to dress.
struct FamilySpec {
  std::string name;  ///< CSV/report key, e.g. "ba-32"
  TopologyConfig topology;
  SystemConfig system;
  /// Per-family override of EnsembleConfig::anneal.iterations; 0 keeps the
  /// ensemble-wide budget. Lets large families (128–1024 nodes) ride in
  /// the default set with a smaller per-sample budget.
  int anneal_iterations = 0;
  /// Per-family overrides of the simulation horizons
  /// (EnsembleSimOptions::golden_cycles / wp_cycles); 0 keeps the
  /// ensemble-wide values. A fixed horizon stops making sense once
  /// families span 24–1024 nodes: a token must cross the whole network
  /// (plus relay stations) before throughput stabilizes, so the horizon
  /// must scale with the topology *diameter* — long for a 32×32 mesh,
  /// nearly flat for a scale-free BA graph whose diameter grows ~log n.
  /// scale_family_specs() fills these from a per-family diameter estimate.
  std::uint64_t golden_cycles = 0;
  std::uint64_t wp_cycles = 0;
};

/// Opt-in simulated-throughput mode: run every sample's generated
/// randommoore netlist through a golden/WP1/WP2 triple (sim::simulate_
/// netlist, golden cached per netlist) under the placement-derived RS
/// demand, landing th_wp1_sim/th_wp2_sim next to the static bound.
struct EnsembleSimOptions {
  bool enabled = false;
  std::uint64_t golden_cycles = 256;  ///< golden horizon (τ-trace length)
  std::uint64_t wp_cycles = 1536;     ///< WP1/WP2 horizon
  std::size_t fifo_capacity = 16;
  bool check_equivalence = true;      ///< τ-filtered check vs cached golden
};

struct EnsembleConfig {
  std::vector<FamilySpec> families;
  int samples_per_family = 20;
  std::uint64_t seed = 1;
  EnsembleSimOptions simulate;
  /// Per-sample annealing job; seed and throughput_fn are overridden per
  /// sample (private evaluator). weight_throughput > 0 makes the
  /// floorplanner fight for loop throughput, the paper's methodology.
  /// anneal.pack_engine selects the packing engine (default kBatched, the
  /// speculative batched path; placements are bit-identical to kNaive).
  fplan::AnnealOptions anneal;
  /// Johnson cycle-enumeration cap for the per-sample cycle count; graphs
  /// whose elementary-cycle count exceeds it record cycles = -1 instead of
  /// exploding. 0 skips counting entirely.
  std::size_t max_cycle_enumeration = 20000;

  EnsembleConfig() {
    anneal.iterations = 2500;
    anneal.weight_wirelength = 0.05;
    anneal.weight_throughput = 50.0;
  }
};

/// One topology sample scored through the full pipeline.
struct SampleResult {
  std::string family;
  int sample = 0;
  std::uint64_t seed = 0;      ///< the derived per-sample seed
  int nodes = 0;
  int edges = 0;
  long long cycles = 0;        ///< elementary cycles; -1 = over the cap
  int total_rs = 0;            ///< placement-implied relay stations, summed
  double area = 0.0;           ///< annealed bounding-box area (mm^2)
  double wirelength = 0.0;     ///< annealed HPWL (mm)
  double throughput = 1.0;     ///< min cycle ratio under the derived RS
  /// Simulated throughputs (EnsembleSimOptions; zeros when not simulated):
  /// the generated netlist's golden/WP1/WP2 triple under the same
  /// placement-derived RS demand the static bound was scored with.
  bool simulated = false;
  double th_wp1_sim = 0.0;
  double th_wp2_sim = 0.0;
  bool sim_ok = true;          ///< equivalence + progress verdict
  /// ThroughputEngine counters over the whole sample (anneal moves + final
  /// scoring query). Deterministic — the demand stream is seed-derived and
  /// the engine's control flow is pure — so they participate in the
  /// sequential≡pooled comparison, which then also guards the engine's
  /// path selection against nondeterminism.
  std::uint64_t engine_incremental = 0;
  std::uint64_t engine_fallbacks = 0;
  /// Wall-clock of this sample's anneal (and the slice of it spent inside
  /// the throughput oracle), for the CSV artifact. Deliberately excluded
  /// from operator== — timing is noisy and must not fail the
  /// sequential≡pooled determinism check.
  double anneal_ms = 0.0;
  double throughput_ms = 0.0;

  bool operator==(const SampleResult& other) const;
};

/// Per-family distribution statistics over the sample set.
struct FamilyStats {
  std::string family;
  std::size_t samples = 0;
  double th_mean = 0.0;
  double th_median = 0.0;
  double th_p95 = 0.0;
  double th_min = 0.0;
  double th_max = 0.0;
  double rs_mean = 0.0;        ///< mean total relay stations
  double cycles_mean = 0.0;    ///< over samples whose count completed
  std::size_t cycles_counted = 0;
  double area_mean = 0.0;
  double wirelength_mean = 0.0;
  std::size_t sim_samples = 0;   ///< samples that carried a simulation
  double th_wp1_sim_mean = 0.0;  ///< over sim_samples; 0 when none
  double th_wp2_sim_mean = 0.0;
  std::size_t sim_failures = 0;  ///< samples whose sim verdict failed
  double anneal_ms_mean = 0.0;  ///< wall-clock; informational, not compared
  double throughput_ms_mean = 0.0;  ///< oracle share of the anneal; ditto
};

struct EnsembleReport {
  std::vector<SampleResult> samples;  ///< family-major, sample order
  std::vector<FamilyStats> families;  ///< config order
  /// Golden-cache statistics of the run's simulation oracle (zeros when
  /// simulation was off). Informational — never part of the determinism
  /// comparison.
  std::uint64_t sim_golden_runs = 0;
  std::uint64_t sim_cache_hits = 0;
  /// ThroughputEngine totals summed over all samples: queries the
  /// incremental certificate absorbed vs cold re-solves.
  std::uint64_t engine_incremental = 0;
  std::uint64_t engine_fallbacks = 0;
};

/// The self-contained description of ONE ensemble sample — everything
/// run_sample_job needs to reproduce the sample bit for bit, with no
/// reference to the enclosing EnsembleConfig. This is the unit of work the
/// evaluation service ships to remote workers (eval::EvalRequest's
/// ensemble-sample kind), and the unit run_ensemble executes in process:
/// both paths call run_sample_job, so a sharded ensemble is byte-identical
/// to a single-process run by construction.
struct SampleJob {
  FamilySpec family;
  int sample = 0;                    ///< index within the family
  std::uint64_t ensemble_seed = 1;   ///< EnsembleConfig::seed
  EnsembleSimOptions simulate;
  /// Non-serializable members (throughput_fn/throughput_engine) are
  /// ignored: every sample owns a private engine.
  fplan::AnnealOptions anneal;
  std::size_t max_cycle_enumeration = 20000;
};

/// The 256/512/1024-node scale substrate: Barabási–Albert (the hub-heavy
/// regime where global-move dirty fractions are largest) and 2D mesh (the
/// regular NoC fabric) families with per-family anneal budgets and
/// diameter-scaled simulation horizons — BA diameters grow ~log n so
/// horizons stay nearly flat, mesh diameters grow as rows+cols so the
/// 32×32 fabric gets the long horizon it needs. These are the instances
/// PackEngine::kParallel exists for, and the substrate the trace-informed
/// demand work will stress.
std::vector<FamilySpec> scale_family_specs();

/// The arithmetic per-sample seed: keyed on the family *name* (not index)
/// so filtered/reordered/sharded runs reproduce full-run rows bit for bit.
std::uint64_t derive_sample_seed(std::uint64_t ensemble_seed,
                                 const std::string& family_name, int sample);

/// Scores one sample through the full pipeline (generate → dress → anneal
/// → RS demand → throughput, plus the opt-in golden/WP1/WP2 netlist
/// simulation). `golden_cache` may be nullptr (fresh golden run); when the
/// job does not simulate it is unused. Deterministic in the job alone.
SampleResult run_sample_job(const SampleJob& job,
                            sim::GoldenCache* golden_cache);

/// The jobs run_ensemble executes, family-major in config order — exposed
/// so sharded runners can build the identical work list.
std::vector<SampleJob> ensemble_jobs(const EnsembleConfig& config);

/// Per-family statistics of a family-major sample vector (the aggregation
/// step of run_ensemble, shared with sharded merges).
std::vector<FamilyStats> aggregate_families(
    const EnsembleConfig& config, const std::vector<SampleResult>& samples);

/// Runs the whole ensemble on the pool (nullptr = ThreadPool::shared()).
EnsembleReport run_ensemble(const EnsembleConfig& config,
                            ThreadPool* pool = nullptr);

/// The plain-loop reference: bit-identical results to run_ensemble().
EnsembleReport run_ensemble_sequential(const EnsembleConfig& config);

/// Tidy CSV, one row per sample / per family (with header row).
void write_samples_csv(const EnsembleReport& report, std::ostream& os);
void write_families_csv(const EnsembleReport& report, std::ostream& os);

}  // namespace wp::gen
