// Ensemble runner: fans N seeded samples per topology family through the
// full methodology pipeline — generate topology, dress it into a
// floorplannable system, anneal a throughput-aware floorplan, derive the
// placement's relay-station demand, and score the resulting min-cycle-
// ratio system throughput — then aggregates per-family distribution
// statistics and writes tidy CSV.
//
// Determinism contract: every sample owns an Rng derived arithmetically
// from (ensemble seed, family index, sample index) and a private
// ThroughputEvaluator, so the pooled run writes results into input-order
// slots and is bit-identical to the sequential run under the same config
// (checked by test_gen and by bench_ensembles on every invocation).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "floorplan/annealer.hpp"
#include "gen/instances.hpp"
#include "gen/topologies.hpp"

namespace wp {
class ThreadPool;
}

namespace wp::gen {

/// One family of the ensemble: how to generate and how to dress.
struct FamilySpec {
  std::string name;  ///< CSV/report key, e.g. "ba-32"
  TopologyConfig topology;
  SystemConfig system;
};

struct EnsembleConfig {
  std::vector<FamilySpec> families;
  int samples_per_family = 20;
  std::uint64_t seed = 1;
  /// Per-sample annealing job; seed and throughput_fn are overridden per
  /// sample (private evaluator). weight_throughput > 0 makes the
  /// floorplanner fight for loop throughput, the paper's methodology.
  /// anneal.pack_engine selects the packing engine (default kFast, the
  /// incremental O(n log n) path; placements are bit-identical to kNaive).
  fplan::AnnealOptions anneal;
  /// Johnson cycle-enumeration cap for the per-sample cycle count; graphs
  /// whose elementary-cycle count exceeds it record cycles = -1 instead of
  /// exploding. 0 skips counting entirely.
  std::size_t max_cycle_enumeration = 20000;

  EnsembleConfig() {
    anneal.iterations = 2500;
    anneal.weight_wirelength = 0.05;
    anneal.weight_throughput = 50.0;
  }
};

/// One topology sample scored through the full pipeline.
struct SampleResult {
  std::string family;
  int sample = 0;
  std::uint64_t seed = 0;      ///< the derived per-sample seed
  int nodes = 0;
  int edges = 0;
  long long cycles = 0;        ///< elementary cycles; -1 = over the cap
  int total_rs = 0;            ///< placement-implied relay stations, summed
  double area = 0.0;           ///< annealed bounding-box area (mm^2)
  double wirelength = 0.0;     ///< annealed HPWL (mm)
  double throughput = 1.0;     ///< min cycle ratio under the derived RS
  /// Wall-clock of this sample's anneal, for the CSV artifact (pack-engine
  /// speedups show up here). Deliberately excluded from operator== — timing
  /// is noisy and must not fail the sequential≡pooled determinism check.
  double anneal_ms = 0.0;

  bool operator==(const SampleResult& other) const;
};

/// Per-family distribution statistics over the sample set.
struct FamilyStats {
  std::string family;
  std::size_t samples = 0;
  double th_mean = 0.0;
  double th_median = 0.0;
  double th_p95 = 0.0;
  double th_min = 0.0;
  double th_max = 0.0;
  double rs_mean = 0.0;        ///< mean total relay stations
  double cycles_mean = 0.0;    ///< over samples whose count completed
  std::size_t cycles_counted = 0;
  double area_mean = 0.0;
  double wirelength_mean = 0.0;
  double anneal_ms_mean = 0.0;  ///< wall-clock; informational, not compared
};

struct EnsembleReport {
  std::vector<SampleResult> samples;  ///< family-major, sample order
  std::vector<FamilyStats> families;  ///< config order
};

/// Runs the whole ensemble on the pool (nullptr = ThreadPool::shared()).
EnsembleReport run_ensemble(const EnsembleConfig& config,
                            ThreadPool* pool = nullptr);

/// The plain-loop reference: bit-identical results to run_ensemble().
EnsembleReport run_ensemble_sequential(const EnsembleConfig& config);

/// Tidy CSV, one row per sample / per family (with header row).
void write_samples_csv(const EnsembleReport& report, std::ostream& os);
void write_families_csv(const EnsembleReport& report, std::ostream& os);

}  // namespace wp::gen
