#include "gen/instances.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace wp::gen {

namespace {

using graph::EdgeId;
using graph::NodeId;

fplan::Block sample_block(const std::string& name,
                          const BlockDistribution& dist, Rng& rng) {
  WP_REQUIRE(dist.min_area_mm2 > 0 && dist.max_area_mm2 >= dist.min_area_mm2,
             "bad block area range");
  WP_REQUIRE(dist.min_aspect > 0 && dist.max_aspect >= dist.min_aspect,
             "bad block aspect range");
  const double log_lo = std::log(dist.min_area_mm2);
  const double log_hi = std::log(dist.max_area_mm2);
  const double area = std::exp(log_lo + rng.uniform() * (log_hi - log_lo));
  const double aspect =
      dist.min_aspect + rng.uniform() * (dist.max_aspect - dist.min_aspect);
  fplan::Block block;
  block.name = name;
  block.width = std::sqrt(area * aspect);
  block.height = std::sqrt(area / aspect);
  return block;
}

}  // namespace

GeneratedSystem dress_topology(const graph::Digraph& topology,
                               const SystemConfig& config, Rng& rng) {
  WP_REQUIRE(topology.num_nodes() > 0, "cannot dress an empty topology");
  WP_REQUIRE(config.moore_states >= 1, "moore_states must be >= 1");
  GeneratedSystem sys;
  sys.topology = topology;
  sys.instance.name = config.name;

  // Blocks: one per process, extents from the configured distributions.
  for (NodeId n = 0; n < topology.num_nodes(); ++n)
    sys.instance.blocks.push_back(
        sample_block(topology.node_name(n), config.blocks, rng));

  // Nets: one per channel, keyed by the edge label so placement-derived
  // relay-station demand addresses topology edges directly.
  for (EdgeId e = 0; e < topology.num_edges(); ++e) {
    const auto& data = topology.edge(e);
    fplan::Net net;
    net.connection = data.label;
    net.src_block = data.src;
    net.dst_block = data.dst;
    sys.instance.nets.push_back(std::move(net));
  }

  // Netlist: a randommoore block per node, ports sized to its fan-in/out;
  // channel k out of node u leaves port out<k>, channel j into node v
  // enters port in<j> (ordinals follow edge-id order). Skipped entirely
  // when the config asks for a netlist-free dressing — the port-limit
  // preconditions below belong to the randommoore process model, not to
  // the floorplan/throughput views built above.
  if (!config.build_netlist) return sys;
  std::vector<int> out_ordinal(static_cast<std::size_t>(topology.num_edges()));
  std::vector<int> in_ordinal(static_cast<std::size_t>(topology.num_edges()));
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    const auto& outs = topology.out_edges(n);
    const auto& ins = topology.in_edges(n);
    WP_REQUIRE(!outs.empty() && !ins.empty(),
               "node " + topology.node_name(n) +
                   " needs in- and out-degree >= 1 to become a process "
                   "(generate with ensure_strongly_connected)");
    WP_REQUIRE(ins.size() <= 32,
               "node " + topology.node_name(n) +
                   " exceeds the 32-input process port limit");
    for (std::size_t k = 0; k < outs.size(); ++k)
      out_ordinal[static_cast<std::size_t>(outs[k])] = static_cast<int>(k);
    for (std::size_t k = 0; k < ins.size(); ++k)
      in_ordinal[static_cast<std::size_t>(ins[k])] = static_cast<int>(k);
  }

  std::ostringstream os;
  os << "system " << config.name << "\n";
  for (NodeId n = 0; n < topology.num_nodes(); ++n)
    os << "process " << topology.node_name(n) << " randommoore inputs="
       << topology.in_edges(n).size() << " outputs="
       << topology.out_edges(n).size() << " states=" << config.moore_states
       << " seed=" << (rng.below(1000000000) + 1) << "\n";
  for (EdgeId e = 0; e < topology.num_edges(); ++e) {
    const auto& data = topology.edge(e);
    os << "channel " << topology.node_name(data.src) << ".out"
       << out_ordinal[static_cast<std::size_t>(e)] << " -> "
       << topology.node_name(data.dst) << ".in"
       << in_ordinal[static_cast<std::size_t>(e)]
       << " connection=" << data.label;
    if (data.relay_stations > 0) os << " rs=" << data.relay_stations;
    os << "\n";
  }
  sys.netlist = os.str();
  return sys;
}

}  // namespace wp::gen
