// Dresses a generated topology into a complete synthetic system: a
// floorplannable instance (one hard block per process, extents sampled
// from configurable area/aspect distributions, one net per channel keyed
// by the edge label) plus a core netlist-language description whose
// processes are RandomMooreProcess blocks sized to the node's fan-in/out —
// parseable by core parse_system() with the default registry, so a
// generated system can be floorplanned, RS-annotated AND simulated.
#pragma once

#include <string>

#include "floorplan/model.hpp"
#include "gen/topologies.hpp"
#include "util/rng.hpp"

namespace wp::gen {

/// Block-extent sampling: area log-uniform in [min_area_mm2, max_area_mm2]
/// (SoC block areas span decades, so uniform-in-log), aspect ratio
/// (width/height) uniform in [min_aspect, max_aspect].
struct BlockDistribution {
  double min_area_mm2 = 0.5;
  double max_area_mm2 = 6.0;
  double min_aspect = 0.5;
  double max_aspect = 2.0;
};

struct SystemConfig {
  std::string name = "gen";
  BlockDistribution blocks;
  /// States per generated randommoore process in the netlist.
  int moore_states = 4;
  /// Also emit the core netlist view (GeneratedSystem::netlist). The
  /// netlist's randommoore processes carry a 32-bit input mask, so a node
  /// of in-degree > 32 cannot be dressed into one — exactly what the
  /// hubs of scale-free topologies at 256+ nodes produce. Turning this
  /// off dresses the floorplan/throughput views only (netlist empty, no
  /// port-limit constraint): the anneal → RS demand → min-cycle-ratio
  /// pipeline runs in full, simulation is unavailable.
  bool build_netlist = true;
};

/// The three coupled views of one synthetic system. Nets and netlist
/// channels carry connection=<edge label>, so floorplan-derived RS demand
/// flows into both the throughput evaluator and the simulator unchanged.
struct GeneratedSystem {
  graph::Digraph topology;   ///< the dressed topology (copied from input)
  fplan::Instance instance;  ///< blocks + nets for the floorplanner
  std::string netlist;       ///< core netlist text (default_registry types)
};

/// When config.build_netlist is set (the default), requires every node to
/// have in-degree in [1, 32] and out-degree >= 1 (RandomMooreProcess port
/// limits) — guaranteed by generators run with ensure_strongly_connected
/// at modest sizes; scale-free families at 256+ nodes grow hubs past the
/// limit and must dress netlist-free. Deterministic in rng. The netlist's
/// rs= annotations mirror the topology's edge counts; the ensemble
/// pipeline overrides them with placement-derived demand.
GeneratedSystem dress_topology(const graph::Digraph& topology,
                               const SystemConfig& config, Rng& rng);

}  // namespace wp::gen
