#include "gen/topologies.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace wp::gen {

namespace {

using graph::Digraph;
using graph::EdgeId;
using graph::NodeId;

void add_numbered_nodes(Digraph& g, int num_nodes) {
  for (int i = 0; i < num_nodes; ++i) g.add_node("p" + std::to_string(i));
}

int random_rs(Rng& rng, int max_relay_stations) {
  return static_cast<int>(
      rng.below(static_cast<std::uint64_t>(max_relay_stations) + 1));
}

/// Adds one edge labeled "e<id>" with a random relay-station count.
void add_link(Digraph& g, NodeId src, NodeId dst, Rng& rng,
              int max_relay_stations) {
  g.add_edge(src, dst, "e" + std::to_string(g.num_edges()),
             random_rs(rng, max_relay_stations));
}

/// Emits one undirected model link as digraph edges: an antiparallel pair
/// with the configured probability, otherwise a single coin-flipped edge.
void add_undirected_link(Digraph& g, NodeId a, NodeId b,
                         const TopologyConfig& config, Rng& rng) {
  if (rng.chance(config.bidirectional_probability)) {
    add_link(g, a, b, rng, config.max_relay_stations);
    add_link(g, b, a, rng, config.max_relay_stations);
  } else if (rng.chance(0.5)) {
    add_link(g, a, b, rng, config.max_relay_stations);
  } else {
    add_link(g, b, a, rng, config.max_relay_stations);
  }
}

/// Distinct-neighbor lists (either direction, self-loops dropped), sorted
/// so membership tests can binary-search.
std::vector<std::vector<int>> neighbor_sets(const Digraph& g) {
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(g.num_nodes()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& data = g.edge(e);
    if (data.src == data.dst) continue;
    nbr[static_cast<std::size_t>(data.src)].push_back(data.dst);
    nbr[static_cast<std::size_t>(data.dst)].push_back(data.src);
  }
  for (auto& list : nbr) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nbr;
}

}  // namespace

std::string family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kBarabasiAlbert: return "ba";
    case TopologyFamily::kWattsStrogatz: return "ws";
    case TopologyFamily::kMesh: return "mesh";
    case TopologyFamily::kClusteredErdosRenyi: return "cer";
  }
  WP_REQUIRE(false, "unknown topology family");
  return {};
}

graph::Digraph generate_topology(const TopologyConfig& config, Rng& rng) {
  Digraph g;
  switch (config.family) {
    case TopologyFamily::kBarabasiAlbert:
      g = barabasi_albert(config, rng);
      break;
    case TopologyFamily::kWattsStrogatz:
      g = watts_strogatz(config, rng);
      break;
    case TopologyFamily::kMesh:
      g = mesh_2d(config, rng);
      break;
    case TopologyFamily::kClusteredErdosRenyi:
      g = clustered_erdos_renyi(config, rng);
      break;
  }
  if (config.ensure_strongly_connected)
    make_strongly_connected(g, rng, config.max_relay_stations);
  return g;
}

graph::Digraph barabasi_albert(const TopologyConfig& config, Rng& rng) {
  WP_REQUIRE(config.ba_attach >= 1, "ba_attach must be >= 1");
  WP_REQUIRE(config.num_nodes > config.ba_attach,
             "need more nodes than ba_attach");
  Digraph g;
  add_numbered_nodes(g, config.num_nodes);

  // Seed core: a directed ring over the first m0 nodes (cycles from the
  // start, every seed node already has degree for the attachment lottery).
  const int m0 = std::max(config.ba_attach, 2);
  std::vector<NodeId> endpoints;  // one entry per link end: degree lottery
  for (int i = 0; i < m0 && i < config.num_nodes; ++i) {
    const NodeId next = (i + 1) % m0;
    add_link(g, i, next, rng, config.max_relay_stations);
    endpoints.push_back(i);
    endpoints.push_back(next);
  }

  for (NodeId u = m0; u < config.num_nodes; ++u) {
    std::vector<NodeId> chosen;
    while (static_cast<int>(chosen.size()) < config.ba_attach) {
      NodeId t = endpoints[rng.below(endpoints.size())];
      if (t == u ||
          std::find(chosen.begin(), chosen.end(), t) != chosen.end())
        continue;  // resample; the lottery always has u-free entries
      chosen.push_back(t);
    }
    for (NodeId t : chosen) {
      add_undirected_link(g, u, t, config, rng);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return g;
}

graph::Digraph watts_strogatz(const TopologyConfig& config, Rng& rng) {
  const int n = config.num_nodes;
  const int k = config.ws_neighbors;
  WP_REQUIRE(k >= 2 && k % 2 == 0, "ws_neighbors must be even and >= 2");
  WP_REQUIRE(n > k, "need num_nodes > ws_neighbors");
  Digraph g;
  add_numbered_nodes(g, n);

  // Ring lattice: node i linked to its k/2 clockwise neighbors (each
  // undirected link recorded once), then each link's far endpoint rewired
  // with the configured probability, avoiding self-links and duplicates.
  std::vector<std::pair<NodeId, NodeId>> links;
  auto has_link = [&](NodeId a, NodeId b) {
    for (const auto& [x, y] : links)
      if ((x == a && y == b) || (x == b && y == a)) return true;
    return false;
  };
  for (int i = 0; i < n; ++i)
    for (int j = 1; j <= k / 2; ++j) links.push_back({i, (i + j) % n});
  for (auto& link : links) {
    if (!rng.chance(config.ws_rewire_probability)) continue;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const NodeId w = static_cast<NodeId>(rng.below(
          static_cast<std::uint64_t>(n)));
      if (w == link.first || w == link.second || has_link(link.first, w))
        continue;
      link.second = w;
      break;  // keep the original link when every attempt collided
    }
  }
  for (const auto& [a, b] : links) add_undirected_link(g, a, b, config, rng);
  return g;
}

graph::Digraph mesh_2d(const TopologyConfig& config, Rng& rng) {
  int rows = config.mesh_rows;
  int cols = config.mesh_cols;
  if (rows <= 0 || cols <= 0) {
    // Near-square factorization: the largest divisor <= sqrt(num_nodes).
    WP_REQUIRE(config.num_nodes >= 1, "need at least one node");
    rows = 1;
    for (int d = 1; d * d <= config.num_nodes; ++d)
      if (config.num_nodes % d == 0) rows = d;
    cols = config.num_nodes / rows;
  }
  WP_REQUIRE(rows * cols == config.num_nodes,
             "mesh_rows * mesh_cols must equal num_nodes");
  Digraph g;
  add_numbered_nodes(g, config.num_nodes);

  // NoC fabric: every lattice link is an antiparallel channel pair. Torus
  // wrap links only exist when the dimension exceeds 2 (at 2 the wrap
  // would duplicate the interior link).
  auto at = [cols](int r, int c) { return r * cols + c; };
  auto pair_link = [&](NodeId a, NodeId b) {
    add_link(g, a, b, rng, config.max_relay_stations);
    add_link(g, b, a, rng, config.max_relay_stations);
  };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        pair_link(at(r, c), at(r, c + 1));
      else if (config.mesh_torus && cols > 2)
        pair_link(at(r, c), at(r, 0));
      if (r + 1 < rows)
        pair_link(at(r, c), at(r + 1, c));
      else if (config.mesh_torus && rows > 2)
        pair_link(at(r, c), at(0, c));
    }
  return g;
}

graph::Digraph clustered_erdos_renyi(const TopologyConfig& config, Rng& rng) {
  const int n = config.num_nodes;
  WP_REQUIRE(n >= 1, "need at least one node");
  WP_REQUIRE(config.er_clusters >= 1 && config.er_clusters <= n,
             "er_clusters must be in [1, num_nodes]");
  Digraph g;
  add_numbered_nodes(g, n);
  // Contiguous near-equal clusters; each ordered pair sampled with the
  // intra- or inter-cluster probability.
  auto cluster_of = [&](int i) {
    return static_cast<int>(static_cast<long long>(i) * config.er_clusters /
                            n);
  };
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const double p = cluster_of(u) == cluster_of(v)
                           ? config.er_intra_probability
                           : config.er_inter_probability;
      if (rng.chance(p)) add_link(g, u, v, rng, config.max_relay_stations);
    }
  return g;
}

SccResult strongly_connected_components(const graph::Digraph& g) {
  const int n = g.num_nodes();
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  // Kosaraju, both passes iterative. Pass 1: finish order on g.
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    visited[static_cast<std::size_t>(s)] = 1;
    stack.push_back({s, 0});
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& outs = g.out_edges(u);
      if (next < outs.size()) {
        const NodeId v = g.edge(outs[next++]).dst;
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = 1;
          stack.push_back({v, 0});
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  // Pass 2: reverse-graph DFS in reverse finish order labels components.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (result.component[static_cast<std::size_t>(*it)] != -1) continue;
    std::vector<NodeId> dfs{*it};
    result.component[static_cast<std::size_t>(*it)] = result.count;
    while (!dfs.empty()) {
      const NodeId u = dfs.back();
      dfs.pop_back();
      for (EdgeId e : g.in_edges(u)) {
        const NodeId v = g.edge(e).src;
        if (result.component[static_cast<std::size_t>(v)] == -1) {
          result.component[static_cast<std::size_t>(v)] = result.count;
          dfs.push_back(v);
        }
      }
    }
    ++result.count;
  }
  return result;
}

bool is_strongly_connected(const graph::Digraph& g) {
  return g.num_nodes() > 0 && strongly_connected_components(g).count == 1;
}

void make_strongly_connected(graph::Digraph& g, Rng& rng,
                             int max_relay_stations) {
  WP_REQUIRE(g.num_nodes() > 0, "cannot connect an empty graph");
  for (;;) {
    const SccResult scc = strongly_connected_components(g);
    if (scc.count <= 1) return;

    // Condensation bookkeeping: which components have cross-component
    // out/in edges, and the smallest member of each (the deterministic
    // representative the repair edge attaches to).
    std::vector<char> has_out(static_cast<std::size_t>(scc.count), 0);
    std::vector<char> has_in(static_cast<std::size_t>(scc.count), 0);
    std::vector<NodeId> rep(static_cast<std::size_t>(scc.count), -1);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto cu = static_cast<std::size_t>(
          scc.component[static_cast<std::size_t>(u)]);
      if (rep[cu] == -1) rep[cu] = u;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& data = g.edge(e);
      const int cs = scc.component[static_cast<std::size_t>(data.src)];
      const int cd = scc.component[static_cast<std::size_t>(data.dst)];
      if (cs == cd) continue;
      has_out[static_cast<std::size_t>(cs)] = 1;
      has_in[static_cast<std::size_t>(cd)] = 1;
    }
    // Close sink -> source: pick the sink with the smallest representative
    // and the smallest-representative source in a different component.
    int sink = -1, source = -1;
    for (int c = 0; c < scc.count; ++c) {
      if (!has_out[static_cast<std::size_t>(c)] &&
          (sink == -1 || rep[static_cast<std::size_t>(c)] <
                             rep[static_cast<std::size_t>(sink)]))
        sink = c;
    }
    for (int c = 0; c < scc.count; ++c) {
      if (c == sink) continue;
      if (!has_in[static_cast<std::size_t>(c)] &&
          (source == -1 || rep[static_cast<std::size_t>(c)] <
                               rep[static_cast<std::size_t>(source)]))
        source = c;
    }
    // A multi-component condensation with its only source also its only
    // sink would be a condensation cycle — impossible in a DAG.
    WP_REQUIRE(sink != -1 && source != -1,
               "condensation must expose a sink and a distinct source");
    g.add_edge(rep[static_cast<std::size_t>(sink)],
               rep[static_cast<std::size_t>(source)],
               "sc" + std::to_string(g.num_edges()),
               random_rs(rng, max_relay_stations));
  }
}

double average_clustering(const graph::Digraph& g) {
  if (g.num_nodes() == 0) return 0.0;
  const auto nbr = neighbor_sets(g);
  double total = 0.0;
  for (const auto& list : nbr) {
    const std::size_t deg = list.size();
    if (deg < 2) continue;  // contributes 0
    std::size_t closed = 0;
    for (std::size_t i = 0; i < deg; ++i)
      for (std::size_t j = i + 1; j < deg; ++j) {
        const auto& other = nbr[static_cast<std::size_t>(list[i])];
        if (std::binary_search(other.begin(), other.end(), list[j]))
          ++closed;
      }
    total += static_cast<double>(closed) /
             (static_cast<double>(deg) * static_cast<double>(deg - 1) / 2.0);
  }
  return total / static_cast<double>(g.num_nodes());
}

std::vector<int> undirected_degrees(const graph::Digraph& g) {
  const auto nbr = neighbor_sets(g);
  std::vector<int> degrees;
  degrees.reserve(nbr.size());
  for (const auto& list : nbr)
    degrees.push_back(static_cast<int>(list.size()));
  return degrees;
}

graph::Digraph random_digraph(const RandomGraphConfig& config, Rng& rng) {
  WP_REQUIRE(config.num_nodes >= 1, "need at least one node");
  Digraph g;
  add_numbered_nodes(g, config.num_nodes);

  if (config.ensure_cycle && config.num_nodes >= 2) {
    for (int i = 0; i < config.num_nodes; ++i)
      g.add_edge(i, (i + 1) % config.num_nodes, "ring",
                 random_rs(rng, config.max_relay_stations));
  }
  for (int u = 0; u < config.num_nodes; ++u) {
    for (int v = 0; v < config.num_nodes; ++v) {
      if (u == v) continue;
      if (rng.chance(config.edge_probability))
        g.add_edge(u, v, "e", random_rs(rng, config.max_relay_stations));
    }
  }
  return g;
}

graph::Digraph ring_graph(int num_nodes, const std::vector<int>& rs_pattern) {
  WP_REQUIRE(num_nodes >= 1, "need at least one node");
  WP_REQUIRE(!rs_pattern.empty(), "relay-station pattern must be non-empty");
  Digraph g;
  add_numbered_nodes(g, num_nodes);
  for (int i = 0; i < num_nodes; ++i)
    g.add_edge(i, (i + 1) % num_nodes, "ring",
               rs_pattern[static_cast<std::size_t>(i) % rs_pattern.size()]);
  return g;
}

}  // namespace wp::gen
