// Synthetic SoC topology generators — the ensemble counterpart of the
// paper's single case-study CPU. Four classical graph families, each
// emitted as a wp::graph::Digraph with relay-station-annotated edges and
// (on demand) guaranteed strong connectivity, so every generated topology
// can be driven through the full floorplan → RS demand → min-cycle-ratio
// pipeline:
//
//   * Barabási–Albert      — scale-free preferential attachment (hubs);
//   * Watts–Strogatz       — small-world rewired ring lattice (clustering);
//   * 2D mesh / torus      — the regular NoC fabric, bidirectional links;
//   * clustered Erdős–Rényi — dense clusters, sparse inter-cluster wiring;
//     with er_clusters = 1 this is the plain ER family, which subsumes the
//     former graph/random_graphs one-off (random_digraph lives here now).
//
// All generators are deterministic in the caller-supplied Rng: the same
// config and seed always produce the bit-identical digraph.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace wp::gen {

enum class TopologyFamily {
  kBarabasiAlbert,
  kWattsStrogatz,
  kMesh,
  kClusteredErdosRenyi,
};

/// Short lowercase name ("ba", "ws", "mesh", "cer") for tables and CSV.
std::string family_name(TopologyFamily family);

/// Common knob set; each family reads its own section plus the shared ones.
struct TopologyConfig {
  TopologyFamily family = TopologyFamily::kClusteredErdosRenyi;
  int num_nodes = 32;
  /// Each edge gets a uniform random relay-station count in
  /// [0, max_relay_stations]. The ensemble pipeline later overwrites these
  /// with placement-derived demand; the annotation makes a generated
  /// topology a complete standalone min-cycle-ratio instance.
  int max_relay_stations = 3;
  /// BA/WS links are undirected in the textbook models; each link becomes a
  /// pair of antiparallel edges with this probability, otherwise a single
  /// edge of random orientation. Mesh links are always antiparallel pairs
  /// (a NoC fabric), clustered ER samples ordered pairs directly.
  double bidirectional_probability = 0.3;
  /// Repair pass: add condensation-closing edges until one SCC remains, so
  /// throughput is loop-limited everywhere and every node is dressable as a
  /// process (in-degree and out-degree >= 1). Without it a generated graph
  /// MAY BE ACYCLIC — see the contract note on generate_topology().
  bool ensure_strongly_connected = true;

  // --- Barabási–Albert ---
  int ba_attach = 2;  ///< links added per arriving node (m)

  // --- Watts–Strogatz ---
  int ws_neighbors = 4;              ///< ring-lattice degree k (even)
  double ws_rewire_probability = 0.1;

  // --- mesh / torus ---
  int mesh_rows = 0;        ///< 0 = derive a near-square factorization
  int mesh_cols = 0;        ///< of num_nodes (rows*cols must equal it)
  bool mesh_torus = false;  ///< wrap rows and columns

  // --- clustered Erdős–Rényi ---
  int er_clusters = 4;
  double er_intra_probability = 0.35;
  double er_inter_probability = 0.03;
};

/// Dispatches on config.family. Nodes are named "p0".."p<n-1>", edges are
/// labeled "e<edge-id>" (unique per edge, the connection key used by the
/// floorplan dressing and the throughput evaluator).
///
/// Acyclicity contract: when ensure_strongly_connected is false, nothing
/// guarantees a cycle; sparse configs can and do produce acyclic digraphs.
/// That is a valid result, not an error — the min-cycle-ratio solvers
/// return ratio 1.0 with has_cycle=false for such graphs (no loop
/// constrains the system). Callers that require the loop-limited regime
/// must keep ensure_strongly_connected on or check is_strongly_connected().
graph::Digraph generate_topology(const TopologyConfig& config, Rng& rng);

/// The individual families (exposed for tests; generate_topology is the
/// usual entry point). Each validates its own config section.
graph::Digraph barabasi_albert(const TopologyConfig& config, Rng& rng);
graph::Digraph watts_strogatz(const TopologyConfig& config, Rng& rng);
graph::Digraph mesh_2d(const TopologyConfig& config, Rng& rng);
graph::Digraph clustered_erdos_renyi(const TopologyConfig& config, Rng& rng);

// --- structural analysis helpers -----------------------------------------

/// Strongly connected components (iterative Kosaraju). Returns one
/// component id per node, ids dense in [0, count).
struct SccResult {
  std::vector<int> component;  ///< per-node id
  int count = 0;
};
SccResult strongly_connected_components(const graph::Digraph& g);

bool is_strongly_connected(const graph::Digraph& g);

/// Adds "sc<k>"-labeled repair edges (random relay stations in
/// [0, max_relay_stations]) from sink components to source components of
/// the condensation until the graph is one SCC. Deterministic in rng.
void make_strongly_connected(graph::Digraph& g, Rng& rng,
                             int max_relay_stations);

/// Average undirected clustering coefficient (edges of either direction
/// count as one neighbor link; self-loops ignored; nodes with fewer than
/// two neighbors contribute 0). The WS-vs-ER discriminator.
double average_clustering(const graph::Digraph& g);

/// Undirected degree (distinct neighbors in either direction, self loops
/// excluded) — the heavy-tail observable for the BA family.
std::vector<int> undirected_degrees(const graph::Digraph& g);

// --- the refolded graph/random_graphs one-off ----------------------------

/// Plain-ER compatibility config (formerly wp::graph::RandomGraphConfig).
struct RandomGraphConfig {
  int num_nodes = 8;
  /// Probability of each ordered pair (u,v), u != v, getting an edge.
  double edge_probability = 0.3;
  int max_relay_stations = 3;
  /// Guarantees at least one cycle by closing a random ring first. When
  /// false the result may be ACYCLIC (edge_probability 0 always is): the
  /// min-cycle-ratio solvers then report ratio 1.0 / has_cycle=false
  /// rather than throwing — covered by a regression test.
  bool ensure_cycle = true;
};

/// Erdős–Rényi-style digraph with random relay-station counts; the
/// single-cluster special case of the clustered-ER family, kept with its
/// original sampling order so existing seeded tests reproduce.
graph::Digraph random_digraph(const RandomGraphConfig& config, Rng& rng);

/// A single directed ring of `num_nodes` nodes with the given per-edge
/// relay-station counts (cyclically repeated) — the textbook m/(m+n) case.
graph::Digraph ring_graph(int num_nodes, const std::vector<int>& rs_pattern);

}  // namespace wp::gen
