#include "graph/cycle_ratio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace wp::graph {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double exact_ratio_of_cycle(const Digraph& g,
                            const std::vector<EdgeId>& cycle) {
  long long tokens = 0;
  long long latency = 0;
  for (EdgeId e : cycle) {
    tokens += g.edge(e).tokens;
    latency += g.edge_latency(e);
  }
  WP_CHECK(latency > 0, "cycle with zero latency");
  return static_cast<double>(tokens) / static_cast<double>(latency);
}

}  // namespace

namespace detail {

double exact_cycle_ratio(const Digraph& g, const std::vector<EdgeId>& cycle) {
  return exact_ratio_of_cycle(g, cycle);
}

std::vector<EdgeId> find_negative_cycle(const Digraph& g, double lambda) {
  const int n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> dist(static_cast<std::size_t>(n), 0.0);
  std::vector<EdgeId> pred_edge(static_cast<std::size_t>(n), -1);

  EdgeId last_relaxed = -1;
  for (int pass = 0; pass < n; ++pass) {
    last_relaxed = -1;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& ed = g.edge(e);
      const double tokens = static_cast<double>(ed.tokens);
      const double lt = lambda * static_cast<double>(g.edge_latency(e));
      const double w = tokens - lt;
      const auto s = static_cast<std::size_t>(ed.src);
      const auto d = static_cast<std::size_t>(ed.dst);
      if (relax_improves(dist[d], dist[s] + w, std::abs(tokens) + lt)) {
        dist[d] = dist[s] + w;
        pred_edge[d] = e;
        last_relaxed = e;
      }
    }
    if (last_relaxed == -1) return {};  // converged, no negative cycle
  }

  // A relaxation happened on the n-th pass: walk predecessors from the
  // relaxed edge's head to land inside the negative cycle, then extract it.
  NodeId v = g.edge(last_relaxed).dst;
  for (int i = 0; i < n; ++i) v = g.edge(pred_edge[static_cast<std::size_t>(v)]).src;

  std::vector<EdgeId> cycle;
  NodeId u = v;
  do {
    const EdgeId e = pred_edge[static_cast<std::size_t>(u)];
    WP_CHECK(e >= 0, "broken predecessor chain");
    cycle.push_back(e);
    u = g.edge(e).src;
  } while (u != v);
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

bool has_cycle(const Digraph& g) {
  // Kahn's algorithm: the graph has a cycle iff topological sort is partial.
  const int n = g.num_nodes();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    ++indegree[static_cast<std::size_t>(g.edge(e).dst)];
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v)
    if (indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  int removed = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++removed;
    for (EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      if (--indegree[static_cast<std::size_t>(w)] == 0) queue.push_back(w);
    }
  }
  return removed != n;
}

}  // namespace detail

namespace {

bool has_any_cycle(const Digraph& g) { return detail::has_cycle(g); }

using detail::find_negative_cycle;

}  // namespace

CycleRatioResult min_cycle_ratio_exhaustive(const Digraph& g,
                                            std::size_t max_cycles) {
  CycleRatioResult result;
  const auto cycles = enumerate_cycles(g, max_cycles);
  for (const auto& c : cycles) {
    const double r = c.throughput();
    if (!result.has_cycle || r < result.ratio) {
      result.ratio = r;
      result.critical_cycle = c.edges;
      result.has_cycle = true;
    }
  }
  return result;
}

CycleRatioResult min_cycle_ratio_lawler(const Digraph& g, double epsilon) {
  WP_REQUIRE(epsilon > 0, "epsilon must be positive");
  CycleRatioResult result;
  if (!has_any_cycle(g)) return result;

  result.has_cycle = true;
  // Ratio lies in [0, max tokens/latency]; with unit tokens it is within
  // [0, 1], but keep the general bound.
  double lo = 0.0;
  double hi = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    hi = std::max(hi, static_cast<double>(g.edge(e).tokens));
  hi = std::max(hi, 1.0);

  // Invariant: some cycle has ratio < hi + ε; no cycle has ratio < lo.
  std::vector<EdgeId> witness;
  while (hi - lo > epsilon) {
    const double mid = 0.5 * (lo + hi);
    auto cycle = find_negative_cycle(g, mid);
    if (!cycle.empty()) {
      witness = std::move(cycle);
      hi = exact_ratio_of_cycle(g, witness);  // jump straight to the ratio
    } else {
      lo = mid;
    }
  }
  if (witness.empty()) {
    // No cycle ever tested negative: every cycle has ratio >= hi; since
    // tokens/latency <= hi for all edges, the min equals hi only when a
    // cycle attains it. Fall back to a slightly relaxed probe.
    witness = find_negative_cycle(g, hi + 10 * epsilon);
    WP_CHECK(!witness.empty(), "Lawler search failed to find a witness");
  }
  result.critical_cycle = std::move(witness);
  result.ratio = exact_ratio_of_cycle(g, result.critical_cycle);
  return result;
}

namespace {

/// True when `policy` is a structurally valid policy vector for `g`
/// (HowardState::valid_for semantics, usable without copying the vector
/// into a temporary state — this runs on the per-query hot path).
bool policy_fits(const Digraph& g, const std::vector<EdgeId>& policy) {
  const int n = g.num_nodes();
  if (static_cast<int>(policy.size()) != n) return false;
  for (NodeId v = 0; v < n; ++v) {
    const EdgeId e = policy[static_cast<std::size_t>(v)];
    if (g.out_edges(v).empty()) {
      if (e != -1) return false;
    } else {
      if (e < 0 || e >= g.num_edges() || g.edge(e).src != v) return false;
    }
  }
  return true;
}

}  // namespace

bool HowardState::valid_for(const Digraph& g) const {
  return policy_fits(g, policy);
}

CycleRatioResult min_cycle_ratio_howard(const Digraph& g) {
  return min_cycle_ratio_howard(g, nullptr);
}

namespace detail {

CycleRatioResult howard_policy_iteration(const Digraph& g,
                                         std::vector<EdgeId>& policy,
                                         int max_iterations) {
  CycleRatioResult result;
  const int n = g.num_nodes();
  result.has_cycle = true;

  // Work on the subgraph of nodes with out-edges; nodes without successors
  // cannot lie on a cycle and take value +inf.
  auto default_policy = [&g, n]() {
    std::vector<EdgeId> p(static_cast<std::size_t>(n), -1);
    for (NodeId v = 0; v < n; ++v)
      if (!g.out_edges(v).empty())
        p[static_cast<std::size_t>(v)] = g.out_edges(v).front();
    return p;
  };
  bool warm_started = policy_fits(g, policy);
  if (!warm_started) policy = default_policy();

  auto edge_cost = [&](EdgeId e) {
    return static_cast<double>(g.edge(e).tokens);
  };
  auto edge_time = [&](EdgeId e) {
    return static_cast<double>(g.edge_latency(e));
  };

  std::vector<double> value(static_cast<std::size_t>(n), 0.0);
  double best_ratio = kInf;
  std::vector<EdgeId> best_cycle;

  // Convergence guard: on dense graphs the improvement scan keeps flipping
  // the policy between equal-value alternatives — `improved` stays true
  // while the policy min-ratio has long stopped moving (observed: the
  // correct ratio by round ~4, churn until the round cap). Stop once the
  // ratio has been flat for several rounds; exactness is unaffected
  // because every caller certifies the answer (and falls back to the
  // parametric search when certification fails).
  constexpr int kStallRounds = 5;
  double last_ratio = kInf;
  int stalled = 0;

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    // 1. Find the minimum-ratio cycle of the current policy graph: follow
    //    the policy from each unvisited node until a repeat.
    std::vector<int> mark(static_cast<std::size_t>(n), -1);
    best_ratio = kInf;
    best_cycle.clear();
    for (NodeId start = 0; start < n; ++start) {
      if (mark[static_cast<std::size_t>(start)] != -1 ||
          policy[static_cast<std::size_t>(start)] < 0)
        continue;
      NodeId v = start;
      std::vector<NodeId> chain;
      while (v >= 0 && mark[static_cast<std::size_t>(v)] == -1 &&
             policy[static_cast<std::size_t>(v)] >= 0) {
        mark[static_cast<std::size_t>(v)] = start;
        chain.push_back(v);
        v = g.edge(policy[static_cast<std::size_t>(v)]).dst;
      }
      if (v >= 0 && policy[static_cast<std::size_t>(v)] >= 0 &&
          mark[static_cast<std::size_t>(v)] == start) {
        // Found a fresh policy cycle starting at v.
        std::vector<EdgeId> cycle;
        double cost = 0.0, time = 0.0;
        NodeId u = v;
        do {
          const EdgeId e = policy[static_cast<std::size_t>(u)];
          cycle.push_back(e);
          cost += edge_cost(e);
          time += edge_time(e);
          u = g.edge(e).dst;
        } while (u != v);
        const double r = cost / time;
        if (r < best_ratio) {
          best_ratio = r;
          best_cycle = std::move(cycle);
        }
      }
    }
    if (best_ratio == kInf && warm_started) {
      // A stale warm policy can route every chain into a dead end even
      // though the graph has cycles; rebuild from scratch and retry.
      warm_started = false;
      policy = default_policy();
      --iteration;
      continue;
    }
    WP_CHECK(best_ratio < kInf, "Howard: policy graph has no cycle");

    // 2. Value determination: solve value(v) = cost − r·time + value(next)
    //    along the policy, anchoring the critical cycle's nodes at 0.
    std::fill(value.begin(), value.end(), kInf);
    for (EdgeId e : best_cycle) value[static_cast<std::size_t>(g.edge(e).src)] = 0.0;
    // Relax along reversed policy edges until fixpoint (≤ n passes).
    for (int pass = 0; pass < n; ++pass) {
      bool changed = false;
      for (NodeId v = 0; v < n; ++v) {
        const EdgeId e = policy[static_cast<std::size_t>(v)];
        if (e < 0) continue;
        const auto dst = static_cast<std::size_t>(g.edge(e).dst);
        if (value[dst] == kInf) continue;
        const double candidate =
            edge_cost(e) - best_ratio * edge_time(e) + value[dst];
        if (value[static_cast<std::size_t>(v)] == kInf ||
            std::abs(candidate - value[static_cast<std::size_t>(v)]) > 1e-12) {
          if (value[static_cast<std::size_t>(v)] == kInf) {
            value[static_cast<std::size_t>(v)] = candidate;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    // Nodes that cannot reach the critical cycle keep +inf and never drive
    // an improvement below.

    // 3. Policy improvement.
    bool improved = false;
    for (NodeId v = 0; v < n; ++v) {
      for (EdgeId e : g.out_edges(v)) {
        const auto dst = static_cast<std::size_t>(g.edge(e).dst);
        if (value[dst] == kInf) continue;
        const double candidate =
            edge_cost(e) - best_ratio * edge_time(e) + value[dst];
        const double current = value[static_cast<std::size_t>(v)];
        if (candidate < current - 1e-9) {
          policy[static_cast<std::size_t>(v)] = e;
          value[static_cast<std::size_t>(v)] = candidate;
          improved = true;
        }
      }
    }
    if (!improved) break;
    if (best_ratio >=
        last_ratio - 1e-12 * std::max(1.0, std::abs(last_ratio))) {
      if (++stalled >= kStallRounds) break;
    } else {
      stalled = 0;
    }
    last_ratio = best_ratio;
  }

  result.ratio = exact_ratio_of_cycle(g, best_cycle);
  result.critical_cycle = std::move(best_cycle);
  return result;
}

}  // namespace detail

CycleRatioResult min_cycle_ratio_howard(const Digraph& g,
                                        HowardState* state) {
  const int n = g.num_nodes();
  if (n == 0 || !has_any_cycle(g)) return {};

  std::vector<EdgeId> scratch;
  std::vector<EdgeId>& policy = state != nullptr ? state->policy : scratch;
  const CycleRatioResult result = detail::howard_policy_iteration(g, policy);

  // Certify optimality: no cycle may have a strictly smaller ratio. Policy
  // iteration with a single global ratio can stall on multi-chain policy
  // graphs; when the certificate fails, defer to the parametric search.
  if (!find_negative_cycle(g, result.ratio - 1e-9).empty())
    return min_cycle_ratio_lawler(g);
  return result;
}

std::optional<double> min_cycle_mean_karp(
    const Digraph& g, const std::vector<double>& weight) {
  WP_REQUIRE(static_cast<int>(weight.size()) == g.num_edges(),
             "one weight per edge required");
  const int n = g.num_nodes();
  if (n == 0 || !has_any_cycle(g)) return std::nullopt;

  // d[k][v] = min weight of a k-edge walk from the super-source to v; the
  // super-source is emulated by d[0][v] = 0 for all v.
  const auto un = static_cast<std::size_t>(n);
  std::vector<std::vector<double>> d(
      un + 1, std::vector<double>(un, kInf));
  std::fill(d[0].begin(), d[0].end(), 0.0);
  for (std::size_t k = 1; k <= un; ++k) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& ed = g.edge(e);
      const auto s = static_cast<std::size_t>(ed.src);
      const auto t = static_cast<std::size_t>(ed.dst);
      if (d[k - 1][s] == kInf) continue;
      d[k][t] = std::min(d[k][t], d[k - 1][s] + weight[static_cast<std::size_t>(e)]);
    }
  }

  double best = kInf;
  for (std::size_t v = 0; v < un; ++v) {
    if (d[un][v] == kInf) continue;
    double worst = -kInf;
    for (std::size_t k = 0; k < un; ++k) {
      if (d[k][v] == kInf) continue;
      worst = std::max(worst, (d[un][v] - d[k][v]) /
                                  static_cast<double>(un - k));
    }
    if (worst != -kInf) best = std::min(best, worst);
  }
  if (best == kInf) return std::nullopt;
  return best;
}

}  // namespace wp::graph
