// Minimum cycle ratio / minimum cycle mean solvers.
//
// Under the marked-graph semantics of latency-insensitive systems, the
// sustainable system throughput is
//
//     Th* = min over cycles C  (Σ_e∈C tokens_e) / (Σ_e∈C (1 + rs_e)),
//
// the paper's "the worst loop dominates the system" with Th = m/(m+n) per
// loop. Three solvers are provided and cross-checked by the test suite:
//
//   * exhaustive    — via Johnson enumeration; exact, small graphs only;
//   * Lawler        — parametric binary search with Bellman–Ford negative-
//                     cycle tests; O(E·V·log(1/ε)), then exact ratio
//                     recovery from the critical cycle;
//   * Howard        — policy iteration; fast in practice on large graphs.
#pragma once

#include <optional>
#include <vector>

#include "graph/cycles.hpp"
#include "graph/digraph.hpp"

namespace wp::graph {

struct CycleRatioResult {
  /// The minimum ratio (system throughput). 1.0 when the graph is acyclic
  /// (no loop constrains the system).
  double ratio = 1.0;
  /// A critical cycle attaining the ratio (empty if acyclic).
  std::vector<EdgeId> critical_cycle;
  bool has_cycle = false;
};

/// Exact minimum via full enumeration (throws if the graph has more than
/// `max_cycles` elementary cycles).
CycleRatioResult min_cycle_ratio_exhaustive(const Digraph& g,
                                            std::size_t max_cycles = 100000);

/// Lawler's parametric search. `epsilon` bounds the binary-search interval
/// before exact recovery from the critical cycle.
CycleRatioResult min_cycle_ratio_lawler(const Digraph& g,
                                        double epsilon = 1e-9);

/// Howard's policy-iteration algorithm.
CycleRatioResult min_cycle_ratio_howard(const Digraph& g);

/// Reusable policy for warm-starting Howard across a family of structurally
/// identical graphs (same nodes and edge ids, varying relay-station counts —
/// exactly what annealing moves and RS sweeps produce). A state whose shape
/// no longer matches the graph is ignored and rebuilt.
struct HowardState {
  std::vector<EdgeId> policy;  ///< per-node chosen out-edge; -1 = none

  bool valid_for(const Digraph& g) const;
};

/// Howard's algorithm, seeding the initial policy from `state` when it fits
/// the graph and saving the converged policy back. Neighboring evaluations
/// (one annealing move, one sweep step) barely perturb the critical cycle,
/// so the warmed policy usually certifies within an iteration or two.
CycleRatioResult min_cycle_ratio_howard(const Digraph& g, HowardState* state);

/// Karp's minimum cycle mean over edge weights w(e) = value. Returns
/// nullopt for acyclic graphs. Included for retiming-style analyses and as
/// an independently testable classic.
std::optional<double> min_cycle_mean_karp(const Digraph& g,
                                          const std::vector<double>& weight);

}  // namespace wp::graph
