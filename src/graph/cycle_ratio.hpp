// Minimum cycle ratio / minimum cycle mean solvers.
//
// Under the marked-graph semantics of latency-insensitive systems, the
// sustainable system throughput is
//
//     Th* = min over cycles C  (Σ_e∈C tokens_e) / (Σ_e∈C (1 + rs_e)),
//
// the paper's "the worst loop dominates the system" with Th = m/(m+n) per
// loop. Three solvers are provided and cross-checked by the test suite:
//
//   * exhaustive    — via Johnson enumeration; exact, small graphs only;
//   * Lawler        — parametric binary search with Bellman–Ford negative-
//                     cycle tests; O(E·V·log(1/ε)), then exact ratio
//                     recovery from the critical cycle;
//   * Howard        — policy iteration; fast in practice on large graphs.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "graph/cycles.hpp"
#include "graph/digraph.hpp"

namespace wp::graph {

struct CycleRatioResult {
  /// The minimum ratio (system throughput). 1.0 when the graph is acyclic
  /// (no loop constrains the system).
  double ratio = 1.0;
  /// A critical cycle attaining the ratio (empty if acyclic).
  std::vector<EdgeId> critical_cycle;
  bool has_cycle = false;
};

/// Exact minimum via full enumeration (throws if the graph has more than
/// `max_cycles` elementary cycles).
CycleRatioResult min_cycle_ratio_exhaustive(const Digraph& g,
                                            std::size_t max_cycles = 100000);

/// Lawler's parametric search. `epsilon` bounds the binary-search interval
/// before exact recovery from the critical cycle.
CycleRatioResult min_cycle_ratio_lawler(const Digraph& g,
                                        double epsilon = 1e-9);

/// Howard's policy-iteration algorithm.
CycleRatioResult min_cycle_ratio_howard(const Digraph& g);

/// Reusable policy for warm-starting Howard across a family of structurally
/// identical graphs (same nodes and edge ids, varying relay-station counts —
/// exactly what annealing moves and RS sweeps produce). A state whose shape
/// no longer matches the graph is ignored and rebuilt.
struct HowardState {
  std::vector<EdgeId> policy;  ///< per-node chosen out-edge; -1 = none

  bool valid_for(const Digraph& g) const;
};

/// Howard's algorithm, seeding the initial policy from `state` when it fits
/// the graph and saving the converged policy back. Neighboring evaluations
/// (one annealing move, one sweep step) barely perturb the critical cycle,
/// so the warmed policy usually certifies within an iteration or two.
CycleRatioResult min_cycle_ratio_howard(const Digraph& g, HowardState* state);

/// Karp's minimum cycle mean over edge weights w(e) = value. Returns
/// nullopt for acyclic graphs. Included for retiming-style analyses and as
/// an independently testable classic.
std::optional<double> min_cycle_mean_karp(const Digraph& g,
                                          const std::vector<double>& weight);

namespace detail {

/// Relaxation test shared by every Bellman–Ford-style loop in this module
/// (Lawler's negative-cycle probe, Howard's certification, the throughput
/// engine's incremental certificate): `candidate` must beat `current` by a
/// *relative* slack. The previous absolute 1e-15 threshold let
/// large-latency graphs (λ·latency products in the millions, whose
/// rounding noise is ~1e-10) relax forever on float noise and extract
/// spurious "negative" cycles; scaling the slack to the operand magnitudes
/// treats that noise as converged while staying far below any genuine
/// ratio gap. `edge_magnitude` carries the size of the terms the edge
/// weight was computed from (|tokens| + λ·latency) — the weight itself can
/// be a tiny difference of huge products, so the distances alone
/// understate the noise floor.
inline bool relax_improves(double current, double candidate,
                           double edge_magnitude) {
  constexpr double kRelEps = 1e-12;
  const double scale =
      std::max(std::max(1.0, edge_magnitude),
               std::max(std::abs(current), std::abs(candidate)));
  return candidate < current - kRelEps * scale;
}

/// True when the graph has at least one cycle (Kahn's algorithm). Exposed
/// so the throughput engine can decide cyclicity once per instance — it is
/// a structural property, unaffected by relay-station mutations.
bool has_cycle(const Digraph& g);

/// Bellman–Ford negative-cycle detection on weights
/// w(e) = tokens_e − λ·latency_e, starting all distances at 0 (virtual
/// super-source). Returns one negative cycle's edges, empty if none.
/// Exposed for the throughput engine's certificate rebuilds and for the
/// relaxation-tolerance regression tests.
std::vector<EdgeId> find_negative_cycle(const Digraph& g, double lambda);

/// Exact ratio (token sum / latency sum, integer-summed) of a cycle given
/// by its edges. Exposed for the throughput engine's candidate-cycle
/// re-evaluation.
double exact_cycle_ratio(const Digraph& g, const std::vector<EdgeId>& cycle);

/// The core of Howard's algorithm WITHOUT the optimality certificate: runs
/// at most `max_iterations` rounds of policy iteration and returns the
/// best cycle of the final policy graph. That cycle may sit strictly above
/// the true minimum — when iteration stalls on a multi-chain policy graph,
/// or when the round budget cuts it short — so callers must certify the
/// answer: min_cycle_ratio_howard() probes with a cold Bellman–Ford,
/// graph::ThroughputEngine repairs an incremental dual certificate (a
/// failed certificate just demotes the answer to a fallback solve, so a
/// small budget trades hit rate, never correctness). `policy` seeds the
/// iteration when it fits the graph (rebuilt otherwise) and receives the
/// final policy. Precondition: `g` has a cycle.
CycleRatioResult howard_policy_iteration(const Digraph& g,
                                         std::vector<EdgeId>& policy,
                                         int max_iterations = 1000);

}  // namespace detail

}  // namespace wp::graph
