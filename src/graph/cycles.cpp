#include "graph/cycles.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wp::graph {

namespace {

/// Johnson's elementary-circuit algorithm over the subgraph induced by
/// nodes >= root, rooted at `root` (nodes below the root are logically
/// removed, which yields each cycle exactly once, anchored at its smallest
/// node).
class JohnsonEnumerator {
 public:
  JohnsonEnumerator(const Digraph& g, std::size_t max_cycles)
      : g_(g), max_cycles_(max_cycles) {
    const auto n = static_cast<std::size_t>(g.num_nodes());
    blocked_.assign(n, false);
    block_list_.assign(n, {});
  }

  std::vector<CycleInfo> run() {
    for (NodeId root = 0; root < g_.num_nodes(); ++root) {
      root_ = root;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& list : block_list_) list.clear();
      circuit(root);
    }
    return std::move(cycles_);
  }

 private:
  void unblock(NodeId v) {
    blocked_[static_cast<std::size_t>(v)] = false;
    for (NodeId w : block_list_[static_cast<std::size_t>(v)])
      if (blocked_[static_cast<std::size_t>(w)]) unblock(w);
    block_list_[static_cast<std::size_t>(v)].clear();
  }

  bool circuit(NodeId v) {
    bool found = false;
    blocked_[static_cast<std::size_t>(v)] = true;
    for (EdgeId e : g_.out_edges(v)) {
      const NodeId w = g_.edge(e).dst;
      if (w < root_) continue;  // removed from this root's subgraph
      if (w == root_) {
        path_.push_back(e);
        emit();
        path_.pop_back();
        found = true;
      } else if (!blocked_[static_cast<std::size_t>(w)]) {
        path_.push_back(e);
        if (circuit(w)) found = true;
        path_.pop_back();
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (EdgeId e : g_.out_edges(v)) {
        const NodeId w = g_.edge(e).dst;
        if (w < root_) continue;
        auto& list = block_list_[static_cast<std::size_t>(w)];
        if (std::find(list.begin(), list.end(), v) == list.end())
          list.push_back(v);
      }
    }
    return found;
  }

  void emit() {
    WP_CHECK(cycles_.size() < max_cycles_,
             "cycle enumeration exceeded the configured bound");
    CycleInfo info;
    info.edges = path_;
    info.processes = static_cast<int>(path_.size());
    for (EdgeId e : path_) {
      info.relay_stations += g_.edge(e).relay_stations;
      info.tokens += g_.edge(e).tokens;
      info.latency += g_.edge_latency(e);
    }
    cycles_.push_back(std::move(info));
  }

  const Digraph& g_;
  std::size_t max_cycles_;
  NodeId root_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<NodeId>> block_list_;
  std::vector<EdgeId> path_;
  std::vector<CycleInfo> cycles_;
};

}  // namespace

std::vector<CycleInfo> enumerate_cycles(const Digraph& g,
                                        std::size_t max_cycles) {
  return JohnsonEnumerator(g, max_cycles).run();
}

std::string cycle_to_string(const Digraph& g, const CycleInfo& cycle) {
  WP_REQUIRE(!cycle.edges.empty(), "empty cycle");
  std::string out = g.node_name(g.edge(cycle.edges.front()).src);
  for (EdgeId e : cycle.edges) {
    out += " -> ";
    out += g.node_name(g.edge(e).dst);
  }
  return out;
}

}  // namespace wp::graph
