// Elementary-cycle enumeration (Johnson 1975), used to produce the paper's
// Figure-1-style loop inventory: every netlist loop with its process count m
// and relay-station count n, hence its WP1 throughput m/(m+n).
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace wp::graph {

/// One elementary cycle, as the sequence of edge ids traversed.
struct CycleInfo {
  std::vector<EdgeId> edges;
  int processes = 0;       ///< m: nodes on the loop
  int relay_stations = 0;  ///< n: relay stations summed over the loop edges
  int tokens = 0;          ///< initial tokens summed over the loop edges
  int latency = 0;         ///< Σ (1 + rs_e)

  /// Sustainable WP1 throughput of this loop: tokens / latency = m/(m+n).
  double throughput() const {
    return latency == 0 ? 1.0
                        : static_cast<double>(tokens) /
                              static_cast<double>(latency);
  }
};

/// Enumerates elementary cycles. Aborts (throws) after `max_cycles` cycles
/// to keep pathological graphs from exploding; the case-study graphs have a
/// handful.
std::vector<CycleInfo> enumerate_cycles(const Digraph& g,
                                        std::size_t max_cycles = 100000);

/// Formats a cycle as "A -> B -> A" using node names.
std::string cycle_to_string(const Digraph& g, const CycleInfo& cycle);

}  // namespace wp::graph
