#include "graph/digraph.hpp"

#include "util/assert.hpp"

namespace wp::graph {

NodeId Digraph::add_node(std::string name) {
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst, std::string label,
                         int relay_stations) {
  check_node(src);
  check_node(dst);
  WP_REQUIRE(relay_stations >= 0, "relay station count must be >= 0");
  EdgeData e;
  e.src = src;
  e.dst = dst;
  e.label = std::move(label);
  e.relay_stations = relay_stations;
  edges_.push_back(std::move(e));
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

const std::string& Digraph::node_name(NodeId n) const {
  check_node(n);
  return names_[static_cast<std::size_t>(n)];
}

NodeId Digraph::find_node(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<NodeId>(i);
  return -1;
}

const EdgeData& Digraph::edge(EdgeId e) const {
  WP_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

EdgeData& Digraph::edge(EdgeId e) {
  WP_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
  return edges_[static_cast<std::size_t>(e)];
}

const std::vector<EdgeId>& Digraph::out_edges(NodeId n) const {
  check_node(n);
  return out_[static_cast<std::size_t>(n)];
}

const std::vector<EdgeId>& Digraph::in_edges(NodeId n) const {
  check_node(n);
  return in_[static_cast<std::size_t>(n)];
}

void Digraph::set_relay_stations(NodeId src, NodeId dst, int count) {
  WP_REQUIRE(count >= 0, "relay station count must be >= 0");
  for (EdgeId e : out_edges(src)) {
    if (edge(e).dst == dst) {
      edge(e).relay_stations = count;
      return;
    }
  }
  WP_REQUIRE(false, "no edge " + node_name(src) + "->" + node_name(dst));
}

void Digraph::check_node(NodeId n) const {
  WP_REQUIRE(n >= 0 && n < num_nodes(), "node id out of range");
}

}  // namespace wp::graph
