// Directed multigraph of the system topology: nodes are processes, edges are
// connections. Each edge carries the number of relay stations inserted on
// it; loop analysis (Th = m/(m+n), minimum cycle ratio) reads these counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wp::graph {

using NodeId = int;
using EdgeId = int;

struct EdgeData {
  NodeId src = -1;
  NodeId dst = -1;
  std::string label;
  int relay_stations = 0;
  /// Token count of this channel at reset (1 in the golden marked-graph
  /// semantics; kept configurable for what-if studies).
  int tokens = 1;
};

class Digraph {
 public:
  NodeId add_node(std::string name);
  EdgeId add_edge(NodeId src, NodeId dst, std::string label = {},
                  int relay_stations = 0);

  int num_nodes() const { return static_cast<int>(names_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const std::string& node_name(NodeId n) const;
  NodeId find_node(const std::string& name) const;  ///< -1 if absent

  const EdgeData& edge(EdgeId e) const;
  EdgeData& edge(EdgeId e);

  /// Edge ids leaving `n`.
  const std::vector<EdgeId>& out_edges(NodeId n) const;
  /// Edge ids entering `n`.
  const std::vector<EdgeId>& in_edges(NodeId n) const;

  /// Latency of an edge in clock cycles: 1 (the consumer register) plus its
  /// relay stations.
  int edge_latency(EdgeId e) const { return 1 + edge(e).relay_stations; }

  /// Sets the relay-station count of the first edge matching (src,dst).
  void set_relay_stations(NodeId src, NodeId dst, int count);

 private:
  void check_node(NodeId n) const;

  std::vector<std::string> names_;
  std::vector<EdgeData> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace wp::graph
