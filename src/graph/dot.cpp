#include "graph/dot.hpp"

#include <set>
#include <sstream>

#include "graph/cycle_ratio.hpp"

namespace wp::graph {

std::string to_dot(const Digraph& g, const DotOptions& options) {
  std::set<EdgeId> critical;
  if (options.highlight_critical_loop) {
    const auto mcr = min_cycle_ratio_lawler(g);
    critical.insert(mcr.critical_cycle.begin(), mcr.critical_cycle.end());
  }

  std::ostringstream os;
  os << "digraph wirepipe {\n";
  os << "  label=\"" << options.title << "\";\n";
  os << "  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    os << "  n" << v << " [label=\"" << g.node_name(v) << "\"];\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    os << "  n" << ed.src << " -> n" << ed.dst << " [label=\"" << ed.label;
    if (options.show_relay_stations && ed.relay_stations > 0)
      os << " (" << ed.relay_stations << " RS)";
    os << "\"";
    if (critical.count(e))
      os << ", color=red, penwidth=2.0";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace wp::graph
