// Graphviz export of a system topology — the reproduction of the paper's
// Figure 1. Edges are annotated with their connection label and the number
// of relay stations currently configured.
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace wp::graph {

struct DotOptions {
  std::string title = "wirepipe system";
  bool show_relay_stations = true;
  /// Edges on the system-critical loop are drawn bold red.
  bool highlight_critical_loop = true;
};

/// Renders the graph in DOT syntax.
std::string to_dot(const Digraph& g, const DotOptions& options = {});

}  // namespace wp::graph
