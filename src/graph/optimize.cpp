#include "graph/optimize.hpp"

#include <algorithm>


#include "graph/cycle_ratio.hpp"
#include "util/assert.hpp"

namespace wp::graph {

namespace {

RsAssignment apply_relief(const RsOptimizeProblem& problem,
                          const std::vector<std::string>& relieved) {
  RsAssignment assignment = problem.demand;
  for (const auto& name : relieved) {
    auto it = problem.relieved.find(name);
    WP_REQUIRE(it != problem.relieved.end(),
               "no relieved count for connection " + name);
    assignment[name] = it->second;
  }
  return assignment;
}

}  // namespace

RsOptimizeResult optimize_rs_exhaustive(const RsOptimizeProblem& problem,
                                        const RsObjective& objective) {
  WP_REQUIRE(problem.max_relieved >= 0, "negative relief budget");
  std::vector<std::string> names;
  names.reserve(problem.demand.size());
  for (const auto& [name, count] : problem.demand) {
    (void)count;
    names.push_back(name);
  }
  const std::size_t n = names.size();
  WP_REQUIRE(n <= 20, "exhaustive search limited to 20 connections");

  RsOptimizeResult best;
  best.objective = -1.0;
  for (std::uint32_t subset = 0; subset < (1u << n); ++subset) {
    int bits = 0;
    for (std::uint32_t rest = subset; rest != 0; rest &= rest - 1) ++bits;
    if (bits > problem.max_relieved)
      continue;
    std::vector<std::string> relieved;
    for (std::size_t i = 0; i < n; ++i)
      if ((subset >> i) & 1u) relieved.push_back(names[i]);
    const RsAssignment assignment = apply_relief(problem, relieved);
    const double value = objective(assignment);
    ++best.evaluations;
    if (value > best.objective) {
      best.objective = value;
      best.assignment = assignment;
      best.relieved_connections = std::move(relieved);
    }
  }
  return best;
}

RsOptimizeResult optimize_rs_greedy(const RsOptimizeProblem& problem,
                                    const RsObjective& objective) {
  WP_REQUIRE(problem.max_relieved >= 0, "negative relief budget");
  RsOptimizeResult result;
  std::vector<std::string> candidates;
  for (const auto& [name, count] : problem.demand) {
    (void)count;
    candidates.push_back(name);
  }

  result.assignment = problem.demand;
  result.objective = objective(result.assignment);
  ++result.evaluations;

  for (int round = 0; round < problem.max_relieved; ++round) {
    std::string best_name;
    double best_value = result.objective;
    for (const auto& name : candidates) {
      if (std::find(result.relieved_connections.begin(),
                    result.relieved_connections.end(),
                    name) != result.relieved_connections.end())
        continue;
      auto relieved = result.relieved_connections;
      relieved.push_back(name);
      const double value = objective(apply_relief(problem, relieved));
      ++result.evaluations;
      if (value > best_value) {
        best_value = value;
        best_name = name;
      }
    }
    if (best_name.empty()) break;  // no relief improves the objective
    result.relieved_connections.push_back(best_name);
    result.objective = best_value;
    result.assignment = apply_relief(problem, result.relieved_connections);
  }
  return result;
}

RsObjective static_objective(Digraph g) {
  return [g = std::move(g)](const RsAssignment& assignment) mutable {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      auto it = assignment.find(g.edge(e).label);
      if (it != assignment.end()) g.edge(e).relay_stations = it->second;
    }
    return min_cycle_ratio_lawler(g).ratio;
  };
}

}  // namespace wp::graph
