// Relay-station placement optimization: given per-connection minimum
// relay-station requirements (e.g. derived from wire lengths after
// floorplanning) and a budget of connections that may be relieved (kept
// short, routed on upper metal, …), choose the assignment that maximizes
// throughput. Produces the paper's "Optimal k" configurations.
//
// Two objectives are supported:
//   * the static objective — min cycle ratio of the graph (WP1 throughput);
//   * a caller-supplied objective (e.g. simulated WP2 throughput of the
//     case-study processor under a given program).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace wp::graph {

/// One candidate assignment: relay stations per connection name.
using RsAssignment = std::map<std::string, int>;

/// Objective: larger is better (throughput of the assignment).
using RsObjective = std::function<double(const RsAssignment&)>;

struct RsOptimizeProblem {
  /// The required counts if a connection is not relieved.
  RsAssignment demand;
  /// Counts a relieved connection falls back to (usually demand-1 or 0).
  RsAssignment relieved;
  /// Maximum number of connections that may be relieved.
  int max_relieved = 0;
};

struct RsOptimizeResult {
  RsAssignment assignment;
  std::vector<std::string> relieved_connections;
  double objective = 0.0;
  std::size_t evaluations = 0;
};

/// Exhaustively tries every subset of at most `max_relieved` relieved
/// connections (the Table-1 topology has 10, so this is cheap) and returns
/// the best assignment under the objective.
RsOptimizeResult optimize_rs_exhaustive(const RsOptimizeProblem& problem,
                                        const RsObjective& objective);

/// Greedy variant for large systems: repeatedly relieves the connection
/// yielding the best objective improvement until the budget is exhausted or
/// no relief helps.
RsOptimizeResult optimize_rs_greedy(const RsOptimizeProblem& problem,
                                    const RsObjective& objective);

/// The static objective: min cycle ratio of `g` with the assignment applied
/// to the connection labels of its edges (edge label == connection name).
RsObjective static_objective(Digraph g);

}  // namespace wp::graph
