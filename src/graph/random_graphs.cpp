#include "graph/random_graphs.hpp"

#include "util/assert.hpp"

namespace wp::graph {

Digraph random_digraph(const RandomGraphConfig& config, wp::Rng& rng) {
  WP_REQUIRE(config.num_nodes >= 1, "need at least one node");
  Digraph g;
  for (int i = 0; i < config.num_nodes; ++i)
    g.add_node("p" + std::to_string(i));

  auto random_rs = [&] {
    return static_cast<int>(
        rng.below(static_cast<std::uint64_t>(config.max_relay_stations) + 1));
  };

  if (config.ensure_cycle && config.num_nodes >= 2) {
    for (int i = 0; i < config.num_nodes; ++i)
      g.add_edge(i, (i + 1) % config.num_nodes, "ring", random_rs());
  }
  for (int u = 0; u < config.num_nodes; ++u) {
    for (int v = 0; v < config.num_nodes; ++v) {
      if (u == v) continue;
      if (rng.chance(config.edge_probability))
        g.add_edge(u, v, "e", random_rs());
    }
  }
  return g;
}

Digraph ring_graph(int num_nodes, const std::vector<int>& rs_pattern) {
  WP_REQUIRE(num_nodes >= 1, "need at least one node");
  WP_REQUIRE(!rs_pattern.empty(), "relay-station pattern must be non-empty");
  Digraph g;
  for (int i = 0; i < num_nodes; ++i) g.add_node("p" + std::to_string(i));
  for (int i = 0; i < num_nodes; ++i)
    g.add_edge(i, (i + 1) % num_nodes, "ring",
               rs_pattern[static_cast<std::size_t>(i) % rs_pattern.size()]);
  return g;
}

}  // namespace wp::graph
