// Random graph generators for property tests and the solver benchmarks.
#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace wp::graph {

struct RandomGraphConfig {
  int num_nodes = 8;
  /// Probability of each ordered pair (u,v), u != v, getting an edge.
  double edge_probability = 0.3;
  int max_relay_stations = 3;
  /// Guarantees at least one cycle by closing a random ring first.
  bool ensure_cycle = true;
};

/// Erdős–Rényi-style digraph with random relay-station counts.
Digraph random_digraph(const RandomGraphConfig& config, wp::Rng& rng);

/// A single directed ring of `num_nodes` nodes with the given per-edge
/// relay-station counts (cyclically repeated) — the textbook m/(m+n) case.
Digraph ring_graph(int num_nodes, const std::vector<int>& rs_pattern);

}  // namespace wp::graph
