#include "graph/retiming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/assert.hpp"

namespace wp::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<int> edge_registers(const Digraph& g) {
  std::vector<int> registers(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    WP_REQUIRE(g.edge(e).tokens >= 0, "negative token count");
    registers[static_cast<std::size_t>(e)] =
        g.edge(e).tokens + g.edge(e).relay_stations;
  }
  return registers;
}

std::optional<double> clock_period(const Digraph& g,
                                   const std::vector<int>& registers,
                                   const std::vector<double>& node_delay) {
  const int n = g.num_nodes();
  WP_REQUIRE(static_cast<int>(registers.size()) == g.num_edges(),
             "one register count per edge required");
  WP_REQUIRE(static_cast<int>(node_delay.size()) == n,
             "one delay per node required");
  for (int r : registers) WP_REQUIRE(r >= 0, "negative register count");

  // Longest path over the zero-register subgraph (must be a DAG).
  // Kahn order over zero-weight edges only.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (registers[static_cast<std::size_t>(e)] == 0)
      ++indegree[static_cast<std::size_t>(g.edge(e).dst)];

  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    if (indegree[static_cast<std::size_t>(v)] == 0) order.push_back(v);
  std::vector<double> arrival(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v)
    arrival[static_cast<std::size_t>(v)] = node_delay[static_cast<std::size_t>(v)];

  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (EdgeId e : g.out_edges(v)) {
      if (registers[static_cast<std::size_t>(e)] != 0) continue;
      const auto w = static_cast<std::size_t>(g.edge(e).dst);
      arrival[w] = std::max(arrival[w],
                            arrival[static_cast<std::size_t>(v)] +
                                node_delay[w]);
      if (--indegree[w] == 0) order.push_back(g.edge(e).dst);
    }
  }
  if (order.size() != static_cast<std::size_t>(n)) {
    // Some node never reached indegree 0: a register-free cycle exists.
    return std::nullopt;
  }
  double period = 0.0;
  for (double a : arrival) period = std::max(period, a);
  return period;
}

std::vector<int> apply_retiming(const Digraph& g,
                                const std::vector<int>& registers,
                                const std::vector<int>& retiming) {
  WP_REQUIRE(static_cast<int>(retiming.size()) == g.num_nodes(),
             "one retiming label per node required");
  std::vector<int> out = registers;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    out[static_cast<std::size_t>(e)] +=
        retiming[static_cast<std::size_t>(ed.dst)] -
        retiming[static_cast<std::size_t>(ed.src)];
  }
  return out;
}

RetimingResult min_period_retiming(const Digraph& g,
                                   const std::vector<double>& node_delay) {
  RetimingResult result;
  const int n = g.num_nodes();
  WP_REQUIRE(static_cast<int>(node_delay.size()) == n,
             "one delay per node required");
  const std::vector<int> w0 = edge_registers(g);
  if (n == 0) return result;

  // --- W and D matrices -------------------------------------------------
  // Shortest paths under the lexicographic cost (registers, −delay(tail)):
  // W(u,v) = min registers over u→v paths; D(u,v) = max delay along those
  // minimum-register paths.
  struct Cost {
    double w = kInf;   // registers (double for the infinity sentinel)
    double x = kInf;   // Σ −d(tail) along the path
  };
  const auto un = static_cast<std::size_t>(n);
  std::vector<std::vector<Cost>> dist(un, std::vector<Cost>(un));
  for (std::size_t v = 0; v < un; ++v) dist[v][v] = {0.0, 0.0};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const auto u = static_cast<std::size_t>(ed.src);
    const auto v = static_cast<std::size_t>(ed.dst);
    if (u == v) continue;  // self-loops never constrain retiming pairs
    const Cost candidate{static_cast<double>(w0[static_cast<std::size_t>(e)]),
                         -node_delay[u]};
    const auto& current = dist[u][v];
    if (candidate.w < current.w ||
        (candidate.w == current.w && candidate.x < current.x))
      dist[u][v] = candidate;
  }
  for (std::size_t k = 0; k < un; ++k)
    for (std::size_t i = 0; i < un; ++i) {
      if (dist[i][k].w == kInf) continue;
      for (std::size_t j = 0; j < un; ++j) {
        if (dist[k][j].w == kInf) continue;
        const Cost via{dist[i][k].w + dist[k][j].w,
                       dist[i][k].x + dist[k][j].x};
        if (via.w < dist[i][j].w ||
            (via.w == dist[i][j].w && via.x < dist[i][j].x))
          dist[i][j] = via;
      }
    }

  auto D = [&](std::size_t u, std::size_t v) {
    return node_delay[v] - dist[u][v].x;
  };

  // Candidate periods: all distinct D(u,v) (plus single-node delays).
  std::set<double> candidates(node_delay.begin(), node_delay.end());
  for (std::size_t u = 0; u < un; ++u)
    for (std::size_t v = 0; v < un; ++v)
      if (dist[u][v].w != kInf) candidates.insert(D(u, v));

  // --- feasibility test: difference constraints via Bellman–Ford --------
  // r(u) − r(v) ≤ w(e) for every edge u→v, and r(u) − r(v) ≤ W(u,v) − 1
  // for every pair with D(u,v) > c.
  auto feasible = [&](double c,
                      std::vector<int>* labels) -> bool {
    std::vector<double> r(un, 0.0);
    for (int pass = 0; pass <= n; ++pass) {
      bool changed = false;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& ed = g.edge(e);
        const auto u = static_cast<std::size_t>(ed.src);
        const auto v = static_cast<std::size_t>(ed.dst);
        // r(u) <= r(v) + w(e)
        const double bound =
            r[v] + static_cast<double>(w0[static_cast<std::size_t>(e)]);
        if (r[u] > bound + 1e-9) {
          r[u] = bound;
          changed = true;
        }
      }
      for (std::size_t u = 0; u < un; ++u)
        for (std::size_t v = 0; v < un; ++v) {
          if (u == v || dist[u][v].w == kInf || D(u, v) <= c + 1e-9)
            continue;
          const double bound = r[v] + dist[u][v].w - 1.0;
          if (r[u] > bound + 1e-9) {
            r[u] = bound;
            changed = true;
          }
        }
      if (!changed) {
        if (labels) {
          labels->resize(un);
          for (std::size_t v = 0; v < un; ++v)
            (*labels)[v] = static_cast<int>(std::lround(r[v]));
        }
        return true;
      }
    }
    return false;  // still relaxing after n passes: negative cycle
  };

  // --- binary search over the sorted candidates -------------------------
  std::vector<double> sorted(candidates.begin(), candidates.end());
  std::size_t lo = 0, hi = sorted.size();
  std::vector<int> best_labels;
  double best_period = kInf;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::vector<int> labels;
    if (feasible(sorted[mid], &labels)) {
      best_period = sorted[mid];
      best_labels = std::move(labels);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (best_period == kInf) return result;  // no legal retiming (rare)

  result.feasible = true;
  result.retiming = std::move(best_labels);
  result.registers = apply_retiming(g, w0, result.retiming);
  for (int reg : result.registers)
    WP_CHECK(reg >= 0, "retiming produced a negative register count");
  const auto period = clock_period(g, result.registers, node_delay);
  WP_CHECK(period.has_value(), "retimed circuit has a register-free cycle");
  result.period = *period;
  return result;
}

}  // namespace wp::graph
