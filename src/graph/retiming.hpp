// Leiserson–Saxe retiming over the system graph: registers (the implicit
// per-channel register plus relay stations) are moved across processes
// without changing any loop's register sum — hence without changing the
// m/(m+n) throughput of any loop — to minimize the combinational clock
// period. In a wire-pipelined SoC this is the tool that rebalances relay
// stations along a route after floorplanning.
//
// Model: edge e = (u → v) carries w(e) ≥ 0 registers; node v has
// combinational delay d(v) > 0. A retiming r : V → Z relabels
// w_r(e) = w(e) + r(v) − r(u); it is legal iff every w_r(e) ≥ 0. The clock
// period of a weighting is the longest combinational path: the maximum
// total node delay along any path whose edges all have zero registers.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace wp::graph {

/// Register count per edge used by the retimer: tokens + relay_stations
/// (the channel's own registers plus its pipeline stages). Setting an
/// edge's tokens to 0 models a purely combinational link, the case where
/// retiming has real work to do.
std::vector<int> edge_registers(const Digraph& g);

/// Clock period of a weighting: the maximum node-delay sum along any
/// register-free path, or nullopt if some cycle has no registers at all
/// (combinationally infeasible).
std::optional<double> clock_period(const Digraph& g,
                                   const std::vector<int>& registers,
                                   const std::vector<double>& node_delay);

struct RetimingResult {
  bool feasible = false;
  double period = 0.0;             ///< achieved clock period
  std::vector<int> retiming;       ///< r(v) per node
  std::vector<int> registers;      ///< retimed register count per edge
};

/// Minimum-period retiming (Leiserson–Saxe OPT: W/D matrices + binary
/// search over candidate periods with Bellman–Ford feasibility). Requires
/// every cycle to carry at least one register.
RetimingResult min_period_retiming(const Digraph& g,
                                   const std::vector<double>& node_delay);

/// Applies a retiming to per-edge register counts (exposed for tests).
std::vector<int> apply_retiming(const Digraph& g,
                                const std::vector<int>& registers,
                                const std::vector<int>& retiming);

}  // namespace wp::graph
