#include "graph/throughput.hpp"

#include <algorithm>

namespace wp::graph {

ThroughputReport analyze_throughput(const Digraph& g) {
  ThroughputReport report;
  for (const auto& cycle : enumerate_cycles(g)) {
    LoopReportEntry entry;
    entry.description = cycle_to_string(g, cycle);
    entry.m = cycle.processes;
    entry.n = cycle.relay_stations;
    entry.throughput = cycle.throughput();
    report.loops.push_back(std::move(entry));
  }
  std::sort(report.loops.begin(), report.loops.end(),
            [](const LoopReportEntry& a, const LoopReportEntry& b) {
              if (a.throughput != b.throughput)
                return a.throughput < b.throughput;
              return a.description < b.description;
            });
  if (!report.loops.empty()) {
    report.system_throughput = report.loops.front().throughput;
    report.critical_loop = report.loops.front().description;
  }
  return report;
}

double system_throughput(const Digraph& g) {
  return min_cycle_ratio_lawler(g).ratio;
}

double predicted_wp1_throughput(const Digraph& g) {
  return system_throughput(g);
}

}  // namespace wp::graph
