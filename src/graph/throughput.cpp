#include "graph/throughput.hpp"

#include <algorithm>

namespace wp::graph {

ThroughputReport analyze_throughput(const Digraph& g) {
  ThroughputReport report;
  for (const auto& cycle : enumerate_cycles(g)) {
    LoopReportEntry entry;
    entry.description = cycle_to_string(g, cycle);
    entry.m = cycle.processes;
    entry.n = cycle.relay_stations;
    entry.throughput = cycle.throughput();
    report.loops.push_back(std::move(entry));
  }
  std::sort(report.loops.begin(), report.loops.end(),
            [](const LoopReportEntry& a, const LoopReportEntry& b) {
              if (a.throughput != b.throughput)
                return a.throughput < b.throughput;
              return a.description < b.description;
            });
  if (!report.loops.empty()) {
    report.system_throughput = report.loops.front().throughput;
    report.critical_loop = report.loops.front().description;
  }
  return report;
}

double system_throughput(const Digraph& g) {
  return min_cycle_ratio_lawler(g).ratio;
}

double predicted_wp1_throughput(const Digraph& g) {
  return system_throughput(g);
}

ThroughputEvaluator::ThroughputEvaluator(Digraph base) : g_(std::move(base)) {
  base_rs_.reserve(static_cast<std::size_t>(g_.num_edges()));
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    base_rs_.push_back(g_.edge(e).relay_stations);
    edges_by_label_[g_.edge(e).label].push_back(e);
  }
}

void ThroughputEvaluator::reset_rs() {
  for (EdgeId e = 0; e < g_.num_edges(); ++e)
    g_.edge(e).relay_stations = base_rs_[static_cast<std::size_t>(e)];
}

void ThroughputEvaluator::apply(const std::string& label,
                                int relay_stations) {
  const auto it = edges_by_label_.find(label);
  if (it == edges_by_label_.end()) return;  // label absent from the graph
  for (EdgeId e : it->second) g_.edge(e).relay_stations = relay_stations;
}

double ThroughputEvaluator::evaluate() {
  ++queries_;
  return min_cycle_ratio_howard(g_, &state_).ratio;
}

double ThroughputEvaluator::operator()(
    const std::vector<std::pair<std::string, int>>& demand) {
  reset_rs();
  for (const auto& [label, rs] : demand) apply(label, rs);
  return evaluate();
}

double ThroughputEvaluator::with_rs_map(
    const std::map<std::string, int>& rs) {
  reset_rs();
  for (const auto& [label, count] : rs) apply(label, count);
  return evaluate();
}

}  // namespace wp::graph
