// Static throughput analysis of a wire-pipelined system: the per-loop
// inventory behind the paper's Figure 1 discussion and the m/(m+n) WP1
// predictions of Table 1.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/cycle_ratio.hpp"
#include "graph/cycles.hpp"
#include "graph/digraph.hpp"

namespace wp::graph {

/// One row of the loop inventory.
struct LoopReportEntry {
  std::string description;  ///< "CU -> IC -> CU"
  int m = 0;                ///< processes on the loop
  int n = 0;                ///< relay stations on the loop
  double throughput = 1.0;  ///< m/(m+n) with the current RS counts
};

struct ThroughputReport {
  std::vector<LoopReportEntry> loops;  ///< sorted by ascending throughput
  double system_throughput = 1.0;      ///< min over loops (1.0 if acyclic)
  std::string critical_loop;           ///< description of the worst loop
};

/// Enumerates all loops and evaluates each with the graph's current
/// relay-station counts.
ThroughputReport analyze_throughput(const Digraph& g);

/// System throughput only (min cycle ratio, no enumeration) — scales to
/// graphs whose loop count explodes.
double system_throughput(const Digraph& g);

/// WP1 throughput prediction for a named single-connection configuration:
/// the minimum m/(m+n) over the loops that traverse at least one edge with
/// relay stations. Loops untouched by pipelining run at 1.0.
double predicted_wp1_throughput(const Digraph& g);

/// Stateful throughput oracle: owns a copy of the base graph, applies
/// per-connection relay-station counts by label, and warm-starts Howard's
/// policy iteration from the previous query — but still pays a whole-graph
/// RS reset and a cold certification probe per evaluation.
///
/// This is the REFERENCE oracle, kept verbatim as the differential-testing
/// baseline (the role naive pack() plays for the packing engine): the hot
/// paths now run graph::ThroughputEngine (throughput_engine.hpp), which is
/// bit-identical and applies demands as incremental in-place deltas with a
/// lazily repaired certificate. tests/test_throughput_engine.cpp holds the
/// two together.
///
/// Returns exactly min_cycle_ratio over the configured graph (Howard is
/// certified and falls back to the parametric search when the certificate
/// fails), so warm starts never change a result, only its cost.
///
/// Not thread-safe: give each worker thread its own evaluator.
class ThroughputEvaluator {
 public:
  explicit ThroughputEvaluator(Digraph base);

  /// Throughput with per-connection RS counts from `demand`; connections
  /// not mentioned keep the base graph's counts.
  double operator()(const std::vector<std::pair<std::string, int>>& demand);

  /// Same, keyed form (the experiment driver's RsConfig::rs shape).
  double with_rs_map(const std::map<std::string, int>& rs);

  std::uint64_t queries() const { return queries_; }

 private:
  void reset_rs();
  void apply(const std::string& label, int relay_stations);
  double evaluate();

  Digraph g_;
  std::vector<int> base_rs_;  ///< per-edge counts of the base graph
  std::unordered_map<std::string, std::vector<EdgeId>> edges_by_label_;
  HowardState state_;
  std::uint64_t queries_ = 0;
};

}  // namespace wp::graph
