// Static throughput analysis of a wire-pipelined system: the per-loop
// inventory behind the paper's Figure 1 discussion and the m/(m+n) WP1
// predictions of Table 1.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/cycle_ratio.hpp"
#include "graph/cycles.hpp"
#include "graph/digraph.hpp"

namespace wp::graph {

/// One row of the loop inventory.
struct LoopReportEntry {
  std::string description;  ///< "CU -> IC -> CU"
  int m = 0;                ///< processes on the loop
  int n = 0;                ///< relay stations on the loop
  double throughput = 1.0;  ///< m/(m+n) with the current RS counts
};

struct ThroughputReport {
  std::vector<LoopReportEntry> loops;  ///< sorted by ascending throughput
  double system_throughput = 1.0;      ///< min over loops (1.0 if acyclic)
  std::string critical_loop;           ///< description of the worst loop
};

/// Enumerates all loops and evaluates each with the graph's current
/// relay-station counts.
ThroughputReport analyze_throughput(const Digraph& g);

/// System throughput only (min cycle ratio, no enumeration) — scales to
/// graphs whose loop count explodes.
double system_throughput(const Digraph& g);

/// WP1 throughput prediction for a named single-connection configuration:
/// the minimum m/(m+n) over the loops that traverse at least one edge with
/// relay stations. Loops untouched by pipelining run at 1.0.
double predicted_wp1_throughput(const Digraph& g);

}  // namespace wp::graph
