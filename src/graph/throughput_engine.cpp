#include "graph/throughput_engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wp::graph {

namespace {

/// Obs mirror of ThroughputEngine::Stats, flushed once per engine at
/// destruction (engines are per-worker; the query path stays atomic-free).
struct EngineMetrics {
  obs::Counter& queries;
  obs::Counter& unchanged;
  obs::Counter& acyclic;
  obs::Counter& cycle_hits;
  obs::Counter& warm_hits;
  obs::Counter& fallbacks;
  obs::Counter& undos;

  static EngineMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static EngineMetrics metrics{
        registry.counter("graph/engine/queries"),
        registry.counter("graph/engine/unchanged"),
        registry.counter("graph/engine/acyclic"),
        registry.counter("graph/engine/cycle_hits"),
        registry.counter("graph/engine/warm_hits"),
        registry.counter("graph/engine/fallbacks"),
        registry.counter("graph/engine/undos")};
    return metrics;
  }
};

}  // namespace

ThroughputEngine::~ThroughputEngine() {
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.queries.add(stats_.queries);
  metrics.unchanged.add(stats_.unchanged);
  metrics.acyclic.add(stats_.acyclic);
  metrics.cycle_hits.add(stats_.cycle_hits);
  metrics.warm_hits.add(stats_.warm_hits);
  metrics.fallbacks.add(stats_.fallbacks);
  metrics.undos.add(stats_.undos);
}

ThroughputEngine::ThroughputEngine(Digraph base) : g_(std::move(base)) {
  const auto num_edges = static_cast<std::size_t>(g_.num_edges());
  base_rs_.reserve(num_edges);
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    base_rs_.push_back(g_.edge(e).relay_stations);
    const auto [it, inserted] =
        label_ids_.emplace(g_.edge(e).label, label_edges_.size());
    if (inserted) label_edges_.emplace_back();
    label_edges_[it->second].push_back(e);
  }
  label_epoch_.assign(label_edges_.size(), 0);
  label_dirty_.assign(label_edges_.size(), 0);
  const auto num_nodes = static_cast<std::size_t>(g_.num_nodes());
  potential_.assign(num_nodes, 0.0);
  potential_lat_.assign(num_nodes, 0.0);
  in_worklist_.assign(num_nodes, 0);
  // Cyclicity is structural — relay-station mutations cannot change it, so
  // acyclic instances answer every query as a constant 1.0 (exactly the
  // fresh solver's acyclic result).
  cyclic_ = detail::has_cycle(g_);
}

void ThroughputEngine::set_label_edges(std::size_t label,
                                       int relay_stations) {
  bool dirty = false;
  for (const EdgeId e : label_edges_[label]) {
    int& current = g_.edge(e).relay_stations;
    if (current != relay_stations) {
      trail_.push_back({e, current});
      current = relay_stations;
    }
    if (base_rs_[static_cast<std::size_t>(e)] != relay_stations) dirty = true;
  }
  label_dirty_[label] = dirty ? 1 : 0;
}

void ThroughputEngine::revert_label_to_base(std::size_t label) {
  for (const EdgeId e : label_edges_[label]) {
    int& current = g_.edge(e).relay_stations;
    const int base = base_rs_[static_cast<std::size_t>(e)];
    if (current != base) {
      trail_.push_back({e, current});
      current = base;
    }
  }
  label_dirty_[label] = 0;
}

double ThroughputEngine::throughput(
    const std::vector<std::pair<std::string, int>>& demand) {
  ++stats_.queries;
  trail_.clear();
  prev_dirty_labels_ = dirty_labels_;
  prev_ratio_ = ratio_;
  prev_has_result_ = has_result_;
  ++epoch_;

  // rs_demand() emits the same sorted label sequence for one instance on
  // every call, so the label→id resolution is memoized per sequence and
  // revalidated with plain string equality — cheaper than re-hashing
  // thousands of connection names per move on large instances.
  const std::size_t count = demand.size();
  bool cached = count == seq_labels_.size();
  if (cached) {
    for (std::size_t i = 0; i < count; ++i)
      if (demand[i].first != seq_labels_[i]) {
        cached = false;
        break;
      }
  }
  if (!cached) {
    seq_labels_.resize(count);
    seq_ids_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      seq_labels_[i] = demand[i].first;
      const auto it = label_ids_.find(demand[i].first);
      seq_ids_[i] =
          it == label_ids_.end() ? -1 : static_cast<int>(it->second);
    }
  }

  // Pass 1: apply the demanded labels (duplicates: last one wins, like the
  // evaluator's sequential apply; unknown labels are ignored).
  touched_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (seq_ids_[i] < 0) continue;  // label absent from the graph
    const auto label = static_cast<std::size_t>(seq_ids_[i]);
    if (label_epoch_[label] != epoch_) {
      label_epoch_[label] = epoch_;
      touched_scratch_.push_back(label);
    }
    set_label_edges(label, demand[i].second);
  }
  // Pass 2: labels dirtied by an earlier demand but absent from this one
  // revert to the base counts — the evaluator's whole-graph reset, paid
  // only where an edge actually differs.
  for (const std::size_t label : dirty_labels_)
    if (label_epoch_[label] != epoch_) revert_label_to_base(label);
  dirty_labels_.clear();
  for (const std::size_t label : touched_scratch_)
    if (label_dirty_[label]) dirty_labels_.push_back(label);

  can_undo_ = true;
  if (trail_.empty() && has_result_) {
    ++stats_.unchanged;
    return ratio_;
  }
  return solve();
}

double ThroughputEngine::with_rs_map(const std::map<std::string, int>& rs) {
  return throughput({rs.begin(), rs.end()});
}

double ThroughputEngine::solve() {
  if (!cyclic_) {
    ratio_ = 1.0;  // CycleRatioResult's acyclic default
    has_result_ = true;
    ++stats_.acyclic;
    return ratio_;
  }
  if (incremental_ && has_certificate_) {
    // Candidate 1: the previous critical cycle, re-costed on the mutated
    // graph in O(|cycle|). Most moves leave the argmin where it was (only
    // cycles through mutated edges can displace it), so this certifies
    // without running any policy iteration at all.
    if (!critical_cycle_.empty()) {
      const double candidate = detail::exact_cycle_ratio(g_, critical_cycle_);
      if (certify(candidate)) {
        ++stats_.cycle_hits;
        ratio_ = candidate;
        has_result_ = true;
        return ratio_;
      }
    }
    // Candidate 2: a few warm policy-iteration sweeps from the previous
    // optimal policy — the move displaced the argmin (candidate 1's
    // certify diverged on the displacing cycle), but usually only to a
    // neighboring cycle the warmed policy finds within a round or two.
    // The certificate decides; an uncertifiable sweep just falls through.
    // Candidate 1's failed repair left the potentials partially relaxed —
    // harmless, certify() always re-validates every edge from scratch.
    const CycleRatioResult warm =
        detail::howard_policy_iteration(g_, state_.policy, kWarmSweeps);
    if (certify(warm.ratio)) {
      ++stats_.warm_hits;
      critical_cycle_ = warm.critical_cycle;
      ratio_ = warm.ratio;
      has_result_ = true;
      return ratio_;
    }
  }
  // Cold path — same answers as the certified solver
  // (min_cycle_ratio_howard), arrived at by witness descent: converge
  // policy iteration, then certify with the whole-graph Bellman–Ford of
  // rebuild_certificate(). When that diverges the policy stalled above
  // the true minimum — instead of Lawler's from-scratch bisection, jump λ
  // down to the exact ratio of the negative cycle the Bellman–Ford just
  // found (Lawler's own witness-jump step, started from a near-optimal λ)
  // and re-certify; each jump lands on an attained cycle ratio strictly
  // below the last, so a couple of rounds settle where the bisection
  // spends dozens of probes. A certified attained ratio is the exact
  // minimum either way. The converged distances are KEPT as the next
  // queries' dual certificate. The parametric search remains as the
  // safety net behind a round cap.
  ++stats_.fallbacks;
  CycleRatioResult cold =
      detail::howard_policy_iteration(g_, state_.policy, kColdSweeps);
  double lambda = cold.ratio;
  std::vector<EdgeId> cycle = std::move(cold.critical_cycle);
  for (int round = 0; round < 32; ++round) {
    std::vector<EdgeId> witness = rebuild_certificate(lambda);
    if (has_certificate_) {
      critical_cycle_ = std::move(cycle);
      ratio_ = lambda;
      has_result_ = true;
      return ratio_;
    }
    if (witness.empty()) break;  // divergent without a witness → Lawler
    cycle = std::move(witness);
    lambda = detail::exact_cycle_ratio(g_, cycle);
  }
  const CycleRatioResult exact = min_cycle_ratio_lawler(g_);
  rebuild_certificate(exact.ratio);
  critical_cycle_ = exact.critical_cycle;
  ratio_ = exact.ratio;
  has_result_ = true;
  return ratio_;
}

bool ThroughputEngine::certify(double lambda) {
  // Re-base the certificate at λ: each π(v) is the value of a concrete
  // super-source path whose latency we remembered, and path values are
  // linear in λ — so the shift is exact, not an approximation. After it,
  // only edges whose optimal path changed (or whose latency was mutated)
  // can violate, no matter how far λ moved.
  if (lambda != cert_lambda_) {
    const double delta = lambda - cert_lambda_;
    for (std::size_t v = 0; v < potential_.size(); ++v)
      potential_[v] -= delta * potential_lat_[v];
    cert_lambda_ = lambda;
  }
  // Slack scan: π certifies λ iff every edge satisfies
  // tokens − λ·latency + π(src) − π(dst) ≥ 0. Violations seed a
  // Bellman–Ford worklist that relaxes π downward from the frontier; if it
  // drains, the repaired π certifies λ (kept for the next query). A
  // genuinely smaller cycle makes the relaxations chase their own tail, so
  // the budget bounds the incremental cost before conceding to the cold
  // solver.
  worklist_.clear();
  for (EdgeId e = 0; e < g_.num_edges(); ++e) {
    const auto& ed = g_.edge(e);
    const double tokens = static_cast<double>(ed.tokens);
    const double latency = static_cast<double>(g_.edge_latency(e));
    const double lt = lambda * latency;
    const double w = tokens - lt;
    const auto s = static_cast<std::size_t>(ed.src);
    const auto d = static_cast<std::size_t>(ed.dst);
    if (detail::relax_improves(potential_[d], potential_[s] + w,
                               std::abs(tokens) + lt)) {
      potential_[d] = potential_[s] + w;
      potential_lat_[d] = potential_lat_[s] + latency;
      if (!in_worklist_[d]) {
        in_worklist_[d] = 1;
        worklist_.push_back(ed.dst);
      }
    }
  }
  if (worklist_.empty()) return true;

  // Two failure detectors, both safe (failure only demotes the candidate):
  // a global relaxation budget, and a per-node pop cap — when λ sits above
  // the true minimum the relaxations lap the violating cycle forever, so a
  // node popping many times signals divergence after ~cap laps instead of
  // after the whole budget.
  std::size_t budget = 8 * static_cast<std::size_t>(g_.num_edges()) + 64;
  constexpr std::uint32_t kMaxPopsPerNode = 6;
  pops_.assign(static_cast<std::size_t>(g_.num_nodes()), 0);
  auto give_up = [&](std::size_t head) {
    for (std::size_t i = head; i < worklist_.size(); ++i)
      in_worklist_[static_cast<std::size_t>(worklist_[i])] = 0;
    return false;
  };
  for (std::size_t head = 0; head < worklist_.size(); ++head) {
    const NodeId v = worklist_[head];
    in_worklist_[static_cast<std::size_t>(v)] = 0;
    // Inconclusive: drop out with the dedup flags drained. The
    // half-repaired potentials stay — they are a legal starting guess for
    // the next certify (the scan re-validates every edge), and the cold
    // fallback rebuilds them from scratch anyway.
    if (++pops_[static_cast<std::size_t>(v)] > kMaxPopsPerNode)
      return give_up(head);
    for (const EdgeId e : g_.out_edges(v)) {
      if (budget == 0) return give_up(head);
      --budget;
      const auto& ed = g_.edge(e);
      const double tokens = static_cast<double>(ed.tokens);
      const double latency = static_cast<double>(g_.edge_latency(e));
      const double lt = lambda * latency;
      const double w = tokens - lt;
      const auto s = static_cast<std::size_t>(ed.src);
      const auto d = static_cast<std::size_t>(ed.dst);
      if (detail::relax_improves(potential_[d], potential_[s] + w,
                                 std::abs(tokens) + lt)) {
        potential_[d] = potential_[s] + w;
        potential_lat_[d] = potential_lat_[s] + latency;
        if (!in_worklist_[d]) {
          in_worklist_[d] = 1;
          worklist_.push_back(ed.dst);
        }
      }
    }
  }
  return true;
}

std::vector<EdgeId> ThroughputEngine::rebuild_certificate(double lambda) {
  // Bellman–Ford to a feasible potential at λ (possible iff no cycle is
  // negative there — true for a certified ratio, where the critical cycle
  // sits exactly at weight 0). Warm-started: every held π(v) is a real
  // path's value, re-based at λ by the exact affine shift and clamped to
  // the empty path's 0 — usually a handful of passes from feasibility
  // instead of a from-scratch solve.
  if (lambda != cert_lambda_) {
    const double delta = lambda - cert_lambda_;
    for (std::size_t v = 0; v < potential_.size(); ++v)
      potential_[v] -= delta * potential_lat_[v];
  }
  for (std::size_t v = 0; v < potential_.size(); ++v) {
    if (potential_[v] > 0.0) {
      potential_[v] = 0.0;
      potential_lat_[v] = 0.0;
    }
  }
  cert_lambda_ = lambda;
  const int n = g_.num_nodes();
  has_certificate_ = false;
  std::vector<EdgeId> pred(static_cast<std::size_t>(g_.num_nodes()), -1);
  std::vector<int> stamp(static_cast<std::size_t>(g_.num_nodes()), -1);

  // Every relaxation is a strict (beyond-tolerance) improvement, so a
  // cycle in the predecessor graph is a negative cycle — walking the pred
  // chain after each pass (O(V)) detects divergence after ~diameter
  // passes instead of burning all n+1 passes to prove it.
  auto pred_cycle_from = [&](NodeId start, int id) -> std::vector<EdgeId> {
    NodeId v = start;
    while (v >= 0 && pred[static_cast<std::size_t>(v)] >= 0) {
      if (stamp[static_cast<std::size_t>(v)] == id) {
        std::vector<EdgeId> cycle;
        NodeId u = v;
        do {
          const EdgeId e = pred[static_cast<std::size_t>(u)];
          cycle.push_back(e);
          u = g_.edge(e).src;
        } while (u != v);
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
      stamp[static_cast<std::size_t>(v)] = id;
      v = g_.edge(pred[static_cast<std::size_t>(v)]).src;
    }
    return {};
  };

  for (int pass = 0; pass <= n; ++pass) {
    EdgeId last_relaxed = -1;
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      const auto& ed = g_.edge(e);
      const double tokens = static_cast<double>(ed.tokens);
      const double latency = static_cast<double>(g_.edge_latency(e));
      const double lt = lambda * latency;
      const double w = tokens - lt;
      const auto s = static_cast<std::size_t>(ed.src);
      const auto d = static_cast<std::size_t>(ed.dst);
      if (detail::relax_improves(potential_[d], potential_[s] + w,
                                 std::abs(tokens) + lt)) {
        potential_[d] = potential_[s] + w;
        potential_lat_[d] = potential_lat_[s] + latency;
        pred[d] = e;
        last_relaxed = e;
      }
    }
    if (last_relaxed == -1) {
      has_certificate_ = true;
      return {};
    }
    std::vector<EdgeId> witness =
        pred_cycle_from(g_.edge(last_relaxed).dst, pass);
    if (!witness.empty()) return witness;
  }
  // n+1 passes of relaxations without a pred cycle surfacing behind the
  // last relaxed edge — divergent, but without a clean witness; let the
  // caller's descent cap hand this to the parametric search.
  return {};
}

void ThroughputEngine::undo() {
  WP_REQUIRE(can_undo_, "ThroughputEngine: nothing to undo");
  for (auto it = trail_.rbegin(); it != trail_.rend(); ++it)
    g_.edge(it->edge).relay_stations = it->old_relay_stations;
  trail_.clear();
  for (const std::size_t label : dirty_labels_) label_dirty_[label] = 0;
  dirty_labels_ = prev_dirty_labels_;
  for (const std::size_t label : dirty_labels_) label_dirty_[label] = 1;
  ratio_ = prev_ratio_;
  has_result_ = prev_has_result_;
  can_undo_ = false;
  ++stats_.undos;
  // Howard state and the certificate stay as they are: both are advisory —
  // every future query re-validates them against the current graph.
}

}  // namespace wp::graph
