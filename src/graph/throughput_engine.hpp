// Incremental throughput oracle for exploration hot loops — the annealer's
// per-move cost query, ensemble sample scoring, RS sweeps.
//
// The pre-engine path (graph::ThroughputEvaluator, kept as the reference
// oracle) pays per query: an O(E) reset of every relay-station count, a
// warm-started Howard policy iteration, and — the real cost — a cold
// O(V·E) Bellman–Ford probe to certify the answer. But an annealing move
// perturbs only a handful of per-connection demands, i.e. a few edge
// latencies in a structurally fixed graph, so the oracle should be
// incremental the same way packing became incremental (pack_engine):
//
//   * the RS graph is built ONCE per instance; each demand vector is
//     applied as an in-place edge-latency delta with an undo trail
//     (labels absent from the new demand revert to base counts — the
//     evaluator's reset semantics, paid only where an edge actually
//     changes);
//   * optimality is RE-CERTIFIED LAZILY: the engine keeps the dual
//     certificate of the last solve — per-node potentials π with
//     tokens_e − λ·latency_e + π(src) − π(dst) ≥ 0 for every edge, which
//     proves no cycle beats λ. Each π(v) is a concrete path's value, so
//     re-basing the certificate at a new λ is an exact O(V) affine shift
//     (path values are linear in λ), and a query is one O(E) slack scan
//     plus a bounded Bellman–Ford repair around the violation frontier —
//     only cycles through mutated edges can change the argmin, so the
//     frontier is usually tiny;
//   * candidates are certified cheapest-first: the PREVIOUS critical
//     cycle re-costed on the mutated graph (no policy iteration at all),
//     then a few Howard sweeps warm-started from the previous optimal
//     policy. Whatever certifies first is the exact minimum.
//
// Exact-fallback equivalence contract: when no candidate certifies, the
// engine re-solves cold — bounded policy iteration, then WITNESS DESCENT:
// a full Bellman–Ford either converges (certifying the candidate and
// becoming the next queries' certificate) or surfaces a negative cycle
// whose exact ratio becomes the next, strictly lower candidate. That is
// the same certify-or-defer-to-parametric-search algorithm as
// min_cycle_ratio_howard (Lawler's bisection remains the safety net
// behind a round cap), so every returned ratio is BIT-IDENTICAL to a
// fresh min_cycle_ratio_howard() on an equivalently configured graph: a
// certified attained ratio IS the exact minimum, and distinct cycle
// ratios of these integer-token/latency graphs are rationals separated by
// far more than the solver tolerances, so both paths land on the same
// double. (That separation argument — shared with the certified solver's
// own ±1e-9 probe — assumes cycle latency sums well below ~1e6; graphs
// with near-tie cycles at larger magnitudes can quantize below the
// relative slack for any solver in this module. Placement-derived RS
// demands sit orders of magnitude inside the safe regime.) The
// differential suite (tests/test_throughput_engine.cpp) enforces the
// contract across random demand-perturbation chains, run explicitly in
// Debug and ASan/UBSan CI.
//
// Not thread-safe: one engine per worker (annealer restarts and ensemble
// samples each own one; anneal_parallel takes an engine factory).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/cycle_ratio.hpp"
#include "graph/digraph.hpp"

namespace wp::graph {

class ThroughputEngine {
 public:
  /// Query-path counters. Every query lands in exactly one of unchanged /
  /// acyclic / cycle_hits / warm_hits / fallbacks.
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t unchanged = 0;   ///< delta touched no edge
    std::uint64_t acyclic = 0;     ///< no cycle exists; constant 1.0
    std::uint64_t cycle_hits = 0;  ///< previous critical cycle re-certified
    std::uint64_t warm_hits = 0;   ///< warm policy sweeps certified
    std::uint64_t fallbacks = 0;   ///< cold certified re-solve
    std::uint64_t undos = 0;

    /// Queries resolved without a cold solve.
    std::uint64_t incremental() const {
      return unchanged + acyclic + cycle_hits + warm_hits;
    }
  };

  explicit ThroughputEngine(Digraph base);

  /// Flushes this engine's Stats into the obs registry ("graph/engine/*")
  /// — engines are per-worker and short-lived, so one flush at teardown
  /// aggregates across restarts without touching the query hot path.
  ~ThroughputEngine();

  /// System throughput (minimum cycle ratio) with per-connection RS counts
  /// from `demand`; connections not mentioned revert to the base graph's
  /// counts, unknown labels are ignored. Exactly equal to a fresh
  /// min_cycle_ratio_howard() on the configured graph.
  double throughput(const std::vector<std::pair<std::string, int>>& demand);

  /// Same, keyed form (the experiment driver's RsConfig::rs shape).
  double with_rs_map(const std::map<std::string, int>& rs);

  /// Reverts the edge mutations of the most recent query and restores its
  /// predecessor's cached result — one level deep, the annealer's
  /// accept/reject shape (mirrors IncrementalPacker::revert()).
  void undo();
  bool can_undo() const { return can_undo_; }

  /// Test hook: with incremental certification off, every solving query
  /// takes the cold fallback path (demand deltas still apply in place).
  /// Results are identical either way — that is the point of the suite
  /// that flips this.
  void set_incremental(bool on) { incremental_ = on; }

  const Stats& stats() const { return stats_; }
  /// The engine's graph in its CURRENT configuration (base + last demand).
  const Digraph& graph() const { return g_; }

 private:
  void set_label_edges(std::size_t label, int relay_stations);
  void revert_label_to_base(std::size_t label);
  double solve();
  /// Tries to certify `lambda` as the exact minimum by repairing the held
  /// potentials; returns false (inconclusive) when the worklist budget is
  /// exhausted or no certificate is held.
  bool certify(double lambda);
  /// Rebuilds the dual certificate at `lambda` with a full Bellman–Ford
  /// from the virtual super-source (the cold-path cost, paid only on
  /// fallback). Returns empty on success (has_certificate_ set); on
  /// divergence returns a witness cycle that is negative at `lambda`,
  /// whose exact ratio drives the cold path's witness descent.
  std::vector<EdgeId> rebuild_certificate(double lambda);

  Digraph g_;
  bool cyclic_ = false;
  bool incremental_ = true;
  std::vector<int> base_rs_;  ///< per-edge counts of the base graph

  // Label interning: demand vectors address edges by connection label.
  std::unordered_map<std::string, std::size_t> label_ids_;
  /// Memoized label→id resolution of the last demand's label sequence
  /// (rs_demand emits a stable sorted sequence; equality-checked per
  /// query, rebuilt on any mismatch). -1 = label absent from the graph.
  std::vector<std::string> seq_labels_;
  std::vector<int> seq_ids_;
  std::vector<std::vector<EdgeId>> label_edges_;
  std::vector<std::uint64_t> label_epoch_;  ///< last query touching a label
  std::vector<char> label_dirty_;  ///< any edge differs from base
  std::vector<std::size_t> dirty_labels_;
  std::vector<std::size_t> touched_scratch_;
  std::uint64_t epoch_ = 0;

  // Warm-start state and the incremental dual certificate. The previous
  // critical cycle doubles as the first candidate of every solve — its
  // edge ids stay valid because the graph's structure never changes.
  static constexpr int kWarmSweeps = 12;
  /// The cold path does not need full policy-iteration convergence — it
  /// only seeds the witness descent with a good attained ratio; the
  /// descent's certificate owns optimality.
  static constexpr int kColdSweeps = 24;
  HowardState state_;
  std::vector<EdgeId> critical_cycle_;
  /// π(v) is the Bellman–Ford distance of some super-source path P(v) at
  /// λ = cert_lambda_, i.e. tokens(P) − λ·latency(P); potential_lat_
  /// remembers latency(P), so re-basing the certificate at a different λ
  /// is the exact affine shift π − Δλ·latency instead of a repair storm.
  std::vector<double> potential_;
  std::vector<double> potential_lat_;
  double cert_lambda_ = 0.0;
  bool has_certificate_ = false;
  std::vector<NodeId> worklist_;
  std::vector<char> in_worklist_;
  std::vector<std::uint32_t> pops_;  ///< per-node pop counts of one repair

  // Cached result of the current configuration + one-deep undo trail.
  double ratio_ = 1.0;
  bool has_result_ = false;
  struct TrailEntry {
    EdgeId edge;
    int old_relay_stations;
  };
  std::vector<TrailEntry> trail_;
  std::vector<std::size_t> prev_dirty_labels_;
  double prev_ratio_ = 1.0;
  bool prev_has_result_ = false;
  bool can_undo_ = false;

  Stats stats_;
};

}  // namespace wp::graph
