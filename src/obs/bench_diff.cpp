#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace wp::obs {

namespace {

bool has_token(const std::string& key, const std::string& token) {
  // '_'-separated token match: "fast_ms_per_pack" has tokens
  // {fast, ms, per, pack}.
  std::size_t start = 0;
  while (start <= key.size()) {
    std::size_t end = key.find('_', start);
    if (end == std::string::npos) end = key.size();
    if (key.compare(start, end - start, token) == 0) return true;
    start = end + 1;
  }
  return false;
}

bool contains(const std::string& key, const std::string& needle) {
  return key.find(needle) != std::string::npos;
}

/// Scale factor from this metric's unit to milliseconds, for the noise
/// floor. Non-time metrics return 0 (floor never applies).
double to_ms_scale(const std::string& key) {
  if (has_token(key, "ms")) return 1.0;
  if (has_token(key, "us")) return 1e-3;
  if (has_token(key, "ns")) return 1e-6;
  return 0.0;
}

/// Flattens every numeric leaf of a document into path → value.
/// Array elements use index paths ("packing[1].fast_ms_per_pack"), so the
/// diff only lines up when both documents keep the same ordering — which
/// the bench emitters guarantee (fixed scenario lists).
void flatten(const json::Value& value, const std::string& path,
             const std::string& leaf_key,
             std::map<std::string, std::pair<std::string, double>>& out) {
  switch (value.kind()) {
    case json::Value::Kind::kNumber:
      out.emplace(path, std::make_pair(leaf_key, value.as_double()));
      break;
    case json::Value::Kind::kObject:
      for (const json::Value::Member& member : value.members()) {
        const std::string child =
            path.empty() ? member.first : path + "." + member.first;
        flatten(member.second, child, member.first, out);
      }
      break;
    case json::Value::Kind::kArray:
      for (std::size_t i = 0; i < value.size(); ++i)
        flatten(value.at(i), path + "[" + std::to_string(i) + "]", leaf_key,
                out);
      break;
    default:
      break;  // strings/bools/nulls are labels, not metrics
  }
}

const char* direction_name(MetricDirection direction) {
  switch (direction) {
    case MetricDirection::kLowerIsBetter:
      return "lower_is_better";
    case MetricDirection::kHigherIsBetter:
      return "higher_is_better";
    case MetricDirection::kInformational:
      return "informational";
  }
  return "informational";
}

}  // namespace

MetricDirection metric_direction(const std::string& key) {
  if (contains(key, "per_min") || contains(key, "speedup") ||
      contains(key, "hit_rate"))
    return MetricDirection::kHigherIsBetter;
  if (to_ms_scale(key) != 0.0) return MetricDirection::kLowerIsBetter;
  return MetricDirection::kInformational;
}

std::size_t BenchDiffReport::regressions() const {
  std::size_t n = 0;
  for (const MetricDelta& delta : deltas)
    if (delta.regression) ++n;
  return n;
}

BenchDiffReport diff_benchmarks(const json::Value& baseline,
                                const json::Value& fresh,
                                const BenchDiffOptions& options) {
  std::map<std::string, std::pair<std::string, double>> base_leaves;
  std::map<std::string, std::pair<std::string, double>> fresh_leaves;
  flatten(baseline, "", "", base_leaves);
  flatten(fresh, "", "", fresh_leaves);

  BenchDiffReport report;
  for (const auto& [path, base_entry] : base_leaves) {
    const auto it = fresh_leaves.find(path);
    if (it == fresh_leaves.end()) {
      report.missing_in_fresh.push_back(path);
      continue;
    }
    const std::string& key = base_entry.first;
    MetricDelta delta;
    delta.path = path;
    delta.baseline = base_entry.second;
    delta.fresh = it->second.second;
    delta.direction = metric_direction(key);

    const double denom = std::fabs(delta.baseline);
    double relative =
        denom == 0.0 ? 0.0 : (delta.fresh - delta.baseline) / denom;
    if (delta.direction == MetricDirection::kHigherIsBetter)
      relative = -relative;  // positive = worse in every direction
    delta.change = relative;

    if (delta.direction != MetricDirection::kInformational) {
      const double ms_scale = to_ms_scale(key);
      if (ms_scale != 0.0) {
        const double floor_in_unit = options.min_ms / ms_scale;
        delta.skipped_small = std::fabs(delta.baseline) < floor_in_unit &&
                              std::fabs(delta.fresh) < floor_in_unit;
      }
      delta.regression =
          !delta.skipped_small && delta.change > options.threshold;
    }
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [path, entry] : fresh_leaves) {
    (void)entry;
    if (base_leaves.find(path) == base_leaves.end())
      report.missing_in_baseline.push_back(path);
  }
  return report;
}

void write_diff_report(const BenchDiffReport& report,
                       const BenchDiffOptions& options,
                       json::JsonWriter& json) {
  json.begin_object();
  json.field("schema", "wirepipe-bench-diff/1")
      .field("threshold", options.threshold)
      .field("min_ms", options.min_ms)
      .field("pass", report.pass())
      .field("regressions",
             static_cast<unsigned long long>(report.regressions()));
  json.key("metrics").begin_array();
  for (const MetricDelta& delta : report.deltas) {
    json.begin_object();
    json.field("path", delta.path)
        .field("baseline", delta.baseline)
        .field("fresh", delta.fresh)
        .field("change", delta.change)
        .field("direction", direction_name(delta.direction))
        .field("regression", delta.regression);
    if (delta.skipped_small) json.field("skipped_small", true);
    json.end_object();
  }
  json.end_array();
  json.key("missing_in_fresh").begin_array();
  for (const std::string& path : report.missing_in_fresh) json.value(path);
  json.end_array();
  json.key("missing_in_baseline").begin_array();
  for (const std::string& path : report.missing_in_baseline) json.value(path);
  json.end_array();
  json.end_object();
}

}  // namespace wp::obs
