// The perf flight recorder's comparator: committed BENCH_*.json snapshot
// vs a fresh run, with a typed verdict per metric.
//
// Both documents are walked in parallel; every numeric leaf shared by the
// two is classified by its key name:
//
//   * lower-is-better  — wall-clock / latency metrics: any '_'-separated
//     token of the key is "ms", "us" or "ns" (anneal_ms, reply_p99_ms,
//     naive_ms_per_pack, incremental_us_per_move);
//   * higher-is-better — rate / speedup metrics: the key contains
//     "per_min", "speedup" or "hit_rate";
//   * informational    — everything else (areas, throughput ratios,
//     counts, shares): drift is reported but never fails the gate.
//
// A directional metric regresses when the fresh value is worse than the
// baseline by more than `threshold` (relative). Tiny wall-clock metrics
// (both sides under `min_ms` for ms-metrics, scaled for us/ns) are
// skipped: a 0.2 ms stage timing doubles on scheduler noise alone, and a
// gate that cries wolf gets deleted. Every skip is visible in the report.
//
// Used by tools/bench_diff (the CI gate) and unit-tested with injected
// slowdowns in tests/test_obs.cpp.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace wp::obs {

enum class MetricDirection {
  kLowerIsBetter,   ///< wall-clock / latency
  kHigherIsBetter,  ///< rates, speedups
  kInformational,   ///< reported, never gated
};

/// Classification by key name (see file comment).
MetricDirection metric_direction(const std::string& key);

struct MetricDelta {
  std::string path;  ///< e.g. "packing[1].fast_ms_per_pack"
  double baseline = 0.0;
  double fresh = 0.0;
  /// Relative change, sign-normalized so positive = worse: (fresh −
  /// baseline)/|baseline| for lower-is-better, negated for
  /// higher-is-better, raw for informational. 0 when baseline is 0.
  double change = 0.0;
  MetricDirection direction = MetricDirection::kInformational;
  bool regression = false;
  bool skipped_small = false;  ///< under the noise floor, not gated
};

struct BenchDiffOptions {
  double threshold = 0.25;  ///< relative regression that fails the gate
  /// Noise floor for wall-clock metrics, in milliseconds (us/ns keys are
  /// converted). A metric is gated only when baseline or fresh exceeds it.
  double min_ms = 1.0;
};

struct BenchDiffReport {
  std::vector<MetricDelta> deltas;  ///< every shared numeric leaf
  /// Numeric leaves present in one document only (schema drift — reported
  /// loudly so a silently vanished metric cannot pass the gate unnoticed).
  std::vector<std::string> missing_in_fresh;
  std::vector<std::string> missing_in_baseline;

  std::size_t regressions() const;
  /// The gate: no regressions AND nothing expected went missing.
  bool pass() const { return regressions() == 0 && missing_in_fresh.empty(); }
};

BenchDiffReport diff_benchmarks(const json::Value& baseline,
                                const json::Value& fresh,
                                const BenchDiffOptions& options = {});

/// Streams the report as one JSON object (the CI diff artifact).
void write_diff_report(const BenchDiffReport& report,
                       const BenchDiffOptions& options,
                       json::JsonWriter& json);

}  // namespace wp::obs
