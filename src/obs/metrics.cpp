#include "obs/metrics.hpp"

#include <chrono>
#include <sstream>

#include "util/json.hpp"

namespace wp::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -------------------------------------------------------------- Histogram

int Histogram::bucket_of(std::uint64_t value) {
  int width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width;  // 0 for the value 0, else position of the highest set bit
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Lock-free running max; contention is rare (only when a new extreme
  // lands concurrently), so the CAS loop terminates quickly.
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
    ;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (int b = 0; b < kBuckets; ++b)
    out[static_cast<std::size_t>(b)] =
        buckets_[b].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile event (1-based), then walk the buckets.
  const double rank = p / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (b == 0) return 0.0;  // bucket 0 holds only the value 0
      const double lo = static_cast<double>(1ull << (b - 1));
      const double hi = b >= 64 ? 2.0 * lo : static_cast<double>(1ull << b);
      // Uniform interpolation inside the octave.
      const double fraction =
          in_bucket == 0.0 ? 0.0 : (rank - cumulative) / in_bucket;
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::reset() {
  for (int b = 0; b < kBuckets; ++b)
    buckets_[b].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Registry

Registry& Registry::global() {
  // Intentionally leaked: metrics are recorded from pool workers and
  // subsystem destructors that may outlive any exit-time destruction
  // order, so the registry must never be destroyed.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)  // std::map: sorted by name
    out.counters.emplace_back(name, counter->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    out.gauges.emplace_back(name, gauge->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.max = histogram->max();
    h.mean = histogram->mean();
    h.p50 = histogram->percentile(50.0);
    h.p95 = histogram->percentile(95.0);
    h.p99 = histogram->percentile(99.0);
    const std::vector<std::uint64_t> buckets = histogram->bucket_counts();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (buckets[static_cast<std::size_t>(b)] != 0)
        h.buckets.emplace_back(b, buckets[static_cast<std::size_t>(b)]);
    out.histograms.push_back(std::move(h));
  }
  return out;
}

void Registry::write_json(json::JsonWriter& json) const {
  const MetricsSnapshot snap = snapshot();
  json.begin_object();
  json.field("schema", "wirepipe-metrics/1");
  json.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) json.field(name, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges)
    json.field(name, static_cast<long long>(value));
  json.end_object();
  json.key("histograms").begin_object();
  for (const HistogramSnapshot& h : snap.histograms) {
    json.key(h.name).begin_object();
    json.field("count", h.count)
        .field("sum", h.sum)
        .field("max", h.max)
        .field("mean", h.mean)
        .field("p50", h.p50)
        .field("p95", h.p95)
        .field("p99", h.p99);
    json.key("buckets").begin_object();
    for (const auto& [bit_width, count] : h.buckets)
      json.field(std::to_string(bit_width), count);
    json.end_object();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::string Registry::to_json() const {
  std::ostringstream os;
  json::JsonWriter json(os);
  write_json(json);
  os << "\n";
  return os.str();
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : histograms_) entry.second->reset();
}

// ------------------------------------------------------------ ScopedTimer

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() { histogram_.record(now_ns() - start_ns_); }

}  // namespace wp::obs
