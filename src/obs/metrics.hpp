// The process-global metrics registry — one surface for every counter in
// the repo.
//
// Before this layer each performance-critical subsystem kept its own
// ad-hoc stats struct (EvalServer::Stats, GoldenCache::Stats,
// ThroughputEngine::Stats, AnnealResult's engine_* fields) and the numbers
// could only be seen where that struct happened to be printed. The
// registry gives them one home: named atomic counters, gauges and
// log₂-bucket latency histograms, registered once (mutex, cold path) and
// recorded lock-free afterwards (relaxed atomics — a record is one
// fetch_add, never a lock). A snapshot is deterministic (sorted by name)
// and exports through the same JsonWriter as the bench artifacts, so a
// metrics dump, a BENCH_*.json and a daemon stats scrape all speak the
// same format.
//
// Naming convention: `subsystem/metric` with '/' separators, e.g.
// "svc/server/requests", "sim/golden_cache/hits", "anneal/iterations".
// Histograms record nanoseconds unless the name says otherwise.
//
// Instrumentation idiom (the hot-path form — resolve once, record often):
//
//   static obs::Counter& c = obs::Registry::global().counter("pack/packs");
//   c.inc();
//
// Registered metric objects live for the process (the registry never
// deletes), so cached references stay valid across Registry::reset_all(),
// which zeroes values but keeps registrations.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wp::json {
class JsonWriter;
}

namespace wp::obs {

/// Monotonic event count. All mutators are lock-free (relaxed atomics):
/// counters are aggregated, never used for cross-thread ordering.
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, live connections).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { add(-n); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log₂-bucket histogram for latency-style values (record nanoseconds).
/// Bucket b counts values whose bit width is b: bucket 0 holds the value
/// 0, bucket b ≥ 1 holds [2^(b-1), 2^b). Recording is one relaxed
/// fetch_add on the bucket plus count/sum/max bookkeeping — no locks, no
/// allocation, safe from any thread. Percentiles interpolate inside the
/// chosen bucket assuming a uniform spread, so they are exact to within
/// one octave — the right fidelity for "did p99 double?" regression
/// questions, at hot-loop-compatible cost.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  ///< bit widths 0..64

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Value at percentile p ∈ [0, 100], interpolated within its bucket.
  /// 0 when the histogram is empty.
  double percentile(double p) const;

  /// Non-atomic consistent-enough copy for export (buckets are read
  /// relaxed; concurrent recording may skew a snapshot by a few events,
  /// which is fine for observability).
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  static int bucket_of(std::uint64_t value);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------- Registry

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  /// Sparse bucket dump: (bit width, count) pairs for nonzero buckets.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Named metric store. Registration (counter()/gauge()/histogram()) takes
/// a mutex and is meant for cold paths or one-time static-local caching;
/// the returned references are stable for the life of the process.
class Registry {
 public:
  /// The process-global registry every subsystem records into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Deterministic snapshot: every section sorted by name.
  MetricsSnapshot snapshot() const;

  /// Streams the snapshot as one JSON object (schema wirepipe-metrics/1):
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  void write_json(json::JsonWriter& json) const;
  std::string to_json() const;  ///< standalone document, trailing newline

  /// Zeroes every registered metric, keeping registrations (and therefore
  /// every cached reference) valid. Test isolation only.
  void reset_all();

 private:
  mutable std::mutex mutex_;
  // Node-based maps: pointers handed out must survive future insertions.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII nanosecond timer recording into a histogram on destruction:
///   { obs::ScopedTimer t(hist); hot_work(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Monotonic clock in nanoseconds (steady_clock), shared by the timer and
/// the span tracer so their timestamps are comparable.
std::uint64_t now_ns();

}  // namespace wp::obs
