#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace wp::obs {

// -------------------------------------------------------------- TraceRing

TraceRing::TraceRing(std::uint32_t thread_index, std::size_t capacity)
    : thread_index_(thread_index) {
  ring_.resize(std::max<std::size_t>(1, capacity));
}

void TraceRing::push(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++pushed_;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  const std::size_t capacity = ring_.size();
  const std::size_t held = std::min<std::uint64_t>(pushed_, capacity);
  out.reserve(held);
  // Oldest surviving event first: when wrapped, that is ring_[next_].
  const std::size_t start = pushed_ <= capacity ? 0 : next_;
  for (std::size_t i = 0; i < held; ++i)
    out.push_back(ring_[(start + i) % capacity]);
  return out;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pushed_ <= ring_.size() ? 0 : pushed_ - ring_.size();
}

// ----------------------------------------------------------------- Tracer

Tracer& Tracer::global() {
  // Intentionally leaked (same reason as Registry::global()): spans can
  // close during exit-time destruction, after any destructible static
  // would already be gone.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

namespace {
/// This thread's ring. Holding the shared_ptr (not a raw pointer) means a
/// concurrent enable()/clear() — which drops the tracer's references —
/// can never leave this thread writing freed memory: a stale ring stays
/// alive, its events simply no longer appear in exports. The generation
/// stamp detects staleness so the thread re-registers on its next span.
thread_local std::shared_ptr<TraceRing> t_ring;
thread_local std::uint64_t t_generation = 0;
}  // namespace

void Tracer::enable(std::size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = ring_capacity;
    rings_.clear();  // registered threads re-register at the new capacity
    generation_.fetch_add(1, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

TraceRing& Tracer::ring_for_this_thread() {
  const std::uint64_t generation =
      generation_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  auto ring = std::make_shared<TraceRing>(next_thread_index_++,
                                          ring_capacity_);
  rings_.push_back(ring);
  t_ring = std::move(ring);
  t_generation = generation;
  return *t_ring;
}

void Tracer::record(const char* name, std::uint64_t begin_ns,
                    std::uint64_t end_ns) {
  if (!enabled()) return;  // raced a disable(); drop silently
  if (t_ring == nullptr ||
      t_generation != generation_.load(std::memory_order_relaxed))
    ring_for_this_thread();
  TraceEvent event;
  event.name = name;
  event.begin_ns = begin_ns;
  event.end_ns = end_ns;
  t_ring->push(event);
}

void Tracer::export_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  // Rebase timestamps so the trace starts at t=0 regardless of the
  // steady_clock epoch.
  std::uint64_t epoch_ns = UINT64_MAX;
  std::vector<std::vector<TraceEvent>> per_ring;
  per_ring.reserve(rings.size());
  for (const std::shared_ptr<TraceRing>& ring : rings) {
    per_ring.push_back(ring->events());
    for (const TraceEvent& event : per_ring.back())
      epoch_ns = std::min(epoch_ns, event.begin_ns);
  }
  if (epoch_ns == UINT64_MAX) epoch_ns = 0;

  json::JsonWriter json(os);
  json.begin_object();
  json.field("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();
  for (std::size_t r = 0; r < rings.size(); ++r) {
    for (const TraceEvent& event : per_ring[r]) {
      json.begin_object();
      json.field("name", event.name)
          .field("ph", "X")
          .field("ts", static_cast<double>(event.begin_ns - epoch_ns) / 1e3)
          .field("dur",
                 static_cast<double>(event.end_ns - event.begin_ns) / 1e3)
          .field("pid", 1)
          .field("tid", rings[r]->thread_index());
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

std::size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::size_t total = 0;
  for (const std::shared_ptr<TraceRing>& ring : rings)
    total += ring->events().size();
  return total;
}

std::uint64_t Tracer::dropped_count() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const std::shared_ptr<TraceRing>& ring : rings)
    total += ring->dropped();
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
}

// -------------------------------------------------------------------- env

namespace {

std::string g_trace_path;  ///< set once by init_from_env before atexit

void write_trace_at_exit() {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  std::ofstream file(g_trace_path);
  if (!file) {
    WP_LOG(kError) << "WIREPIPE_TRACE: cannot write " << g_trace_path;
    return;
  }
  tracer.export_chrome_trace(file);
  WP_LOG(kInfo) << "WIREPIPE_TRACE: wrote " << tracer.event_count()
                << " spans to " << g_trace_path
                << (tracer.dropped_count() != 0
                        ? " (" + std::to_string(tracer.dropped_count()) +
                              " dropped by ring wraparound)"
                        : "");
}

struct TraceEnvInit {
  TraceEnvInit() { Tracer::init_from_env(); }
};
// Every binary linking wp_core gets the env hook; a no-op when the
// variable is unset.
const TraceEnvInit g_trace_env_init;

}  // namespace

void Tracer::init_from_env() {
  const char* path = std::getenv("WIREPIPE_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  if (!g_trace_path.empty()) return;  // already initialized
  g_trace_path = path;
  global().enable();
  std::atexit(write_trace_at_exit);
}

// ------------------------------------------------------------------- Span

std::uint64_t Span::now_ns_() { return now_ns(); }

}  // namespace wp::obs
