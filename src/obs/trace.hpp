// Span tracing — always-compilable, zero-cost-when-off timeline capture.
//
//   void anneal_run() {
//     WP_SPAN("anneal/run");
//     ...
//   }
//
// WP_SPAN(name) opens an RAII span that records a (name, begin, end)
// event when the scope exits. `name` must be a string literal (or any
// pointer outliving the tracer) — only the pointer is stored, never a
// copy, so an enabled span costs two clock reads and one ring push.
// Runtime gating: spans record only while the global Tracer is enabled;
// when it is not (the default), the constructor is one relaxed atomic
// load and a branch. Compile-time gating: building with -DWP_OBS_TRACING=0
// (CMake -DWP_TRACING=OFF) expands WP_SPAN to nothing at all, so the hot
// paths carry literally zero tracing code in that configuration.
//
// Events land in fixed-capacity per-thread ring buffers (wraparound
// overwrites the oldest event and bumps a dropped counter — tracing never
// blocks or allocates on the record path after a thread's first span).
// export_chrome_trace() renders every thread's ring as chrome://tracing /
// Perfetto JSON ("traceEvents" with ph:"X" complete events).
//
// Environment wiring: WIREPIPE_TRACE=out.json enables the tracer at
// process start and writes the trace file at exit — attach a timeline to
// any bench, test or daemon without touching its code.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef WP_OBS_TRACING
#define WP_OBS_TRACING 1
#endif

namespace wp::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< borrowed; must outlive the tracer
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// One thread's span ring. Pushes come only from the owning thread;
/// the tiny per-ring mutex exists so an exporter on another thread reads
/// a consistent ring (spans are scope-grained, so the lock is uncontended
/// and nanosecond-cheap next to the work being traced).
class TraceRing {
 public:
  TraceRing(std::uint32_t thread_index, std::size_t capacity);

  void push(const TraceEvent& event);

  std::uint32_t thread_index() const { return thread_index_; }
  /// Events in record order (oldest first) plus the overwrite count.
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const;

 private:
  const std::uint32_t thread_index_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< fixed capacity, set at construction
  std::size_t next_ = 0;          ///< ring_[next_ % capacity] is written next
  std::uint64_t pushed_ = 0;

  friend class Tracer;
};

class Tracer {
 public:
  static Tracer& global();

  /// Starts capturing. Per-thread rings hold `ring_capacity` events each;
  /// rings already registered are cleared. Idempotent while enabled
  /// (capacity changes apply to rings created afterwards).
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one finished span into this thread's ring (creating and
  /// registering the ring on the thread's first span).
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

  /// Renders every ring as one chrome://tracing JSON document
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}). Timestamps are
  /// microseconds relative to the earliest captured event. Safe while
  /// tracing continues (per-ring locks); pair with disable() for a stable
  /// snapshot.
  void export_chrome_trace(std::ostream& os) const;

  /// Total events currently held across rings, and events lost to
  /// wraparound — the wraparound tests' observables.
  std::size_t event_count() const;
  std::uint64_t dropped_count() const;

  /// Drops every ring (threads re-register on their next span).
  void clear();

  /// WIREPIPE_TRACE=path: enable now, write the chrome trace at process
  /// exit. Called once from a static initializer; harmless when the
  /// variable is unset.
  static void init_from_env();

  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

 private:
  TraceRing& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  /// Bumped by enable()/clear(); threads holding a ring from an older
  /// generation re-register on their next span instead of writing into a
  /// ring no export will ever see.
  std::atomic<std::uint64_t> generation_{1};
  mutable std::mutex mutex_;  ///< guards rings_ registration/export
  std::vector<std::shared_ptr<TraceRing>> rings_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::uint32_t next_thread_index_ = 0;
};

/// RAII span: captures begin at construction, pushes the event at scope
/// exit. Cost when the tracer is disabled: one relaxed load + branch.
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      begin_ns_ = now_ns_();
    }
  }
  ~Span() {
    if (name_ != nullptr)
      Tracer::global().record(name_, begin_ns_, now_ns_());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static std::uint64_t now_ns_();

  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  std::uint64_t begin_ns_ = 0;
};

}  // namespace wp::obs

#if WP_OBS_TRACING
#define WP_OBS_SPAN_CONCAT2(a, b) a##b
#define WP_OBS_SPAN_CONCAT(a, b) WP_OBS_SPAN_CONCAT2(a, b)
/// Statement macro: opens a span covering the rest of the enclosing scope.
#define WP_SPAN(name) \
  ::wp::obs::Span WP_OBS_SPAN_CONCAT(wp_obs_span_, __LINE__)(name)
#else
#define WP_SPAN(name) ((void)0)
#endif
