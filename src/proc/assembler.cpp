#include "proc/assembler.hpp"

#include <map>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace wp::proc {

namespace {

struct Line {
  int number = 0;
  std::vector<std::string> tokens;  // mnemonic + operands, label removed
};

[[noreturn]] void fail(int line, const std::string& msg) {
  WP_REQUIRE(false, "assembly error at line " + std::to_string(line) + ": " +
                        msg);
  __builtin_unreachable();
}

std::uint8_t parse_reg(const std::string& tok, int line) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
    fail(line, "expected register, got '" + tok + "'");
  long long idx = 0;
  try {
    idx = parse_int(tok.substr(1));
  } catch (const ContractViolation&) {
    fail(line, "bad register '" + tok + "'");
  }
  if (idx < 0 || idx >= kNumRegisters)
    fail(line, "register out of range: '" + tok + "'");
  return static_cast<std::uint8_t>(idx);
}

/// Parses "imm(rN)" into (imm, reg).
std::pair<std::int32_t, std::uint8_t> parse_mem_operand(
    const std::string& tok, int line) {
  const auto open = tok.find('(');
  const auto close = tok.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open || close != tok.size() - 1)
    fail(line, "expected imm(rN), got '" + tok + "'");
  std::int32_t imm = 0;
  if (open > 0) imm = static_cast<std::int32_t>(parse_int(tok.substr(0, open)));
  const std::uint8_t reg =
      parse_reg(tok.substr(open + 1, close - open - 1), line);
  return {imm, reg};
}

}  // namespace

AssemblyResult assemble(const std::string& source) {
  // Pass 0: strip comments, collect labels and token lists.
  std::map<std::string, std::int32_t> labels;
  std::vector<Line> lines;
  int number = 0;
  for (const auto& raw : split(source, '\n')) {
    ++number;
    std::string text = raw;
    for (const char marker : {';', '#'}) {
      const auto pos = text.find(marker);
      if (pos != std::string::npos) text.resize(pos);
    }
    std::string body{trim(text)};
    if (body.empty()) continue;

    // Leading labels (possibly several on one line).
    for (;;) {
      const auto colon = body.find(':');
      if (colon == std::string::npos) break;
      const std::string head{trim(body.substr(0, colon))};
      if (head.empty() || head.find(' ') != std::string::npos) break;
      if (labels.count(head)) fail(number, "duplicate label '" + head + "'");
      labels[head] = static_cast<std::int32_t>(lines.size());
      body = trim(body.substr(colon + 1));
    }
    if (body.empty()) continue;

    // Tokenize: mnemonic, then comma-separated operands.
    Line line;
    line.number = number;
    const auto space = body.find_first_of(" \t");
    line.tokens.push_back(std::string{body.substr(0, space)});
    if (space != std::string::npos) {
      for (auto& opnd : split(body.substr(space + 1), ',')) {
        const std::string t{trim(opnd)};
        if (t.empty()) fail(number, "empty operand");
        line.tokens.push_back(t);
      }
    }
    lines.push_back(std::move(line));
  }

  // Pass 1: encode.
  auto parse_target = [&](const std::string& tok, int ln) -> std::int32_t {
    auto it = labels.find(tok);
    if (it != labels.end()) return it->second;
    try {
      return static_cast<std::int32_t>(parse_int(tok));
    } catch (const ContractViolation&) {
      fail(ln, "unknown label or bad immediate '" + tok + "'");
    }
  };

  AssemblyResult result;
  for (const auto& line : lines) {
    const std::string mnemonic = to_lower(line.tokens[0]);
    const auto argc = line.tokens.size() - 1;
    auto expect = [&](std::size_t n) {
      if (argc != n)
        fail(line.number, mnemonic + " expects " + std::to_string(n) +
                              " operand(s), got " + std::to_string(argc));
    };
    auto reg = [&](std::size_t i) { return parse_reg(line.tokens[i], line.number); };

    Instr instr;
    if (mnemonic == "nop") {
      expect(0);
      instr.op = Opcode::kNop;
    } else if (mnemonic == "halt") {
      expect(0);
      instr.op = Opcode::kHalt;
    } else if (mnemonic == "li") {
      expect(2);
      instr.op = Opcode::kLi;
      instr.rd = reg(1);
      instr.imm = parse_target(line.tokens[2], line.number);
    } else if (mnemonic == "addi") {
      expect(3);
      instr.op = Opcode::kAddi;
      instr.rd = reg(1);
      instr.rs1 = reg(2);
      instr.imm = parse_target(line.tokens[3], line.number);
    } else if (mnemonic == "add" || mnemonic == "sub" || mnemonic == "mul" ||
               mnemonic == "and" || mnemonic == "or" || mnemonic == "xor") {
      expect(3);
      instr.op = mnemonic == "add"   ? Opcode::kAdd
                 : mnemonic == "sub" ? Opcode::kSub
                 : mnemonic == "mul" ? Opcode::kMul
                 : mnemonic == "and" ? Opcode::kAnd
                 : mnemonic == "or"  ? Opcode::kOr
                                     : Opcode::kXor;
      instr.rd = reg(1);
      instr.rs1 = reg(2);
      instr.rs2 = reg(3);
    } else if (mnemonic == "cmp") {
      expect(2);
      instr.op = Opcode::kCmp;
      instr.rs1 = reg(1);
      instr.rs2 = reg(2);
    } else if (mnemonic == "ld") {
      expect(2);
      instr.op = Opcode::kLd;
      instr.rd = reg(1);
      const auto [imm, base] = parse_mem_operand(line.tokens[2], line.number);
      instr.imm = imm;
      instr.rs1 = base;
    } else if (mnemonic == "st") {
      expect(2);
      instr.op = Opcode::kSt;
      instr.rs2 = reg(1);
      const auto [imm, base] = parse_mem_operand(line.tokens[2], line.number);
      instr.imm = imm;
      instr.rs1 = base;
    } else if (mnemonic == "beq" || mnemonic == "bne" || mnemonic == "blt" ||
               mnemonic == "bge" || mnemonic == "jmp") {
      expect(1);
      instr.op = mnemonic == "beq"   ? Opcode::kBeq
                 : mnemonic == "bne" ? Opcode::kBne
                 : mnemonic == "blt" ? Opcode::kBlt
                 : mnemonic == "bge" ? Opcode::kBge
                                     : Opcode::kJmp;
      instr.imm = parse_target(line.tokens[1], line.number);
    } else {
      fail(line.number, "unknown mnemonic '" + mnemonic + "'");
    }
    result.listing.push_back(instr);
    result.rom.push_back(encode(instr));
  }
  WP_REQUIRE(!result.rom.empty(), "empty program");
  return result;
}

}  // namespace wp::proc
