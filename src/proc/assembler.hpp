// Two-pass assembler for the case-study ISA: labels, comments (';' or '#'),
// and one instruction per line. Produces the ROM image consumed by the
// instruction cache.
//
// Syntax (registers r0..r15, immediates decimal/hex, labels trailing ':'):
//   loop:  ld   r3, 0(r2)      ; r3 = mem[r2+0]
//          addi r2, r2, 1
//          cmp  r2, r4
//          blt  loop
//          halt
#pragma once

#include <string>
#include <vector>

#include "proc/isa.hpp"

namespace wp::proc {

struct AssemblyResult {
  std::vector<Word> rom;         ///< encoded instructions
  std::vector<Instr> listing;    ///< decoded view, index = address
};

/// Assembles `source`; throws wp::ContractViolation with a line-numbered
/// message on any syntax error.
AssemblyResult assemble(const std::string& source);

}  // namespace wp::proc
