#include "proc/blocks.hpp"

#include "util/assert.hpp"

namespace wp::proc {

namespace {

// Port indices fixed by construction order; kept as named constants so the
// oracles and transitions stay readable.
constexpr std::size_t kIcInAddr = 0;
constexpr std::size_t kIcOutInstr = 0;

constexpr std::size_t kDcInCtl = 0;
constexpr std::size_t kDcInMaddr = 1;
constexpr std::size_t kDcInStore = 2;
constexpr std::size_t kDcOutLoad = 0;

constexpr std::size_t kRfInCtl = 0;
constexpr std::size_t kRfInWb = 1;
constexpr std::size_t kRfInLoad = 2;
constexpr std::size_t kRfOutOperands = 0;
constexpr std::size_t kRfOutStore = 1;

constexpr std::size_t kAluInOp = 0;
constexpr std::size_t kAluInOperands = 1;
constexpr std::size_t kAluOutFlags = 0;
constexpr std::size_t kAluOutResult = 1;
constexpr std::size_t kAluOutMaddr = 2;

constexpr InputMask bit(std::size_t i) { return InputMask{1} << i; }

bool branch_taken(Opcode op, const Flags& flags) {
  switch (op) {
    case Opcode::kBeq: return flags.eq;
    case Opcode::kBne: return !flags.eq;
    case Opcode::kBlt: return flags.lt;
    case Opcode::kBge: return !flags.lt;
    default:
      WP_CHECK(false, "branch_taken on non-branch opcode");
      return false;
  }
}

std::uint32_t alu_compute(Opcode op, std::uint32_t a, std::uint32_t b,
                          Flags& flags) {
  switch (op) {
    case Opcode::kLi: return b;  // b carries the immediate
    case Opcode::kAdd:
    case Opcode::kAddi:
    case Opcode::kLd:   // address arithmetic: rs1 + imm
    case Opcode::kSt:
      return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kCmp:
      flags.eq = a == b;
      flags.lt = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
      return a - b;
    default:
      WP_CHECK(false, "opcode does not execute in the ALU");
      return 0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// IcacheBlock
// ---------------------------------------------------------------------------

IcacheBlock::IcacheBlock(std::vector<Word> rom)
    : Process("IC"), rom_(std::move(rom)) {
  add_input("addr", FetchReq{}.pack());
  add_output("instr", FetchResp{}.pack());
}

void IcacheBlock::fire(const Word* in, Word* out) {
  const FetchReq req = FetchReq::unpack(in[kIcInAddr]);
  FetchResp resp;
  if (req.fetch) {
    resp.valid = true;
    // Addresses beyond the program image read as HALT, so speculative
    // fetches past the end of the ROM are harmless and a program that falls
    // off its end stops.
    resp.instr_word = req.addr < rom_.size()
                          ? rom_[req.addr]
                          : encode(Instr{Opcode::kHalt, 0, 0, 0, 0});
  }
  out[kIcOutInstr] = resp.pack();
}

// ---------------------------------------------------------------------------
// DcacheBlock
// ---------------------------------------------------------------------------

DcacheBlock::DcacheBlock(std::vector<std::uint32_t> ram)
    : Process("DC"), initial_ram_(ram), ram_(std::move(ram)) {
  add_input("ctl", DcCtl{}.pack());
  add_input("maddr", 0);
  add_input("store_data", 0);
  add_output("load", 0);
}

InputMask DcacheBlock::required(const PeekView& peek) const {
  InputMask mask = bit(kDcInCtl);
  if (!peek.available(kDcInCtl)) return mask;
  const DcCtl ctl = DcCtl::unpack(peek.value(kDcInCtl));
  if (ctl.bubble || ctl.kind == MemKind::kNone) return mask;
  mask |= bit(kDcInMaddr);
  if (ctl.kind == MemKind::kStore) mask |= bit(kDcInStore);
  return mask;
}

void DcacheBlock::fire(const Word* in, Word* out) {
  const DcCtl ctl = DcCtl::unpack(in[kDcInCtl]);
  if (!ctl.bubble && ctl.kind != MemKind::kNone) {
    const auto addr = static_cast<std::uint32_t>(in[kDcInMaddr]);
    WP_CHECK(addr < ram_.size(), "data access out of RAM bounds");
    if (ctl.kind == MemKind::kLoad) {
      last_load_ = ram_[addr];
    } else {
      ram_[addr] = static_cast<std::uint32_t>(in[kDcInStore]);
    }
  }
  out[kDcOutLoad] = last_load_;
}

void DcacheBlock::reset() {
  ram_ = initial_ram_;
  last_load_ = 0;
}

// ---------------------------------------------------------------------------
// RegFileBlock
// ---------------------------------------------------------------------------

RegFileBlock::RegFileBlock() : Process("RF") {
  add_input("ctl", RfCtl{}.pack());
  add_input("wb", 0);
  add_input("load", 0);
  add_output("operands", Operands{}.pack());
  add_output("store", 0);
}

InputMask RegFileBlock::required(const PeekView& /*peek*/) const {
  InputMask mask = bit(kRfInCtl);
  if (alu_wb_.count(firing_)) mask |= bit(kRfInWb);
  if (load_wb_.count(firing_)) mask |= bit(kRfInLoad);
  return mask;
}

void RegFileBlock::fire(const Word* in, Word* out) {
  const std::uint64_t k = firing_++;

  // Commit scheduled writebacks first, so a read in the same firing sees
  // the new value (the CU's scoreboard assumes write-before-read).
  if (auto it = alu_wb_.find(k); it != alu_wb_.end()) {
    regs_[it->second] = static_cast<std::uint32_t>(in[kRfInWb]);
    alu_wb_.erase(it);
  }
  if (auto it = load_wb_.find(k); it != load_wb_.end()) {
    regs_[it->second] = static_cast<std::uint32_t>(in[kRfInLoad]);
    load_wb_.erase(it);
  }

  // The store value read in the previous firing leaves toward the DC now
  // (one staging register), tag-aligned with the ALU's address computation:
  // read at d+1, emitted at d+2, consumed by the DC at d+3.
  out[kRfOutStore] = staged_store_;

  const RfCtl ctl = RfCtl::unpack(in[kRfInCtl]);
  if (!ctl.bubble) {
    const std::uint32_t a = regs_[ctl.rs1];
    const std::uint32_t b = regs_[ctl.rs2];
    last_operands_ = {a, b};
    if (ctl.store) staged_store_ = b;
    switch (ctl.wb_kind) {
      case WbKind::kAlu:
        alu_wb_[k + 2] = ctl.wb_reg;
        break;
      case WbKind::kLoad:
        load_wb_[k + 3] = ctl.wb_reg;
        break;
      case WbKind::kNone:
        break;
    }
  }
  out[kRfOutOperands] = last_operands_.pack();
}

void RegFileBlock::reset() {
  regs_.fill(0);
  firing_ = 0;
  alu_wb_.clear();
  load_wb_.clear();
  staged_store_ = 0;
  last_operands_ = {};
}

// ---------------------------------------------------------------------------
// AluBlock
// ---------------------------------------------------------------------------

AluBlock::AluBlock() : Process("ALU") {
  add_input("op", AluCtl{}.pack());
  add_input("operands", Operands{}.pack());
  add_output("flags", Flags{}.pack());
  add_output("result", 0);
  add_output("maddr", 0);
}

InputMask AluBlock::required(const PeekView& peek) const {
  InputMask mask = bit(kAluInOp);
  if (!peek.available(kAluInOp)) return mask;
  const AluCtl ctl = AluCtl::unpack(peek.value(kAluInOp));
  if (ctl.needs_operands()) mask |= bit(kAluInOperands);
  return mask;
}

void AluBlock::fire(const Word* in, Word* out) {
  const AluCtl ctl = AluCtl::unpack(in[kAluInOp]);
  if (!ctl.bubble) {
    Operands ops{};
    if (ctl.needs_operands()) ops = Operands::unpack(in[kAluInOperands]);
    const std::uint32_t b_eff =
        ctl.use_imm ? static_cast<std::uint32_t>(ctl.imm) : ops.b;
    last_result_ = alu_compute(ctl.op, ops.a, b_eff, flags_);
  }
  out[kAluOutFlags] = flags_.pack();
  out[kAluOutResult] = last_result_;
  out[kAluOutMaddr] = last_result_;
}

void AluBlock::reset() {
  flags_ = {};
  last_result_ = 0;
}

// ---------------------------------------------------------------------------
// ControlUnit
// ---------------------------------------------------------------------------

ControlUnit::ControlUnit(Config config)
    : Process("CU"), config_(config) {
  WP_REQUIRE(config_.fetch_window >= 1, "fetch window must be >= 1");
  WP_REQUIRE(config_.drain_firings >= 0, "drain count must be >= 0");
  in_instr_ = add_input("instr", FetchResp{}.pack());
  in_flags_ = add_input("flags", Flags{}.pack());
  out_iaddr_ = add_output("iaddr", FetchReq{}.pack());
  out_rf_ = add_output("rf_ctl", RfCtl{}.pack());
  out_alu_ = add_output("alu_op", AluCtl{}.pack());
  out_dc_ = add_output("dc_ctl", DcCtl{}.pack());
  reset();
}

int ControlUnit::outstanding_real() const {
  int count = 0;
  for (const auto& meta : fetch_meta_)
    if (meta.real && !meta.squashed) ++count;
  return count;
}

ControlUnit::DispatchDecision ControlUnit::plan_dispatch(
    bool instr_peek_available, Word instr_peek_value) const {
  DispatchDecision d;
  if (draining_ || halted_) return d;

  if (!ibuf_.empty()) {
    d.instr = ibuf_.front();
    d.head_known = true;
  } else {
    const FetchMeta& meta = fetch_meta_.front();
    if (meta.real && !meta.squashed && instr_peek_available) {
      const FetchResp resp = FetchResp::unpack(instr_peek_value);
      if (resp.valid) {
        d.instr = decode(resp.instr_word);
        d.head_known = true;
      }
    }
  }
  if (!d.head_known) return d;

  const Opcode op = d.instr.op;
  if (is_branch(op)) {
    if (firing_ < flags_ready_at_) return d;  // wait for the flags
    d.dispatch = true;
    d.reads_flags = true;
    return d;
  }
  if (reads_rs1(op) && firing_ < ready_at_[d.instr.rs1]) return d;
  if (reads_rs2(op) && firing_ < ready_at_[d.instr.rs2]) return d;
  d.dispatch = true;
  return d;
}

InputMask ControlUnit::required(const PeekView& peek) const {
  InputMask mask = 0;
  const FetchMeta& meta = fetch_meta_.front();
  // A real fetch slot must be waited for; a squashed one only if the
  // communication profile is the paper's plain one (see Config).
  if (meta.real && (!meta.squashed || !config_.relax_squashed_fetches))
    mask |= bit(in_instr_);
  const DispatchDecision d =
      plan_dispatch(peek.available(in_instr_), peek.value(in_instr_));
  if (d.reads_flags) mask |= bit(in_flags_);
  return mask;
}

void ControlUnit::fire(const Word* in, Word* out) {
  // 1. Consume this firing's instr token slot.
  const FetchMeta meta = fetch_meta_.front();
  const bool arrival = meta.real && !meta.squashed;
  const DispatchDecision decision =
      plan_dispatch(arrival, arrival ? in[in_instr_] : kPoisonWord);
  fetch_meta_.pop_front();
  if (arrival) {
    const FetchResp resp = FetchResp::unpack(in[in_instr_]);
    WP_CHECK(resp.valid, "real fetch slot returned a bubble");
    ibuf_.push_back(decode(resp.instr_word));
  }

  // 2. Dispatch.
  RfCtl rf{};
  AluCtl alu_next{};
  DcCtl dc_next{};
  bool redirect = false;
  std::uint32_t target = 0;

  if (decision.dispatch) {
    WP_CHECK(!ibuf_.empty(), "dispatch with empty instruction buffer");
    const Instr instr = ibuf_.front();
    ibuf_.pop_front();
    ++retired_;
    const Opcode op = instr.op;

    if (op == Opcode::kHalt) {
      draining_ = true;
      drain_left_ = config_.drain_firings;
    } else if (is_jump(op)) {
      redirect = true;
      target = static_cast<std::uint32_t>(instr.imm);
    } else if (is_branch(op)) {
      const Flags flags = Flags::unpack(in[in_flags_]);
      if (branch_taken(op, flags)) {
        redirect = true;
        target = static_cast<std::uint32_t>(instr.imm);
      }
    } else if (op != Opcode::kNop) {
      rf.bubble = false;
      rf.rs1 = instr.rs1;
      rf.rs2 = instr.rs2;
      if (is_alu_writeback(op)) {
        rf.wb_kind = WbKind::kAlu;
        rf.wb_reg = instr.rd;
        ready_at_[instr.rd] = firing_ + 2;
      } else if (is_load(op)) {
        rf.wb_kind = WbKind::kLoad;
        rf.wb_reg = instr.rd;
        ready_at_[instr.rd] = firing_ + 3;
      }
      rf.store = is_store(op);

      alu_next.bubble = false;
      alu_next.op = op;
      alu_next.use_imm = op == Opcode::kLi || op == Opcode::kAddi ||
                         is_mem(op);
      alu_next.imm = instr.imm;

      dc_next.bubble = false;
      dc_next.kind = is_load(op)    ? MemKind::kLoad
                     : is_store(op) ? MemKind::kStore
                                    : MemKind::kNone;

      if (op == Opcode::kCmp) flags_ready_at_ = firing_ + 3;
    }
    if (config_.serialize_fetch) fetch_allowed_at_ = firing_ + 3;
  }

  if (redirect) {
    pc_ = target;
    for (auto& m : fetch_meta_)
      if (m.real) m.squashed = true;
    ibuf_.clear();
  }

  // 3. Issue the next fetch (or a bubble slot).
  FetchReq freq{};
  if (!draining_ && !halted_) {
    const bool room =
        static_cast<int>(ibuf_.size()) + outstanding_real() <
        config_.fetch_window;
    const bool allowed =
        !config_.serialize_fetch ||
        (outstanding_real() == 0 && ibuf_.empty() &&
         firing_ >= fetch_allowed_at_);
    if (room && allowed) {
      freq.fetch = true;
      freq.addr = pc_++;
      fetch_meta_.push_back({true, false});
    } else {
      fetch_meta_.push_back({false, false});
    }
  } else {
    fetch_meta_.push_back({false, false});
  }

  // 4. Drive outputs; the ALU and DC controls leave through delay registers
  //    so their tags align with the operand flow.
  out[out_iaddr_] = freq.pack();
  out[out_rf_] = rf.pack();
  out[out_alu_] = alu_delay_.pack();
  alu_delay_ = alu_next;
  out[out_dc_] = dc_delay_[0].pack();
  dc_delay_[0] = dc_delay_[1];
  dc_delay_[1] = dc_next;

  // 5. Drain accounting.
  if (draining_) {
    if (drain_left_ == 0)
      halted_ = true;
    else
      --drain_left_;
  }
  ++firing_;
}

void ControlUnit::reset() {
  pc_ = 0;
  firing_ = 0;
  fetch_meta_.assign(2, FetchMeta{});  // the two in-flight reset slots
  ibuf_.clear();
  for (auto& r : ready_at_) r = 0;
  flags_ready_at_ = 0;
  fetch_allowed_at_ = 0;
  alu_delay_ = AluCtl{};
  dc_delay_[0] = DcCtl{};
  dc_delay_[1] = DcCtl{};
  draining_ = false;
  drain_left_ = 0;
  halted_ = false;
  retired_ = 0;
}

}  // namespace wp::proc
