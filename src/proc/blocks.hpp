// The five IP blocks of the case-study processor (paper Fig. 1):
// control unit (CU), instruction cache (IC), data cache (DC), register file
// (RF) and ALU — each a synchronous Moore process with a communication
// oracle describing which inputs its next transition actually reads.
//
// Connection map (ten physical links, exactly Table 1's rows):
//   CU.iaddr   -> IC.addr        ["CU-IC" bundle, together with the return]
//   IC.instr   -> CU.instr       ["CU-IC" bundle]
//   CU.rf_ctl  -> RF.ctl         ["CU-RF"]
//   CU.alu_op  -> ALU.op         ["CU-AL"]
//   CU.dc_ctl  -> DC.ctl         ["CU-DC"]
//   RF.operands-> ALU.operands   ["RF-ALU"]
//   RF.store   -> DC.store_data  ["RF-DC"]
//   ALU.flags  -> CU.flags       ["ALU-CU"]
//   ALU.result -> RF.wb          ["ALU-RF"]
//   ALU.maddr  -> DC.maddr       ["ALU-DC"]
//   DC.load    -> RF.load        ["DC-RF"]
//
// Per-instruction pipeline timing (CU dispatch firing d):
//   d   : CU emits rf_ctl;
//   d+1 : RF reads operands (emits them), CU emits alu_op;
//   d+2 : ALU executes (emits result/flags/maddr), CU emits dc_ctl,
//         RF emits the staged store value;
//   d+3 : DC acts (emits load data), RF commits an ALU writeback,
//         CU may consume flags (branch resolution);
//   d+4 : RF commits a load writeback.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/process.hpp"
#include "proc/bundles.hpp"
#include "proc/isa.hpp"

namespace wp::proc {

/// Instruction cache: a ROM with one-cycle access.
class IcacheBlock final : public Process {
 public:
  explicit IcacheBlock(std::vector<Word> rom);

  void fire(const Word* in, Word* out) override;
  void reset() override {}

 private:
  std::vector<Word> rom_;
};

/// Data cache: word-addressed RAM; loads read, stores write. Both use the
/// address computed by the ALU. The load output is sticky across bubbles so
/// it stays a pure function of registered state.
class DcacheBlock final : public Process {
 public:
  explicit DcacheBlock(std::vector<std::uint32_t> ram);

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;

  const std::vector<std::uint32_t>& memory() const { return ram_; }

 private:
  std::vector<std::uint32_t> initial_ram_;
  std::vector<std::uint32_t> ram_;
  std::uint32_t last_load_ = 0;
};

/// Register file: reads the two source operands, stages the store value one
/// firing, and commits scheduled writebacks (from the ALU two firings after
/// dispatch, from the DC three firings after dispatch).
class RegFileBlock final : public Process {
 public:
  RegFileBlock();

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;

  const std::array<std::uint32_t, kNumRegisters>& registers() const {
    return regs_;
  }

 private:
  std::array<std::uint32_t, kNumRegisters> regs_{};
  std::uint64_t firing_ = 0;
  std::map<std::uint64_t, std::uint8_t> alu_wb_;   // firing -> dest reg
  std::map<std::uint64_t, std::uint8_t> load_wb_;  // firing -> dest reg
  std::uint32_t staged_store_ = 0;  // store value staged toward the DC
  Operands last_operands_{};
};

/// ALU: executes compute ops, address arithmetic for memory ops, and keeps
/// the sticky comparison flags only kCmp updates.
class AluBlock final : public Process {
 public:
  AluBlock();

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;

 private:
  Flags flags_{};
  std::uint32_t last_result_ = 0;
};

/// Control unit: fetch, decode, hazard interlocks, branch resolution, and
/// the dispatch pipeline registers that keep the downstream control tokens
/// tag-aligned. `serialize_fetch` turns the pipelined machine into the
/// multicycle one (one instruction in flight, ~5 firings per instruction).
class ControlUnit final : public Process {
 public:
  struct Config {
    bool serialize_fetch = false;  ///< multicycle when true
    int fetch_window = 4;          ///< max buffered + in-flight fetches
    int drain_firings = 8;         ///< bubbles after HALT before halting
    /// When true, the oracle also skips instruction tokens the CU squashed
    /// itself (wrong-path fetches after a taken branch). The paper's
    /// wrapper does not exploit this — it is kept as an ablation of a
    /// slightly richer communication profile.
    bool relax_squashed_fetches = false;
  };

  explicit ControlUnit(Config config);

  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override { return halted_; }

  std::uint64_t instructions_retired() const { return retired_; }

 private:
  /// What the instr token arriving at a given firing is.
  struct FetchMeta {
    bool real = false;      ///< a fetch was issued for this slot
    bool squashed = false;  ///< wrong-path, consume without reading
  };

  struct DispatchDecision {
    bool dispatch = false;       ///< head leaves the buffer this firing
    bool reads_flags = false;    ///< branch resolution consumes flags
    Instr instr;                 ///< valid when dispatch or reads_flags
    bool head_known = false;
  };

  /// Pure helper shared by required() and fire() so the oracle and the
  /// transition agree exactly on when the flags token is read.
  DispatchDecision plan_dispatch(bool instr_peek_available,
                                 Word instr_peek_value) const;

  int outstanding_real() const;

  Config config_;

  std::uint32_t pc_ = 0;
  std::uint64_t firing_ = 0;
  std::deque<FetchMeta> fetch_meta_;   // front = token consumed this firing
  std::deque<Instr> ibuf_;             // fetched, not yet dispatched
  std::uint64_t ready_at_[kNumRegisters] = {};
  std::uint64_t flags_ready_at_ = 0;
  std::uint64_t fetch_allowed_at_ = 0;  // multicycle serialization
  AluCtl alu_delay_{};                  // dispatched at d, emitted at d+1
  DcCtl dc_delay_[2] = {};              // dispatched at d, emitted at d+2
  bool draining_ = false;
  int drain_left_ = 0;
  bool halted_ = false;
  std::uint64_t retired_ = 0;

  std::size_t in_instr_, in_flags_;
  std::size_t out_iaddr_, out_rf_, out_alu_, out_dc_;
};

}  // namespace wp::proc
