// Payload formats of the ten inter-block connections of the case study
// (paper Fig. 1). Each bundle packs into one 64-bit token word; "bubble"
// encodings mark slots where no work travels (the golden machine drives
// every wire every cycle).
#pragma once

#include "core/token.hpp"
#include "proc/isa.hpp"

namespace wp::proc {

/// CU → IC: instruction fetch request.
struct FetchReq {
  bool fetch = false;       ///< false: bubble slot, IC returns a bubble
  std::uint32_t addr = 0;

  Word pack() const {
    return (fetch ? 1ULL : 0ULL) | (Word{addr} << 1);
  }
  static FetchReq unpack(Word w) {
    return {(w & 1) != 0, static_cast<std::uint32_t>(w >> 1)};
  }
};

/// IC → CU: fetched instruction (or bubble).
struct FetchResp {
  bool valid = false;
  Word instr_word = 0;  ///< encode()d instruction, fits in 50 bits

  Word pack() const {
    return (valid ? 1ULL : 0ULL) | (instr_word << 1);
  }
  static FetchResp unpack(Word w) {
    return {(w & 1) != 0, w >> 1};
  }
};

/// Writeback kinds the register file schedules.
enum class WbKind : std::uint8_t { kNone = 0, kAlu = 1, kLoad = 2 };

/// CU → RF: register-stage control for one instruction slot.
struct RfCtl {
  bool bubble = true;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  WbKind wb_kind = WbKind::kNone;
  std::uint8_t wb_reg = 0;
  bool store = false;  ///< stage rs2's value toward the data cache

  Word pack() const {
    return (bubble ? 1ULL : 0ULL) | (Word{rs1} << 1) | (Word{rs2} << 5) |
           (Word{static_cast<std::uint8_t>(wb_kind)} << 9) |
           (Word{wb_reg} << 11) | (store ? 1ULL << 15 : 0ULL);
  }
  static RfCtl unpack(Word w) {
    RfCtl c;
    c.bubble = (w & 1) != 0;
    c.rs1 = static_cast<std::uint8_t>((w >> 1) & 0xF);
    c.rs2 = static_cast<std::uint8_t>((w >> 5) & 0xF);
    c.wb_kind = static_cast<WbKind>((w >> 9) & 0x3);
    c.wb_reg = static_cast<std::uint8_t>((w >> 11) & 0xF);
    c.store = ((w >> 15) & 1) != 0;
    return c;
  }
};

/// CU → ALU: execute-stage control.
struct AluCtl {
  bool bubble = true;
  Opcode op = Opcode::kNop;
  bool use_imm = false;   ///< second operand comes from `imm`, not the RF
  std::int32_t imm = 0;

  Word pack() const {
    return (bubble ? 1ULL : 0ULL) |
           (Word{static_cast<std::uint8_t>(op)} << 1) |
           (use_imm ? 1ULL << 7 : 0ULL) |
           (Word{static_cast<std::uint32_t>(imm)} << 8);
  }
  static AluCtl unpack(Word w) {
    AluCtl c;
    c.bubble = (w & 1) != 0;
    c.op = static_cast<Opcode>((w >> 1) & 0x3F);
    c.use_imm = ((w >> 7) & 1) != 0;
    c.imm = static_cast<std::int32_t>(
        static_cast<std::uint32_t>((w >> 8) & 0xFFFFFFFFULL));
    return c;
  }

  /// True when the instruction reads register operands from the RF.
  bool needs_operands() const {
    return !bubble && (reads_rs1(op) || reads_rs2(op));
  }
};

/// CU → DC: memory-stage control.
enum class MemKind : std::uint8_t { kNone = 0, kLoad = 1, kStore = 2 };

struct DcCtl {
  bool bubble = true;
  MemKind kind = MemKind::kNone;

  Word pack() const {
    return (bubble ? 1ULL : 0ULL) |
           (Word{static_cast<std::uint8_t>(kind)} << 1);
  }
  static DcCtl unpack(Word w) {
    return {(w & 1) != 0, static_cast<MemKind>((w >> 1) & 0x3)};
  }
};

/// RF → ALU: the two register operands, packed.
struct Operands {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  Word pack() const { return Word{a} | (Word{b} << 32); }
  static Operands unpack(Word w) {
    return {static_cast<std::uint32_t>(w & 0xFFFFFFFFULL),
            static_cast<std::uint32_t>(w >> 32)};
  }
};

}  // namespace wp::proc
