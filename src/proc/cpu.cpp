#include "proc/cpu.hpp"

#include "proc/assembler.hpp"
#include "proc/blocks.hpp"

namespace wp::proc {

const std::vector<std::string>& cpu_connections() {
  static const std::vector<std::string> names = {
      "CU-RF", "CU-AL", "CU-DC", "CU-IC", "RF-ALU",
      "RF-DC", "ALU-CU", "ALU-RF", "ALU-DC", "DC-RF"};
  return names;
}

wp::SystemSpec make_cpu_system(const ProgramSpec& program,
                               const CpuConfig& config) {
  const AssemblyResult assembly = assemble(program.source);

  wp::SystemSpec spec;
  spec.add_process("CU", [config]() {
    ControlUnit::Config cu;
    cu.serialize_fetch = config.multicycle;
    cu.fetch_window = config.fetch_window;
    cu.drain_firings = config.drain_firings;
    cu.relax_squashed_fetches = config.relax_squashed_fetches;
    return std::make_unique<ControlUnit>(cu);
  });
  spec.add_process("IC", [rom = assembly.rom]() {
    return std::make_unique<IcacheBlock>(rom);
  });
  spec.add_process("DC", [ram = program.ram]() {
    return std::make_unique<DcacheBlock>(ram);
  });
  spec.add_process("RF", []() { return std::make_unique<RegFileBlock>(); });
  spec.add_process("ALU", []() { return std::make_unique<AluBlock>(); });

  // The ten physical links of Fig. 1 / Table 1. The CU-IC bundle carries
  // both the fetch address and the returned instruction, so one relay
  // station on "CU-IC" segments both wires.
  spec.add_channel("CU", "iaddr", "IC", "addr", "CU-IC");
  spec.add_channel("IC", "instr", "CU", "instr", "CU-IC");
  spec.add_channel("CU", "rf_ctl", "RF", "ctl", "CU-RF");
  spec.add_channel("CU", "alu_op", "ALU", "op", "CU-AL");
  spec.add_channel("CU", "dc_ctl", "DC", "ctl", "CU-DC");
  spec.add_channel("RF", "operands", "ALU", "operands", "RF-ALU");
  spec.add_channel("RF", "store", "DC", "store_data", "RF-DC");
  spec.add_channel("ALU", "flags", "CU", "flags", "ALU-CU");
  spec.add_channel("ALU", "result", "RF", "wb", "ALU-RF");
  spec.add_channel("ALU", "maddr", "DC", "maddr", "ALU-DC");
  spec.add_channel("DC", "load", "RF", "load", "DC-RF");
  return spec;
}

wp::graph::Digraph make_cpu_graph() {
  wp::graph::Digraph g;
  const auto cu = g.add_node("CU");
  const auto ic = g.add_node("IC");
  const auto dc = g.add_node("DC");
  const auto rf = g.add_node("RF");
  const auto alu = g.add_node("ALU");
  g.add_edge(cu, ic, "CU-IC");
  g.add_edge(ic, cu, "CU-IC");
  g.add_edge(cu, rf, "CU-RF");
  g.add_edge(cu, alu, "CU-AL");
  g.add_edge(cu, dc, "CU-DC");
  g.add_edge(rf, alu, "RF-ALU");
  g.add_edge(rf, dc, "RF-DC");
  g.add_edge(alu, cu, "ALU-CU");
  g.add_edge(alu, rf, "ALU-RF");
  g.add_edge(alu, dc, "ALU-DC");
  g.add_edge(dc, rf, "DC-RF");
  return g;
}

wp::graph::Digraph make_cpu_graph_with_rs(
    const std::map<std::string, int>& rs) {
  wp::graph::Digraph g = make_cpu_graph();
  for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    auto it = rs.find(g.edge(e).label);
    if (it != rs.end()) g.edge(e).relay_stations = it->second;
  }
  return g;
}

}  // namespace wp::proc
