// Assembles the case-study processor (paper Fig. 1) as a SystemSpec with the
// ten named connections of Table 1, and as a Digraph for static analysis.
#pragma once

#include <string>
#include <vector>

#include "core/system.hpp"
#include "graph/digraph.hpp"
#include "proc/programs.hpp"

namespace wp::proc {

struct CpuConfig {
  bool multicycle = false;  ///< §2: "multicycle and pipelined" fashions
  int fetch_window = 4;
  int drain_firings = 8;
  /// Extension (ablation): let the WP2 oracle skip wrong-path instruction
  /// tokens the CU squashed itself. Off in the paper's configuration.
  bool relax_squashed_fetches = false;
};

/// Table-1 connection names, in the paper's row order.
const std::vector<std::string>& cpu_connections();

/// Builds the five-block system running `program`. Relay-station counts are
/// set afterwards with SystemSpec::set_rs_map / set_connection_rs using the
/// cpu_connections() names ("CU-IC" covers both directions of the bundle).
wp::SystemSpec make_cpu_system(const ProgramSpec& program,
                               const CpuConfig& config = {});

/// The Fig. 1 topology as a digraph; edge labels are connection names and
/// relay-station counts start at zero.
wp::graph::Digraph make_cpu_graph();

}  // namespace wp::proc
