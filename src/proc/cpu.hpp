// Assembles the case-study processor (paper Fig. 1) as a SystemSpec with the
// ten named connections of Table 1, and as a Digraph for static analysis.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "graph/digraph.hpp"
#include "proc/programs.hpp"

namespace wp::proc {

struct CpuConfig {
  bool multicycle = false;  ///< §2: "multicycle and pipelined" fashions
  int fetch_window = 4;
  int drain_firings = 8;
  /// Extension (ablation): let the WP2 oracle skip wrong-path instruction
  /// tokens the CU squashed itself. Off in the paper's configuration.
  bool relax_squashed_fetches = false;
};

/// Table-1 connection names, in the paper's row order.
const std::vector<std::string>& cpu_connections();

/// Builds the five-block system running `program`. Relay-station counts are
/// set afterwards with SystemSpec::set_rs_map / set_connection_rs using the
/// cpu_connections() names ("CU-IC" covers both directions of the bundle).
wp::SystemSpec make_cpu_system(const ProgramSpec& program,
                               const CpuConfig& config = {});

/// The Fig. 1 topology as a digraph; edge labels are connection names and
/// relay-station counts start at zero.
wp::graph::Digraph make_cpu_graph();

/// make_cpu_graph() with a per-connection relay-station map applied
/// (missing names keep zero). The single source of truth for turning a
/// Table-1 RS configuration into the static-analysis graph — shared by the
/// simulation oracle's m/(m+n) column and ParallelSweep::analyze.
wp::graph::Digraph make_cpu_graph_with_rs(
    const std::map<std::string, int>& rs);

}  // namespace wp::proc
