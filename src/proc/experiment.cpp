#include "proc/experiment.hpp"

#include <utility>

#include "graph/cycle_ratio.hpp"
#include "graph/optimize.hpp"
#include "proc/blocks.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wp::proc {

namespace {

const DcacheBlock& dcache_of(const wp::Process& p) {
  const auto* dc = dynamic_cast<const DcacheBlock*>(&p);
  WP_CHECK(dc != nullptr, "DC process is not a DcacheBlock");
  return *dc;
}

/// Applies a per-connection RS map to the static graph.
wp::graph::Digraph graph_with_rs(const std::map<std::string, int>& rs) {
  wp::graph::Digraph g = make_cpu_graph();
  for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    auto it = rs.find(g.edge(e).label);
    if (it != rs.end()) g.edge(e).relay_stations = it->second;
  }
  return g;
}

}  // namespace

ExperimentRow run_experiment(const ProgramSpec& program,
                             const CpuConfig& cpu, const RsConfig& config,
                             const ExperimentOptions& options) {
  ExperimentRow row;
  row.label = config.label;

  auto note = [&row](const std::string& msg) {
    if (row.detail.empty()) row.detail = msg;
  };

  // --- golden reference -----------------------------------------------
  wp::SystemSpec spec = make_cpu_system(program, cpu);
  wp::GoldenSim golden(spec, options.check_equivalence);
  row.golden_cycles = golden.run_until_halt(options.max_cycles);
  WP_CHECK(golden.halted(), "golden run did not halt — raise max_cycles");
  if (options.verify_result) {
    std::string error;
    if (!program.verify(dcache_of(golden.process("DC")).memory(), &error)) {
      row.result_ok = false;
      note("golden result check failed: " + error);
    }
  }

  // --- the two wire-pipelined systems ----------------------------------
  spec.set_rs_map(config.rs);

  for (const bool oracle : {false, true}) {
    wp::ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = options.fifo_capacity;
    wp::LidSystem lid =
        build_lid(spec, shell, options.check_equivalence);
    const std::uint64_t cycles = lid.run_until_halt(options.max_cycles);
    const auto* cu = lid.shells.at("CU");
    if (!cu->halted()) {
      note(std::string(oracle ? "WP2" : "WP1") +
           " run did not halt within max_cycles");
    }
    if (options.check_equivalence) {
      const auto eq = check_equivalence(golden.trace(), lid.trace);
      if (!eq.equivalent) {
        if (oracle)
          row.wp2_equivalent = false;
        else
          row.wp1_equivalent = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " not equivalent to golden: " + eq.detail);
      }
    }
    if (options.verify_result) {
      std::string error;
      if (!program.verify(dcache_of(lid.shells.at("DC")->process()).memory(),
                          &error)) {
        row.result_ok = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " result check failed: " + error);
      }
    }
    if (oracle)
      row.wp2_cycles = cycles;
    else
      row.wp1_cycles = cycles;
  }

  row.th_wp1 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp1_cycles);
  row.th_wp2 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp2_cycles);
  row.improvement = (row.th_wp2 - row.th_wp1) / row.th_wp1;
  row.static_wp1 =
      wp::graph::min_cycle_ratio_lawler(graph_with_rs(config.rs)).ratio;
  return row;
}

double simulate_wp2_throughput(const ProgramSpec& program,
                               const CpuConfig& cpu,
                               const std::map<std::string, int>& rs,
                               std::size_t fifo_capacity) {
  wp::SystemSpec spec = make_cpu_system(program, cpu);
  wp::GoldenSim golden(spec, false);
  const std::uint64_t golden_cycles = golden.run_until_halt(2000000);
  spec.set_rs_map(rs);
  wp::ShellOptions shell;
  shell.use_oracle = true;
  shell.fifo_capacity = fifo_capacity;
  wp::LidSystem lid = build_lid(spec, shell, false);
  const std::uint64_t cycles = lid.run_until_halt(2000000, /*grace=*/0);
  return static_cast<double>(golden_cycles) / static_cast<double>(cycles);
}

std::vector<RsConfig> table1_sort_configs() {
  std::vector<RsConfig> configs;
  configs.push_back({"All 0 (ideal)", {}});
  for (const auto& name : cpu_connections())
    configs.push_back({"Only " + name, {{name, 1}}});
  RsConfig all1{"All 1 (no CU-IC)", {}};
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") all1.rs[name] = 1;
  configs.push_back(std::move(all1));
  return configs;
}

std::vector<RsConfig> table1_matmul_configs() {
  std::vector<RsConfig> configs = table1_sort_configs();
  // "All 1 and 2 <X>": every connection (except CU-IC) at 1, X raised to 2.
  for (const auto& name : cpu_connections()) {
    RsConfig cfg{"All 1 and 2 " + name, {}};
    for (const auto& other : cpu_connections())
      if (other != "CU-IC") cfg.rs[other] = 1;
    cfg.rs[name] = 2;  // CU-IC row: 2 on CU-IC plus 1 everywhere else
    configs.push_back(std::move(cfg));
  }
  RsConfig all2{"All 2 (no CU-IC)", {}};
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") all2.rs[name] = 2;
  configs.push_back(all2);
  RsConfig all2and1{"All 2 and 1 CU-RF", all2.rs};
  all2and1.rs["CU-RF"] = 1;
  configs.push_back(std::move(all2and1));
  return configs;
}

RsConfig optimal_config(const std::string& label, const ProgramSpec& program,
                        const CpuConfig& cpu,
                        const std::map<std::string, int>& demand,
                        const std::map<std::string, int>& relieved,
                        int budget) {
  wp::graph::RsOptimizeProblem problem;
  problem.demand = demand;
  problem.relieved = relieved;
  problem.max_relieved = budget;
  const auto result = wp::graph::optimize_rs_exhaustive(
      problem, [&](const wp::graph::RsAssignment& assignment) {
        return simulate_wp2_throughput(program, cpu, assignment);
      });
  return {label, result.assignment};
}

ParallelSweep::ParallelSweep(ProgramSpec program, CpuConfig cpu,
                             ExperimentOptions options)
    : program_(std::move(program)), cpu_(cpu), options_(options) {}

std::vector<ExperimentRow> ParallelSweep::run(
    const std::vector<RsConfig>& configs, ThreadPool* pool) const {
  ThreadPool& workers = pool != nullptr ? *pool : ThreadPool::shared();
  std::vector<ExperimentRow> rows(configs.size());
  workers.parallel_for(0, configs.size(), [&](std::size_t i) {
    rows[i] = run_experiment(program_, cpu_, configs[i], options_);
  });
  return rows;
}

std::vector<wp::graph::ThroughputReport> ParallelSweep::analyze(
    const std::vector<RsConfig>& configs, ThreadPool* pool) const {
  ThreadPool& workers = pool != nullptr ? *pool : ThreadPool::shared();
  std::vector<wp::graph::ThroughputReport> reports(configs.size());
  workers.parallel_for(0, configs.size(), [&](std::size_t i) {
    reports[i] = wp::graph::analyze_throughput(graph_with_rs(configs[i].rs));
  });
  return reports;
}

}  // namespace wp::proc
