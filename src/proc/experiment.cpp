#include "proc/experiment.hpp"

#include <utility>

#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "graph/optimize.hpp"
#include "sim/oracle.hpp"
#include "util/thread_pool.hpp"

namespace wp::proc {

// The historical entry points are thin adapters over the ONE evaluation
// surface: they build an eval::EvalRequest and hand it to eval::evaluate —
// the identical call the service daemon makes for a decoded wire request.
// Programs travel as inline ProgramRefs (in-process only; the daemon path
// uses generator refs).

ExperimentRow run_experiment(const ProgramSpec& program,
                             const CpuConfig& cpu, const RsConfig& config,
                             const ExperimentOptions& options) {
  eval::ExperimentJob job;
  job.program = eval::ProgramRef::inlined(program);
  job.cpu = cpu;
  job.rs = config;
  job.options = options;
  return eval::unwrap_row(
      eval::evaluate(eval::EvalRequest(std::move(job)), {}));
}

double simulate_wp2_throughput(const ProgramSpec& program,
                               const CpuConfig& cpu,
                               const std::map<std::string, int>& rs,
                               std::size_t fifo_capacity) {
  eval::ThroughputJob job;
  job.program = eval::ProgramRef::inlined(program);
  job.cpu = cpu;
  job.rs = rs;
  job.fifo_capacity = fifo_capacity;
  return eval::unwrap_throughput(
      eval::evaluate(eval::EvalRequest(std::move(job)), {}));
}

std::vector<RsConfig> table1_sort_configs() {
  std::vector<RsConfig> configs;
  configs.push_back({"All 0 (ideal)", {}});
  for (const auto& name : cpu_connections())
    configs.push_back({"Only " + name, {{name, 1}}});
  RsConfig all1{"All 1 (no CU-IC)", {}};
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") all1.rs[name] = 1;
  configs.push_back(std::move(all1));
  return configs;
}

std::vector<RsConfig> table1_matmul_configs() {
  std::vector<RsConfig> configs = table1_sort_configs();
  // "All 1 and 2 <X>": every connection (except CU-IC) at 1, X raised to 2.
  for (const auto& name : cpu_connections()) {
    RsConfig cfg{"All 1 and 2 " + name, {}};
    for (const auto& other : cpu_connections())
      if (other != "CU-IC") cfg.rs[other] = 1;
    cfg.rs[name] = 2;  // CU-IC row: 2 on CU-IC plus 1 everywhere else
    configs.push_back(std::move(cfg));
  }
  RsConfig all2{"All 2 (no CU-IC)", {}};
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") all2.rs[name] = 2;
  configs.push_back(all2);
  RsConfig all2and1{"All 2 and 1 CU-RF", all2.rs};
  all2and1.rs["CU-RF"] = 1;
  configs.push_back(std::move(all2and1));
  return configs;
}

RsConfig optimal_config(const std::string& label, const ProgramSpec& program,
                        const CpuConfig& cpu,
                        const std::map<std::string, int>& demand,
                        const std::map<std::string, int>& relieved,
                        int budget) {
  // Every candidate the exhaustive search scores shares one golden run:
  // the oracle caches it on the first evaluation, so the optimizer's cost
  // is the WP2 simulations alone.
  eval::EvalContext context;  // default: the shared oracle
  wp::graph::RsOptimizeProblem problem;
  problem.demand = demand;
  problem.relieved = relieved;
  problem.max_relieved = budget;
  const auto result = wp::graph::optimize_rs_exhaustive(
      problem, [&](const wp::graph::RsAssignment& assignment) {
        eval::ThroughputJob job;
        job.program = eval::ProgramRef::inlined(program);
        job.cpu = cpu;
        job.rs = assignment;
        return eval::unwrap_throughput(
            eval::evaluate(eval::EvalRequest(std::move(job)), context));
      });
  return {label, result.assignment};
}

ParallelSweep::ParallelSweep(ProgramSpec program, CpuConfig cpu,
                             ExperimentOptions options)
    : program_(std::move(program)), cpu_(cpu), options_(options) {}

std::vector<ExperimentRow> ParallelSweep::run(
    const std::vector<RsConfig>& configs, ThreadPool* pool) const {
  eval::EvalContext context;
  context.oracle = oracle_;  // nullptr → evaluate resolves shared()
  std::vector<eval::EvalRequest> requests;
  requests.reserve(configs.size());
  for (const RsConfig& config : configs) {
    eval::ExperimentJob job;
    job.program = eval::ProgramRef::inlined(program_);
    job.cpu = cpu_;
    job.rs = config;
    job.options = options_;
    requests.emplace_back(std::move(job));
  }
  const std::vector<eval::EvalReply> replies =
      eval::evaluate_batch(requests, context, pool);
  std::vector<ExperimentRow> rows(configs.size());
  for (std::size_t i = 0; i < replies.size(); ++i)
    rows[i] = eval::unwrap_row(replies[i]);
  return rows;
}

std::vector<wp::graph::ThroughputReport> ParallelSweep::analyze(
    const std::vector<RsConfig>& configs, ThreadPool* pool) const {
  ThreadPool& workers = pool != nullptr ? *pool : ThreadPool::shared();
  std::vector<wp::graph::ThroughputReport> reports(configs.size());
  workers.parallel_for(0, configs.size(), [&](std::size_t i) {
    reports[i] =
        wp::graph::analyze_throughput(make_cpu_graph_with_rs(configs[i].rs));
  });
  return reports;
}

}  // namespace wp::proc
