// The experiment driver behind every Table-1 row: run the golden system,
// the WP1 system and the WP2 system under a relay-station configuration,
// measure cycles and throughput, check τ-filtered equivalence and the
// program's final memory, and compare against the static m/(m+n) bound.
//
// Since the simulation-oracle refactor these entry points are thin clients
// of sim::SimOracle: the golden reference of a (program, cpu) pair is
// simulated once, cached, and replayed for every subsequent evaluation —
// a sweep over one program, or the optimizer's exhaustive candidate scan,
// runs the golden exactly once. Results are bit-identical to the
// fresh-golden path (differential suite: tests/test_sim_oracle.cpp).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/throughput.hpp"
#include "proc/cpu.hpp"
#include "proc/programs.hpp"

namespace wp {
class ThreadPool;
}
namespace wp::sim {
class SimOracle;
}

namespace wp::proc {

/// A named relay-station configuration (one Table-1 row).
struct RsConfig {
  std::string label;               ///< e.g. "Only CU-IC", "All 1 (no CU-IC)"
  std::map<std::string, int> rs;   ///< per-connection counts; missing = 0
};

struct ExperimentRow {
  std::string label;
  std::uint64_t golden_cycles = 0;
  std::uint64_t wp1_cycles = 0;
  std::uint64_t wp2_cycles = 0;
  double th_wp1 = 1.0;        ///< golden_cycles / wp1_cycles
  double th_wp2 = 1.0;        ///< golden_cycles / wp2_cycles
  double improvement = 0.0;   ///< (th_wp2 - th_wp1) / th_wp1
  double static_wp1 = 1.0;    ///< min-cycle-ratio prediction m/(m+n)
  bool wp1_equivalent = true;
  bool wp2_equivalent = true;
  bool result_ok = true;      ///< program verify() on all three runs
  std::string detail;         ///< first failure, if any
};

struct ExperimentOptions {
  bool check_equivalence = true;  ///< trace-compare WP runs vs golden
  bool verify_result = true;      ///< check final data memory
  std::uint64_t max_cycles = 2000000;
  std::size_t fifo_capacity = 16;
};

/// Runs one configuration against the process-wide shared simulation
/// oracle (sim::SimOracle::shared()): WP1/WP2 are simulated fresh, the
/// golden side is a cache hit after the first evaluation of the program.
ExperimentRow run_experiment(const ProgramSpec& program,
                             const CpuConfig& cpu, const RsConfig& config,
                             const ExperimentOptions& options = {});

/// Convenience: simulated WP2 throughput of one configuration (used as the
/// optimizer objective for the "Optimal k" rows). Oracle-backed like
/// run_experiment.
double simulate_wp2_throughput(const ProgramSpec& program,
                               const CpuConfig& cpu,
                               const std::map<std::string, int>& rs,
                               std::size_t fifo_capacity = 16);

/// Table 1 configurations, extraction-sort section (rows 1–13): ideal, one
/// RS on each single connection, all-1 except CU-IC, and the optimizer's
/// best all-1-with-relief placement.
std::vector<RsConfig> table1_sort_configs();

/// Table 1 configurations, matrix-multiply section (rows 1–25): the sort
/// set plus the all-1-and-2-on-one sweeps, optimal-2, all-2, all-2-and-1.
std::vector<RsConfig> table1_matmul_configs();

/// Builds the "Optimal ..." configuration by exhaustively relieving up to
/// `budget` connections from `demand` down to `relieved`, maximizing the
/// simulated WP2 throughput.
RsConfig optimal_config(const std::string& label, const ProgramSpec& program,
                        const CpuConfig& cpu,
                        const std::map<std::string, int>& demand,
                        const std::map<std::string, int>& relieved,
                        int budget);

/// Parallel sweep runner: fans relay-station sweep points out over a
/// thread pool — each point a full golden/WP1/WP2 simulation triple — and
/// collects the rows in input order, so a parallel sweep prints exactly
/// like its sequential equivalent. Every worker builds its own simulator
/// instances; the shared program/CPU spec is only read.
class ParallelSweep {
 public:
  ParallelSweep(ProgramSpec program, CpuConfig cpu,
                ExperimentOptions options = {});

  /// Evaluates against `oracle` instead of the process-wide shared one
  /// (tests isolate cache statistics this way). The oracle's per-key
  /// once-semantics make the pooled sweep run the golden exactly once even
  /// when every worker asks for it simultaneously.
  void set_oracle(sim::SimOracle* oracle) { oracle_ = oracle; }

  /// Runs run_experiment for every configuration. nullptr pool uses
  /// ThreadPool::shared().
  std::vector<ExperimentRow> run(const std::vector<RsConfig>& configs,
                                 ThreadPool* pool = nullptr) const;

  /// Static loop-inventory report per configuration (no simulation): the
  /// per-point ThroughputReport of the CPU graph under each RS map.
  std::vector<graph::ThroughputReport> analyze(
      const std::vector<RsConfig>& configs,
      ThreadPool* pool = nullptr) const;

 private:
  ProgramSpec program_;
  CpuConfig cpu_;
  ExperimentOptions options_;
  sim::SimOracle* oracle_ = nullptr;  ///< nullptr → SimOracle::shared()
};

}  // namespace wp::proc
