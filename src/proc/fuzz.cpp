#include "proc/fuzz.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace wp::proc {

namespace {

// Register plan: r1..r12 free for random ops, r13/r14 reserved for loop
// counters and bounds, r15 scratch for addresses, r0 never written (base 0).
constexpr int kFreeRegs = 12;

class Generator {
 public:
  explicit Generator(const RandomProgramConfig& config)
      : config_(config), rng_(config.seed) {}

  std::string run() {
    for (int b = 0; b < config_.blocks; ++b) {
      emit_label("blk" + std::to_string(b));
      if (rng_.chance(config_.loop_probability)) {
        emit_counted_loop(b);
      } else {
        emit_straight_block();
      }
      if (b + 1 < config_.blocks &&
          rng_.chance(config_.branch_probability)) {
        // Forward conditional branch to a strictly later block: always
        // terminates regardless of the flags' value.
        const int target =
            b + 1 +
            static_cast<int>(rng_.below(
                static_cast<std::uint64_t>(config_.blocks - b - 1)) );
        emit(format("cmp r%d, r%d", reg(), reg()));
        emit(format("%s blk%d", branch_mnemonic(), target));
      }
    }
    emit_label("blk" + std::to_string(config_.blocks));
    emit("halt");
    return source_.str();
  }

 private:
  int reg() { return 1 + static_cast<int>(rng_.below(kFreeRegs)); }
  int addr() {
    return static_cast<int>(rng_.below(config_.ram_words));
  }
  const char* branch_mnemonic() {
    switch (rng_.below(4)) {
      case 0: return "beq";
      case 1: return "bne";
      case 2: return "blt";
      default: return "bge";
    }
  }

  void emit(const std::string& line) { source_ << "  " << line << "\n"; }
  void emit_label(const std::string& label) { source_ << label << ":\n"; }

  void emit_random_op() {
    switch (rng_.below(10)) {
      case 0:
        emit(format("li r%d, %d", reg(), static_cast<int>(rng_.below(256))));
        break;
      case 1:
        emit(format("add r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 2:
        emit(format("sub r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 3:
        emit(format("mul r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 4:
        emit(format("and r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 5:
        emit(format("or r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 6:
        emit(format("xor r%d, r%d, r%d", reg(), reg(), reg()));
        break;
      case 7:
        emit(format("addi r%d, r%d, %d", reg(), reg(),
                    static_cast<int>(rng_.range(-16, 16))));
        break;
      case 8:
        emit(format("ld r%d, %d(r0)", reg(), addr()));
        break;
      default:
        emit(format("st r%d, %d(r0)", reg(), addr()));
        break;
    }
  }

  void emit_straight_block() {
    const int ops = static_cast<int>(
        rng_.range(config_.min_block_ops, config_.max_block_ops));
    for (int i = 0; i < ops; ++i) emit_random_op();
  }

  void emit_counted_loop(int block) {
    const int trips = static_cast<int>(
        rng_.range(1, config_.loop_trip_max));
    const std::string head = "loop" + std::to_string(block);
    emit("li r13, 0");
    emit(format("li r14, %d", trips));
    emit_label(head);
    const int ops = static_cast<int>(
        rng_.range(config_.min_block_ops, config_.max_block_ops));
    for (int i = 0; i < ops; ++i) emit_random_op();
    emit("addi r13, r13, 1");
    emit("cmp r13, r14");
    emit(format("blt %s", head.c_str()));
  }

  const RandomProgramConfig& config_;
  Rng rng_;
  std::ostringstream source_;
};

}  // namespace

ProgramSpec random_program(const RandomProgramConfig& config) {
  WP_REQUIRE(config.blocks >= 1, "need at least one block");
  WP_REQUIRE(config.min_block_ops >= 1 &&
                 config.max_block_ops >= config.min_block_ops,
             "bad block op range");
  WP_REQUIRE(config.ram_words >= 1, "need data memory");

  ProgramSpec spec;
  spec.name = "fuzz[" + std::to_string(config.seed) + "]";
  Generator generator(config);
  spec.source = generator.run();

  Rng data_rng(config.seed ^ 0xD00DFEEDULL);
  spec.ram.resize(config.ram_words);
  for (auto& word : spec.ram)
    word = static_cast<std::uint32_t>(data_rng.below(1 << 16));

  spec.verify = [](const std::vector<std::uint32_t>&, std::string*) {
    return true;  // the fuzz harness compares against golden directly
  };
  return spec;
}

}  // namespace wp::proc
