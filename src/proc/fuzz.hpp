// Random-program generation for the case-study processor: terminating
// programs (forward branches and bounded counted loops only) over the full
// ISA, used by the property tests to check golden/WP1/WP2 agreement far
// beyond the two paper workloads.
#pragma once

#include <cstdint>

#include "proc/programs.hpp"

namespace wp::proc {

struct RandomProgramConfig {
  std::uint64_t seed = 1;
  int blocks = 6;             ///< straight-line blocks
  int min_block_ops = 3;
  int max_block_ops = 8;
  int loop_trip_max = 4;      ///< counted-loop trip counts in [1, max]
  double loop_probability = 0.4;
  double branch_probability = 0.5;  ///< forward conditional branch per block
  std::size_t ram_words = 32;
};

/// Generates a random terminating program. The returned spec's verify()
/// accepts anything — the property tests compare the final memory of the
/// WP runs against the golden run directly (plus trace equivalence).
ProgramSpec random_program(const RandomProgramConfig& config);

}  // namespace wp::proc
