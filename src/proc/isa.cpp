#include "proc/isa.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace wp::proc {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLi: return "li";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kAddi: return "addi";
    case Opcode::kCmp: return "cmp";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJmp: return "jmp";
    case Opcode::kCount: break;
  }
  return "?";
}

Word encode(const Instr& instr) {
  WP_REQUIRE(instr.rd < kNumRegisters && instr.rs1 < kNumRegisters &&
                 instr.rs2 < kNumRegisters,
             "register index out of range");
  WP_REQUIRE(instr.imm >= -(1 << 30) && instr.imm < (1 << 30),
             "immediate out of encodable range");
  const auto imm_bits =
      static_cast<Word>(static_cast<std::uint32_t>(instr.imm));
  return static_cast<Word>(instr.op) | (Word{instr.rd} << 6) |
         (Word{instr.rs1} << 10) | (Word{instr.rs2} << 14) |
         (imm_bits << 18);
}

Instr decode(Word word) {
  Instr instr;
  const auto op_bits = static_cast<std::uint8_t>(word & 0x3F);
  WP_REQUIRE(op_bits < static_cast<std::uint8_t>(Opcode::kCount),
             "invalid opcode in instruction word");
  instr.op = static_cast<Opcode>(op_bits);
  instr.rd = static_cast<std::uint8_t>((word >> 6) & 0xF);
  instr.rs1 = static_cast<std::uint8_t>((word >> 10) & 0xF);
  instr.rs2 = static_cast<std::uint8_t>((word >> 14) & 0xF);
  instr.imm = static_cast<std::int32_t>(
      static_cast<std::uint32_t>((word >> 18) & 0xFFFFFFFFULL));
  return instr;
}

bool is_alu_writeback(Opcode op) {
  switch (op) {
    case Opcode::kLi:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kAddi:
      return true;
    default:
      return false;
  }
}

bool is_load(Opcode op) { return op == Opcode::kLd; }
bool is_store(Opcode op) { return op == Opcode::kSt; }
bool is_mem(Opcode op) { return is_load(op) || is_store(op); }

bool is_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
      return true;
    default:
      return false;
  }
}

bool is_jump(Opcode op) { return op == Opcode::kJmp; }

bool reads_rs1(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kAddi:
    case Opcode::kCmp:
    case Opcode::kLd:
    case Opcode::kSt:
      return true;
    default:
      return false;
  }
}

bool reads_rs2(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kCmp:
    case Opcode::kSt:
      return true;
    default:
      return false;
  }
}

bool needs_alu(Opcode op) {
  return is_alu_writeback(op) || op == Opcode::kCmp || is_mem(op);
}

std::string to_string(const Instr& instr) {
  std::ostringstream os;
  os << opcode_name(instr.op);
  switch (instr.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
    case Opcode::kLi:
      os << " r" << int{instr.rd} << ", " << instr.imm;
      break;
    case Opcode::kAddi:
      os << " r" << int{instr.rd} << ", r" << int{instr.rs1} << ", "
         << instr.imm;
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      os << " r" << int{instr.rd} << ", r" << int{instr.rs1} << ", r"
         << int{instr.rs2};
      break;
    case Opcode::kCmp:
      os << " r" << int{instr.rs1} << ", r" << int{instr.rs2};
      break;
    case Opcode::kLd:
      os << " r" << int{instr.rd} << ", " << instr.imm << "(r"
         << int{instr.rs1} << ")";
      break;
    case Opcode::kSt:
      os << " r" << int{instr.rs2} << ", " << instr.imm << "(r"
         << int{instr.rs1} << ")";
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kJmp:
      os << " " << instr.imm;
      break;
    case Opcode::kCount:
      break;
  }
  return os.str();
}

}  // namespace wp::proc
