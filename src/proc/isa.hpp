// The case-study processor's minimal instruction set (paper §2: "We built
// the system with a minimal instruction set"), its encoding, and the decode
// helpers shared by the control unit and the assembler.
//
// 16 general registers. Values are 32-bit. Instructions are encoded into a
// single 64-bit word so every channel can carry one in a token.
#pragma once

#include <cstdint>
#include <string>

#include "core/token.hpp"

namespace wp::proc {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt,
  kLi,    ///< rd = imm
  kAdd,   ///< rd = rs1 + rs2
  kSub,   ///< rd = rs1 - rs2
  kMul,   ///< rd = rs1 * rs2
  kAnd,   ///< rd = rs1 & rs2
  kOr,    ///< rd = rs1 | rs2
  kXor,   ///< rd = rs1 ^ rs2
  kAddi,  ///< rd = rs1 + imm
  kCmp,   ///< flags = compare(rs1, rs2); only CMP updates flags
  kLd,    ///< rd = mem[rs1 + imm]
  kSt,    ///< mem[rs1 + imm] = rs2
  kBeq,   ///< if flags.eq        jump to imm
  kBne,   ///< if !flags.eq       jump to imm
  kBlt,   ///< if flags.lt        jump to imm (signed)
  kBge,   ///< if !flags.lt       jump to imm (signed)
  kJmp,   ///< jump to imm
  kCount
};

const char* opcode_name(Opcode op);

/// A decoded instruction.
struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  bool operator==(const Instr& o) const {
    return op == o.op && rd == o.rd && rs1 == o.rs1 && rs2 == o.rs2 &&
           imm == o.imm;
  }
  bool operator!=(const Instr& o) const { return !(*this == o); }
};

/// Encoding layout inside a 64-bit word:
/// [5:0] opcode | [9:6] rd | [13:10] rs1 | [17:14] rs2 | [49:18] imm.
Word encode(const Instr& instr);
Instr decode(Word word);

/// Instruction classification used by the control unit and the oracles.
bool is_alu_writeback(Opcode op);  ///< writes rd from the ALU result
bool is_load(Opcode op);
bool is_store(Opcode op);
bool is_mem(Opcode op);
bool is_branch(Opcode op);  ///< conditional branches (flag consumers)
bool is_jump(Opcode op);    ///< unconditional control transfer
bool reads_rs1(Opcode op);
bool reads_rs2(Opcode op);
bool needs_alu(Opcode op);  ///< occupies the ALU (compute or address)

std::string to_string(const Instr& instr);

/// Comparison flags produced by kCmp (sticky in the ALU).
struct Flags {
  bool eq = false;
  bool lt = false;  // signed rs1 < rs2

  static Flags unpack(Word w) { return {(w & 1) != 0, (w & 2) != 0}; }
  Word pack() const { return (eq ? 1u : 0u) | (lt ? 2u : 0u); }
};

inline constexpr int kNumRegisters = 16;

}  // namespace wp::proc
