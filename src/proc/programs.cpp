#include "proc/programs.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace wp::proc {

ProgramSpec extraction_sort_program(std::size_t n, std::uint64_t seed) {
  WP_REQUIRE(n >= 2, "sort needs at least two keys");
  ProgramSpec spec;
  spec.name = "extraction_sort[" + std::to_string(n) + "]";

  // Register plan: r1=i, r2=j, r3=min index, r4=N, r5/r6=values, r9=N-1.
  // r0 stays 0 (never written).
  spec.source = format(R"(
        li   r4, %zu
        li   r1, 0
outer:  addi r9, r4, -1
        cmp  r1, r9
        bge  end
        add  r3, r1, r0        ; min = i
        addi r2, r1, 1         ; j = i+1
inner:  cmp  r2, r4
        bge  swap
        ld   r5, 0(r2)         ; a[j]
        ld   r6, 0(r3)         ; a[min]
        cmp  r5, r6
        bge  skip
        add  r3, r2, r0        ; min = j
skip:   addi r2, r2, 1
        jmp  inner
swap:   ld   r5, 0(r1)
        ld   r6, 0(r3)
        st   r6, 0(r1)
        st   r5, 0(r3)
        addi r1, r1, 1
        jmp  outer
end:    halt
)",
                       n);

  Rng rng(seed);
  spec.ram.resize(std::max<std::size_t>(n, 16));
  for (std::size_t i = 0; i < n; ++i)
    spec.ram[i] = static_cast<std::uint32_t>(rng.below(1000));

  std::vector<std::uint32_t> sorted(spec.ram.begin(),
                                    spec.ram.begin() + static_cast<long>(n));
  std::sort(sorted.begin(), sorted.end());
  spec.verify = [n, sorted](const std::vector<std::uint32_t>& ram,
                            std::string* error) {
    for (std::size_t i = 0; i < n; ++i) {
      if (ram[i] != sorted[i]) {
        if (error)
          *error = format("ram[%zu] = %u, expected %u", i, ram[i], sorted[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

ProgramSpec matmul_program(std::size_t dim, std::uint64_t seed) {
  WP_REQUIRE(dim >= 1, "matrix dimension must be >= 1");
  ProgramSpec spec;
  spec.name = "matmul[" + std::to_string(dim) + "x" + std::to_string(dim) +
              "]";
  const std::size_t sq = dim * dim;

  // A at 0, B at sq, C at 2*sq. Registers: r1=i, r2=j, r3=k, r4=dim,
  // r5=accumulator, r6/r7=elements, r8/r9=addresses, r10=product.
  spec.source = format(R"(
        li   r4, %zu
        li   r1, 0
loopi:  cmp  r1, r4
        bge  end
        li   r2, 0
loopj:  cmp  r2, r4
        bge  nexti
        li   r5, 0
        li   r3, 0
loopk:  cmp  r3, r4
        bge  storec
        mul  r8, r1, r4        ; &A[i][k]
        add  r8, r8, r3
        ld   r6, 0(r8)
        mul  r9, r3, r4        ; &B[k][j]
        add  r9, r9, r2
        ld   r7, %zu(r9)
        mul  r10, r6, r7
        add  r5, r5, r10
        addi r3, r3, 1
        jmp  loopk
storec: mul  r8, r1, r4        ; &C[i][j]
        add  r8, r8, r2
        st   r5, %zu(r8)
        addi r2, r2, 1
        jmp  loopj
nexti:  addi r1, r1, 1
        jmp  loopi
end:    halt
)",
                       dim, sq, 2 * sq);

  Rng rng(seed);
  spec.ram.resize(3 * sq);
  for (std::size_t i = 0; i < 2 * sq; ++i)
    spec.ram[i] = static_cast<std::uint32_t>(rng.below(16));

  std::vector<std::uint32_t> expected(sq, 0);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) {
      std::uint32_t acc = 0;
      for (std::size_t k = 0; k < dim; ++k)
        acc += spec.ram[i * dim + k] * spec.ram[sq + k * dim + j];
      expected[i * dim + j] = acc;
    }

  spec.verify = [sq, expected](const std::vector<std::uint32_t>& ram,
                               std::string* error) {
    for (std::size_t i = 0; i < sq; ++i) {
      if (ram[2 * sq + i] != expected[i]) {
        if (error)
          *error = format("C[%zu] = %u, expected %u", i, ram[2 * sq + i],
                          expected[i]);
        return false;
      }
    }
    return true;
  };
  return spec;
}

ProgramSpec pointer_chase_program(std::size_t n, std::uint64_t seed) {
  WP_REQUIRE(n >= 2, "list needs at least two nodes");
  ProgramSpec spec;
  spec.name = "pointer_chase[" + std::to_string(n) + "]";

  // Node i occupies words [2i, 2i+1]: (value, next node's word offset).
  // The chain visits the nodes in a shuffled order; the terminal node's
  // next field holds the sentinel. The sum lands at the last RAM word.
  Rng rng(seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);

  const std::size_t result_addr = 2 * n;
  const std::uint32_t sentinel = 60000;
  spec.ram.assign(2 * n + 1, 0);
  std::uint32_t sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t node = order[k];
    const auto value = static_cast<std::uint32_t>(rng.below(500));
    spec.ram[2 * node] = value;
    spec.ram[2 * node + 1] =
        k + 1 < n ? static_cast<std::uint32_t>(2 * order[k + 1]) : sentinel;
    sum += value;
  }

  spec.source = format(R"(
        li   r1, %zu           ; current node offset (head)
        li   r2, 0             ; running sum
        li   r3, %u            ; sentinel
loop:   ld   r4, 0(r1)         ; node value
        ld   r5, 1(r1)         ; next offset
        add  r2, r2, r4
        cmp  r5, r3
        beq  done
        add  r1, r5, r0        ; chase the pointer
        jmp  loop
done:   st   r2, %zu(r0)
        halt
)",
                       2 * order.front(), sentinel, result_addr);

  spec.verify = [result_addr, sum](const std::vector<std::uint32_t>& ram,
                                   std::string* error) {
    if (ram[result_addr] != sum) {
      if (error)
        *error = format("sum = %u, expected %u", ram[result_addr], sum);
      return false;
    }
    return true;
  };
  return spec;
}

}  // namespace wp::proc
