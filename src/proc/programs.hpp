// The paper's two benchmark programs (§2): "a strictly data dependent
// problem, extraction sort, and a matrix multiplication" — parameterized
// generators producing assembly plus initial data memory and a result
// checker.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wp::proc {

struct ProgramSpec {
  std::string name;
  std::string source;                   ///< assembly text
  std::vector<std::uint32_t> ram;       ///< initial data memory image
  /// Validates the final data memory; fills *error on failure.
  std::function<bool(const std::vector<std::uint32_t>& ram,
                     std::string* error)>
      verify;
};

/// Extraction (selection) sort of `n` pseudo-random keys at RAM[0..n).
ProgramSpec extraction_sort_program(std::size_t n = 16,
                                    std::uint64_t seed = 1);

/// dim×dim matrix multiply: A at 0, B at dim², C at 2·dim² (row-major).
ProgramSpec matmul_program(std::size_t dim = 4, std::uint64_t seed = 2);

/// Pointer chase: sums the values of an `n`-node linked list whose nodes
/// (value, next-index pairs) are shuffled through memory. Every iteration
/// serializes on a load — the stress case for the DC→RF path and the
/// opposite workload class from the regular matmul.
ProgramSpec pointer_chase_program(std::size_t n = 32,
                                  std::uint64_t seed = 3);

}  // namespace wp::proc
