#include "sim/golden_cache.hpp"

#include <iterator>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::sim {

std::uint64_t trace_fingerprint(const Trace& trace) {
  std::uint64_t h = 0x5afe601dULL;
  for (const auto& [stream, values] : trace) {
    h = hash_combine(h, hash_string(stream));
    h = hash_combine(h, values.size());
    for (const Word v : values) h = hash_combine(h, v);
  }
  return h;
}

GoldenCache::GoldenCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const GoldenRecord> GoldenCache::get_or_run(
    const std::string& key, const ComputeFn& compute) {
  WP_REQUIRE(compute != nullptr, "GoldenCache needs a compute function");
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // mark recent
      slot = it->second.slot;
    } else {
      ++stats_.misses;
      lru_.push_front(key);
      slot = std::make_shared<Slot>();
      entries_[key] = Entry{slot, lru_.begin()};
      if (max_entries_ > 0 && entries_.size() > max_entries_) {
        // Evict the least-recently-used *finished* entry; in-flight runs
        // must stay mapped so racing callers join them instead of
        // duplicating the simulation (the cap is soft under contention).
        for (auto it = std::prev(lru_.end());; --it) {
          auto entry = entries_.find(*it);
          if (entry->second.slot->done) {
            entries_.erase(entry);
            lru_.erase(it);
            ++stats_.evictions;
            break;
          }
          if (it == lru_.begin()) break;
        }
      }
    }
  }
  // Outside the lock: the first caller simulates, concurrent callers of the
  // same key block here on the in-flight run (call_once), other keys
  // proceed independently. If compute throws, the once_flag stays unset:
  // call_once turns each blocked waiter into the next runner (so a
  // deterministic failure re-throws per caller — acceptable, failures are
  // configuration errors), and the entry is dropped from the map below so
  // a failing key neither occupies capacity nor poisons later retries.
  try {
    std::call_once(slot->once, [&] {
      auto record = std::make_shared<GoldenRecord>(compute());
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.golden_runs;
      slot->record = std::move(record);
      slot->done = true;
    });
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    // Drop the failed key — unless a promoted waiter has meanwhile
    // completed the run successfully (call_once hands the callable to the
    // next blocked caller), in which case the slot now holds a valid
    // record that must stay cached.
    if (it != entries_.end() && it->second.slot == slot && !slot->done) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    throw;
  }
  WP_CHECK(slot->record != nullptr, "golden compute left no record");
  return slot->record;
}

GoldenCache::Stats GoldenCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void GoldenCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace wp::sim
