#include "sim/golden_cache.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::sim {

namespace {

/// Obs mirror of GoldenCache::Stats: bumped at the same sites, so the
/// registry (and a daemon stats scrape) sees cache behaviour without
/// anyone holding a GoldenCache reference. Aggregated across instances.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& golden_runs;
  obs::Counter& disk_hits;
  obs::Counter& disk_stores;

  static CacheMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static CacheMetrics metrics{
        registry.counter("sim/golden_cache/hits"),
        registry.counter("sim/golden_cache/misses"),
        registry.counter("sim/golden_cache/evictions"),
        registry.counter("sim/golden_cache/golden_runs"),
        registry.counter("sim/golden_cache/disk_hits"),
        registry.counter("sim/golden_cache/disk_stores")};
    return metrics;
  }
};

// ---------------------------------------------------- on-disk record format
//
//   [8B magic][payload][8B FNV-1a checksum of payload]
//
// The payload is a flat little-ceremony byte stream (u32/u64 in host order
// — the persist dir is a local cache, not an interchange format): the full
// cache key, then every GoldenRecord field, the trace as (name, values[])
// streams. Readers are bounds-checked; any violation, a checksum mismatch,
// a foreign key or a fingerprint that does not match the stored trace all
// make the loader return nullptr so the caller recomputes (and overwrites
// the bad file).
//
// Version 02 adds the trace mode byte: prefix-hash records store the
// windowed TraceDigest instead of the full trace, so on-disk goldens of
// huge traces shrink from 8 bytes per value to 8 bytes per window. '01'
// files (full traces, no mode byte) are still readable.

constexpr char kMagic[8] = {'W', 'P', 'G', 'O', 'L', 'D', '0', '1'};
constexpr char kMagicV2[8] = {'W', 'P', 'G', 'O', 'L', 'D', '0', '2'};

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked sequential reader over the payload; every getter fails
/// soft by flipping `ok`.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || size - pos < n) {
      ok = false;
      return {};
    }
    std::string s(data + pos, n);
    pos += n;
    return s;
  }
};

std::string serialize_payload(const GoldenRecord& record,
                              const std::string& key) {
  std::string out;
  put_string(out, key);
  put_u64(out, record.cycles);
  put_u32(out, record.halted ? 1 : 0);
  put_u32(out, record.result_ok ? 1 : 0);
  put_string(out, record.result_detail);
  put_u64(out, record.fingerprint);
  put_u32(out, static_cast<std::uint32_t>(record.trace_mode));
  if (record.trace_mode == TraceMode::kFull) {
    put_u32(out, static_cast<std::uint32_t>(record.trace.size()));
    for (const auto& [stream, values] : record.trace) {
      put_string(out, stream);
      put_u32(out, static_cast<std::uint32_t>(values.size()));
      for (const Word v : values) put_u64(out, v);
    }
  } else {
    put_u64(out, record.digest.window);
    put_u32(out, static_cast<std::uint32_t>(record.digest.streams.size()));
    for (const auto& stream : record.digest.streams) {
      put_string(out, stream.name);
      put_u64(out, stream.count);
      put_u32(out, static_cast<std::uint32_t>(stream.checkpoints.size()));
      for (const std::uint64_t h : stream.checkpoints) put_u64(out, h);
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------- trace digest (prefix)

TraceDigest make_trace_digest(const Trace& trace, std::uint64_t window) {
  WP_REQUIRE(window >= 1, "digest window must be >= 1");
  TraceDigest digest;
  digest.window = window;
  for (const auto& [name, values] : trace) {
    TraceDigest::Stream stream;
    stream.name = name;
    stream.count = values.size();
    std::uint64_t h = 0x5afe601dULL;
    for (std::size_t k = 0; k < values.size(); ++k) {
      h = hash_combine(h, values[k]);
      if ((k + 1) % window == 0 || k + 1 == values.size())
        stream.checkpoints.push_back(h);
    }
    digest.streams.push_back(std::move(stream));
  }
  return digest;
}

EquivalenceResult check_equivalence_digest(const TraceDigest& digest,
                                           const Trace& wp) {
  EquivalenceResult result;
  WP_REQUIRE(digest.window >= 1, "digest window must be >= 1");
  for (const auto& stream : digest.streams) {
    auto it = wp.find(stream.name);
    if (it == wp.end()) continue;  // stream not observed in the WP run
    const auto& wp_values = it->second;
    const std::uint64_t n =
        std::min<std::uint64_t>(stream.count, wp_values.size());
    // Replay the WP values through the same rolling hash, comparing at
    // every golden checkpoint position that lies within the shared prefix.
    std::uint64_t h = 0x5afe601dULL;
    std::size_t ci = 0;
    std::uint64_t covered = 0;
    for (std::uint64_t k = 0; k < n && ci < stream.checkpoints.size(); ++k) {
      h = hash_combine(h, wp_values[k]);
      const std::uint64_t position =
          std::min<std::uint64_t>((ci + 1) * digest.window, stream.count);
      if (k + 1 == position) {
        if (h != stream.checkpoints[ci]) {
          result.equivalent = false;
          std::ostringstream os;
          os << "stream " << stream.name
             << " diverges within the first " << position
             << " events (prefix-hash window " << digest.window << ")";
          result.detail = os.str();
          return result;
        }
        covered = position;
        ++ci;
      }
    }
    result.events_checked += covered;
  }
  return result;
}

EquivalenceResult check_golden_equivalence(const GoldenRecord& record,
                                           const Trace& wp) {
  return record.trace_mode == TraceMode::kFull
             ? check_equivalence(record.trace, wp)
             : check_equivalence_digest(record.digest, wp);
}

bool save_golden_record(const GoldenRecord& record, const std::string& key,
                        const std::string& path) {
  const std::string payload = serialize_payload(record, key);
  // Write-to-temp + rename: the store is shared across processes (CI
  // shards racing on a cold key both write), and an in-place truncate
  // would interleave two streams into a permanently corrupt file. The
  // rename makes whichever writer lands last win atomically; readers see
  // either a complete old record or a complete new one. The temp name is
  // per-process, so concurrent writers do not clobber each other's
  // staging files either.
  std::error_code ec;
#ifdef _WIN32
  const auto pid = static_cast<std::uint64_t>(_getpid());
#else
  const auto pid = static_cast<std::uint64_t>(getpid());
#endif
  // pid ⊕ thread id: unique across the racing processes AND the racing
  // pool workers within one process (addresses or thread ids alone can
  // coincide across identical binaries).
  const auto tag = hash_combine(
      pid, static_cast<std::uint64_t>(
               std::hash<std::thread::id>{}(std::this_thread::get_id())));
  const std::string tmp = path + ".tmp." + hash_hex(tag);
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file.write(kMagicV2, sizeof kMagicV2);
    file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::uint64_t checksum = hash_bytes(payload.data(), payload.size());
    file.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
    if (!file.flush()) {
      file.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::shared_ptr<const GoldenRecord> load_golden_record(
    const std::string& path, const std::string& key) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return nullptr;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  if (bytes.size() < sizeof kMagic + sizeof(std::uint64_t)) return nullptr;
  const bool v2 = std::memcmp(bytes.data(), kMagicV2, sizeof kMagicV2) == 0;
  if (!v2 && std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    return nullptr;

  const char* payload = bytes.data() + sizeof kMagic;
  const std::size_t payload_size =
      bytes.size() - sizeof kMagic - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - sizeof stored_checksum,
              sizeof stored_checksum);
  if (hash_bytes(payload, payload_size) != stored_checksum) return nullptr;

  Reader in{payload, payload_size};
  if (in.str() != key) return nullptr;  // foreign or renamed record
  auto record = std::make_shared<GoldenRecord>();
  record->cycles = in.u64();
  record->halted = in.u32() != 0;
  record->result_ok = in.u32() != 0;
  record->result_detail = in.str();
  record->fingerprint = in.u64();
  if (v2) {
    const std::uint32_t mode = in.u32();
    if (!in.ok || mode > static_cast<std::uint32_t>(TraceMode::kPrefixHash))
      return nullptr;
    record->trace_mode = static_cast<TraceMode>(mode);
  }
  if (record->trace_mode == TraceMode::kFull) {
    const std::uint32_t streams = in.u32();
    for (std::uint32_t i = 0; in.ok && i < streams; ++i) {
      std::string stream = in.str();
      const std::uint32_t count = in.u32();
      if (!in.ok ||
          (in.size - in.pos) / sizeof(std::uint64_t) < count)
        return nullptr;
      auto& values = record->trace[std::move(stream)];
      values.reserve(count);
      for (std::uint32_t v = 0; v < count; ++v) values.push_back(in.u64());
    }
    if (!in.ok || in.pos != in.size) return nullptr;
    // Cross-check the stored fingerprint against the stored trace: a
    // record whose two halves disagree is corrupt even if the checksum
    // matched.
    if (trace_fingerprint(record->trace) != record->fingerprint)
      return nullptr;
  } else {
    record->digest.window = in.u64();
    if (!in.ok || record->digest.window == 0) return nullptr;
    const std::uint32_t streams = in.u32();
    for (std::uint32_t i = 0; in.ok && i < streams; ++i) {
      TraceDigest::Stream stream;
      stream.name = in.str();
      stream.count = in.u64();
      const std::uint32_t checkpoints = in.u32();
      if (!in.ok ||
          (in.size - in.pos) / sizeof(std::uint64_t) < checkpoints)
        return nullptr;
      // The checkpoint count is implied by (count, window); a stored
      // record whose halves disagree is corrupt.
      const std::uint64_t expected =
          stream.count == 0
              ? 0
              : (stream.count + record->digest.window - 1) /
                    record->digest.window;
      if (checkpoints != expected) return nullptr;
      stream.checkpoints.reserve(checkpoints);
      for (std::uint32_t c = 0; c < checkpoints; ++c)
        stream.checkpoints.push_back(in.u64());
      record->digest.streams.push_back(std::move(stream));
    }
    if (!in.ok || in.pos != in.size) return nullptr;
  }
  return record;
}

std::uint64_t trace_fingerprint(const Trace& trace) {
  std::uint64_t h = 0x5afe601dULL;
  for (const auto& [stream, values] : trace) {
    h = hash_combine(h, hash_string(stream));
    h = hash_combine(h, values.size());
    for (const Word v : values) h = hash_combine(h, v);
  }
  return h;
}

GoldenCache::GoldenCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

void GoldenCache::set_persist_dir(std::string dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
  }
  std::lock_guard<std::mutex> lock(mutex_);
  persist_dir_ = std::move(dir);
}

std::string GoldenCache::persist_path(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (persist_dir_.empty()) return {};
  // Content-hashed filename: keys contain ':' and arbitrary program names;
  // the full key is stored (and verified) inside the file.
  return (std::filesystem::path(persist_dir_) /
          (hash_hex(hash_string(key)) + ".wpgolden"))
      .string();
}

std::shared_ptr<const GoldenRecord> GoldenCache::get_or_run(
    const std::string& key, const ComputeFn& compute) {
  WP_REQUIRE(compute != nullptr, "GoldenCache needs a compute function");
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      CacheMetrics::get().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // mark recent
      slot = it->second.slot;
    } else {
      ++stats_.misses;
      CacheMetrics::get().misses.inc();
      lru_.push_front(key);
      slot = std::make_shared<Slot>();
      entries_[key] = Entry{slot, lru_.begin()};
      if (max_entries_ > 0 && entries_.size() > max_entries_) {
        // Evict the least-recently-used *finished* entry; in-flight runs
        // must stay mapped so racing callers join them instead of
        // duplicating the simulation (the cap is soft under contention).
        for (auto it = std::prev(lru_.end());; --it) {
          auto entry = entries_.find(*it);
          if (entry->second.slot->done) {
            entries_.erase(entry);
            lru_.erase(it);
            ++stats_.evictions;
            CacheMetrics::get().evictions.inc();
            break;
          }
          if (it == lru_.begin()) break;
        }
      }
    }
  }
  // Outside the lock: the first caller simulates, concurrent callers of the
  // same key block here on the in-flight run (call_once), other keys
  // proceed independently. If compute throws, the once_flag stays unset:
  // call_once turns each blocked waiter into the next runner (so a
  // deterministic failure re-throws per caller — acceptable, failures are
  // configuration errors), and the entry is dropped from the map below so
  // a failing key neither occupies capacity nor poisons later retries.
  try {
    std::call_once(slot->once, [&] {
      // Persistent layer first: a stored record (this process or an
      // earlier one) replaces the simulation. Corrupt or foreign files
      // load as nullptr and are recomputed (and overwritten) below.
      const std::string path = persist_path(key);
      std::shared_ptr<const GoldenRecord> record;
      if (!path.empty()) record = load_golden_record(path, key);
      const bool from_disk = record != nullptr;
      bool stored = false;
      if (!from_disk) {
        WP_SPAN("sim/golden_run");
        record = std::make_shared<GoldenRecord>(compute());
        if (!path.empty()) stored = save_golden_record(*record, key, path);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (from_disk) {
        ++stats_.disk_hits;
        CacheMetrics::get().disk_hits.inc();
      } else {
        ++stats_.golden_runs;
        CacheMetrics::get().golden_runs.inc();
      }
      if (stored) {
        ++stats_.disk_stores;
        CacheMetrics::get().disk_stores.inc();
      }
      slot->record = std::move(record);
      slot->done = true;
    });
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    // Drop the failed key — unless a promoted waiter has meanwhile
    // completed the run successfully (call_once hands the callable to the
    // next blocked caller), in which case the slot now holds a valid
    // record that must stay cached.
    if (it != entries_.end() && it->second.slot == slot && !slot->done) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    throw;
  }
  WP_CHECK(slot->record != nullptr, "golden compute left no record");
  return slot->record;
}

GoldenCache::Stats GoldenCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void GoldenCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

}  // namespace wp::sim
