// The golden-run cache at the heart of the simulation oracle.
//
// Every WP1/WP2 evaluation in the repo — a Table-1 row, an optimizer
// candidate, a sweep point, an ensemble sample — is *relative* to a golden
// reference run: throughput is golden_cycles / wp_cycles and equivalence is
// checked against the golden's τ-filtered trace. The golden run depends
// only on the (system, horizon) pair, never on the relay-station
// configuration under evaluation, so re-simulating it per evaluation is
// pure waste. GoldenCache memoizes it: the first caller of a key simulates
// (once-semantics — concurrent callers of the same key block on the one
// in-flight run instead of duplicating it), every later caller replays
// against the shared immutable record.
//
// Records are reference-counted: eviction (LRU, optional size cap) drops
// the cache's reference, while evaluations still holding the record keep
// using it safely. All methods are thread-safe; the compute function runs
// outside the cache lock, so long simulations never serialize unrelated
// keys.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/system.hpp"

namespace wp::sim {

/// Everything a WP evaluation needs from the golden reference run.
struct GoldenRecord {
  std::uint64_t cycles = 0;   ///< cycles simulated (halt cycle, or horizon)
  bool halted = false;        ///< did a process halt within the horizon?
  Trace trace;                ///< τ-filtered execution trace
  std::uint64_t fingerprint = 0;  ///< order-sensitive digest of `trace`
  bool result_ok = true;      ///< final-memory verdict (program runs only)
  std::string result_detail;  ///< first verification failure, if any
};

/// Order-sensitive digest of a τ-filtered trace (stream names + values).
std::uint64_t trace_fingerprint(const Trace& trace);

class GoldenCache {
 public:
  /// `max_entries` caps the number of cached records (LRU eviction);
  /// 0 = unbounded. The cap is soft while runs are in flight: an entry
  /// whose golden is still computing is never evicted (evicting it would
  /// let a racing caller start a duplicate run of the same key).
  explicit GoldenCache(std::size_t max_entries = 0);

  using ComputeFn = std::function<GoldenRecord()>;

  /// Returns the record for `key`, running `compute` exactly once per key
  /// across all threads (waiters block on the in-flight run). Failure path
  /// (std::call_once semantics): a throwing compute propagates to its
  /// caller, each blocked waiter then retries the compute in turn — a
  /// deterministic failure therefore throws once per waiting caller — and
  /// the key is dropped from the map, so failed keys neither occupy
  /// capacity nor poison later retries. Once-semantics is only guaranteed
  /// for the success path.
  std::shared_ptr<const GoldenRecord> get_or_run(const std::string& key,
                                                 const ComputeFn& compute);

  struct Stats {
    std::uint64_t hits = 0;         ///< evaluations served from the cache
    std::uint64_t misses = 0;       ///< evaluations that created a slot
    std::uint64_t golden_runs = 0;  ///< compute() invocations that finished
    std::uint64_t evictions = 0;    ///< records dropped by the size cap
    std::size_t entries = 0;        ///< records currently cached
  };
  Stats stats() const;

  /// Drops every cached record (stat counters are kept).
  void clear();

  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const GoldenRecord> record;
    bool done = false;  ///< set under the cache mutex when compute finished
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  /// Most-recently-used key at the front; LRU eviction pops the back.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<Slot> slot;
    std::list<std::string>::iterator lru_pos;
  };
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace wp::sim
