// The golden-run cache at the heart of the simulation oracle.
//
// Every WP1/WP2 evaluation in the repo — a Table-1 row, an optimizer
// candidate, a sweep point, an ensemble sample — is *relative* to a golden
// reference run: throughput is golden_cycles / wp_cycles and equivalence is
// checked against the golden's τ-filtered trace. The golden run depends
// only on the (system, horizon) pair, never on the relay-station
// configuration under evaluation, so re-simulating it per evaluation is
// pure waste. GoldenCache memoizes it: the first caller of a key simulates
// (once-semantics — concurrent callers of the same key block on the one
// in-flight run instead of duplicating it), every later caller replays
// against the shared immutable record.
//
// Records are reference-counted: eviction (LRU, optional size cap) drops
// the cache's reference, while evaluations still holding the record keep
// using it safely. All methods are thread-safe; the compute function runs
// outside the cache lock, so long simulations never serialize unrelated
// keys.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace wp::sim {

/// How a golden record keeps its τ-filtered trace.
enum class TraceMode : std::uint8_t {
  kFull = 0,        ///< the whole trace is resident (exact equivalence)
  kPrefixHash = 1,  ///< only windowed prefix hashes are kept (see below)
};

/// Windowed prefix-hash digest of a trace (ROADMAP, PR 5 leftover):
/// instead of keeping every value of every stream resident, keep — per
/// stream — the value count plus a rolling order-sensitive hash sampled
/// every `window` values and at the end of the stream. Equivalence against
/// a WP trace is then checked at window granularity: the WP side replays
/// its own values through the same rolling hash and compares at each
/// checkpoint position. Exactly as strong as the full check at checkpoint
/// positions; a divergence inside the final partial window of a WP run
/// *shorter* than the golden stream is the one case it cannot see (a WP
/// run at least as long as the golden is fully covered, because the final
/// checkpoint lands on the golden stream's last value). Memory per stream
/// drops from 8 bytes per value to 8 bytes per window.
struct TraceDigest {
  struct Stream {
    std::string name;
    std::uint64_t count = 0;  ///< values in the golden stream
    /// Rolling hash after value min(k * window, count), k = 1, 2, ...;
    /// the last entry always covers the whole stream.
    std::vector<std::uint64_t> checkpoints;
  };
  std::uint64_t window = 0;     ///< checkpoint interval (values)
  std::vector<Stream> streams;  ///< sorted by name (Trace is a std::map)
};

/// Builds the windowed digest of `trace`. `window` must be >= 1.
TraceDigest make_trace_digest(const Trace& trace, std::uint64_t window);

/// The prefix-hash counterpart of wp::check_equivalence: compares `wp`
/// against the digest at checkpoint granularity. `events_checked` counts
/// values covered by a compared checkpoint; `detail` reports the window in
/// which the first divergence was detected.
EquivalenceResult check_equivalence_digest(const TraceDigest& digest,
                                           const Trace& wp);

/// Everything a WP evaluation needs from the golden reference run.
struct GoldenRecord {
  std::uint64_t cycles = 0;   ///< cycles simulated (halt cycle, or horizon)
  bool halted = false;        ///< did a process halt within the horizon?
  TraceMode trace_mode = TraceMode::kFull;
  Trace trace;                ///< τ-filtered execution trace (kFull only)
  TraceDigest digest;         ///< windowed prefix hashes (kPrefixHash only)
  std::uint64_t fingerprint = 0;  ///< order-sensitive digest of the trace
  bool result_ok = true;      ///< final-memory verdict (program runs only)
  std::string result_detail;  ///< first verification failure, if any
};

/// Dispatches on record.trace_mode: the exact full-trace check, or the
/// windowed digest check for records whose trace was dropped.
EquivalenceResult check_golden_equivalence(const GoldenRecord& record,
                                           const Trace& wp);

/// Order-sensitive digest of a τ-filtered trace (stream names + values).
std::uint64_t trace_fingerprint(const Trace& trace);

/// Serializes a golden record (with the cache key it belongs to) into the
/// file at `path` — a small binary format with a magic header and a
/// whole-payload checksum. Returns false on IO failure (best-effort: the
/// persistent layer degrades to in-memory behavior).
bool save_golden_record(const GoldenRecord& record, const std::string& key,
                        const std::string& path);

/// Loads a record previously written by save_golden_record. Returns
/// nullptr — never throws — when the file is missing, truncated, fails the
/// checksum, was written for a different key, or its trace does not match
/// its stored fingerprint; corrupt files are simply recomputed over.
std::shared_ptr<const GoldenRecord> load_golden_record(
    const std::string& path, const std::string& key);

class GoldenCache {
 public:
  /// `max_entries` caps the number of cached records (LRU eviction);
  /// 0 = unbounded. The cap is soft while runs are in flight: an entry
  /// whose golden is still computing is never evicted (evicting it would
  /// let a racing caller start a duplicate run of the same key).
  explicit GoldenCache(std::size_t max_entries = 0);

  using ComputeFn = std::function<GoldenRecord()>;

  /// Returns the record for `key`, running `compute` exactly once per key
  /// across all threads (waiters block on the in-flight run). Failure path
  /// (std::call_once semantics): a throwing compute propagates to its
  /// caller, each blocked waiter then retries the compute in turn — a
  /// deterministic failure therefore throws once per waiting caller — and
  /// the key is dropped from the map, so failed keys neither occupy
  /// capacity nor poison later retries. Once-semantics is only guaranteed
  /// for the success path.
  std::shared_ptr<const GoldenRecord> get_or_run(const std::string& key,
                                                 const ComputeFn& compute);

  /// Opt-in persistent layer (ROADMAP: reuse golden records across
  /// processes and CI shards). When a directory is set, the first caller
  /// of a key probes `dir` before simulating — files are named by a
  /// content hash of the key — and every freshly computed record is
  /// written back, so a later process (or an entry evicted by the LRU cap)
  /// replays the stored golden instead of re-simulating. Probing and
  /// storing happen inside the key's once-slot, off the cache lock, so
  /// disk IO never serializes unrelated keys. An empty dir disables the
  /// layer. Creates the directory (best effort).
  void set_persist_dir(std::string dir);

  /// The on-disk path a key persists to; empty when persistence is off.
  /// Exposed for the corruption-tolerance tests.
  std::string persist_path(const std::string& key) const;

  struct Stats {
    std::uint64_t hits = 0;         ///< evaluations served from the cache
    std::uint64_t misses = 0;       ///< evaluations that created a slot
    std::uint64_t golden_runs = 0;  ///< compute() invocations that finished
    std::uint64_t evictions = 0;    ///< records dropped by the size cap
    std::size_t entries = 0;        ///< records currently cached
    std::uint64_t disk_hits = 0;    ///< golden runs avoided via stored records
    std::uint64_t disk_stores = 0;  ///< records written to the persist dir
  };
  Stats stats() const;

  /// Drops every cached record (stat counters are kept).
  void clear();

  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const GoldenRecord> record;
    bool done = false;  ///< set under the cache mutex when compute finished
  };

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::string persist_dir_;  ///< empty = persistence off
  /// Most-recently-used key at the front; LRU eviction pops the back.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<Slot> slot;
    std::list<std::string>::iterator lru_pos;
  };
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace wp::sim
