#include "sim/netlist_sim.hpp"

#include <limits>

#include "core/netlist_text.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::sim {

NetlistSimResult simulate_netlist(const std::string& netlist,
                                  const std::map<std::string, int>& rs,
                                  const NetlistSimOptions& options,
                                  GoldenCache* cache) {
  WP_REQUIRE(options.golden_cycles > 0 && options.wp_cycles > 0,
             "simulation horizons must be positive");
  NetlistSimResult result;
  auto note = [&result](const std::string& msg) {
    if (result.detail.empty()) result.detail = msg;
  };

  const auto compute = [&]() {
    const ParsedSystem parsed = parse_system(netlist, default_registry());
    GoldenSim golden(parsed.spec, /*record_trace=*/true);
    for (std::uint64_t c = 0; c < options.golden_cycles; ++c) golden.step();
    GoldenRecord record;
    record.cycles = options.golden_cycles;
    record.halted = golden.halted();
    record.trace = golden.trace();
    record.fingerprint = trace_fingerprint(record.trace);
    return record;
  };

  const std::string key =
      "netlist:" + hash_hex(hash_string(netlist)) + ":g" +
      std::to_string(options.golden_cycles);
  const std::shared_ptr<const GoldenRecord> golden_record =
      cache != nullptr
          ? cache->get_or_run(key, compute)
          : std::make_shared<const GoldenRecord>(compute());
  result.golden_fingerprint = golden_record->fingerprint;

  ParsedSystem parsed = parse_system(netlist, default_registry());
  parsed.spec.set_rs_map(rs);

  for (const bool oracle : {false, true}) {
    ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = options.fifo_capacity;
    LidSystem lid =
        build_lid(parsed.spec, shell, options.check_equivalence);
    for (std::uint64_t c = 0; c < options.wp_cycles; ++c)
      lid.network->step();

    std::uint64_t slowest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [name, sh] : lid.shells) {
      (void)name;
      slowest = std::min(slowest, sh->stats().firings);
    }
    const double th = static_cast<double>(slowest) /
                      static_cast<double>(options.wp_cycles);
    if (slowest == 0)
      note(std::string(oracle ? "WP2" : "WP1") + " made no progress");

    bool equivalent = true;
    if (options.check_equivalence) {
      const auto eq = check_golden_equivalence(*golden_record, lid.trace);
      equivalent = eq.equivalent;
      if (!eq.equivalent)
        note(std::string(oracle ? "WP2" : "WP1") +
             " not equivalent to golden: " + eq.detail);
    }

    if (oracle) {
      result.th_wp2 = th;
      result.wp2_firings = slowest;
      result.wp2_equivalent = equivalent;
    } else {
      result.th_wp1 = th;
      result.wp1_firings = slowest;
      result.wp1_equivalent = equivalent;
    }
  }
  return result;
}

}  // namespace wp::sim
