// Golden/WP1/WP2 simulation of a netlist-language system (the generated
// `randommoore` ensembles' opt-in simulated-throughput path).
//
// Generated systems never halt, so the measurement is horizon-based: the
// golden reference runs `golden_cycles` cycles (every process fires every
// cycle — throughput 1 by construction) and each wire-pipelined variant
// runs `wp_cycles` cycles under the supplied relay-station map. Simulated
// throughput is the slowest shell's sustained firing rate, directly
// comparable to the static m/(m+n) min-cycle-ratio bound; equivalence is
// the usual τ-filtered prefix check against the golden trace.
//
// The golden run is keyed by (netlist text, horizon) in a GoldenCache —
// relay stations don't exist in the golden system, so one cached record
// serves the WP1 evaluation, the WP2 evaluation, their equivalence checks
// and any repeat evaluation of the same sample.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/golden_cache.hpp"

namespace wp::sim {

struct NetlistSimOptions {
  std::uint64_t golden_cycles = 256;  ///< golden horizon (trace length)
  std::uint64_t wp_cycles = 1536;     ///< WP1/WP2 horizon
  std::size_t fifo_capacity = 16;
  bool check_equivalence = true;
};

struct NetlistSimResult {
  double th_wp1 = 0.0;  ///< min over shells of firings / wp_cycles
  double th_wp2 = 0.0;
  std::uint64_t wp1_firings = 0;  ///< slowest shell's firing count
  std::uint64_t wp2_firings = 0;
  bool wp1_equivalent = true;
  bool wp2_equivalent = true;
  std::uint64_t golden_fingerprint = 0;
  std::string detail;  ///< first failure (non-equivalence / deadlock)
};

/// Simulates the golden/WP1/WP2 triple of `netlist` under the per-connection
/// relay-station map `rs` (missing connections → 0, overriding any rs=
/// annotations in the text). `cache` may be nullptr (fresh golden run).
NetlistSimResult simulate_netlist(const std::string& netlist,
                                  const std::map<std::string, int>& rs,
                                  const NetlistSimOptions& options = {},
                                  GoldenCache* cache = nullptr);

}  // namespace wp::sim
