#include "sim/oracle.hpp"

#include "graph/cycle_ratio.hpp"
#include "proc/blocks.hpp"
#include "proc/cpu.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::sim {

namespace {

const proc::DcacheBlock& dcache_of(const wp::Process& p) {
  const auto* dc = dynamic_cast<const proc::DcacheBlock*>(&p);
  WP_CHECK(dc != nullptr, "DC process is not a DcacheBlock");
  return *dc;
}

/// Stable content key: program text+data and every CpuConfig knob that
/// shapes the golden run. Two independently constructed but identical
/// ProgramSpecs (same generator, same parameters) share one record — which
/// also means the cached final-memory verdict assumes ProgramSpec::verify
/// is a pure function of (source, ram), as every program generator's is.
std::string golden_key(const proc::ProgramSpec& program,
                       const proc::CpuConfig& cpu,
                       std::uint64_t max_cycles) {
  std::uint64_t h = hash_string(program.source);
  h = hash_combine(h, hash_bytes(program.ram.data(),
                                 program.ram.size() * sizeof(std::uint32_t)));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.multicycle));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.fetch_window));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.drain_firings));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.relax_squashed_fetches));
  h = hash_combine(h, max_cycles);
  return "cpu:" + program.name + ":" + hash_hex(h);
}

}  // namespace

SimOracle::SimOracle(std::size_t max_cached_goldens)
    : cache_(max_cached_goldens) {}

std::shared_ptr<const GoldenRecord> SimOracle::golden(
    const proc::ProgramSpec& program, const proc::CpuConfig& cpu,
    std::uint64_t max_cycles) {
  return cache_.get_or_run(golden_key(program, cpu, max_cycles), [&] {
    const wp::SystemSpec spec = proc::make_cpu_system(program, cpu);
    wp::GoldenSim sim(spec, /*record_trace=*/true);
    GoldenRecord record;
    record.cycles = sim.run_until_halt(max_cycles);
    record.halted = sim.halted();
    WP_CHECK(record.halted, "golden run did not halt — raise max_cycles");
    if (program.verify) {
      std::string error;
      if (!program.verify(dcache_of(sim.process("DC")).memory(), &error)) {
        record.result_ok = false;
        record.result_detail = "golden result check failed: " + error;
      }
    }
    record.trace = sim.trace();
    record.fingerprint = trace_fingerprint(record.trace);
    return record;
  });
}

proc::ExperimentRow SimOracle::run_experiment(
    const proc::ProgramSpec& program, const proc::CpuConfig& cpu,
    const proc::RsConfig& config, const proc::ExperimentOptions& options) {
  proc::ExperimentRow row;
  row.label = config.label;

  auto note = [&row](const std::string& msg) {
    if (row.detail.empty()) row.detail = msg;
  };

  // --- golden reference: one cached run per (program, cpu, horizon) -----
  const std::shared_ptr<const GoldenRecord> golden_record =
      golden(program, cpu, options.max_cycles);
  row.golden_cycles = golden_record->cycles;
  if (options.verify_result && !golden_record->result_ok) {
    row.result_ok = false;
    note(golden_record->result_detail);
  }

  // --- the two wire-pipelined systems: always simulated fresh -----------
  wp::SystemSpec spec = proc::make_cpu_system(program, cpu);
  spec.set_rs_map(config.rs);

  for (const bool oracle : {false, true}) {
    wp::ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = options.fifo_capacity;
    wp::LidSystem lid = build_lid(spec, shell, options.check_equivalence);
    const std::uint64_t cycles = lid.run_until_halt(options.max_cycles);
    const auto* cu = lid.shells.at("CU");
    if (!cu->halted()) {
      note(std::string(oracle ? "WP2" : "WP1") +
           " run did not halt within max_cycles");
    }
    if (options.check_equivalence) {
      const auto eq = check_equivalence(golden_record->trace, lid.trace);
      if (!eq.equivalent) {
        if (oracle)
          row.wp2_equivalent = false;
        else
          row.wp1_equivalent = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " not equivalent to golden: " + eq.detail);
      }
    }
    if (options.verify_result) {
      std::string error;
      if (!program.verify(dcache_of(lid.shells.at("DC")->process()).memory(),
                          &error)) {
        row.result_ok = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " result check failed: " + error);
      }
    }
    if (oracle)
      row.wp2_cycles = cycles;
    else
      row.wp1_cycles = cycles;
  }

  row.th_wp1 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp1_cycles);
  row.th_wp2 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp2_cycles);
  row.improvement = (row.th_wp2 - row.th_wp1) / row.th_wp1;
  row.static_wp1 =
      wp::graph::min_cycle_ratio_lawler(proc::make_cpu_graph_with_rs(config.rs))
          .ratio;
  return row;
}

double SimOracle::wp2_throughput(const proc::ProgramSpec& program,
                                 const proc::CpuConfig& cpu,
                                 const std::map<std::string, int>& rs,
                                 std::size_t fifo_capacity) {
  const std::uint64_t max_cycles = proc::ExperimentOptions{}.max_cycles;
  const std::shared_ptr<const GoldenRecord> golden_record =
      golden(program, cpu, max_cycles);
  wp::SystemSpec spec = proc::make_cpu_system(program, cpu);
  spec.set_rs_map(rs);
  wp::ShellOptions shell;
  shell.use_oracle = true;
  shell.fifo_capacity = fifo_capacity;
  wp::LidSystem lid = build_lid(spec, shell, false);
  const std::uint64_t cycles = lid.run_until_halt(max_cycles, /*grace=*/0);
  return static_cast<double>(golden_record->cycles) /
         static_cast<double>(cycles);
}

SimOracle& SimOracle::shared() {
  static SimOracle oracle;
  return oracle;
}

}  // namespace wp::sim
