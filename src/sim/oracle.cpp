#include "sim/oracle.hpp"

#include <cstdlib>

#include "graph/cycle_ratio.hpp"
#include "graph/throughput_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/blocks.hpp"
#include "proc/cpu.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::sim {

namespace {

const proc::DcacheBlock& dcache_of(const wp::Process& p) {
  const auto* dc = dynamic_cast<const proc::DcacheBlock*>(&p);
  WP_CHECK(dc != nullptr, "DC process is not a DcacheBlock");
  return *dc;
}

/// Stable content digest of program text+data and every CpuConfig knob
/// that shapes a run. Two independently constructed but identical
/// ProgramSpecs (same generator, same parameters) share one record — which
/// also means the cached final-memory verdict assumes ProgramSpec::verify
/// is a pure function of (source, ram), as every program generator's is.
std::uint64_t content_hash(const proc::ProgramSpec& program,
                           const proc::CpuConfig& cpu) {
  std::uint64_t h = hash_string(program.source);
  h = hash_combine(h, hash_bytes(program.ram.data(),
                                 program.ram.size() * sizeof(std::uint32_t)));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.multicycle));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.fetch_window));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.drain_firings));
  h = hash_combine(h, static_cast<std::uint64_t>(cpu.relax_squashed_fetches));
  return h;
}

std::string golden_key(const proc::ProgramSpec& program,
                       const proc::CpuConfig& cpu,
                       std::uint64_t max_cycles) {
  const std::uint64_t h = hash_combine(content_hash(program, cpu), max_cycles);
  return "cpu:" + program.name + ":" + hash_hex(h);
}

}  // namespace

OracleOptions OracleOptions::resolved() const {
  OracleOptions r = *this;
  if (r.persist_dir.empty() && r.use_env_persist) {
    if (const char* dir = std::getenv("WIREPIPE_GOLDEN_DIR"))
      r.persist_dir = dir;
  }
  if (r.use_env_trace_mode) {
    // WIREPIPE_GOLDEN_TRACE=prefix or prefix:<window>; "full" (or unset)
    // keeps exact traces.
    if (const char* mode = std::getenv("WIREPIPE_GOLDEN_TRACE")) {
      const std::string text = mode;
      if (text.rfind("prefix", 0) == 0) {
        r.trace_mode = TraceMode::kPrefixHash;
        const auto colon = text.find(':');
        if (colon != std::string::npos) {
          try {
            const unsigned long long window =
                std::stoull(text.substr(colon + 1));
            if (window >= 1) r.prefix_window = window;
          } catch (...) {
            // Unparseable window: keep the default rather than failing a
            // whole run over an env var typo.
          }
        }
      }
    }
  }
  if (r.prefix_window == 0) r.prefix_window = 1;
  return r;
}

SimOracle::SimOracle(std::size_t max_cached_goldens)
    : SimOracle([max_cached_goldens] {
        OracleOptions options;
        options.max_cached_goldens = max_cached_goldens;
        // The legacy size-only constructor keeps fully explicit behavior
        // for tests: no environment surprises.
        options.use_env_persist = false;
        options.use_env_trace_mode = false;
        return options;
      }()) {}

SimOracle::SimOracle(const OracleOptions& options)
    : options_(options.resolved()), cache_(options_.max_cached_goldens) {
  if (!options_.persist_dir.empty())
    cache_.set_persist_dir(options_.persist_dir);
}

std::shared_ptr<SimOracle> SimOracle::make_shared(
    const OracleOptions& options) {
  return std::make_shared<SimOracle>(options);
}

SimOracle::~SimOracle() {
  // Spec-cache stats mirror into the registry at teardown — one flush per
  // oracle; the lookup path stays a plain mutex-guarded map.
  obs::Registry& registry = obs::Registry::global();
  SpecStats stats;
  {
    std::lock_guard<std::mutex> lock(spec_mutex_);
    stats = spec_stats_;
  }
  registry.counter("sim/oracle/spec_builds").add(stats.builds);
  registry.counter("sim/oracle/spec_reuses").add(stats.reuses);
}

std::shared_ptr<const wp::SystemSpec> SimOracle::system_spec(
    const proc::ProgramSpec& program, const proc::CpuConfig& cpu) {
  const std::string key =
      program.name + ":" + hash_hex(content_hash(program, cpu));
  std::lock_guard<std::mutex> lock(spec_mutex_);
  auto it = specs_.find(key);
  if (it != specs_.end()) {
    ++spec_stats_.reuses;
    return it->second;
  }
  ++spec_stats_.builds;
  auto spec =
      std::make_shared<const wp::SystemSpec>(proc::make_cpu_system(program, cpu));
  specs_.emplace(key, spec);
  return spec;
}

double SimOracle::static_bound(const std::map<std::string, int>& rs) {
  std::lock_guard<std::mutex> lock(static_mutex_);
  if (static_engine_ == nullptr)
    static_engine_ =
        std::make_unique<graph::ThroughputEngine>(proc::make_cpu_graph());
  return static_engine_->with_rs_map(rs);
}

SimOracle::SpecStats SimOracle::spec_stats() const {
  std::lock_guard<std::mutex> lock(spec_mutex_);
  return spec_stats_;
}

std::shared_ptr<const GoldenRecord> SimOracle::golden(
    const proc::ProgramSpec& program, const proc::CpuConfig& cpu,
    std::uint64_t max_cycles) {
  return cache_.get_or_run(golden_key(program, cpu, max_cycles), [&] {
    const std::shared_ptr<const wp::SystemSpec> spec =
        system_spec(program, cpu);
    wp::GoldenSim sim(*spec, /*record_trace=*/true);
    GoldenRecord record;
    record.cycles = sim.run_until_halt(max_cycles);
    record.halted = sim.halted();
    WP_CHECK(record.halted, "golden run did not halt — raise max_cycles");
    if (program.verify) {
      std::string error;
      if (!program.verify(dcache_of(sim.process("DC")).memory(), &error)) {
        record.result_ok = false;
        record.result_detail = "golden result check failed: " + error;
      }
    }
    record.trace = sim.trace();
    record.fingerprint = trace_fingerprint(record.trace);
    if (options_.trace_mode == TraceMode::kPrefixHash) {
      // Digest-then-drop: the windowed prefix hashes replace the resident
      // trace (and shrink the persisted record); equivalence checks go
      // through check_golden_equivalence, which dispatches on the mode.
      record.trace_mode = TraceMode::kPrefixHash;
      record.digest = make_trace_digest(record.trace, options_.prefix_window);
      record.trace.clear();
    }
    return record;
  });
}

proc::ExperimentRow SimOracle::run_experiment(
    const proc::ProgramSpec& program, const proc::CpuConfig& cpu,
    const proc::RsConfig& config, const proc::ExperimentOptions& options) {
  WP_SPAN("sim/run_experiment");
  proc::ExperimentRow row;
  row.label = config.label;

  auto note = [&row](const std::string& msg) {
    if (row.detail.empty()) row.detail = msg;
  };

  // --- golden reference: one cached run per (program, cpu, horizon) -----
  const std::shared_ptr<const GoldenRecord> golden_record =
      golden(program, cpu, options.max_cycles);
  row.golden_cycles = golden_record->cycles;
  if (options.verify_result && !golden_record->result_ok) {
    row.result_ok = false;
    note(golden_record->result_detail);
  }

  // --- the two wire-pipelined systems: always simulated fresh (their
  // network state is per-run), but from the shared assembled declaration —
  wp::SystemSpec spec = *system_spec(program, cpu);
  spec.set_rs_map(config.rs);

  for (const bool oracle : {false, true}) {
    wp::ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = options.fifo_capacity;
    wp::LidSystem lid = build_lid(spec, shell, options.check_equivalence);
    const std::uint64_t cycles = lid.run_until_halt(options.max_cycles);
    const auto* cu = lid.shells.at("CU");
    if (!cu->halted()) {
      note(std::string(oracle ? "WP2" : "WP1") +
           " run did not halt within max_cycles");
    }
    if (options.check_equivalence) {
      const auto eq = check_golden_equivalence(*golden_record, lid.trace);
      if (!eq.equivalent) {
        if (oracle)
          row.wp2_equivalent = false;
        else
          row.wp1_equivalent = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " not equivalent to golden: " + eq.detail);
      }
    }
    if (options.verify_result) {
      std::string error;
      if (!program.verify(dcache_of(lid.shells.at("DC")->process()).memory(),
                          &error)) {
        row.result_ok = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " result check failed: " + error);
      }
    }
    if (oracle)
      row.wp2_cycles = cycles;
    else
      row.wp1_cycles = cycles;
  }

  row.th_wp1 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp1_cycles);
  row.th_wp2 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp2_cycles);
  row.improvement = (row.th_wp2 - row.th_wp1) / row.th_wp1;
  row.static_wp1 = static_bound(config.rs);
  return row;
}

double SimOracle::wp2_throughput(const proc::ProgramSpec& program,
                                 const proc::CpuConfig& cpu,
                                 const std::map<std::string, int>& rs,
                                 std::size_t fifo_capacity) {
  WP_SPAN("sim/wp2_throughput");
  const std::uint64_t max_cycles = proc::ExperimentOptions{}.max_cycles;
  const std::shared_ptr<const GoldenRecord> golden_record =
      golden(program, cpu, max_cycles);
  wp::SystemSpec spec = *system_spec(program, cpu);
  spec.set_rs_map(rs);
  wp::ShellOptions shell;
  shell.use_oracle = true;
  shell.fifo_capacity = fifo_capacity;
  wp::LidSystem lid = build_lid(spec, shell, false);
  const std::uint64_t cycles = lid.run_until_halt(max_cycles, /*grace=*/0);
  return static_cast<double>(golden_record->cycles) /
         static_cast<double>(cycles);
}

SimOracle& SimOracle::shared() {
  // The process-wide oracle rides the same factory configuration as every
  // other consumer: WIREPIPE_GOLDEN_DIR switches on persistent golden
  // records (CI shards, repeated bench runs, daemon fleets sharing a
  // store), WIREPIPE_GOLDEN_TRACE=prefix the trace-digest mode.
  static std::shared_ptr<SimOracle> oracle = make_shared();
  return *oracle;
}

}  // namespace wp::sim
