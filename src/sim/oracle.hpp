// SimOracle — the batched golden-run replay engine behind every simulated
// WP1/WP2 number in the repo.
//
// The pre-oracle pipeline re-simulated the golden reference for every
// evaluation: each Table-1 row, each of the ~100 candidates the exhaustive
// RS optimizer scores, each ParallelSweep point. All of those share the
// same golden run — it depends only on (program, cpu, horizon), never on
// the relay-station configuration under test. The oracle keys a
// GoldenCache on exactly that triple: the first evaluation simulates the
// golden once (cycle count, τ-filtered trace + fingerprint, final-memory
// verdict), every subsequent evaluation — trace-equivalence check included
// — replays against the shared cached record. Results are bit-identical to
// the fresh-golden path (the golden run is deterministic; the differential
// suite in tests/test_sim_oracle.cpp holds the two paths together).
//
// Thread-safety: evaluations may run concurrently on a ThreadPool; the
// cache guarantees per-key once-semantics, so a pooled sweep over one
// program runs its golden exactly once no matter how many workers race.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "proc/experiment.hpp"
#include "sim/golden_cache.hpp"

namespace wp::graph {
class ThroughputEngine;
}

namespace wp::sim {

/// The one place cache wiring is configured (LRU cap, persist dir, trace
/// mode). Every oracle consumer — the in-process shared() singleton, the
/// ensemble runner, the evaluation daemon — builds its oracle from this
/// struct via make_shared(), so benches and examples never wire a
/// GoldenCache by hand.
struct OracleOptions {
  /// LRU cap on cached golden records; 0 = unbounded. Full-trace records
  /// are large, so long-lived processes sweeping many programs keep a cap.
  std::size_t max_cached_goldens = 32;
  /// Persistent golden store directory. Empty + use_env_persist →
  /// $WIREPIPE_GOLDEN_DIR; empty with use_env_persist=false → in-memory
  /// only.
  std::string persist_dir;
  bool use_env_persist = true;
  /// kPrefixHash drops the full golden trace after digesting it into
  /// windowed prefix hashes (see sim::TraceDigest): equivalence checks on
  /// huge traces stop keeping the whole trace resident and on-disk golden
  /// files shrink accordingly. use_env_trace_mode lets
  /// WIREPIPE_GOLDEN_TRACE=prefix[:window] switch it on per process.
  TraceMode trace_mode = TraceMode::kFull;
  bool use_env_trace_mode = true;
  std::uint64_t prefix_window = 64;  ///< digest checkpoint interval

  /// The options after applying the environment overrides above.
  OracleOptions resolved() const;
};

class SimOracle {
 public:
  /// `max_cached_goldens` bounds the cache (LRU); 0 = unbounded. Golden
  /// records hold full traces, so long-lived processes sweeping many
  /// programs should keep a cap.
  explicit SimOracle(std::size_t max_cached_goldens = 32);
  explicit SimOracle(const OracleOptions& options);
  ~SimOracle();  ///< out-of-line: static_engine_'s type is incomplete here

  /// The factory every bench/example/daemon should use instead of wiring
  /// a GoldenCache directly: applies the environment overrides
  /// (WIREPIPE_GOLDEN_DIR, WIREPIPE_GOLDEN_TRACE) and returns a
  /// fully-configured oracle.
  static std::shared_ptr<SimOracle> make_shared(const OracleOptions& = {});

  SimOracle(const SimOracle&) = delete;
  SimOracle& operator=(const SimOracle&) = delete;

  /// The golden reference run for (program, cpu), simulated at most once
  /// per (program, cpu, max_cycles) key. Always records the τ-filtered
  /// trace and the final-memory verdict, so one record serves throughput,
  /// equivalence and verification consumers alike. The key hashes the
  /// program's source and data image — the cached verdict therefore
  /// requires ProgramSpec::verify to be a deterministic function of those
  /// (true of every generator in proc/programs.hpp).
  std::shared_ptr<const GoldenRecord> golden(const proc::ProgramSpec& program,
                                             const proc::CpuConfig& cpu,
                                             std::uint64_t max_cycles);

  /// The full experiment driver (one Table-1 row): WP1 and WP2 are
  /// simulated fresh, the golden side comes from the cache.
  proc::ExperimentRow run_experiment(const proc::ProgramSpec& program,
                                     const proc::CpuConfig& cpu,
                                     const proc::RsConfig& config,
                                     const proc::ExperimentOptions& options);

  /// The optimizer objective: simulated WP2 throughput of one RS map.
  /// Candidate evaluations after the first are golden-cache hits.
  double wp2_throughput(const proc::ProgramSpec& program,
                        const proc::CpuConfig& cpu,
                        const std::map<std::string, int>& rs,
                        std::size_t fifo_capacity = 16);

  /// The assembled SystemSpec of (program, cpu), built at most once per
  /// content key and shared across every evaluation that runs it — a sweep
  /// over one program assembles its source once, each point copies the
  /// immutable declaration and applies its own RS map, instead of
  /// re-running make_cpu_system per golden/WP1/WP2 build. Thread-safe.
  std::shared_ptr<const wp::SystemSpec> system_spec(
      const proc::ProgramSpec& program, const proc::CpuConfig& cpu);

  /// Static m/(m+n) bound (minimum cycle ratio) of an RS configuration,
  /// served by a process-shared graph::ThroughputEngine over the Fig.-1
  /// CPU graph: the graph is built once and each query mutates it in
  /// place, replacing the per-row fresh-graph + cold-Lawler solve. Exactly
  /// the same ratios (both are exact minimum cycle ratios). Mutex-guarded
  /// — the engine itself is single-threaded and the query is microseconds
  /// next to the simulations around it.
  double static_bound(const std::map<std::string, int>& rs);

  struct SpecStats {
    std::uint64_t builds = 0;  ///< make_cpu_system invocations
    std::uint64_t reuses = 0;  ///< evaluations served by a cached spec
  };
  SpecStats spec_stats() const;

  GoldenCache::Stats stats() const { return cache_.stats(); }
  GoldenCache& cache() { return cache_; }

  /// Process-wide oracle used by the proc::run_experiment /
  /// proc::simulate_wp2_throughput free functions, so every client in one
  /// process shares the same golden records by default.
  static SimOracle& shared();

 private:
  OracleOptions options_;  ///< resolved (env overrides applied)
  GoldenCache cache_;

  mutable std::mutex spec_mutex_;
  /// Content key → immutable assembled spec. Distinct (program, cpu)
  /// pairs are few per process (Table-1 programs), so no eviction.
  std::map<std::string, std::shared_ptr<const wp::SystemSpec>> specs_;
  SpecStats spec_stats_;

  std::mutex static_mutex_;
  std::unique_ptr<graph::ThroughputEngine> static_engine_;  ///< lazy
};

}  // namespace wp::sim
