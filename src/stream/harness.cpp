#include "stream/harness.hpp"

#include <functional>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::stream {

namespace {

constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;  // FNV offset

std::string fir_name(std::size_t branch, std::size_t stage) {
  return "FIR" + std::to_string(branch) + "_" + std::to_string(stage);
}
std::string gain_name(std::size_t b) { return "GAIN" + std::to_string(b); }
std::string qnt_name(std::size_t b) { return "QNT" + std::to_string(b); }
std::string agc_name(std::size_t b) { return "AGC" + std::to_string(b); }
std::string snk_name(std::size_t b) { return "SNK" + std::to_string(b); }

StreamConfig as_stream_config(const StreamGraphConfig& config) {
  StreamConfig sc;
  sc.samples = config.tokens;
  sc.agc_period = config.agc_period;
  sc.gain_period = config.gain_period;
  sc.agc_target = config.agc_target;
  sc.seed = config.seed;
  sc.fir = config.fir;
  sc.sink = config.sink;
  return sc;
}

/// Wraps a stage to time every fire() into a per-run histogram (exact for
/// this run's StageLoad) and, optionally, the process-global registry
/// histogram `stream/stage_fire_ns/<stage>` (cumulative, scrape-visible).
class TimedProcess final : public Process {
 public:
  TimedProcess(std::unique_ptr<Process> inner,
               std::shared_ptr<obs::Histogram> local,
               obs::Histogram* registry)
      : Process(inner->name()),
        inner_(std::move(inner)),
        local_(std::move(local)),
        registry_(registry) {
    for (const auto& port : inner_->inputs())
      add_input(port.name, port.reset_value);
    for (const auto& port : inner_->outputs())
      add_output(port.name, port.reset_value);
  }

  InputMask required(const PeekView& peek) const override {
    return inner_->required(peek);
  }

  void fire(const Word* in, Word* out) override {
    const std::uint64_t start = obs::now_ns();
    inner_->fire(in, out);
    const std::uint64_t elapsed = obs::now_ns() - start;
    local_->record(elapsed);
    if (registry_ != nullptr) registry_->record(elapsed);
  }

  void reset() override { inner_->reset(); }
  bool halted() const override { return inner_->halted(); }
  const Process& inner() const { return *inner_; }

 private:
  std::unique_ptr<Process> inner_;
  std::shared_ptr<obs::Histogram> local_;
  obs::Histogram* registry_;
};

/// Sees through the timing decorator (sinks are downcast to StreamSink).
const Process& unwrap(const Process& process) {
  if (const auto* timed = dynamic_cast<const TimedProcess*>(&process))
    return timed->inner();
  return process;
}

using StageWrap = std::function<std::unique_ptr<Process>(
    std::unique_ptr<Process>)>;

wp::SystemSpec build_graph(const StreamGraphConfig& config,
                           const StageWrap& wrap) {
  std::vector<Word> taps;
  taps.reserve(config.fir.size());
  for (double c : config.fir) taps.push_back(fix_from_double(c));
  const std::uint64_t gain_period =
      resolved_gain_period(as_stream_config(config));

  wp::SystemSpec spec;
  auto add = [&spec, &wrap](const std::string& name,
                            std::function<std::unique_ptr<Process>()> make) {
    if (wrap) {
      spec.add_process(name, [make = std::move(make), wrap]() {
        return wrap(make());
      });
    } else {
      spec.add_process(name, std::move(make));
    }
  };

  add("SRC", [config]() {
    return std::make_unique<SampleSource>("SRC", config.seed, 0);
  });
  for (std::size_t b = 0; b < config.branches; ++b) {
    for (std::size_t k = 0; k < config.fir_stages; ++k) {
      const std::string name = fir_name(b, k);
      add(name, [name, taps]() {
        return std::make_unique<FirFilter>(name, taps);
      });
    }
    const std::string gain = gain_name(b), qnt = qnt_name(b),
                      agc = agc_name(b), snk = snk_name(b);
    add(gain, [gain, gain_period]() {
      return std::make_unique<GainStage>(gain, gain_period);
    });
    add(qnt, [qnt]() { return std::make_unique<Quantizer>(qnt); });
    add(agc, [agc, config]() {
      return std::make_unique<AgcControl>(agc, config.agc_period,
                                          config.agc_target);
    });
    add(snk, [snk, config]() {
      return std::make_unique<StreamSink>(snk, config.tokens, config.sink);
    });

    spec.add_channel("SRC", "out", fir_name(b, 0), "in");
    for (std::size_t k = 0; k + 1 < config.fir_stages; ++k)
      spec.add_channel(fir_name(b, k), "out", fir_name(b, k + 1), "in");
    spec.add_channel(fir_name(b, config.fir_stages - 1), "out", gain,
                     "sample");
    spec.add_channel(gain, "out", qnt, "in");
    spec.add_channel(qnt, "out", snk, "in");
    spec.add_channel(qnt, "mag", agc, "mag");
    spec.add_channel(agc, "gain", gain, "gain");

    // Forward relay stations on the acyclic path only — the GAIN→QNT→AGC
    // links are inside the feedback loop, where extra stations would move
    // the K/(K+n) bound the harness certifies.
    if (config.forward_rs > 0) {
      spec.set_connection_rs("SRC-" + fir_name(b, 0), config.forward_rs);
      for (std::size_t k = 0; k + 1 < config.fir_stages; ++k)
        spec.set_connection_rs(fir_name(b, k) + "-" + fir_name(b, k + 1),
                               config.forward_rs);
      spec.set_connection_rs(fir_name(b, config.fir_stages - 1) + "-" + gain,
                             config.forward_rs);
      spec.set_connection_rs(qnt + "-" + snk, config.forward_rs);
    }
    if (config.feedback_rs > 0)
      spec.set_connection_rs(agc + "-" + gain, config.feedback_rs);
  }
  return spec;
}

/// Generous cycle budget: worst case is WP1 paying the full loop latency
/// (3 + feedback_rs)/3 cycles per token, plus pipeline fill, doubled.
std::uint64_t default_max_cycles(const StreamGraphConfig& config) {
  const std::uint64_t per_token =
      2 + (static_cast<std::uint64_t>(config.feedback_rs) + 2) / 3;
  const std::uint64_t fill =
      4 * (config.fir_stages + 4) *
      (static_cast<std::uint64_t>(config.forward_rs) + 4);
  return 4096 + fill + 2 * config.tokens * per_token;
}

struct StageTimers {
  std::vector<std::shared_ptr<obs::Histogram>> local;  // by stage index
};

void fill_latency(StageLoad& load, const obs::Histogram& histogram) {
  load.fire_count = histogram.count();
  load.fire_p50_ns = histogram.percentile(50);
  load.fire_p99_ns = histogram.percentile(99);
  load.fire_mean_ns = histogram.mean();
}

void flush_metrics(const HarnessResult& result) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("stream/runs").inc();
  registry.counter("stream/tokens/processed").add(result.tokens);
  registry.counter("stream/tokens/discarded").add(result.discarded_tokens);
  registry.counter("stream/cycles").add(result.cycles);
  registry.counter("stream/backpressure/input_stalls")
      .add(result.input_stalls);
  registry.counter("stream/backpressure/output_stalls")
      .add(result.output_stalls);
  registry.gauge("stream/last_run/tokens_per_sec")
      .set(static_cast<std::int64_t>(result.tokens_per_sec));
  for (const StageLoad& stage : result.stages) {
    registry.counter("stream/stage/" + stage.name + "/firings")
        .add(stage.firings);
    registry.counter("stream/stage/" + stage.name + "/input_stalls")
        .add(stage.input_stalls);
    registry.counter("stream/stage/" + stage.name + "/output_stalls")
        .add(stage.output_stalls);
  }
}

}  // namespace

std::size_t stage_count(const StreamGraphConfig& config) {
  return 1 + config.branches * (config.fir_stages + 4);
}

std::vector<std::string> stage_names(const StreamGraphConfig& config) {
  std::vector<std::string> names;
  names.reserve(stage_count(config));
  names.push_back("SRC");
  for (std::size_t b = 0; b < config.branches; ++b) {
    for (std::size_t k = 0; k < config.fir_stages; ++k)
      names.push_back(fir_name(b, k));
    names.push_back(gain_name(b));
    names.push_back(qnt_name(b));
    names.push_back(agc_name(b));
    names.push_back(snk_name(b));
  }
  return names;
}

std::vector<std::string> sink_names(const StreamGraphConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.branches);
  for (std::size_t b = 0; b < config.branches; ++b)
    names.push_back(snk_name(b));
  return names;
}

void validate_graph_config(const StreamGraphConfig& config) {
  WP_REQUIRE(config.tokens >= 1, "stream graph needs tokens >= 1");
  WP_REQUIRE(config.fir_stages >= 1 && config.fir_stages <= 256,
             "fir_stages must be in [1, 256]");
  WP_REQUIRE(config.branches >= 1 && config.branches <= 256,
             "branches must be in [1, 256]");
  WP_REQUIRE(config.feedback_rs >= 0 && config.forward_rs >= 0,
             "relay station counts must be non-negative");
  validate_stream_config(as_stream_config(config));
}

wp::SystemSpec make_stream_graph(const StreamGraphConfig& config) {
  validate_graph_config(config);
  return build_graph(config, StageWrap{});
}

const char* run_mode_name(RunMode mode) {
  switch (mode) {
    case RunMode::kGolden: return "golden";
    case RunMode::kWp1: return "wp1";
    case RunMode::kWp2: return "wp2";
  }
  return "unknown";
}

HarnessResult run_stream_graph(const StreamGraphConfig& config,
                               const HarnessOptions& options) {
  WP_SPAN("stream/run_graph");
  validate_graph_config(config);
  WP_REQUIRE(options.fifo_capacity >= 1, "FIFO capacity must be >= 1");

  const std::vector<std::string> names = stage_names(config);
  const std::vector<std::string> sinks = sink_names(config);
  const std::uint64_t max_cycles =
      options.max_cycles != 0 ? options.max_cycles
                              : default_max_cycles(config);

  // Per-run latency histograms (exact for this run's StageLoad) and, when
  // recording, the cumulative registry ones a daemon scrape exposes.
  StageTimers timers;
  StageWrap wrap;
  if (options.time_stages) {
    timers.local.reserve(names.size());
    std::vector<obs::Histogram*> registry_hists;
    for (const std::string& name : names) {
      timers.local.push_back(std::make_shared<obs::Histogram>());
      registry_hists.push_back(
          options.record_metrics
              ? &obs::Registry::global().histogram("stream/stage_fire_ns/" +
                                                   name)
              : nullptr);
    }
    // Stage index by construction order: build_graph adds processes in
    // exactly stage_names order, so a counter suffices.
    auto next = std::make_shared<std::size_t>(0);
    auto local = timers.local;
    wrap = [next, local, registry_hists](std::unique_ptr<Process> inner)
        -> std::unique_ptr<Process> {
      const std::size_t i = (*next)++ % local.size();
      return std::make_unique<TimedProcess>(std::move(inner), local[i],
                                            registry_hists[i]);
    };
  }

  const wp::SystemSpec spec = build_graph(config, wrap);

  HarnessResult result;
  result.mode = options.mode;
  result.sink_digests.reserve(sinks.size());
  result.sink_counts.reserve(sinks.size());

  const std::uint64_t wall_start = obs::now_ns();

  if (options.mode == RunMode::kGolden) {
    GoldenSim golden(spec, false);
    result.cycles = golden.run_until_halt(max_cycles);
    WP_ENSURE(golden.halted(),
              "stream harness exhausted its cycle budget before the sinks "
              "halted — raise max_cycles; refusing to report a truncated "
              "run");
    for (const std::string& name : names) {
      StageLoad load;
      load.name = name;
      load.firings = result.cycles;  // golden: every stage, every cycle
      result.stages.push_back(std::move(load));
    }
    for (const std::string& name : sinks) {
      const auto& sink =
          dynamic_cast<const StreamSink&>(unwrap(golden.process(name)));
      WP_ENSURE(sink.count() >= config.tokens,
                "golden sink halted short of its token limit");
      result.sink_digests.push_back(sink.digest());
      result.sink_counts.push_back(sink.count());
    }
  } else {
    ShellOptions shell;
    shell.use_oracle = options.mode == RunMode::kWp2;
    shell.fifo_capacity = options.fifo_capacity;
    LidSystem lid = build_lid(spec, shell, false);

    std::vector<Shell*> sink_shells;
    sink_shells.reserve(sinks.size());
    for (const std::string& name : sinks)
      sink_shells.push_back(lid.shells.at(name));

    std::uint64_t last_firings = 0;
    lid.network->arm_watchdog(
        [&lid, &last_firings]() {
          const std::uint64_t now = lid.total_firings();
          const bool progressed = now != last_firings;
          last_firings = now;
          return progressed;
        },
        /*window=*/100000);
    // Run until EVERY sink halted (run_until_halt stops at the first),
    // so each branch holds exactly `tokens` samples and digests compare.
    result.cycles = lid.network->run(max_cycles, [&sink_shells]() {
      for (const Shell* sink : sink_shells)
        if (!sink->halted()) return false;
      return true;
    });
    bool all_halted = true;
    for (const Shell* sink : sink_shells)
      all_halted = all_halted && sink->halted();
    WP_ENSURE(all_halted,
              "stream harness exhausted its cycle budget before every sink "
              "halted — raise max_cycles; refusing to report a truncated "
              "run");

    for (const std::string& name : names) {
      const Shell* shell_node = lid.shells.at(name);
      const ShellStats& stats = shell_node->stats();
      StageLoad load;
      load.name = name;
      load.firings = stats.firings;
      load.input_stalls = stats.stalls_input;
      load.output_stalls = stats.stalls_output;
      load.discarded_tokens = stats.discarded_tokens;
      result.input_stalls += stats.stalls_input;
      result.output_stalls += stats.stalls_output;
      result.discarded_tokens += stats.discarded_tokens;
      result.stages.push_back(std::move(load));
    }
    for (Shell* sink_shell : sink_shells) {
      const auto& sink =
          dynamic_cast<const StreamSink&>(unwrap(sink_shell->process()));
      WP_ENSURE(sink.count() == config.tokens,
                "sink halted with an unexpected sample count");
      result.sink_digests.push_back(sink.digest());
      result.sink_counts.push_back(sink.count());
    }
  }

  const std::uint64_t wall_ns = obs::now_ns() - wall_start;
  for (const std::uint64_t count : result.sink_counts)
    result.tokens += count;
  result.digest = kDigestSeed;
  for (const std::uint64_t digest : result.sink_digests)
    result.digest = hash_combine(result.digest, digest);
  result.wall_ms = static_cast<double>(wall_ns) / 1e6;
  result.tokens_per_sec =
      wall_ns == 0 ? 0.0
                   : static_cast<double>(result.tokens) * 1e9 /
                         static_cast<double>(wall_ns);

  if (options.time_stages) {
    for (std::size_t i = 0; i < result.stages.size() && i < timers.local.size();
         ++i)
      fill_latency(result.stages[i], *timers.local[i]);
  }
  if (options.record_metrics) flush_metrics(result);
  return result;
}

}  // namespace wp::stream
