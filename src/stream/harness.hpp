// The heavy-traffic streaming harness — ROADMAP's "millions of users"
// story for the only consumer-facing surface in the repo.
//
// Generalizes the fixed five-stage AGC pipeline of stream/stream.hpp into
// parameterized multi-stage graphs: a shared SampleSource fans out to
// `branches` parallel AGC pipelines, each with a chain of `fir_stages`
// FIR filters in front of its GAIN→QNT→SNK spine and its own AGC
// feedback loop:
//
//          ┌► FIR0_0 ─ … ─ FIR0_d ─► GAIN0 ─► QNT0 ─► SNK0
//   SRC ───┤                           ▲         │
//          │                           └─ AGC0 ◄─┘     (loop, m = 3)
//          └► FIR1_0 ─ …                               (branch 1, …)
//
// run_stream_graph pushes tokens through the golden, WP1 or WP2
// execution until EVERY sink halts (not the first — so each sink holds
// exactly `tokens` samples and digests are comparable across runs),
// measures tokens/sec, collects per-stage firing/backpressure counters
// and optional per-stage fire-latency histograms, and flushes everything
// into the src/obs metrics registry (`stream/tokens/*`,
// `stream/backpressure/*`, `stream/stage_fire_ns/<stage>`), which means a
// daemon serving stream evaluations exposes the same counters through its
// kStatsRequest scrape. Exhausting the cycle budget without every sink
// halting is a loud ContractViolation, never a silently truncated result.
//
// The harness is also the in-process half of the remote stream path:
// eval::StreamJob (RequestKind::kStreamRun) carries a StreamGraphConfig
// over the wire and the daemon runs this exact harness, so remote output
// is byte-identical to in-process by construction — verified by digest in
// the differential suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "stream/stream.hpp"

namespace wp::stream {

/// Shape and workload of a multi-stage stream graph.
struct StreamGraphConfig {
  std::uint64_t tokens = 100000;  ///< per-sink halt limit (> 0)
  std::size_t fir_stages = 1;     ///< FIR chain depth per branch (>= 1)
  std::size_t branches = 1;       ///< parallel AGC pipelines (>= 1)
  std::uint64_t agc_period = 16;  ///< gain update cadence K
  std::uint64_t gain_period = 0;  ///< 0 = agc_period; must equal agc_period
  double agc_target = 0.25;
  std::uint64_t seed = 7;
  std::vector<double> fir = {0.25, 0.5, 0.25};
  int feedback_rs = 0;  ///< relay stations on every AGC-GAIN loop link
  int forward_rs = 0;   ///< relay stations on every non-loop forward link
  SinkOptions sink;     ///< retention mode of every sink
};

/// Number of processes in the graph: 1 + branches * (fir_stages + 4).
std::size_t stage_count(const StreamGraphConfig& config);

/// Stage names, SRC first, then branch by branch in pipeline order.
std::vector<std::string> stage_names(const StreamGraphConfig& config);
/// "SNK<b>" for each branch.
std::vector<std::string> sink_names(const StreamGraphConfig& config);

/// Build-time validation (ContractViolation on the failing field): token
/// and shape bounds plus the stream-config checks, including the
/// gain/AGC cadence contract.
void validate_graph_config(const StreamGraphConfig& config);

/// Builds the graph; validates first. Feedback connections are named
/// "AGC<b>-GAIN<b>" (relay stations preset from feedback_rs), forward
/// ones "<from>-<to>" (preset from forward_rs).
wp::SystemSpec make_stream_graph(const StreamGraphConfig& config);

// --------------------------------------------------------------- running

enum class RunMode : std::uint8_t {
  kGolden = 0,  ///< fully synchronous reference
  kWp1 = 1,     ///< strict wrappers
  kWp2 = 2,     ///< oracle wrappers (the paper's amortized feedback)
};

const char* run_mode_name(RunMode mode);

/// Per-stage load figures of one LID run (golden runs have no shells and
/// report firings only).
struct StageLoad {
  std::string name;
  std::uint64_t firings = 0;
  std::uint64_t input_stalls = 0;   ///< cycles stalled waiting for tokens
  std::uint64_t output_stalls = 0;  ///< cycles stalled by back-pressure
  std::uint64_t discarded_tokens = 0;
  // Fire-latency octave percentiles (ns), when stage timing was on.
  std::uint64_t fire_count = 0;
  double fire_p50_ns = 0.0;
  double fire_p99_ns = 0.0;
  double fire_mean_ns = 0.0;
};

struct HarnessOptions {
  RunMode mode = RunMode::kWp2;
  std::size_t fifo_capacity = 16;
  /// Cycle budget; 0 derives a generous bound from the graph shape. If
  /// the budget is exhausted before every sink halts, the run FAILS with
  /// ContractViolation — a truncated run must never report a throughput.
  std::uint64_t max_cycles = 0;
  /// Wrap every stage in a fire-latency timer feeding
  /// `stream/stage_fire_ns/<stage>` histograms (per-stage p99 visibility;
  /// adds two clock reads per firing).
  bool time_stages = false;
  /// Flush token/backpressure counters into the obs registry after the
  /// run (one cold-path add per counter; the hot loop stays atomic-free).
  bool record_metrics = true;
};

struct HarnessResult {
  RunMode mode = RunMode::kWp2;
  std::uint64_t tokens = 0;  ///< total sink samples (tokens * branches)
  std::uint64_t cycles = 0;  ///< cycle at which the last sink halted
  double wall_ms = 0.0;
  double tokens_per_sec = 0.0;
  /// Order-sensitive digest over every sink's digest, branch order — the
  /// one word two runs must agree on to be byte-identical.
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> sink_digests;  ///< per branch
  std::vector<std::uint64_t> sink_counts;   ///< per branch
  std::vector<StageLoad> stages;
  // Backpressure totals across stages (0 for golden runs).
  std::uint64_t input_stalls = 0;
  std::uint64_t output_stalls = 0;
  std::uint64_t discarded_tokens = 0;
};

/// Builds and runs the graph in the requested mode. Deterministic for a
/// given (config, mode, fifo_capacity): every field of the result except
/// wall_ms / tokens_per_sec / fire-latency figures is bit-stable across
/// runs and processes.
HarnessResult run_stream_graph(const StreamGraphConfig& config,
                               const HarnessOptions& options);

}  // namespace wp::stream
