#include "stream/stream.hpp"

#include <algorithm>
#include <cmath>

#include "core/procs.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace wp::stream {

namespace {

constexpr std::size_t kGainInSample = 0;
constexpr std::size_t kGainInGain = 1;
constexpr Word kFreshBit = Word{1} << 63;
constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;  // FNV offset

std::int32_t as_signed(Word w) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(w));
}

Word as_word(std::int64_t v) {
  return static_cast<Word>(static_cast<std::uint32_t>(
      static_cast<std::int32_t>(std::clamp<std::int64_t>(
          v, std::numeric_limits<std::int32_t>::min(),
          std::numeric_limits<std::int32_t>::max()))));
}

}  // namespace

Word fix_from_double(double x) {
  // std::lround on NaN or a value outside long's range is undefined
  // behaviour; reject both before the conversion. The representable 16.16
  // range is [-32768, 32768) — anything outside it is a configuration bug
  // (a FIR tap or AGC target that cannot mean what it says), not a value
  // to clamp silently.
  WP_REQUIRE(std::isfinite(x), "fix_from_double: input must be finite");
  WP_REQUIRE(x >= -32768.0 && x < 32768.0,
             "fix_from_double: input outside the 16.16 range [-32768, 32768)");
  return as_word(static_cast<std::int64_t>(
      std::lround(x * static_cast<double>(kFixOne))));
}

double fix_to_double(Word w) {
  return static_cast<double>(as_signed(w)) /
         static_cast<double>(kFixOne);
}

Word fix_mul(Word a, Word b) {
  const std::int64_t product =
      static_cast<std::int64_t>(as_signed(a)) *
      static_cast<std::int64_t>(as_signed(b));
  return as_word(product >> 16);
}

// ---------------------------------------------------------------------------

SampleSource::SampleSource(std::string name, std::uint64_t seed,
                           std::uint64_t limit)
    : Process(std::move(name)), seed_(seed), limit_(limit) {
  add_output("out", 0);
}

void SampleSource::fire(const Word* /*in*/, Word* out) {
  // Two square waves under a slow envelope, plus bounded PRNG dither: a
  // deterministic signal with varying magnitude for the AGC to track.
  const std::int64_t envelope =
      ((t_ / 256) % 2 == 0) ? (kFixOne * 4 / 5) : (kFixOne * 3 / 10);
  std::int64_t s = 0;
  s += ((t_ / 7) % 2 == 0 ? 1 : -1) * (kFixOne * 3 / 10);
  s += ((t_ / 31) % 2 == 0 ? 1 : -1) * (kFixOne / 5);
  const std::int64_t dither =
      static_cast<std::int64_t>(hash_mix(t_ ^ seed_) % 2048) - 1024;
  s = ((s + dither) * envelope) >> 16;
  out[0] = as_word(s);
  ++t_;
}

void SampleSource::reset() { t_ = 0; }

bool SampleSource::halted() const { return limit_ != 0 && t_ >= limit_; }

// ---------------------------------------------------------------------------

FirFilter::FirFilter(std::string name, std::vector<Word> coefficients)
    : Process(std::move(name)), coefficients_(std::move(coefficients)) {
  WP_REQUIRE(!coefficients_.empty(), "FIR needs at least one tap");
  add_input("in", 0);
  add_output("out", 0);
  delay_line_.assign(coefficients_.size(), 0);
}

void FirFilter::fire(const Word* in, Word* out) {
  // Shift the delay line and convolve.
  for (std::size_t k = delay_line_.size(); k-- > 1;)
    delay_line_[k] = delay_line_[k - 1];
  delay_line_[0] = in[0];
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < coefficients_.size(); ++k)
    acc += static_cast<std::int64_t>(
        as_signed(fix_mul(delay_line_[k], coefficients_[k])));
  out[0] = as_word(acc);
}

void FirFilter::reset() {
  delay_line_.assign(coefficients_.size(), 0);
}

// ---------------------------------------------------------------------------

GainStage::GainStage(std::string name, std::uint64_t period)
    : Process(std::move(name)), period_(period) {
  WP_REQUIRE(period_ >= 1, "gain period must be >= 1");
  add_input("sample", 0);
  add_input("gain", static_cast<Word>(kFixOne));
  add_output("out", 0);
}

InputMask GainStage::required(const PeekView& /*peek*/) const {
  return reads_gain() ? 0b11u : 0b01u;
}

void GainStage::fire(const Word* in, Word* out) {
  if (reads_gain()) {
    const Word token = in[kGainInGain];
    WP_CHECK(AgcControl::fresh(token),
             "gain cadence mismatch between AGC and gain stage (GainStage "
             "and AgcControl periods differ — validate_stream_config at "
             "spec-build time catches this)");
    gain_ = token & ~kFreshBit;
  }
  out[0] = fix_mul(in[kGainInSample], gain_);
  ++firing_;
}

void GainStage::reset() {
  firing_ = 0;
  gain_ = static_cast<Word>(kFixOne);
}

// ---------------------------------------------------------------------------

Quantizer::Quantizer(std::string name) : Process(std::move(name)) {
  add_input("in", 0);
  add_output("out", 0);
  add_output("mag", 0);
}

void Quantizer::fire(const Word* in, Word* out) {
  const std::int32_t sample = as_signed(in[0]);
  // Clamp to a signed 12.16 range (the "ADC" headroom).
  constexpr std::int32_t kLimit = 2048 * kFixOne;
  const std::int32_t clamped = std::clamp(sample, -kLimit, kLimit);
  out[0] = as_word(clamped);
  out[1] = as_word(clamped < 0 ? -static_cast<std::int64_t>(clamped)
                               : clamped);
}

// ---------------------------------------------------------------------------

AgcControl::AgcControl(std::string name, std::uint64_t period, double target)
    : Process(std::move(name)),
      period_(period),
      target_(fix_from_double(target)) {
  WP_REQUIRE(period_ >= 1, "AGC period must be >= 1");
  WP_REQUIRE(target > 0, "AGC target must be positive");
  add_input("mag", 0);
  add_output("gain", static_cast<Word>(kFixOne));
}

void AgcControl::fire(const Word* in, Word* out) {
  accumulator_ += in[0] & 0xFFFFFFFFULL;
  ++phase_;
  if (phase_ == period_) {
    const std::uint64_t average = accumulator_ / period_;
    std::int64_t updated;
    if (average == 0) {
      updated = as_signed(gain_) * 2;
    } else {
      updated = static_cast<std::int64_t>(as_signed(gain_)) *
                static_cast<std::int64_t>(as_signed(target_)) /
                static_cast<std::int64_t>(average);
    }
    updated = std::clamp<std::int64_t>(updated, kFixOne / 16, kFixOne * 16);
    gain_ = static_cast<Word>(static_cast<std::uint32_t>(updated));
    accumulator_ = 0;
    phase_ = 0;
    out[0] = gain_ | kFreshBit;
  } else {
    out[0] = gain_;  // stale token: the gain stage is blind to it
  }
}

void AgcControl::reset() {
  phase_ = 0;
  accumulator_ = 0;
  gain_ = static_cast<Word>(kFixOne);
}

// ---------------------------------------------------------------------------

StreamSink::StreamSink(std::string name, std::uint64_t limit,
                       SinkOptions options)
    : Process(std::move(name)),
      options_(options),
      limit_(limit),
      digest_(kDigestSeed) {
  add_input("in", 0);
  if (options_.keep_samples) {
    // The halt limit bounds the retention exactly; reserving up front
    // keeps vector growth off the token path.
    if (limit_ > 0) samples_.reserve(static_cast<std::size_t>(limit_));
  } else if (options_.tail_window > 0) {
    tail_.assign(options_.tail_window, 0);
  }
}

void StreamSink::fire(const Word* in, Word* /*out*/) {
  const Word sample = in[0];
  ++count_;
  digest_ = hash_combine(digest_, sample);
  value_stats_.add(fix_to_double(sample));
  if (options_.keep_samples) {
    samples_.push_back(sample);
  } else if (options_.tail_window > 0) {
    tail_[tail_pos_] = sample;
    tail_pos_ = tail_pos_ + 1 == tail_.size() ? 0 : tail_pos_ + 1;
  }
}

void StreamSink::reset() {
  count_ = 0;
  digest_ = kDigestSeed;
  value_stats_ = RunningStats{};
  samples_.clear();
  tail_pos_ = 0;
  if (!options_.keep_samples && options_.tail_window > 0)
    tail_.assign(options_.tail_window, 0);
}

bool StreamSink::halted() const {
  return limit_ != 0 && count_ >= limit_;
}

const std::vector<Word>& StreamSink::samples() const {
  WP_REQUIRE(options_.keep_samples,
             "StreamSink::samples() requires keep_samples mode; stats-only "
             "sinks expose count()/digest()/tail()");
  return samples_;
}

std::vector<Word> StreamSink::tail() const {
  if (options_.keep_samples) {
    const std::size_t n =
        std::min<std::size_t>(options_.tail_window, samples_.size());
    return {samples_.end() - static_cast<std::ptrdiff_t>(n), samples_.end()};
  }
  const std::size_t n = std::min<std::uint64_t>(tail_.size(), count_);
  std::vector<Word> out;
  out.reserve(n);
  // tail_pos_ is the oldest retained slot once the ring has wrapped.
  const std::size_t start = count_ >= tail_.size() ? tail_pos_ : 0;
  for (std::size_t k = 0; k < n; ++k)
    out.push_back(tail_[(start + k) % tail_.size()]);
  return out;
}

// ---------------------------------------------------------------------------

std::uint64_t resolved_gain_period(const StreamConfig& config) {
  return config.gain_period == 0 ? config.agc_period : config.gain_period;
}

void validate_stream_config(const StreamConfig& config) {
  WP_REQUIRE(config.agc_period >= 1, "AGC period must be >= 1");
  WP_REQUIRE(resolved_gain_period(config) == config.agc_period,
             "gain cadence mismatch: gain_period must equal agc_period (the "
             "GainStage oracle and the AgcControl fresh-token cadence are "
             "one contract) — a mismatched pair would die mid-simulation");
  WP_REQUIRE(std::isfinite(config.agc_target) && config.agc_target > 0 &&
                 config.agc_target < 32768.0,
             "AGC target must be positive, finite and inside 16.16 range");
  WP_REQUIRE(!config.fir.empty(), "FIR needs at least one tap");
  for (const double tap : config.fir)
    WP_REQUIRE(std::isfinite(tap) && tap >= -32768.0 && tap < 32768.0,
               "FIR tap outside the representable 16.16 range");
}

wp::SystemSpec make_stream_system(const StreamConfig& config) {
  validate_stream_config(config);

  std::vector<Word> taps;
  taps.reserve(config.fir.size());
  for (double c : config.fir) taps.push_back(fix_from_double(c));

  wp::SystemSpec spec;
  spec.add_process("SRC", [config]() {
    return std::make_unique<SampleSource>("SRC", config.seed, 0);
  });
  spec.add_process("FIR", [taps]() {
    return std::make_unique<FirFilter>("FIR", taps);
  });
  spec.add_process("GAIN", [config]() {
    return std::make_unique<GainStage>("GAIN", resolved_gain_period(config));
  });
  spec.add_process("QNT", []() { return std::make_unique<Quantizer>("QNT"); });
  spec.add_process("AGC", [config]() {
    return std::make_unique<AgcControl>("AGC", config.agc_period,
                                        config.agc_target);
  });
  spec.add_process("SNK", [config]() {
    return std::make_unique<StreamSink>("SNK", config.samples, config.sink);
  });

  spec.add_channel("SRC", "out", "FIR", "in", "SRC-FIR");
  spec.add_channel("FIR", "out", "GAIN", "sample", "FIR-GAIN");
  spec.add_channel("GAIN", "out", "QNT", "in", "GAIN-QNT");
  spec.add_channel("QNT", "out", "SNK", "in", "QNT-SNK");
  spec.add_channel("QNT", "mag", "AGC", "mag", "QNT-AGC");
  spec.add_channel("AGC", "gain", "GAIN", "gain", "AGC-GAIN");
  return spec;
}

}  // namespace wp::stream
