// Second case study: a DSP stream pipeline with an automatic-gain-control
// (AGC) feedback loop.
//
//   SRC ──► FIR ──► GAIN ──► QNT ──► SNK
//                    ▲                │
//                    └──── AGC ◄──────┘   (gain update every K samples)
//
// The forward path is fully pipelined (every stage fires every cycle); the
// feedback connection QNT→AGC→GAIN is *excited* only once every K samples —
// exactly the communication profile where the paper's WP2 wrapper recovers
// the throughput a strict WP1 wrapper loses when the feedback wire needs
// relay stations. Samples are 16.16 fixed-point in the low 32 bits.
//
// Multi-stage graphs beyond this fixed five-stage pipeline (parameterized
// FIR depth and branch fan-out, for the heavy-traffic harness) live in
// stream/harness.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "core/system.hpp"
#include "util/stats.hpp"

namespace wp::stream {

/// 16.16 fixed point helpers.
inline constexpr std::int64_t kFixOne = 1 << 16;

/// Converts to 16.16 fixed point. The input must be finite and inside the
/// representable range [-32768, 32768) — NaN or out-of-range doubles used
/// to reach std::lround, which is undefined behaviour there; now they fail
/// a WP_REQUIRE at the conversion site instead.
Word fix_from_double(double x);
double fix_to_double(Word w);
Word fix_mul(Word a, Word b);

/// Deterministic sample source: a sum of two integer-period square waves
/// plus a PRNG dither, so the stream has slowly varying envelope for the
/// AGC to chase. Halts after `limit` samples when limit > 0.
class SampleSource final : public Process {
 public:
  SampleSource(std::string name, std::uint64_t seed, std::uint64_t limit);
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

 private:
  std::uint64_t seed_;
  std::uint64_t limit_;
  std::uint64_t t_ = 0;
};

/// Transposed-form FIR filter with fixed coefficients.
class FirFilter final : public Process {
 public:
  FirFilter(std::string name, std::vector<Word> coefficients);
  void fire(const Word* in, Word* out) override;
  void reset() override;

 private:
  std::vector<Word> coefficients_;
  std::vector<Word> delay_line_;
};

/// Multiplies the sample stream by the most recent gain. The AGC updates
/// the gain once every `period` samples (a cadence both sides know, as the
/// paper's "processing signal derived from the process operation"), so the
/// oracle requires the gain input only on those firings; the AGC marks
/// fresh tokens with bit 63 and the stage cross-checks the cadence.
///
/// The period MUST equal the period of the AgcControl feeding the "gain"
/// input — a mismatched pair dies on a WP_CHECK deep inside the
/// simulation. Spec builders validate this up front (make_stream_system /
/// harness builders throw at build time); hand-assembled SystemSpecs
/// should call validate_stream_config before simulating.
class GainStage final : public Process {
 public:
  GainStage(std::string name, std::uint64_t period);
  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;

  std::uint64_t period() const { return period_; }

 private:
  bool reads_gain() const { return firing_ > 0 && firing_ % period_ == 0; }

  std::uint64_t period_;
  std::uint64_t firing_ = 0;
  Word gain_ = static_cast<Word>(kFixOne);
};

/// Quantizer: clamps to a signed 12-bit range and re-expands; also forwards
/// the pre-clamp magnitude to the AGC.
class Quantizer final : public Process {
 public:
  explicit Quantizer(std::string name);
  void fire(const Word* in, Word* out) override;
  void reset() override {}
};

/// AGC: accumulates magnitudes and, every `period` samples, emits a fresh
/// gain (bit 63 set) steering the average magnitude toward `target`; in
/// between it emits stale gain tokens the GainStage is blind to.
class AgcControl final : public Process {
 public:
  AgcControl(std::string name, std::uint64_t period, double target);
  void fire(const Word* in, Word* out) override;
  void reset() override;

  /// Tag of the token that carries a fresh gain: every period-th firing.
  static bool fresh(Word token) { return (token >> 63) & 1; }
  std::uint64_t period() const { return period_; }

 private:
  std::uint64_t period_;
  Word target_;
  std::uint64_t phase_ = 0;
  Word accumulator_ = 0;
  Word gain_ = static_cast<Word>(kFixOne);
};

/// How a StreamSink retains what it receives.
struct SinkOptions {
  /// true  — retain every sample (tests that compare streams bit for bit;
  ///         memory grows with the run, reserve()d up front when the halt
  ///         limit is known);
  /// false — stats-only: RunningStats + order-sensitive digest + an
  ///         optional tail window, O(1) memory no matter how many million
  ///         tokens flow through. The heavy-traffic harness mode.
  bool keep_samples = true;
  /// Stats-only mode: retain the most recent `tail_window` samples (0 =
  /// none) so long runs still expose a comparable suffix.
  std::size_t tail_window = 0;
};

/// Collects the output stream; halts after `limit` samples when limit > 0.
/// Every retention mode maintains count() and an order-sensitive FNV
/// digest() of the full word stream, so two sinks can be compared
/// byte-for-byte without either retaining the stream.
class StreamSink final : public Process {
 public:
  StreamSink(std::string name, std::uint64_t limit, SinkOptions options = {});
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

  std::uint64_t count() const { return count_; }
  /// Digest of all received words in order (FNV-1a + avalanche combine).
  std::uint64_t digest() const { return digest_; }
  /// Welford stats over the received values interpreted as 16.16.
  const RunningStats& value_stats() const { return value_stats_; }

  /// Full sample retention; requires keep_samples mode.
  const std::vector<Word>& samples() const;
  /// The last min(count, tail_window) samples, oldest first (stats-only
  /// mode; empty when tail_window is 0).
  std::vector<Word> tail() const;

 private:
  SinkOptions options_;
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
  std::uint64_t digest_;
  RunningStats value_stats_;
  std::vector<Word> samples_;  // keep_samples mode only
  std::vector<Word> tail_;     // stats-only ring, tail_pos_ = next slot
  std::size_t tail_pos_ = 0;
};

struct StreamConfig {
  std::uint64_t samples = 4000;     ///< sink halt limit
  std::uint64_t agc_period = 16;    ///< gain updates every K samples
  /// Gain-stage cadence; 0 follows agc_period. Any other value must EQUAL
  /// agc_period — the field exists so hand-built configurations state the
  /// cadence explicitly and a mismatch fails at make_stream_system time
  /// (ContractViolation) instead of deadlocking mid-simulation.
  std::uint64_t gain_period = 0;
  double agc_target = 0.25;
  std::uint64_t seed = 7;
  std::vector<double> fir = {0.25, 0.5, 0.25};
  SinkOptions sink;
};

/// The gain-stage cadence a config resolves to (gain_period, or agc_period
/// when gain_period is 0).
std::uint64_t resolved_gain_period(const StreamConfig& config);

/// Validates a config the way make_stream_system will: periods >= 1 and
/// matching cadence, positive finite AGC target, non-empty FIR taps inside
/// the 16.16 range. Throws ContractViolation with the failing field —
/// at spec-build time, not deep inside a simulation.
void validate_stream_config(const StreamConfig& config);

/// Builds the five-stage pipeline; connections are named SRC-FIR, FIR-GAIN,
/// GAIN-QNT, QNT-SNK, QNT-AGC and AGC-GAIN (the feedback link). Calls
/// validate_stream_config first.
wp::SystemSpec make_stream_system(const StreamConfig& config);

}  // namespace wp::stream
