// Second case study: a DSP stream pipeline with an automatic-gain-control
// (AGC) feedback loop.
//
//   SRC ──► FIR ──► GAIN ──► QNT ──► SNK
//                    ▲                │
//                    └──── AGC ◄──────┘   (gain update every K samples)
//
// The forward path is fully pipelined (every stage fires every cycle); the
// feedback connection QNT→AGC→GAIN is *excited* only once every K samples —
// exactly the communication profile where the paper's WP2 wrapper recovers
// the throughput a strict WP1 wrapper loses when the feedback wire needs
// relay stations. Samples are 16.16 fixed-point in the low 32 bits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "core/system.hpp"

namespace wp::stream {

/// 16.16 fixed point helpers.
inline constexpr std::int64_t kFixOne = 1 << 16;
Word fix_from_double(double x);
double fix_to_double(Word w);
Word fix_mul(Word a, Word b);

/// Deterministic sample source: a sum of two integer-period square waves
/// plus a PRNG dither, so the stream has slowly varying envelope for the
/// AGC to chase. Halts after `limit` samples when limit > 0.
class SampleSource final : public Process {
 public:
  SampleSource(std::string name, std::uint64_t seed, std::uint64_t limit);
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

 private:
  std::uint64_t seed_;
  std::uint64_t limit_;
  std::uint64_t t_ = 0;
};

/// Transposed-form FIR filter with fixed coefficients.
class FirFilter final : public Process {
 public:
  FirFilter(std::string name, std::vector<Word> coefficients);
  void fire(const Word* in, Word* out) override;
  void reset() override;

 private:
  std::vector<Word> coefficients_;
  std::vector<Word> delay_line_;
};

/// Multiplies the sample stream by the most recent gain. The AGC updates
/// the gain once every `period` samples (a cadence both sides know, as the
/// paper's "processing signal derived from the process operation"), so the
/// oracle requires the gain input only on those firings; the AGC marks
/// fresh tokens with bit 63 and the stage cross-checks the cadence.
class GainStage final : public Process {
 public:
  GainStage(std::string name, std::uint64_t period);
  InputMask required(const PeekView& peek) const override;
  void fire(const Word* in, Word* out) override;
  void reset() override;

 private:
  bool reads_gain() const { return firing_ > 0 && firing_ % period_ == 0; }

  std::uint64_t period_;
  std::uint64_t firing_ = 0;
  Word gain_ = static_cast<Word>(kFixOne);
};

/// Quantizer: clamps to a signed 12-bit range and re-expands; also forwards
/// the pre-clamp magnitude to the AGC.
class Quantizer final : public Process {
 public:
  explicit Quantizer(std::string name);
  void fire(const Word* in, Word* out) override;
  void reset() override {}
};

/// AGC: accumulates magnitudes and, every `period` samples, emits a fresh
/// gain (bit 63 set) steering the average magnitude toward `target`; in
/// between it emits stale gain tokens the GainStage is blind to.
class AgcControl final : public Process {
 public:
  AgcControl(std::string name, std::uint64_t period, double target);
  void fire(const Word* in, Word* out) override;
  void reset() override;

  /// Tag of the token that carries a fresh gain: every period-th firing.
  static bool fresh(Word token) { return (token >> 63) & 1; }
  std::uint64_t period() const { return period_; }

 private:
  std::uint64_t period_;
  Word target_;
  std::uint64_t phase_ = 0;
  Word accumulator_ = 0;
  Word gain_ = static_cast<Word>(kFixOne);
};

/// Collects the output stream; halts after `limit` samples when limit > 0.
class StreamSink final : public Process {
 public:
  StreamSink(std::string name, std::uint64_t limit);
  void fire(const Word* in, Word* out) override;
  void reset() override;
  bool halted() const override;

  const std::vector<Word>& samples() const { return samples_; }

 private:
  std::uint64_t limit_;
  std::vector<Word> samples_;
};

struct StreamConfig {
  std::uint64_t samples = 4000;     ///< sink halt limit
  std::uint64_t agc_period = 16;    ///< gain updates every K samples
  double agc_target = 0.25;
  std::uint64_t seed = 7;
  std::vector<double> fir = {0.25, 0.5, 0.25};
};

/// Builds the five-stage pipeline; connections are named SRC-FIR, FIR-GAIN,
/// GAIN-QNT, QNT-SNK, QNT-AGC and AGC-GAIN (the feedback link).
wp::SystemSpec make_stream_system(const StreamConfig& config);

}  // namespace wp::stream
