#include "svc/eval_client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "svc/protocol.hpp"
#include "util/assert.hpp"

namespace wp::svc {

namespace {

/// Client-side service metrics: round-trip latency per batch and the
/// error frames the server sent us.
struct ClientMetrics {
  obs::Counter& batches;
  obs::Counter& error_replies;
  obs::Histogram& roundtrip_ns;

  static ClientMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static ClientMetrics metrics{
        registry.counter("svc/client/batches"),
        registry.counter("svc/client/error_replies"),
        registry.histogram("svc/client/roundtrip_ns")};
    return metrics;
  }
};

int try_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

EvalClient::~EvalClient() { close(); }

EvalClient::EvalClient(EvalClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

EvalClient& EvalClient::operator=(EvalClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void EvalClient::connect(const std::string& socket_path, int retries,
                         int retry_ms) {
  close();
  for (int attempt = 0; attempt <= retries; ++attempt) {
    fd_ = try_connect(socket_path);
    if (fd_ >= 0) return;
    if (attempt < retries)
      std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
  }
  throw ProtocolError(eval::ErrorCode::kInternal,
                      "could not connect to " + socket_path + ": " +
                          std::strerror(errno));
}

void EvalClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<eval::EvalReply> EvalClient::evaluate(
    const std::vector<eval::EvalRequest>& requests) {
  WP_REQUIRE(connected(), "client is not connected");
  ClientMetrics& metrics = ClientMetrics::get();
  metrics.batches.inc();
  const std::uint64_t start_ns = obs::now_ns();
  write_frame(fd_, FrameType::kEvalBatch, encode_request_batch(requests));
  const std::optional<Frame> frame = read_frame(fd_);
  metrics.roundtrip_ns.record(obs::now_ns() - start_ns);
  if (!frame.has_value())
    throw ProtocolError(eval::ErrorCode::kInternal,
                        "server closed the connection before replying");
  if (frame->type == FrameType::kError) {
    metrics.error_replies.inc();
    const eval::EvalError error = decode_error(frame->payload);
    throw ProtocolError(error.code, "server rejected the batch: " +
                                        error.message);
  }
  if (frame->type != FrameType::kReplyBatch)
    throw ProtocolError(eval::ErrorCode::kMalformedFrame,
                        "expected a reply-batch frame");
  std::vector<eval::EvalReply> replies = decode_reply_batch(frame->payload);
  if (replies.size() != requests.size())
    throw ProtocolError(eval::ErrorCode::kInternal,
                        "reply count does not match request count");
  return replies;
}

bool EvalClient::ping() {
  if (!connected()) return false;
  try {
    write_frame(fd_, FrameType::kPing, {});
    const std::optional<Frame> frame = read_frame(fd_);
    return frame.has_value() && frame->type == FrameType::kPong;
  } catch (const ProtocolError&) {
    return false;
  }
}

std::string EvalClient::stats_json() {
  WP_REQUIRE(connected(), "client is not connected");
  write_frame(fd_, FrameType::kStatsRequest, {});
  const std::optional<Frame> frame = read_frame(fd_);
  if (!frame.has_value())
    throw ProtocolError(eval::ErrorCode::kInternal,
                        "server closed the connection before replying");
  if (frame->type == FrameType::kError) {
    ClientMetrics::get().error_replies.inc();
    const eval::EvalError error = decode_error(frame->payload);
    throw ProtocolError(error.code,
                        "server rejected the stats scrape: " + error.message);
  }
  if (frame->type != FrameType::kStatsReply)
    throw ProtocolError(eval::ErrorCode::kMalformedFrame,
                        "expected a stats-reply frame");
  return frame->payload;
}

void EvalClient::shutdown_server() {
  WP_REQUIRE(connected(), "client is not connected");
  try {
    write_frame(fd_, FrameType::kShutdown, {});
    (void)read_frame(fd_);  // kPong acknowledgement (or EOF — both fine)
  } catch (const ProtocolError&) {
    // The server may tear the socket down before the ack leaves: the
    // shutdown still happened.
  }
  close();
}

// ------------------------------------------------------------- sharding

std::vector<eval::EvalReply> evaluate_sharded(
    std::vector<EvalClient*> clients,
    const std::vector<eval::EvalRequest>& requests) {
  WP_REQUIRE(!clients.empty(), "sharding needs at least one client");
  const std::size_t n = clients.size();
  // Round-robin assignment: request i → client i mod N. Deterministic in
  // the request list alone, so the merged replies are independent of
  // worker count and timing.
  std::vector<std::vector<eval::EvalRequest>> shards(n);
  for (std::size_t i = 0; i < requests.size(); ++i)
    shards[i % n].push_back(requests[i]);

  std::vector<std::vector<eval::EvalReply>> shard_replies(n);
  std::vector<std::exception_ptr> failures(n);
  std::vector<std::thread> dispatch;
  dispatch.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    dispatch.emplace_back([&, w] {
      try {
        if (!shards[w].empty())
          shard_replies[w] = clients[w]->evaluate(shards[w]);
      } catch (...) {
        failures[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : dispatch) t.join();
  for (const std::exception_ptr& failure : failures)
    if (failure) std::rethrow_exception(failure);

  std::vector<eval::EvalReply> merged(requests.size());
  std::vector<std::size_t> cursor(n, 0);
  for (std::size_t i = 0; i < requests.size(); ++i)
    merged[i] = std::move(shard_replies[i % n][cursor[i % n]++]);
  return merged;
}

// ------------------------------------------------------------ WorkerFleet

WorkerFleet::WorkerFleet(FleetOptions options)
    : options_(std::move(options)) {
  WP_REQUIRE(options_.workers > 0, "fleet needs at least one worker");
  WP_REQUIRE(!options_.evald_path.empty(),
             "fleet needs the wirepipe_evald binary path");
}

WorkerFleet::~WorkerFleet() { stop(); }

void WorkerFleet::start() {
  WP_REQUIRE(!running_, "fleet already running");
  socket_paths_.clear();
  for (std::size_t w = 0; w < options_.workers; ++w)
    socket_paths_.push_back(
        socket_path(options_.base_port + static_cast<port_name>(w)));

  for (std::size_t w = 0; w < options_.workers; ++w) {
    const pid_t pid = ::fork();
    WP_CHECK(pid >= 0, "fork() failed");
    if (pid == 0) {
      // Child: exec the worker daemon on its own port.
      std::vector<std::string> args;
      args.push_back(options_.evald_path);
      args.push_back("--socket");
      args.push_back(socket_paths_[w]);
      args.push_back("--workers");
      args.push_back(std::to_string(options_.threads_per_worker));
      for (const std::string& extra : options_.extra_args)
        args.push_back(extra);
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(options_.evald_path.c_str(), argv.data());
      ::_exit(127);  // exec failed
    }
    pids_.push_back(pid);
  }

  clients_.resize(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    clients_[w].connect(socket_paths_[w]);
  running_ = true;
}

void WorkerFleet::stop() {
  if (!running_ && pids_.empty()) return;
  for (EvalClient& client : clients_)
    if (client.connected()) client.shutdown_server();
  clients_.clear();
  for (const pid_t pid : pids_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  pids_.clear();
  running_ = false;
}

std::vector<eval::EvalReply> WorkerFleet::evaluate_sharded(
    const std::vector<eval::EvalRequest>& requests) {
  WP_REQUIRE(running_, "fleet is not running");
  std::vector<EvalClient*> clients;
  clients.reserve(clients_.size());
  for (EvalClient& client : clients_) clients.push_back(&client);
  return svc::evaluate_sharded(std::move(clients), requests);
}

}  // namespace wp::svc
