// EvalClient / WorkerFleet — the client side of the evaluation service.
//
// EvalClient speaks the frame protocol to one EvalServer endpoint:
// connect (with retry, for daemons still booting), evaluate a request
// batch (one eval-batch frame out, one reply-batch frame back, input
// order preserved), ping, ask the server to shut down.
//
// WorkerFleet runs a sharded fabric: it forks N wirepipe_evald worker
// processes on per-worker ports, round-robin shards a request list across
// them (request i → worker i mod N), dispatches every shard concurrently,
// and merges the replies back into input order — so a sharded sweep or
// ensemble is bit-identical to the single-process run (requests are
// self-contained and seed-derived; no result depends on which worker ran
// it). evaluate_sharded is also available against caller-owned clients,
// which is how the tests drive two in-process servers without forking.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "eval/request.hpp"
#include "svc/ports.hpp"

namespace wp::svc {

class EvalClient {
 public:
  EvalClient() = default;
  ~EvalClient();

  EvalClient(const EvalClient&) = delete;
  EvalClient& operator=(const EvalClient&) = delete;
  EvalClient(EvalClient&& other) noexcept;
  EvalClient& operator=(EvalClient&& other) noexcept;

  /// Connects to `socket_path`, retrying `retries` times `retry_ms` apart
  /// (a daemon that was just spawned needs a moment to bind). Throws
  /// ProtocolError(kInternal) when every attempt fails.
  void connect(const std::string& socket_path, int retries = 50,
               int retry_ms = 100);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip: eval-batch frame out, reply-batch frame back.
  /// Replies are in request order. A kError frame from the server (the
  /// batch could not be decoded) raises ProtocolError with its code.
  std::vector<eval::EvalReply> evaluate(
      const std::vector<eval::EvalRequest>& requests);

  /// Liveness probe; false when the server is gone.
  bool ping();

  /// Scrapes the server's stats document (kStatsRequest → kStatsReply):
  /// one JSON object, schema wirepipe-stats/1. Throws ProtocolError when
  /// the server predates the stats frame or the connection fails.
  std::string stats_json();

  /// Sends kShutdown and waits for the acknowledgement.
  void shutdown_server();

 private:
  int fd_ = -1;
};

struct FleetOptions {
  std::size_t workers = 4;
  /// Path of the wirepipe_evald binary to exec.
  std::string evald_path;
  /// Worker i binds socket_path(base_port + i); scope the fleet with
  /// $WIREPIPE_SOCKET_DIR or a distinct base port.
  port_name base_port = kPortShardBase;
  /// Evaluation threads per worker (--workers flag of wirepipe_evald).
  std::size_t threads_per_worker = 1;
  /// Extra argv entries for every worker (e.g. "--trace-mode",
  /// "prefix").
  std::vector<std::string> extra_args;
};

class WorkerFleet {
 public:
  explicit WorkerFleet(FleetOptions options);
  ~WorkerFleet();  ///< stops the fleet if still running

  WorkerFleet(const WorkerFleet&) = delete;
  WorkerFleet& operator=(const WorkerFleet&) = delete;

  /// Forks and execs the worker daemons, connects a client to each.
  void start();
  /// Shuts every worker down (kShutdown frame, then waitpid). Idempotent.
  void stop();

  std::size_t workers() const { return clients_.size(); }
  /// Direct access to worker `i`'s client (latency benches drive each
  /// worker from its own thread).
  EvalClient& client(std::size_t i) { return clients_[i]; }

  /// Round-robin shard + concurrent dispatch + input-order merge.
  std::vector<eval::EvalReply> evaluate_sharded(
      const std::vector<eval::EvalRequest>& requests);

 private:
  FleetOptions options_;
  std::vector<EvalClient> clients_;
  std::vector<pid_t> pids_;
  std::vector<std::string> socket_paths_;
  bool running_ = false;
};

/// Shards `requests` round-robin over `clients` (request i → client
/// i mod N), dispatches each shard as one batch from its own thread, and
/// merges replies into input order. Exposed separately so tests can drive
/// in-process servers.
std::vector<eval::EvalReply> evaluate_sharded(
    std::vector<EvalClient*> clients,
    const std::vector<eval::EvalRequest>& requests);

}  // namespace wp::svc
