#include "svc/eval_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <sstream>

#include "eval/evaluate.hpp"
#include "obs/metrics.hpp"
#include "svc/ports.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace wp::svc {

namespace {

/// Obs mirror of EvalServer::Stats plus the batch-latency histogram —
/// bumped at the same sites as the struct, so a stats scrape and the
/// registry always agree. Aggregated across server instances (shards).
struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& frames;
  obs::Counter& requests;
  obs::Counter& error_frames;
  obs::Counter& dropped_connections;
  obs::Counter& stats_scrapes;
  obs::Histogram& batch_ns;

  static ServerMetrics& get() {
    obs::Registry& registry = obs::Registry::global();
    static ServerMetrics metrics{
        registry.counter("svc/server/connections"),
        registry.counter("svc/server/frames"),
        registry.counter("svc/server/requests"),
        registry.counter("svc/server/error_frames"),
        registry.counter("svc/server/dropped_connections"),
        registry.counter("svc/server/stats_scrapes"),
        registry.histogram("svc/server/batch_ns")};
    return metrics;
  }
};

void bind_unix(int fd, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  WP_REQUIRE(path.size() < sizeof(addr.sun_path),
             "socket path too long for sockaddr_un: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale endpoint from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw ProtocolError(eval::ErrorCode::kInternal,
                        "bind(" + path + ") failed: " + std::strerror(errno));
}

}  // namespace

EvalServer::EvalServer(EvalServerOptions options)
    : options_(std::move(options)) {
  if (options_.socket_path.empty())
    options_.socket_path = default_socket_path();
  oracle_ = sim::SimOracle::make_shared(options_.oracle);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
}

EvalServer::~EvalServer() { stop(); }

void EvalServer::start() {
  WP_REQUIRE(!running_.load(), "server already running");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw ProtocolError(eval::ErrorCode::kInternal,
                        std::string("socket() failed: ") +
                            std::strerror(errno));
  bind_unix(listen_fd_, options_.socket_path);
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ProtocolError(eval::ErrorCode::kInternal,
                        "listen() failed: " + reason);
  }
  running_.store(true);
  shutdown_requested_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void EvalServer::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_.load() || !running_.load();
  });
}

void EvalServer::serve() {
  start();
  wait();
  stop();
}

void EvalServer::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept(); shutting down the connection
  // fds unblocks their readers.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(connection_threads_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::close(fd);
    connection_fds_.clear();
  }
  ::unlink(options_.socket_path.c_str());
  shutdown_cv_.notify_all();
}

EvalServer::Stats EvalServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void EvalServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (stop()) or unrecoverable
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    ++stats_.connections;
    ServerMetrics::get().connections.inc();
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
}

void EvalServer::handle_connection(int fd) {
  bool drop = false;
  while (running_.load() && !drop) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(fd);
    } catch (const ProtocolError& e) {
      // Framing is broken — the stream cannot be resynchronized. Tell the
      // client why (best effort) and drop the connection; the server and
      // its other connections are unaffected.
      try {
        write_frame(fd, FrameType::kError,
                    encode_error(e.code(), e.what()));
      } catch (const ProtocolError&) {
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.error_frames;
      ++stats_.dropped_connections;
      ServerMetrics::get().error_frames.inc();
      ServerMetrics::get().dropped_connections.inc();
      drop = true;
      continue;
    }
    if (!frame.has_value()) break;  // clean EOF
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.frames;
    }
    ServerMetrics::get().frames.inc();
    try {
      if (!handle_frame(fd, *frame)) break;
    } catch (const ProtocolError&) {
      break;  // reply write failed — peer is gone
    }
  }
  // The fd is closed by stop(); closing here too would race a reuse of the
  // descriptor number. Just mark the connection finished by shutting it
  // down (idempotent).
  ::shutdown(fd, SHUT_RDWR);
}

std::string EvalServer::stats_json() const {
  const Stats server = stats();
  const sim::GoldenCache::Stats cache = oracle_->stats();
  const sim::SimOracle::SpecStats specs = oracle_->spec_stats();
  std::ostringstream os;
  json::JsonWriter json(os);
  json.begin_object();
  json.field("schema", "wirepipe-stats/1");
  json.key("server").begin_object();
  json.field("connections", server.connections)
      .field("frames", server.frames)
      .field("requests", server.requests)
      .field("error_frames", server.error_frames)
      .field("dropped_connections", server.dropped_connections)
      .field("workers", static_cast<unsigned long long>(pool_->size()));
  json.end_object();
  json.key("golden_cache").begin_object();
  json.field("hits", cache.hits)
      .field("misses", cache.misses)
      .field("golden_runs", cache.golden_runs)
      .field("evictions", cache.evictions)
      .field("entries", static_cast<unsigned long long>(cache.entries))
      .field("disk_hits", cache.disk_hits)
      .field("disk_stores", cache.disk_stores);
  json.end_object();
  json.key("spec_cache").begin_object();
  json.field("builds", specs.builds).field("reuses", specs.reuses);
  json.end_object();
  json.key("metrics");
  obs::Registry::global().write_json(json);
  json.end_object();
  os << "\n";
  return os.str();
}

bool EvalServer::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      write_frame(fd, FrameType::kPong, {});
      return true;
    case FrameType::kShutdown:
      write_frame(fd, FrameType::kPong, {});
      shutdown_requested_.store(true);
      shutdown_cv_.notify_all();
      return false;
    case FrameType::kEvalBatch: {
      std::vector<eval::EvalRequest> requests;
      try {
        requests = decode_request_batch(frame.payload);
      } catch (const wire::WireError& e) {
        // The frame was well-formed but its payload is not a request
        // batch: typed error, connection stays up.
        write_frame(fd, FrameType::kError,
                    encode_error(eval::ErrorCode::kMalformedRequest,
                                 e.what()));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.error_frames;
        ServerMetrics::get().error_frames.inc();
        return true;
      }
      eval::EvalContext context;
      context.oracle = oracle_.get();
      const std::uint64_t batch_start_ns = obs::now_ns();
      const std::vector<eval::EvalReply> replies =
          eval::evaluate_batch(requests, context, pool_.get());
      ServerMetrics::get().batch_ns.record(obs::now_ns() - batch_start_ns);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.requests += requests.size();
      }
      ServerMetrics::get().requests.add(requests.size());
      write_frame(fd, FrameType::kReplyBatch, encode_reply_batch(replies));
      return true;
    }
    case FrameType::kStatsRequest: {
      if (!frame.payload.empty()) {
        // The scrape is defined as payloadless; anything else is a
        // malformed request, not a framing violation — keep the
        // connection.
        write_frame(fd, FrameType::kError,
                    encode_error(eval::ErrorCode::kMalformedRequest,
                                 "kStatsRequest carries no payload"));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.error_frames;
        ServerMetrics::get().error_frames.inc();
        return true;
      }
      ServerMetrics::get().stats_scrapes.inc();
      write_frame(fd, FrameType::kStatsReply, stats_json());
      return true;
    }
    case FrameType::kReplyBatch:
    case FrameType::kError:
    case FrameType::kStatsReply:
    case FrameType::kPong: {
      // Server-to-client frame types arriving at the server: protocol
      // misuse, but harmless — typed error, keep the connection.
      write_frame(fd, FrameType::kError,
                  encode_error(eval::ErrorCode::kMalformedRequest,
                               "unexpected client frame type"));
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.error_frames;
      return true;
    }
  }
  return true;
}

}  // namespace wp::svc
