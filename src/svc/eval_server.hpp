// EvalServer — the wirepipe evaluation daemon.
//
// Serves eval::evaluate over the frame protocol on an AF_UNIX stream
// socket: an accept thread hands each connection to its own reader
// thread, each eval-batch frame is decoded into EvalRequests and fanned
// over the server's ThreadPool (the identical eval::evaluate_batch the
// in-process adapters call), and the replies go back as one reply-batch
// frame in request order. Each server owns one SimOracle built from
// OracleOptions, so goldens are cached per server process and
// $WIREPIPE_GOLDEN_DIR acts as the shared cache tier across a fleet.
//
// Failure containment, layer by layer:
//   * a request that fails to *evaluate* → a kError reply in the batch
//     (eval::evaluate never throws);
//   * a frame whose *payload* fails to decode → one kError frame, the
//     connection stays up;
//   * a *framing* violation (bad magic/version/checksum, oversize,
//     mid-frame EOF) → best-effort kError frame, then the connection is
//     dropped (the byte stream cannot be resynchronized);
// the server itself never goes down for any input.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/oracle.hpp"
#include "svc/protocol.hpp"
#include "util/thread_pool.hpp"

namespace wp::svc {

struct EvalServerOptions {
  /// Endpoint; empty picks ports::default_socket_path(). A stale socket
  /// file at the path is unlinked on start.
  std::string socket_path;
  /// Evaluation worker threads (the pool batches fan over); 0 = hardware
  /// concurrency.
  std::size_t workers = 0;
  /// Cache wiring of the server's SimOracle (LRU cap, persist dir, trace
  /// mode — environment overrides apply unless disabled).
  sim::OracleOptions oracle;
};

class EvalServer {
 public:
  explicit EvalServer(EvalServerOptions options = {});
  ~EvalServer();  ///< stops the server if still running

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// Binds, listens, and starts the accept thread. Throws ProtocolError
  /// (kInternal) when the socket cannot be bound.
  void start();

  /// Blocks until a kShutdown frame arrives (or stop() is called from
  /// another thread).
  void wait();

  /// start() + wait() + stop() — the daemon main loop.
  void serve();

  /// Closes the listener and every live connection, joins all threads.
  /// Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const std::string& socket_path() const { return options_.socket_path; }
  sim::SimOracle& oracle() { return *oracle_; }

  struct Stats {
    std::uint64_t connections = 0;    ///< accepted connections
    std::uint64_t frames = 0;         ///< frames read successfully
    std::uint64_t requests = 0;       ///< evaluations performed
    std::uint64_t error_frames = 0;   ///< kError frames sent
    std::uint64_t dropped_connections = 0;  ///< closed on framing violation
  };
  Stats stats() const;

  /// The kStatsRequest scrape document (schema wirepipe-stats/1): server
  /// counters, the oracle's golden-cache and spec-cache stats, and the
  /// full obs metrics registry, as one JSON object.
  std::string stats_json() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// One frame's dispatch; returns false when the connection must close.
  bool handle_frame(int fd, const Frame& frame);

  EvalServerOptions options_;
  std::shared_ptr<sim::SimOracle> oracle_;
  std::unique_ptr<ThreadPool> pool_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;

  mutable std::mutex mutex_;  ///< guards connections_/threads_/stats_
  std::condition_variable shutdown_cv_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  Stats stats_;
};

}  // namespace wp::svc
