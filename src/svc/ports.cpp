#include "svc/ports.hpp"

#include <unistd.h>

#include <cstdlib>

namespace wp::svc {

std::string socket_path(port_name port) {
  const char* dir = std::getenv("WIREPIPE_SOCKET_DIR");
  if (dir == nullptr || *dir == '\0') dir = std::getenv("TMPDIR");
  if (dir == nullptr || *dir == '\0') dir = "/tmp";
  std::string path(dir);
  if (!path.empty() && path.back() == '/') path.pop_back();
  path += "/wirepipe-" + std::to_string(::getuid()) + "-" +
          std::to_string(port) + ".sock";
  return path;
}

std::string default_socket_path() { return socket_path(kPortEval); }

}  // namespace wp::svc
