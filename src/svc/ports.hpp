// ports.h — well-known port names of the wirepipe service fabric.
//
// Modeled on the microkernel idiom (VSTa's sys/ports.h): services rendez-
// vous on small global port numbers, and the mapping from a port number to
// a transport endpoint is one shared function rather than scattered string
// literals. Here the transport is AF_UNIX sockets: port N of user U lives
// at $WIREPIPE_SOCKET_DIR/wirepipe-U-N.sock (default directory $TMPDIR or
// /tmp), and sharded fleets derive per-worker endpoints from a base port
// plus the worker index.
#pragma once

#include <cstdint>
#include <string>

namespace wp::svc {

using port_name = std::uint32_t;

constexpr port_name kPortEval = 1;     ///< evaluation service (EvalServer)
constexpr port_name kPortControl = 2;  ///< reserved: fleet control plane
/// First port of a sharded worker fleet; worker i serves kPortShardBase+i.
constexpr port_name kPortShardBase = 16;

/// The AF_UNIX endpoint of `port` for this user. Honors
/// $WIREPIPE_SOCKET_DIR, else $TMPDIR, else /tmp. Pure path construction —
/// nothing is created.
std::string socket_path(port_name port);

/// socket_path(kPortEval).
std::string default_socket_path();

}  // namespace wp::svc
