#include "svc/protocol.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/hash.hpp"
#include "util/wire.hpp"

namespace wp::svc {

namespace {

using eval::ErrorCode;

constexpr std::size_t kHeaderSize = 12;   // magic+version+type+reserved+len
constexpr std::size_t kChecksumSize = 8;

bool valid_frame_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kEvalBatch) &&
         type <= static_cast<std::uint8_t>(FrameType::kStatsReply);
}

std::uint64_t payload_checksum(const std::string& payload) {
  return hash_bytes(payload.data(), payload.size());
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload)
    throw ProtocolError(ErrorCode::kOversizedFrame,
                        "frame payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the " +
                            std::to_string(kMaxFramePayload) + "-byte cap");
  wire::Writer w;
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload.data(), payload.size());
  w.u64(payload_checksum(payload));
  return w.take();
}

Frame decode_frame(const void* data, std::size_t size) {
  try {
    wire::Reader r(data, size);
    if (r.remaining() < kHeaderSize)
      throw ProtocolError(ErrorCode::kMalformedFrame,
                          "truncated frame header");
    if (r.u32() != kFrameMagic)
      throw ProtocolError(ErrorCode::kMalformedFrame, "bad frame magic");
    const std::uint8_t version = r.u8();
    if (version != kFrameVersion)
      throw ProtocolError(ErrorCode::kBadVersion,
                          "unsupported frame version " +
                              std::to_string(version));
    const std::uint8_t type = r.u8();
    if (!valid_frame_type(type))
      throw ProtocolError(ErrorCode::kMalformedFrame,
                          "unknown frame type " + std::to_string(type));
    if (r.u16() != 0)
      throw ProtocolError(ErrorCode::kMalformedFrame,
                          "nonzero reserved bits");
    const std::uint32_t len = r.u32();
    if (len > kMaxFramePayload)
      throw ProtocolError(ErrorCode::kOversizedFrame,
                          "declared payload of " + std::to_string(len) +
                              " bytes exceeds the cap");
    if (r.remaining() != len + kChecksumSize)
      throw ProtocolError(
          ErrorCode::kMalformedFrame,
          "frame size disagrees with the declared payload length");
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.resize(len);
    for (std::uint32_t i = 0; i < len; ++i)
      frame.payload[i] = static_cast<char>(r.u8());
    if (r.u64() != payload_checksum(frame.payload))
      throw ProtocolError(ErrorCode::kMalformedFrame,
                          "payload checksum mismatch");
    r.expect_done();
    return frame;
  } catch (const wire::WireError& e) {
    throw ProtocolError(ErrorCode::kMalformedFrame, e.what());
  }
}

// -------------------------------------------------------------- payloads

std::string encode_request_batch(const std::vector<eval::EvalRequest>& batch) {
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(batch.size()));
  for (const eval::EvalRequest& request : batch) request.encode(w);
  return w.take();
}

std::vector<eval::EvalRequest> decode_request_batch(
    const std::string& payload) {
  wire::Reader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<eval::EvalRequest> batch;
  batch.reserve(std::min<std::size_t>(count, 4096));
  for (std::uint32_t i = 0; i < count; ++i)
    batch.push_back(eval::EvalRequest::decode(r));
  r.expect_done();
  return batch;
}

std::string encode_reply_batch(const std::vector<eval::EvalReply>& batch) {
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(batch.size()));
  for (const eval::EvalReply& reply : batch) reply.encode(w);
  return w.take();
}

std::vector<eval::EvalReply> decode_reply_batch(const std::string& payload) {
  wire::Reader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<eval::EvalReply> batch;
  batch.reserve(std::min<std::size_t>(count, 4096));
  for (std::uint32_t i = 0; i < count; ++i)
    batch.push_back(eval::EvalReply::decode(r));
  r.expect_done();
  return batch;
}

std::string encode_error(eval::ErrorCode code, const std::string& message) {
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(code));
  w.str(message);
  return w.take();
}

eval::EvalError decode_error(const std::string& payload) {
  wire::Reader r(payload);
  eval::EvalError error;
  const std::uint32_t code = r.u32();
  error.code = code <= static_cast<std::uint32_t>(ErrorCode::kInternal)
                   ? static_cast<ErrorCode>(code)
                   : ErrorCode::kInternal;
  error.message = r.str();
  r.expect_done();
  return error;
}

// ------------------------------------------------------------- socket io

namespace {

void write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(ErrorCode::kInternal,
                          std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes. Returns false on EOF before the first byte
/// (allow_eof) — mid-read EOF always throws.
bool read_all(int fd, char* data, std::size_t size, bool allow_eof) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(ErrorCode::kInternal,
                          std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && allow_eof) return false;
      throw ProtocolError(ErrorCode::kMalformedFrame,
                          "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, FrameType type, const std::string& payload) {
  const std::string bytes = encode_frame(type, payload);
  write_all(fd, bytes.data(), bytes.size());
}

std::optional<Frame> read_frame(int fd) {
  char header[kHeaderSize];
  if (!read_all(fd, header, kHeaderSize, /*allow_eof=*/true))
    return std::nullopt;

  wire::Reader r(header, kHeaderSize);
  if (r.u32() != kFrameMagic)
    throw ProtocolError(eval::ErrorCode::kMalformedFrame, "bad frame magic");
  const std::uint8_t version = r.u8();
  if (version != kFrameVersion)
    throw ProtocolError(
        eval::ErrorCode::kBadVersion,
        "unsupported frame version " + std::to_string(version));
  const std::uint8_t type = r.u8();
  if (!valid_frame_type(type))
    throw ProtocolError(eval::ErrorCode::kMalformedFrame,
                        "unknown frame type " + std::to_string(type));
  if (r.u16() != 0)
    throw ProtocolError(eval::ErrorCode::kMalformedFrame,
                        "nonzero reserved bits");
  const std::uint32_t len = r.u32();
  if (len > kMaxFramePayload)
    throw ProtocolError(eval::ErrorCode::kOversizedFrame,
                        "declared payload of " + std::to_string(len) +
                            " bytes exceeds the cap");

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(len);
  if (len > 0) read_all(fd, frame.payload.data(), len, /*allow_eof=*/false);

  char checksum_bytes[kChecksumSize];
  read_all(fd, checksum_bytes, kChecksumSize, /*allow_eof=*/false);
  wire::Reader c(checksum_bytes, kChecksumSize);
  if (c.u64() != payload_checksum(frame.payload))
    throw ProtocolError(eval::ErrorCode::kMalformedFrame,
                        "payload checksum mismatch");
  return frame;
}

}  // namespace wp::svc
