// The wirepipe service frame protocol: length-prefixed binary frames over
// a local stream socket.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic     0x57504556 ("WPEV" as bytes 'W''P''E''V')
//   4       1     version   kFrameVersion (1)
//   5       1     type      FrameType
//   6       2     reserved  must be 0
//   8       4     payload_len
//   12      n     payload   (wire-encoded body, type-dependent)
//   12+n    8     checksum  FNV-1a over the payload bytes
//
// Payloads are wire::Writer streams: an eval-batch frame carries
// u32 count + count EvalRequest encodings, a reply-batch frame u32 count +
// count EvalReply encodings, an error frame u32 ErrorCode + string. The
// stats pair is the exception: kStatsRequest is empty and kStatsReply
// carries a raw UTF-8 JSON document (schema wirepipe-stats/1) — the scrape
// is for humans and dashboards, so it skips the binary layer.
// Decoders are strict — wrong magic, foreign version, nonzero reserved
// bits, a declared length over kMaxFramePayload, or a checksum mismatch
// throw ProtocolError carrying a typed eval::ErrorCode, and the reader
// never touches memory past the declared length. A malformed frame can
// therefore fail a connection loudly but can never crash the server.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/request.hpp"

namespace wp::svc {

constexpr std::uint32_t kFrameMagic = 0x56455057;  ///< "WPEV" little-endian
constexpr std::uint8_t kFrameVersion = 1;
/// Ceiling on a frame's declared payload length: large enough for any
/// realistic batch, small enough that a hostile length prefix cannot make
/// the server allocate unbounded memory.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kEvalBatch = 1,     ///< client → server: u32 count + EvalRequest...
  kReplyBatch = 2,    ///< server → client: u32 count + EvalReply...
  kError = 3,         ///< server → client: u32 ErrorCode + string message
  kPing = 4,          ///< liveness probe (empty payload)
  kPong = 5,          ///< ping/shutdown acknowledgement (empty payload)
  kShutdown = 6,      ///< client → server: stop serving (empty payload)
  kStatsRequest = 7,  ///< client → server: scrape stats (empty payload)
  kStatsReply = 8,    ///< server → client: UTF-8 JSON stats document
};

/// Framing violation: carries the typed error code the server reports
/// back before dropping the connection.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(eval::ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  eval::ErrorCode code() const { return code_; }

 private:
  eval::ErrorCode code_;
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Frame → bytes. Throws ProtocolError(kOversizedFrame) over the cap.
std::string encode_frame(FrameType type, const std::string& payload);

/// Bytes → frame; the buffer must hold exactly one frame. Throws
/// ProtocolError on any violation (magic/version/reserved/length/checksum,
/// trailing bytes).
Frame decode_frame(const void* data, std::size_t size);

// ------------------------------------------------------------ payloads

std::string encode_request_batch(const std::vector<eval::EvalRequest>& batch);
std::vector<eval::EvalRequest> decode_request_batch(
    const std::string& payload);

std::string encode_reply_batch(const std::vector<eval::EvalReply>& batch);
std::vector<eval::EvalReply> decode_reply_batch(const std::string& payload);

std::string encode_error(eval::ErrorCode code, const std::string& message);
eval::EvalError decode_error(const std::string& payload);

// ------------------------------------------------------------ socket io

/// Writes one frame to `fd` (handles partial writes). Throws
/// ProtocolError(kInternal) on socket failure.
void write_frame(int fd, FrameType type, const std::string& payload);

/// Reads one frame from `fd`. Returns nullopt on clean EOF at a frame
/// boundary; throws ProtocolError on mid-frame EOF or any framing
/// violation. The payload is read (and bounded) before validation, so a
/// malformed frame consumes exactly its declared bytes.
std::optional<Frame> read_frame(int fd);

}  // namespace wp::svc
