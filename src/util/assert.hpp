// Contract-checking helpers used across the wirepipe libraries.
//
// Simulation code is full of protocol invariants (no token loss, tag
// monotonicity, FIFO bounds). Violations are programming errors, not
// recoverable conditions, so they throw wp::ContractViolation carrying the
// failing expression and location; tests assert on them, and release builds
// keep them enabled (simulation correctness beats the few % of speed).
#pragma once

#include <stdexcept>
#include <string>

namespace wp {

/// Thrown when a WP_REQUIRE / WP_ENSURE / WP_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg);

  const char* kind() const noexcept { return kind_; }
  const char* expression() const noexcept { return expr_; }
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* kind_;
  const char* expr_;
  const char* file_;
  int line_;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace wp

/// Precondition check (argument / caller errors).
#define WP_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::wp::detail::contract_fail("precondition", #expr, __FILE__,          \
                                  __LINE__, (msg));                         \
  } while (false)

/// Postcondition check (implementation errors detected on exit).
#define WP_ENSURE(expr, msg)                                                \
  do {                                                                      \
    if (!(expr))                                                            \
      ::wp::detail::contract_fail("postcondition", #expr, __FILE__,         \
                                  __LINE__, (msg));                         \
  } while (false)

/// Internal invariant check.
#define WP_CHECK(expr, msg)                                                 \
  do {                                                                      \
    if (!(expr))                                                            \
      ::wp::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,   \
                                  (msg));                                   \
  } while (false)
