#include "util/csv.hpp"

#include <ostream>

namespace wp {

CsvWriter::CsvWriter(std::ostream& os, char sep) : os_(os), sep_(sep) {}

std::string CsvWriter::escape(const std::string& cell, char sep) {
  const bool needs_quote =
      cell.find(sep) != std::string::npos ||
      cell.find('"') != std::string::npos ||
      cell.find('\n') != std::string::npos ||
      cell.find('\r') != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << sep_;
    os_ << escape(cells[i], sep_);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  row(std::vector<std::string>(cells));
}

}  // namespace wp
