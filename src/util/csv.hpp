// Minimal CSV writer for benchmark output that downstream plotting scripts
// can consume. Handles quoting of separators, quotes and newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wp {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',');

  /// Writes one row; cells containing the separator, quotes or newlines are
  /// quoted per RFC 4180.
  void row(const std::vector<std::string>& cells);

  /// Convenience overloads for mixed rows built by benches.
  void row(std::initializer_list<std::string> cells);

  std::size_t rows_written() const { return rows_; }

  /// Escapes a single cell (exposed for tests).
  static std::string escape(const std::string& cell, char sep);

 private:
  std::ostream& os_;
  char sep_;
  std::size_t rows_ = 0;
};

}  // namespace wp
