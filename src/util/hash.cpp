#include "util/hash.hpp"

namespace wp {

std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_string(const std::string& text, std::uint64_t seed) {
  return hash_bytes(text.data(), text.size(), seed);
}

std::uint64_t hash_combine(std::uint64_t state, std::uint64_t value) {
  // splitmix64 finalizer over the xor-fold: cheap, well-avalanched.
  std::uint64_t x = state ^ (value + 0x9e3779b97f4a7c15ULL +
                             (state << 6) + (state >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::string hash_hex(std::uint64_t value) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace wp
