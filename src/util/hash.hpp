// Small deterministic hashing helpers (FNV-1a over bytes plus a mixing
// combiner). Used wherever the codebase needs a stable content digest that
// is identical across platforms and runs — cache keys for the simulation
// oracle, trace fingerprints — so std::hash (implementation-defined) is
// deliberately avoided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wp {

/// FNV-1a over a byte range.
std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t seed = 0xcbf29ce484222325ULL);

/// FNV-1a over the characters of a string.
std::uint64_t hash_string(const std::string& text,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Order-sensitive combiner: folds `value` into `state` with an avalanche
/// mix, so sequences hash differently under permutation.
std::uint64_t hash_combine(std::uint64_t state, std::uint64_t value);

/// Fixed-width lowercase hex rendering (16 digits), for readable cache keys.
std::string hash_hex(std::uint64_t value);

}  // namespace wp
