#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace wp::json {

// ------------------------------------------------------------ JsonWriter

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  quote(name);
  os_ << ": ";
  just_keyed_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  separate();
  quote(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  if (!std::isfinite(number)) {
    // NaN / ±Infinity have no JSON representation; a bare `nan` token
    // makes the whole artifact unparseable, so degrade to null.
    os_ << "null";
    return *this;
  }
  std::ostringstream formatted;
  formatted.precision(17);
  formatted << number;
  os_ << formatted.str();
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(long long number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  separate();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::open(char bracket) {
  separate();
  os_ << bracket;
  ++depth_;
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::close(char bracket) {
  --depth_;
  if (!first_in_scope_) {
    os_ << "\n";
    indent();
  }
  os_ << bracket;
  first_in_scope_ = false;
  return *this;
}

void JsonWriter::separate() {
  if (just_keyed_) {
    just_keyed_ = false;  // value follows its key inline
    return;
  }
  if (!first_in_scope_) os_ << ",";
  if (depth_ > 0) {
    os_ << "\n";
    indent();
  }
  first_in_scope_ = false;
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) os_ << "  ";
}

void JsonWriter::quote(const std::string& text) {
  os_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          os_ << buffer;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

// ------------------------------------------------------------------ Value

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw ParseError("value is not a bool", 0);
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) throw ParseError("value is not a number", 0);
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw ParseError("value is not a string", 0);
  return string_;
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  throw ParseError("value is not a container", 0);
}

const Value& Value::at(std::size_t index) const {
  if (kind_ != Kind::kArray) throw ParseError("value is not an array", 0);
  if (index >= array_.size()) throw ParseError("array index out of range", 0);
  return array_[index];
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw ParseError("value is not an object", 0);
  for (const Member& member : object_)
    if (member.first == key) return &member.second;
  return nullptr;
}

const std::vector<Value::Member>& Value::members() const {
  if (kind_ != Kind::kObject) throw ParseError("value is not an object", 0);
  return object_;
}

// ----------------------------------------------------------------- Parser

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_space();
    if (pos_ != text_.size())
      throw ParseError("trailing bytes after the document", pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail(std::string("bad literal (expected ") + word + ")");
      ++pos_;
    }
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_space();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Value v;
        v.kind_ = Value::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        expect_word("true");
        Value v;
        v.kind_ = Value::Kind::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        Value v;
        v.kind_ = Value::Kind::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        expect_word("null");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value(depth + 1));
      skip_space();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control byte in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_u_escape()); break;
        default: fail("unknown escape");
      }
    }
  }

  std::uint32_t parse_u_escape() {
    std::uint32_t code = parse_hex4();
    // Surrogate pair: a high surrogate must be followed by \uDC00..\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("unpaired high surrogate");
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    return code;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<std::uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<std::uint32_t>(h - 'A' + 10);
      else
        fail("bad hex digit in \\u escape");
    }
    return code;
  }

  static void append_codepoint(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return pos_ > first;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number (no fraction digits)");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) fail("bad number (no exponent digits)");
    }
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace wp::json
