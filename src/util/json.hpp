// JSON in and out for the observability layer and the bench artifacts.
//
// JsonWriter (moved here from bench/bench_common.hpp so library code — the
// metrics registry, the stats-scrape frame, the trace exporter — can emit
// the same artifact format as the benches): a minimal streaming emitter
// with automatic comma placement, two-space indentation and
// round-trippable doubles. Non-finite doubles (NaN, ±Inf) emit `null` —
// bare NaN/Infinity tokens are not JSON and used to corrupt BENCH_*.json
// whenever a timing ratio divided by zero.
//
// Value is the matching reader: a small recursive-descent parser for the
// artifacts the writer produces (and any other well-formed JSON document),
// used by tools/bench_diff to compare bench snapshots and by the
// stats-scrape client to unpack a daemon's metrics. Strict: trailing
// garbage, unterminated structures, bad escapes and over-deep nesting all
// throw ParseError. No DOM library dependency either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace wp::json {

// ------------------------------------------------------------ JsonWriter

/// Minimal streaming JSON emitter for bench artifacts (BENCH_*.json):
/// begin/end object/array with automatic comma placement and two-space
/// indentation, string escaping for the control/quote/backslash set.
/// Numbers print with enough digits to round-trip doubles; non-finite
/// doubles print as null (NaN/Infinity are not JSON). No dependency,
/// no DOM — callers stream straight into an ostream.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key of the next value inside an object: writer.key("x").value(1.0);
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text) { return value(std::string(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(unsigned long long number);
  JsonWriter& value(unsigned long number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(unsigned number) {
    return value(static_cast<unsigned long long>(number));
  }
  JsonWriter& value(long long number);
  JsonWriter& value(int number) { return value(static_cast<long long>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null_value();

  /// key + value in one call, the dominant pattern.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  JsonWriter& open(char bracket);
  JsonWriter& close(char bracket);
  void separate();
  void indent();
  void quote(const std::string& text);

  std::ostream& os_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool just_keyed_ = false;
};

// ------------------------------------------------------------------ Value

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// An immutable parsed JSON document. Objects keep insertion order (the
/// writer emits deterministic key order, so round trips are byte-stable);
/// lookup is linear — our documents are small and shallow.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Value>;

  Value() = default;  ///< null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; wrong-kind access throws ParseError(offset 0).
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Value& at(std::size_t index) const;

  /// Object access: nullptr when the key is absent.
  const Value* find(const std::string& key) const;
  const std::vector<Member>& members() const;

  /// Parses one complete JSON document; trailing non-space bytes throw.
  static Value parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;

  friend class Parser;
};

}  // namespace wp::json
