#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wp {

namespace {

/// Initial threshold: WIREPIPE_LOG when set and valid, else kWarn. Read
/// once, before main — set_log_level (e.g. --log-level) still overrides.
LogLevel initial_level() {
  LogLevel level = LogLevel::kWarn;
  const char* env = std::getenv("WIREPIPE_LOG");
  if (env != nullptr && !parse_log_level(env, level))
    std::fprintf(stderr, "[WARN] WIREPIPE_LOG=%s is not a log level "
                         "(trace|debug|info|warn|error|off); using warn\n",
                 env);
  return level;
}

std::atomic<LogLevel> g_level{initial_level()};

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "trace") out = LogLevel::kTrace;
  else if (name == "debug") out = LogLevel::kDebug;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "error") out = LogLevel::kError;
  else if (name == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace wp
