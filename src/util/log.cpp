#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace wp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace wp
