// Leveled logging with a process-global threshold. Benches default to kInfo,
// tests to kWarn; simulation internals log at kDebug/kTrace.
#pragma once

#include <sstream>
#include <string>

namespace wp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets/gets the global threshold; messages below it are discarded.
/// The initial threshold honours WIREPIPE_LOG=trace|debug|info|warn|error
/// |off (default warn); --log-level (every ArgParser binary) overrides it.
void set_log_level(LogLevel level);
LogLevel log_level();

const char* log_level_name(LogLevel level);

/// "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive) → level.
/// Returns false — leaving `out` untouched — on anything else.
bool parse_log_level(const std::string& name, LogLevel& out);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style logger: WP_LOG(kInfo) << "cycles=" << n;
/// The message is emitted (with level prefix) when the statement ends.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace wp

#define WP_LOG(level)                                      \
  if (::wp::LogLevel::level < ::wp::log_level()) {         \
  } else                                                   \
    ::wp::LogLine(::wp::LogLevel::level)
