#include "util/rng.hpp"

#include "util/assert.hpp"

namespace wp {

namespace {
// splitmix64, used to expand the seed into the full xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  WP_REQUIRE(bound > 0, "Rng::below bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  WP_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 top bits → double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() {
  Rng child(0);
  for (auto& s : child.s_) s = (*this)();
  return child;
}

}  // namespace wp
