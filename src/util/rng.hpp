// Deterministic pseudo-random number generation (xoshiro256**).
//
// Simulations, annealing and property tests all need reproducible streams
// that are independent of the standard library implementation, so we ship a
// small self-contained generator instead of std::mt19937.
#pragma once

#include <cstdint>
#include <vector>

namespace wp {

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Returns a fork of this generator with a decorrelated state, so parallel
  /// components can each own an independent stream from one master seed.
  Rng split();

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace wp
