#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  WP_REQUIRE(n_ > 0, "mean of empty stats");
  return mean_;
}

double RunningStats::variance() const {
  WP_REQUIRE(n_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  WP_REQUIRE(n_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  WP_REQUIRE(n_ > 0, "max of empty stats");
  return max_;
}

double percentile(std::vector<double> data, double p) {
  WP_REQUIRE(!data.empty(), "percentile of empty data");
  WP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::sort(data.begin(), data.end());
  if (p == 0.0) return data.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(data.size())));
  return data[std::min(rank, data.size()) - 1];
}

double geomean(const std::vector<double>& data) {
  WP_REQUIRE(!data.empty(), "geomean of empty data");
  double log_sum = 0.0;
  for (double x : data) {
    WP_REQUIRE(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(data.size()));
}

}  // namespace wp
