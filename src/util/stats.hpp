// Streaming statistics (Welford) and small helpers used by benches.
#pragma once

#include <cstddef>
#include <vector>

namespace wp {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a copy of the data (nearest-rank). p in [0,100].
double percentile(std::vector<double> data, double p);

/// Geometric mean; all inputs must be > 0.
double geomean(const std::vector<double>& data);

}  // namespace wp
