#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace wp {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  WP_CHECK(n >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

long long parse_int(std::string_view s) {
  const std::string buf{trim(s)};
  WP_REQUIRE(!buf.empty(), "parse_int on empty string");
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 0);
  WP_REQUIRE(end == buf.c_str() + buf.size(),
             "parse_int: trailing garbage in '" + buf + "'");
  return v;
}

double parse_double(std::string_view s) {
  const std::string buf{trim(s)};
  WP_REQUIRE(!buf.empty(), "parse_double on empty string");
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  WP_REQUIRE(end == buf.c_str() + buf.size(),
             "parse_double: trailing garbage in '" + buf + "'");
  return v;
}

}  // namespace wp
