// Small string utilities shared by the assembler, parsers and report code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wp {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a signed integer; throws wp::ContractViolation on garbage.
long long parse_int(std::string_view s);

/// Parses a double; throws wp::ContractViolation on garbage.
double parse_double(std::string_view s);

}  // namespace wp
