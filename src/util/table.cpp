#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace wp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WP_REQUIRE(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t col, Align align) {
  WP_REQUIRE(col < aligns_.size(), "column index out of range");
  aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  WP_REQUIRE(cells.size() == headers_.size(),
             "row width does not match header width");
  rows_.push_back({Row::Kind::kData, std::move(cells)});
}

void TextTable::add_separator() {
  rows_.push_back({Row::Kind::kSeparator, {}});
}

void TextTable::add_section(std::string title) {
  rows_.push_back({Row::Kind::kSection, {std::move(title)}});
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.kind != Row::Kind::kData) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());
  }

  std::size_t total = headers_.size() * 3 + 1;
  for (auto w : width) total += w;

  auto pad = [](const std::string& s, std::size_t w, Align a) {
    std::string out;
    const std::size_t fill = w > s.size() ? w - s.size() : 0;
    if (a == Align::kRight) out.append(fill, ' ');
    out += s;
    if (a == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  auto rule = [&] { os << std::string(total, '-') << '\n'; };

  rule();
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << ' ' << pad(headers_[c], width[c], aligns_[c]) << " |";
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    switch (row.kind) {
      case Row::Kind::kData:
        os << "|";
        for (std::size_t c = 0; c < row.cells.size(); ++c)
          os << ' ' << pad(row.cells[c], width[c], aligns_[c]) << " |";
        os << '\n';
        break;
      case Row::Kind::kSeparator:
        rule();
        break;
      case Row::Kind::kSection: {
        os << "| " << pad(row.cells[0], total - 4, Align::kLeft) << " |\n";
        break;
      }
    }
  }
  rule();
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::string fmt_fixed(double v, int decimals) {
  return format("%.*f", decimals, v);
}

std::string fmt_percent(double ratio, int decimals) {
  const double pct = ratio * 100.0;
  if (pct > 0.0)
    return "+" + format("%.*f", decimals, pct) + "%";
  return format("%.*f", decimals, pct) + "%";
}

}  // namespace wp
