// Plain-text table printer used by the benchmark harnesses to render
// paper-style tables (Table 1 of the DATE'05 paper and the extension
// studies) with aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wp {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and prints them with per-column alignment,
/// a header rule, and optional section separators.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Sets the alignment of one column (default: left for col 0, right else).
  void set_align(std::size_t col, Align align);

  /// Adds a data row. Must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator at the current position.
  void add_separator();

  /// Adds a full-width section title row (e.g. "Extraction Sort").
  void add_section(std::string title);

  std::string str() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    enum class Kind { kData, kSeparator, kSection } kind;
    std::vector<std::string> cells;  // data: one per column; section: [title]
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Formats a double with a fixed number of decimals.
std::string fmt_fixed(double v, int decimals);

/// Formats a ratio as a signed percentage ("+13%", "0%", "-4%").
std::string fmt_percent(double ratio, int decimals = 0);

}  // namespace wp
