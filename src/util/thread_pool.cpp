#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace wp {

namespace {
/// Pool whose worker is executing on this thread, if any.
thread_local const ThreadPool* t_current_pool = nullptr;

// Pool observability, shared across pool instances (the exploration
// workloads use one pool at a time; per-pool split isn't worth per-name
// registrations). Tasks are coarse — one task = one annealing restart or
// sweep chunk — so two histogram records per task are lost in the noise.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& wait_ns;
  obs::Histogram& run_ns;

  static PoolMetrics& get() {
    static PoolMetrics metrics{
        obs::Registry::global().counter("util/pool/tasks"),
        obs::Registry::global().gauge("util/pool/queue_depth"),
        obs::Registry::global().histogram("util/pool/task_wait_ns"),
        obs::Registry::global().histogram("util/pool/task_run_ns")};
    return metrics;
  }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this]() { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    WP_REQUIRE(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(QueuedTask{std::move(task), obs::now_ns()});
    metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  metrics.tasks.inc();
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    const std::uint64_t start_ns = obs::now_ns();
    metrics.wait_ns.record(start_ns - task.enqueue_ns);
    task.run();  // packaged_task captures any exception into its future
    metrics.run_ns.record(obs::now_ns() - start_ns);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  if (t_current_pool == this) {
    // Already on one of our own workers: blocking on chunk futures could
    // deadlock (every worker waiting, none free to dequeue), so degrade to
    // an inline loop on this thread.
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t count = end - begin;
  // grain == 0: a few chunks per worker so uneven per-index costs still
  // balance, while keeping dispatch overhead negligible for coarse tasks.
  // grain > 0: the caller asked for the deterministic fixed-size partition
  // (see header) — honour it exactly, even when it undersubscribes the
  // workers.
  const std::size_t chunks =
      grain > 0 ? (count + grain - 1) / grain : std::min(count, size() * 4);
  const std::size_t chunk_size =
      grain > 0 ? grain : (count + chunks - 1) / chunks;

  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    pending.push_back(submit([lo, hi, &body]() {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }

  std::exception_ptr first_error;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace wp
