// Fixed-size thread pool for the exploration engine.
//
// The annealer's parallel restarts and the relay-station sweeps both need a
// simple fan-out primitive: a fixed set of workers, FIFO task dispatch,
// future-based results and loud exception propagation. No work stealing, no
// priorities — exploration workloads are coarse-grained (one task = one
// annealing restart or one simulated sweep point), so a single shared queue
// is never the bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace wp {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains nothing: outstanding tasks are finished, queued tasks are still
  /// executed, then the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the returned future carries its result or
  /// its exception. Tasks start in FIFO order.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [begin, end), partitioned into contiguous
  /// chunks across the workers. Blocks until every chunk finished; if a
  /// body invocation threw, the rest of that chunk is skipped, the other
  /// chunks still complete, and the first (by chunk order) exception is
  /// rethrown to the caller.
  ///
  /// `grain` controls the chunking. 0 (the default) picks a few chunks per
  /// worker automatically — right for coarse bodies like annealing
  /// restarts. grain > 0 dispatches ⌈count/grain⌉ contiguous chunks of
  /// exactly `grain` indices (the last may be shorter), a *deterministic*
  /// partition: index i always lands in chunk (i - begin) / grain, and no
  /// two chunks overlap, so callers may key chunk-affine scratch (e.g. a
  /// per-chunk evaluation arena) off that quotient without synchronising.
  /// It also bounds dispatch overhead for small bodies: one queue
  /// round-trip per grain indices instead of per worker×4 slice.
  ///
  /// Re-entrant: when called from a task already running on this pool the
  /// range executes inline on the calling worker instead — blocking on
  /// futures there could deadlock once every worker waits on chunks none
  /// of them can dequeue. The grain partition is irrelevant inline (one
  /// thread walks the whole range in order).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Process-wide default pool, created on first use with the hardware
  /// concurrency. Intended for benches and examples; library entry points
  /// accept an explicit pool so tests can bound parallelism.
  static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  /// Queue entries keep their enqueue timestamp so the obs layer can
  /// report dispatch latency ("util/pool/task_wait_ns") alongside the live
  /// queue-depth gauge.
  struct QueuedTask {
    std::function<void()> run;
    std::uint64_t enqueue_ns = 0;
  };

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace wp
