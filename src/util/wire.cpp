#include "util/wire.hpp"

#include <cstring>

namespace wp::wire {

void Writer::u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t),
                "wire doubles are 64-bit IEEE-754");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(const std::string& s) {
  if (s.size() > 0xffffffffULL) throw WireError("string too long for wire");
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.append(s);
}

void Writer::raw(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void Reader::take(void* out, std::size_t n) {
  if (size_ - pos_ < n) throw WireError("truncated wire payload");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  take(&v, sizeof v);
  return v;
}

std::uint16_t Reader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Reader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t Reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

bool Reader::b() {
  const std::uint8_t v = u8();
  if (v > 1) throw WireError("malformed bool on wire");
  return v != 0;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (size_ - pos_ < n) throw WireError("string length exceeds payload");
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

void Reader::expect_done() const {
  if (pos_ != size_) throw WireError("trailing bytes after wire payload");
}

}  // namespace wp::wire
