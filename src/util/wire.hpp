// Wire serialization primitives for the evaluation service.
//
// A tiny explicit-little-endian byte-stream format shared by the
// EvalRequest/EvalReply value types (src/eval) and the daemon frame
// protocol (src/svc): fixed-width integers written byte by byte (the
// format is an interchange format between processes, unlike the
// host-order golden-record files), doubles as IEEE-754 bit patterns,
// strings and containers length-prefixed. The Reader is bounds-checked
// and throws WireError on any violation — truncated input, a length
// prefix larger than the remaining bytes, trailing garbage — so a
// malformed payload can never crash a decoder, only fail it loudly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wp::wire {

/// Thrown by Reader on malformed input (and by serializers asked to
/// encode a value the wire format cannot carry).
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends little-endian values to a growing byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v);                 ///< IEEE-754 bit pattern as u64
  void str(const std::string& s);     ///< u32 length + bytes
  void raw(const void* data, std::size_t size);

  const std::string& bytes() const { return buffer_; }
  std::string take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked sequential reader over a byte buffer. Non-owning: the
/// buffer must outlive the reader.
class Reader {
 public:
  Reader(const void* data, std::size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit Reader(const std::string& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b();           ///< strict: only 0/1 are valid encodings
  double f64();
  std::string str();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Throws WireError unless the whole buffer was consumed — catches
  /// trailing garbage after an otherwise valid payload.
  void expect_done() const;

 private:
  void take(void* out, std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace wp::wire
