// Tests of the wrapper-area model (the paper's <1% overhead claim, E5) and
// of the VCD waveform writer.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include <sstream>

#include "core/area.hpp"
#include "core/network.hpp"
#include "core/procs.hpp"
#include "core/shell.hpp"
#include "core/vcd.hpp"

namespace wp {
namespace {

TEST(Area, BreakdownSumsToTotal) {
  WrapperGeometry g;
  const WrapperArea a = estimate_wrapper_area(g);
  EXPECT_GT(a.fifo_storage, 0.0);
  EXPECT_GT(a.counters, 0.0);
  EXPECT_NEAR(a.total(),
              a.fifo_storage + a.fifo_control + a.counters + a.synchronizer +
                  a.output_stage + a.oracle_logic,
              1e-9);
}

TEST(Area, MonotoneInEveryGeometryKnob) {
  WrapperGeometry base;
  const double t0 = estimate_wrapper_area(base).total();
  for (auto mutate : std::vector<std::function<void(WrapperGeometry&)>>{
           [](WrapperGeometry& g) { g.num_inputs += 2; },
           [](WrapperGeometry& g) { g.num_outputs += 2; },
           [](WrapperGeometry& g) { g.data_width *= 2; },
           [](WrapperGeometry& g) { g.fifo_depth *= 2; },
           [](WrapperGeometry& g) { g.counter_bits += 4; }}) {
    WrapperGeometry g = base;
    mutate(g);
    EXPECT_GT(estimate_wrapper_area(g).total(), t0);
  }
}

TEST(Area, OracleAddsModestLogic) {
  WrapperGeometry g;
  const double without = estimate_wrapper_area(g).total();
  g.oracle = true;
  const double with = estimate_wrapper_area(g).total();
  EXPECT_GT(with, without);
  // "The effort was minimal": oracle logic well under 10% of the wrapper.
  EXPECT_LT((with - without) / without, 0.10);
}

TEST(Area, PaperOverheadClaimHolds) {
  // §1: wrappers synthesized at 130 nm cost < 1% of a 100-kgate IP. Our
  // NAND2 estimate is deliberately conservative, so assert the claim on a
  // lean case-study interface (2 channels each way, 16-bit data, depth-2
  // FIFOs, 4-bit lag counters) and the same order of magnitude (< 3%) on a
  // fat one (3x3 channels, 32-bit data).
  WrapperGeometry lean;
  lean.num_inputs = 2;
  lean.num_outputs = 2;
  lean.data_width = 16;
  lean.fifo_depth = 2;
  lean.counter_bits = 4;
  lean.oracle = true;
  EXPECT_LT(wrapper_overhead_ratio(lean, 100000.0), 0.01);

  WrapperGeometry fat;
  fat.num_inputs = 3;
  fat.num_outputs = 3;
  fat.data_width = 32;
  fat.fifo_depth = 2;
  fat.oracle = true;
  EXPECT_LT(wrapper_overhead_ratio(fat, 100000.0), 0.03);
}

TEST(Area, RelayStationIsTiny) {
  EXPECT_LT(estimate_relay_station_area(32) / 100000.0, 0.01);
  EXPECT_GT(estimate_relay_station_area(64),
            estimate_relay_station_area(16));
}

TEST(Area, RejectsBadGeometry) {
  WrapperGeometry g;
  g.num_inputs = 0;
  EXPECT_THROW(estimate_wrapper_area(g), ContractViolation);
  WrapperGeometry g2;
  g2.fifo_depth = 0;
  EXPECT_THROW(estimate_wrapper_area(g2), ContractViolation);
  EXPECT_THROW(wrapper_overhead_ratio(WrapperGeometry{}, 0.0),
               ContractViolation);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  std::ostringstream os;
  Network net;
  Wire* w = net.make_wire("bus");
  VcdWriter vcd(os, "top");
  vcd.add_wire(w);
  vcd.finalize_header();

  w->drive(Token::make(5));
  vcd.sample(0);
  vcd.sample(1);  // no change: nothing emitted
  w->drive(Token::tau());
  w->drive_stop(true);
  vcd.sample(2);

  const std::string text = os.str();
  EXPECT_NE(text.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(text.find("bus_data"), std::string::npos);
  EXPECT_NE(text.find("bus_valid"), std::string::npos);
  EXPECT_NE(text.find("bus_stop"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_EQ(text.find("#1"), std::string::npos);  // dedup quiet cycle
  EXPECT_NE(text.find("#2"), std::string::npos);
}

TEST(Vcd, LifecycleContractsEnforced) {
  std::ostringstream os;
  VcdWriter vcd(os);
  EXPECT_THROW(vcd.sample(0), ContractViolation);  // before header
  vcd.finalize_header();
  EXPECT_THROW(vcd.finalize_header(), ContractViolation);
  Wire w;
  EXPECT_THROW(vcd.add_wire(&w), ContractViolation);  // after header
}

TEST(Vcd, TracksAShellNetwork) {
  std::ostringstream os;
  Network net;
  Wire* in = net.make_wire("in");
  Wire* out = net.make_wire("out");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "id", std::make_unique<IdentityProcess>("id"), ShellOptions{}));
  shell->connect_input(0, in, 1);
  shell->add_output_wire(0, out);

  VcdWriter vcd(os, "lid");
  vcd.add_wire(in);
  vcd.add_wire(out);
  vcd.finalize_header();
  for (Cycle c = 0; c < 5; ++c) {
    in->drive(Token::make(10 + c));
    net.step();
    vcd.sample(c);
  }
  EXPECT_GT(os.str().size(), 100u);
}

}  // namespace
}  // namespace wp
