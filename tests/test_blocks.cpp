// Directed tests of the five processor blocks: port-level unit tests of
// IC/DC/RF/ALU (fired by hand) and golden-simulation tests of the control
// unit's dispatch, hazard and branch machinery via small programs.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "proc/blocks.hpp"
#include "proc/cpu.hpp"
#include "proc/experiment.hpp"

namespace wp::proc {
namespace {

// ------------------------------------------------------------------ IC

TEST(Icache, FetchAndBubble) {
  IcacheBlock ic({encode({Opcode::kLi, 1, 0, 0, 7}),
                  encode({Opcode::kHalt, 0, 0, 0, 0})});
  Word in[1], out[1];
  in[0] = FetchReq{true, 0}.pack();
  ic.fire(in, out);
  EXPECT_TRUE(FetchResp::unpack(out[0]).valid);
  EXPECT_EQ(decode(FetchResp::unpack(out[0]).instr_word).op, Opcode::kLi);

  in[0] = FetchReq{false, 0}.pack();
  ic.fire(in, out);
  EXPECT_FALSE(FetchResp::unpack(out[0]).valid);
}

TEST(Icache, OutOfRangeReadsAsHalt) {
  IcacheBlock ic({encode({Opcode::kNop, 0, 0, 0, 0})});
  Word in[1], out[1];
  in[0] = FetchReq{true, 100}.pack();
  ic.fire(in, out);
  EXPECT_EQ(decode(FetchResp::unpack(out[0]).instr_word).op, Opcode::kHalt);
}

// ------------------------------------------------------------------ DC

TEST(Dcache, LoadStoreAndStickyOutput) {
  DcacheBlock dc({10, 20, 30});
  Word in[3], out[1];
  // Store 99 at address 1.
  in[0] = DcCtl{false, MemKind::kStore}.pack();
  in[1] = 1;
  in[2] = 99;
  dc.fire(in, out);
  EXPECT_EQ(dc.memory()[1], 99u);
  // Load address 1.
  in[0] = DcCtl{false, MemKind::kLoad}.pack();
  dc.fire(in, out);
  EXPECT_EQ(out[0], 99u);
  // Bubble: output must stick (Moore determinism), memory untouched.
  in[0] = DcCtl{}.pack();
  in[1] = kPoisonWord;
  in[2] = kPoisonWord;
  dc.fire(in, out);
  EXPECT_EQ(out[0], 99u);
  EXPECT_EQ(dc.memory()[1], 99u);
}

TEST(Dcache, OutOfBoundsAccessThrows) {
  DcacheBlock dc({1, 2});
  Word in[3], out[1];
  in[0] = DcCtl{false, MemKind::kLoad}.pack();
  in[1] = 50;
  in[2] = 0;
  EXPECT_THROW(dc.fire(in, out), wp::ContractViolation);
}

TEST(Dcache, OracleAsksForExactlyWhatTheOpNeeds) {
  DcacheBlock dc({0});
  const Word load_ctl = DcCtl{false, MemKind::kLoad}.pack();
  const Word store_ctl = DcCtl{false, MemKind::kStore}.pack();
  const Word bubble_ctl = DcCtl{}.pack();
  std::uint8_t avail[3] = {1, 0, 0};
  Word values[3] = {bubble_ctl, 0, 0};
  EXPECT_EQ(dc.required(PeekView(avail, values, 3)), 0b001u);
  values[0] = load_ctl;
  EXPECT_EQ(dc.required(PeekView(avail, values, 3)), 0b011u);
  values[0] = store_ctl;
  EXPECT_EQ(dc.required(PeekView(avail, values, 3)), 0b111u);
  // Control not yet available: only the control is required so far.
  avail[0] = 0;
  EXPECT_EQ(dc.required(PeekView(avail, values, 3)), 0b001u);
}

TEST(Dcache, ResetRestoresInitialImage) {
  DcacheBlock dc({5, 6});
  Word in[3], out[1];
  in[0] = DcCtl{false, MemKind::kStore}.pack();
  in[1] = 0;
  in[2] = 42;
  dc.fire(in, out);
  dc.reset();
  EXPECT_EQ(dc.memory()[0], 5u);
}

// ------------------------------------------------------------------ RF

TEST(RegFile, ReadsAndSchedulesWriteback) {
  RegFileBlock rf;
  Word in[3], out[2];

  // Firing 0: dispatch "add r3 <- rs1=0, rs2=0" style control.
  RfCtl ctl;
  ctl.bubble = false;
  ctl.rs1 = 0;
  ctl.rs2 = 0;
  ctl.wb_kind = WbKind::kAlu;
  ctl.wb_reg = 3;
  in[0] = ctl.pack();
  in[1] = kPoisonWord;  // no writeback scheduled yet
  in[2] = kPoisonWord;
  rf.fire(in, out);
  EXPECT_EQ(Operands::unpack(out[0]).a, 0u);

  // Firing 1: bubble.
  in[0] = RfCtl{}.pack();
  rf.fire(in, out);

  // Firing 2: the ALU writeback arrives (scheduled for firing 0+2); a read
  // of r3 in the same firing must see the new value.
  RfCtl read_ctl;
  read_ctl.bubble = false;
  read_ctl.rs1 = 3;
  read_ctl.rs2 = 3;
  in[0] = read_ctl.pack();
  in[1] = 777;  // the writeback value
  rf.fire(in, out);
  EXPECT_EQ(rf.registers()[3], 777u);
  EXPECT_EQ(Operands::unpack(out[0]).a, 777u);
}

TEST(RegFile, OracleRequiresWbOnlyWhenScheduled) {
  RegFileBlock rf;
  std::uint8_t avail[3] = {1, 1, 1};
  Word values[3] = {RfCtl{}.pack(), 0, 0};
  EXPECT_EQ(rf.required(PeekView(avail, values, 3)), 0b001u);

  Word in[3], out[2];
  RfCtl ctl;
  ctl.bubble = false;
  ctl.wb_kind = WbKind::kLoad;
  ctl.wb_reg = 2;
  in[0] = ctl.pack();
  in[1] = kPoisonWord;
  in[2] = kPoisonWord;
  rf.fire(in, out);                   // firing 0 schedules load at firing 3
  in[0] = RfCtl{}.pack();
  rf.fire(in, out);                   // firing 1
  rf.fire(in, out);                   // firing 2
  EXPECT_EQ(rf.required(PeekView(avail, values, 3)), 0b101u);  // load needed
}

TEST(RegFile, StoreValueStagedOneFiring) {
  RegFileBlock rf;
  Word in[3], out[2];
  // Preload r1 via a load writeback path: schedule, then deliver 55.
  RfCtl ctl;
  ctl.bubble = false;
  ctl.wb_kind = WbKind::kAlu;
  ctl.wb_reg = 1;
  in[0] = ctl.pack();
  in[1] = kPoisonWord;
  in[2] = kPoisonWord;
  rf.fire(in, out);  // firing 0, wb at firing 2
  in[0] = RfCtl{}.pack();
  rf.fire(in, out);  // firing 1
  in[1] = 55;
  rf.fire(in, out);  // firing 2 commits r1 = 55

  // Firing 3: store reads rs2 = r1; value must appear on the store output
  // at firing 4, not 3.
  RfCtl store_ctl;
  store_ctl.bubble = false;
  store_ctl.rs2 = 1;
  store_ctl.store = true;
  in[0] = store_ctl.pack();
  in[1] = kPoisonWord;
  rf.fire(in, out);
  EXPECT_NE(out[1], 55u);
  in[0] = RfCtl{}.pack();
  rf.fire(in, out);
  EXPECT_EQ(out[1], 55u);
}

// ------------------------------------------------------------------ ALU

TEST(Alu, ComputesAllOps) {
  AluBlock alu;
  Word in[2], out[3];
  auto run = [&](Opcode op, std::uint32_t a, std::uint32_t b, bool use_imm,
                 std::int32_t imm) {
    AluCtl ctl;
    ctl.bubble = false;
    ctl.op = op;
    ctl.use_imm = use_imm;
    ctl.imm = imm;
    in[0] = ctl.pack();
    in[1] = Operands{a, b}.pack();
    alu.fire(in, out);
    return static_cast<std::uint32_t>(out[1]);
  };
  EXPECT_EQ(run(Opcode::kAdd, 3, 4, false, 0), 7u);
  EXPECT_EQ(run(Opcode::kSub, 10, 4, false, 0), 6u);
  EXPECT_EQ(run(Opcode::kMul, 6, 7, false, 0), 42u);
  EXPECT_EQ(run(Opcode::kAnd, 0b1100, 0b1010, false, 0), 0b1000u);
  EXPECT_EQ(run(Opcode::kOr, 0b1100, 0b1010, false, 0), 0b1110u);
  EXPECT_EQ(run(Opcode::kXor, 0b1100, 0b1010, false, 0), 0b0110u);
  EXPECT_EQ(run(Opcode::kAddi, 5, 99, true, -2), 3u);
  EXPECT_EQ(run(Opcode::kLi, 123, 456, true, 9), 9u);
  EXPECT_EQ(run(Opcode::kLd, 100, 0, true, 8), 108u);  // address arithmetic
}

TEST(Alu, FlagsAreStickyAndOnlyCmpWrites) {
  AluBlock alu;
  Word in[2], out[3];
  AluCtl cmp;
  cmp.bubble = false;
  cmp.op = Opcode::kCmp;
  in[0] = cmp.pack();
  in[1] = Operands{3, 5}.pack();
  alu.fire(in, out);
  Flags f = Flags::unpack(out[0]);
  EXPECT_FALSE(f.eq);
  EXPECT_TRUE(f.lt);

  // An ADD afterwards must not disturb the flags.
  AluCtl add;
  add.bubble = false;
  add.op = Opcode::kAdd;
  in[0] = add.pack();
  in[1] = Operands{9, 9}.pack();
  alu.fire(in, out);
  f = Flags::unpack(out[0]);
  EXPECT_FALSE(f.eq);
  EXPECT_TRUE(f.lt);

  // Bubbles hold flags and result.
  in[0] = AluCtl{}.pack();
  in[1] = kPoisonWord;
  alu.fire(in, out);
  EXPECT_EQ(out[1], 18u);
  EXPECT_TRUE(Flags::unpack(out[0]).lt);
}

TEST(Alu, SignedComparison) {
  AluBlock alu;
  Word in[2], out[3];
  AluCtl cmp;
  cmp.bubble = false;
  cmp.op = Opcode::kCmp;
  in[0] = cmp.pack();
  in[1] = Operands{static_cast<std::uint32_t>(-5), 3}.pack();
  alu.fire(in, out);
  EXPECT_TRUE(Flags::unpack(out[0]).lt);  // -5 < 3 signed
}

TEST(Alu, OracleSkipsOperandsForLi) {
  AluBlock alu;
  AluCtl li;
  li.bubble = false;
  li.op = Opcode::kLi;
  li.use_imm = true;
  const Word ctl_word = li.pack();
  std::uint8_t avail[2] = {1, 0};
  Word values[2] = {ctl_word, 0};
  EXPECT_EQ(alu.required(PeekView(avail, values, 2)), 0b01u);
  AluCtl add;
  add.bubble = false;
  add.op = Opcode::kAdd;
  values[0] = add.pack();
  EXPECT_EQ(alu.required(PeekView(avail, values, 2)), 0b11u);
}

// ------------------------------------------------------- CU via GoldenSim

/// Runs a program on the golden pipelined machine and returns the final DC.
std::vector<std::uint32_t> run_golden(const std::string& source,
                                      std::vector<std::uint32_t> ram,
                                      std::uint64_t* cycles = nullptr,
                                      bool multicycle = false) {
  ProgramSpec prog;
  prog.name = "test";
  prog.source = source;
  prog.ram = std::move(ram);
  prog.verify = [](const std::vector<std::uint32_t>&, std::string*) {
    return true;
  };
  CpuConfig config;
  config.multicycle = multicycle;
  GoldenSim golden(make_cpu_system(prog, config), false);
  const std::uint64_t n = golden.run_until_halt(100000);
  EXPECT_TRUE(golden.halted());
  if (cycles) *cycles = n;
  const auto& dc = dynamic_cast<const DcacheBlock&>(golden.process("DC"));
  return dc.memory();
}

TEST(ControlUnit, StraightLineStores) {
  const auto mem = run_golden(R"(
      li r1, 11
      li r2, 22
      st r1, 0(r0)
      st r2, 1(r0)
      halt
  )",
                              {0, 0, 0, 0});
  EXPECT_EQ(mem[0], 11u);
  EXPECT_EQ(mem[1], 22u);
}

TEST(ControlUnit, RawHazardInterlock) {
  // r2 depends on r1 back-to-back; the scoreboard must stall, not read
  // stale data.
  const auto mem = run_golden(R"(
      li r1, 5
      addi r2, r1, 1
      addi r3, r2, 1
      st r3, 0(r0)
      halt
  )",
                              {0});
  EXPECT_EQ(mem[0], 7u);
}

TEST(ControlUnit, LoadUseHazard) {
  const auto mem = run_golden(R"(
      ld r1, 0(r0)
      addi r2, r1, 100
      st r2, 1(r0)
      halt
  )",
                              {42, 0});
  EXPECT_EQ(mem[1], 142u);
}

TEST(ControlUnit, TakenAndNotTakenBranches) {
  const auto mem = run_golden(R"(
      li r1, 3
      li r2, 3
      cmp r1, r2
      beq equal
      st r0, 0(r0)       ; skipped
      halt
equal:
      li r3, 1
      st r3, 0(r0)
      cmp r1, r3
      beq never          ; 3 != 1: not taken
      li r4, 2
      st r4, 1(r0)
never:
      halt
  )",
                              {99, 99});
  EXPECT_EQ(mem[0], 1u);
  EXPECT_EQ(mem[1], 2u);
}

TEST(ControlUnit, LoopSumsCorrectly) {
  // sum 1..10 into mem[0].
  const auto mem = run_golden(R"(
      li r1, 0          ; acc
      li r2, 1          ; i
      li r3, 11         ; bound
loop: add r1, r1, r2
      addi r2, r2, 1
      cmp r2, r3
      blt loop
      st r1, 0(r0)
      halt
  )",
                              {0});
  EXPECT_EQ(mem[0], 55u);
}

TEST(ControlUnit, JumpRedirects) {
  const auto mem = run_golden(R"(
      jmp over
      st r0, 0(r0)      ; never executed
over: li r1, 9
      st r1, 0(r0)
      halt
  )",
                              {5});
  EXPECT_EQ(mem[0], 9u);
}

TEST(ControlUnit, MulticycleMatchesPipelinedResults) {
  // Mostly independent instructions, so the pipelined machine approaches
  // one instruction per cycle while the multicycle one takes ~5.
  const std::string src = R"(
      li r1, 6
      li r2, 7
      li r4, 1
      li r5, 2
      li r6, 3
      li r7, 4
      li r8, 5
      li r9, 6
      li r10, 7
      li r11, 8
      mul r3, r1, r2
      st r3, 0(r0)
      halt
  )";
  std::uint64_t pipe_cycles = 0, multi_cycles = 0;
  const auto pipe = run_golden(src, {0}, &pipe_cycles, false);
  const auto multi = run_golden(src, {0}, &multi_cycles, true);
  EXPECT_EQ(pipe[0], 42u);
  EXPECT_EQ(multi[0], 42u);
  // The multicycle machine is several times slower (~5 firings per instr).
  EXPECT_GT(multi_cycles, pipe_cycles * 2);
}

TEST(ControlUnit, RetiredInstructionCount) {
  ProgramSpec prog;
  prog.name = "t";
  prog.source = "li r1, 1\nli r2, 2\nhalt";
  prog.ram = {0};
  prog.verify = [](const std::vector<std::uint32_t>&, std::string*) {
    return true;
  };
  GoldenSim golden(make_cpu_system(prog, {}), false);
  golden.run_until_halt(10000);
  const auto& cu = dynamic_cast<const ControlUnit&>(golden.process("CU"));
  EXPECT_EQ(cu.instructions_retired(), 3u);
}

}  // namespace
}  // namespace wp::proc
