// ArgParser suite: the one flag vocabulary shared by the benches and the
// service binaries. Covers flags, valued options with fallbacks, typed and
// list accessors, the single positional, and the rejection paths (unknown
// flag, missing value, extra positional) that used to be hand-rolled — and
// could drift — per bench main.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/arg_parser.hpp"
#include "util/log.hpp"

namespace wp::cli {
namespace {

/// argv builder: keeps the strings alive and hands out char** like main's.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (std::string& s : strings) pointers.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  char** argv() { return pointers.data(); }

  std::vector<std::string> strings;
  std::vector<char*> pointers;
};

ArgParser make_parser() {
  ArgParser parser("tool", "test parser");
  parser.flag("--verbose", "say more");
  parser.option("--count", "N", "7", "how many");
  parser.option("--scale", "X", "1.5", "by how much");
  parser.option("--names", "A,B,...", "", "which ones");
  parser.positional("MODE", "default-mode", "what to do");
  return parser;
}

TEST(ArgParser, DefaultsWhenNothingPassed) {
  ArgParser parser = make_parser();
  Argv argv({"tool"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv())) << parser.error();
  EXPECT_FALSE(parser.has("--verbose"));
  EXPECT_EQ(parser.get("--count"), "7");
  EXPECT_EQ(parser.get_int("--count"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("--scale"), 1.5);
  EXPECT_TRUE(parser.get_list("--names").empty());
  EXPECT_EQ(parser.positional_value(), "default-mode");
}

TEST(ArgParser, ParsesFlagsOptionsAndPositional) {
  ArgParser parser = make_parser();
  Argv argv({"tool", "--verbose", "--count", "42", "--names", "a,b,c",
             "run-this"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv())) << parser.error();
  EXPECT_TRUE(parser.has("--verbose"));
  EXPECT_EQ(parser.get_int("--count"), 42);
  const std::vector<std::string> names = parser.get_list("--names");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[2], "c");
  EXPECT_EQ(parser.positional_value(), "run-this");
}

TEST(ArgParser, RejectsUnknownFlag) {
  ArgParser parser = make_parser();
  Argv argv({"tool", "--nonsense"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_NE(parser.error().find("--nonsense"), std::string::npos);
}

TEST(ArgParser, RejectsOptionMissingItsValue) {
  ArgParser parser = make_parser();
  Argv argv({"tool", "--count"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_NE(parser.error().find("--count"), std::string::npos);
}

TEST(ArgParser, RejectsExtraPositional) {
  ArgParser parser = make_parser();
  Argv argv({"tool", "one", "two"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParser, RejectsPositionalWhenNoneDeclared) {
  ArgParser parser("tool", "no positional");
  parser.flag("--verbose", "say more");
  Argv argv({"tool", "stray"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
}

TEST(ArgParser, LogLevelIsBuiltInAndAppliesOnParse) {
  const LogLevel before = log_level();
  ArgParser parser("tool", "no explicit log option");
  Argv argv({"tool", "--log-level", "debug"});
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv())) << parser.error();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(ArgParser, RejectsBogusLogLevel) {
  const LogLevel before = log_level();
  ArgParser parser("tool", "no explicit log option");
  Argv argv({"tool", "--log-level", "loud"});
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv()));
  EXPECT_NE(parser.error().find("loud"), std::string::npos);
  EXPECT_EQ(log_level(), before);  // an invalid level changes nothing
}

TEST(ArgParser, UsageNamesEveryDeclaredArgument) {
  ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("tool"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("MODE"), std::string::npos);
}

}  // namespace
}  // namespace wp::cli
