// Integration tests of the full case study: program correctness on all
// three executions, Table-1 invariants (WP1 = m/(m+n), WP2 >= WP1, CU-IC
// domination), the multicycle observation of §3, and the experiment driver.
#include <gtest/gtest.h>

#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "proc/experiment.hpp"

namespace wp::proc {
namespace {

class ProgramCorrectness
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ProgramCorrectness, GoldenWp1Wp2AllVerify) {
  const auto [multicycle, use_matmul] = GetParam();
  const ProgramSpec prog =
      use_matmul ? matmul_program(3, 5) : extraction_sort_program(8, 5);
  CpuConfig cpu;
  cpu.multicycle = multicycle;
  RsConfig cfg{"mixed", {{"CU-IC", 1}, {"RF-DC", 2}, {"ALU-RF", 1}}};
  const ExperimentRow row = run_experiment(prog, cpu, cfg);
  EXPECT_TRUE(row.result_ok) << row.detail;
  EXPECT_TRUE(row.wp1_equivalent) << row.detail;
  EXPECT_TRUE(row.wp2_equivalent) << row.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProgramCorrectness,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param) ? "multicycle"
                                                 : "pipelined") +
             (std::get<1>(param_info.param) ? "_matmul" : "_sort");
    });

TEST(CpuSystem, IdealLidMatchesGoldenCycles) {
  const ProgramSpec prog = extraction_sort_program(8, 3);
  const ExperimentRow row =
      run_experiment(prog, {}, {"ideal", {}});
  EXPECT_EQ(row.wp1_cycles, row.golden_cycles);
  EXPECT_EQ(row.wp2_cycles, row.golden_cycles);
  EXPECT_DOUBLE_EQ(row.th_wp1, 1.0);
  EXPECT_DOUBLE_EQ(row.th_wp2, 1.0);
}

/// Table-1 invariant: simulated WP1 throughput equals the static loop bound
/// m/(m+n) for every single-connection configuration.
class Wp1MatchesStatic : public ::testing::TestWithParam<std::string> {};

TEST_P(Wp1MatchesStatic, SingleConnectionRows) {
  const ProgramSpec prog = extraction_sort_program(8, 3);
  RsConfig cfg{"Only " + GetParam(), {{GetParam(), 1}}};
  ExperimentOptions options;
  options.check_equivalence = false;  // speed: correctness covered above
  const ExperimentRow row = run_experiment(prog, {}, cfg, options);
  EXPECT_NEAR(row.th_wp1, row.static_wp1, 0.02) << GetParam();
  EXPECT_GE(row.th_wp2, row.th_wp1 - 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllConnections, Wp1MatchesStatic,
                         ::testing::ValuesIn(cpu_connections()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Table1Shape, CuIcDominatesAndGainsLeast) {
  const ProgramSpec prog = extraction_sort_program(8, 3);
  ExperimentOptions options;
  options.check_equivalence = false;
  const ExperimentRow cu_ic =
      run_experiment(prog, {}, {"Only CU-IC", {{"CU-IC", 1}}}, options);
  const ExperimentRow rf_dc =
      run_experiment(prog, {}, {"Only RF-DC", {{"RF-DC", 1}}}, options);
  // CU-IC: one RS segments both wires of the bundle -> Th = 2/4 = 0.5, the
  // worst row of the table, with (almost) no WP2 gain.
  EXPECT_NEAR(cu_ic.th_wp1, 0.5, 0.01);
  EXPECT_LT(cu_ic.improvement, 0.10);
  // RF-DC: rarely-used link -> the biggest WP2 recovery of the table.
  EXPECT_NEAR(rf_dc.th_wp1, 2.0 / 3.0, 0.01);
  EXPECT_GT(rf_dc.improvement, 0.35);
  EXPECT_GT(rf_dc.th_wp2, 0.95);
}

TEST(Table1Shape, MulticycleCuIcShowsLargestRelativeGain) {
  // §3: "the CU-IC loop is excited only every 5 cycles ... that's the
  // reason of the best improvement of WP2 in this loop" (multicycle case).
  const ProgramSpec prog = extraction_sort_program(8, 3);
  CpuConfig multi;
  multi.multicycle = true;
  ExperimentOptions options;
  options.check_equivalence = false;
  const ExperimentRow pipe =
      run_experiment(prog, {}, {"Only CU-IC", {{"CU-IC", 1}}}, options);
  const ExperimentRow mc =
      run_experiment(prog, multi, {"Only CU-IC", {{"CU-IC", 1}}}, options);
  EXPECT_GT(mc.improvement, 0.25);
  EXPECT_GT(mc.improvement, pipe.improvement + 0.15);
}

TEST(Table1Shape, MoreRelayStationsNeverRaiseThroughput) {
  const ProgramSpec prog = extraction_sort_program(8, 3);
  ExperimentOptions options;
  options.check_equivalence = false;
  double prev_wp1 = 1.1, prev_wp2 = 1.1;
  for (int n : {0, 1, 2, 3}) {
    RsConfig cfg{"sweep", {{"RF-ALU", n}}};
    const ExperimentRow row = run_experiment(prog, {}, cfg, options);
    EXPECT_LE(row.th_wp1, prev_wp1 + 1e-9) << n;
    EXPECT_LE(row.th_wp2, prev_wp2 + 1e-9) << n;
    prev_wp1 = row.th_wp1;
    prev_wp2 = row.th_wp2;
  }
}

TEST(CpuGraph, LoopInventoryMatchesTopology) {
  auto g = make_cpu_graph();
  const auto report = wp::graph::analyze_throughput(g);
  // Fig. 1 loops: CU-IC digon, CU-ALU digon, RF-ALU digon, RF-DC digon,
  // CU->RF->ALU->CU, ALU->DC->RF->ALU, CU->DC->RF->ALU->CU.
  EXPECT_EQ(report.loops.size(), 7u);
  EXPECT_DOUBLE_EQ(report.system_throughput, 1.0);  // no RS yet
  // With one RS on the CU-IC bundle (both edges), that loop dominates.
  g.set_relay_stations(g.find_node("CU"), g.find_node("IC"), 1);
  g.set_relay_stations(g.find_node("IC"), g.find_node("CU"), 1);
  const auto pipelined = wp::graph::analyze_throughput(g);
  EXPECT_NEAR(pipelined.system_throughput, 0.5, 1e-12);
  EXPECT_NE(pipelined.critical_loop.find("IC"), std::string::npos);
}

TEST(Configs, Table1ListsHaveExpectedShape) {
  const auto sort_cfgs = table1_sort_configs();
  ASSERT_EQ(sort_cfgs.size(), 12u);  // ideal + 10 single + all-1
  EXPECT_EQ(sort_cfgs.front().label, "All 0 (ideal)");
  EXPECT_EQ(sort_cfgs.back().label, "All 1 (no CU-IC)");
  EXPECT_EQ(sort_cfgs.back().rs.count("CU-IC"), 0u);
  EXPECT_EQ(sort_cfgs.back().rs.size(), 9u);

  const auto mm_cfgs = table1_matmul_configs();
  ASSERT_EQ(mm_cfgs.size(), 24u);  // + 10 "all-1-and-2" + all-2 + all-2-and-1
  const auto& two_cu_ic = mm_cfgs[15];  // "All 1 and 2 CU-IC"
  EXPECT_EQ(two_cu_ic.label, "All 1 and 2 CU-IC");
  EXPECT_EQ(two_cu_ic.rs.at("CU-IC"), 2);
  EXPECT_EQ(two_cu_ic.rs.at("CU-RF"), 1);
}

TEST(Optimal, RsOptimizerBeatsAll1) {
  // Relieving up to two connections from the all-1 demand must give WP2
  // throughput at least as good as plain all-1.
  const ProgramSpec prog = extraction_sort_program(8, 3);
  std::map<std::string, int> demand, relieved;
  for (const auto& name : cpu_connections())
    if (name != "CU-IC") {
      demand[name] = 1;
      relieved[name] = 0;
    }
  const RsConfig best =
      optimal_config("Optimal 1 (no CU-IC)", prog, {}, demand, relieved, 2);
  const double all1 = simulate_wp2_throughput(prog, {}, demand);
  const double opt = simulate_wp2_throughput(prog, {}, best.rs);
  EXPECT_GE(opt, all1 - 1e-9);
}

TEST(Experiment, SimulatedWp2ThroughputIdealIsOne) {
  const ProgramSpec prog = extraction_sort_program(8, 3);
  EXPECT_NEAR(simulate_wp2_throughput(prog, {}, {}), 1.0, 1e-9);
}

class PointerChase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PointerChase, SumsTheListOnAllThreeExecutions) {
  const ProgramSpec prog = pointer_chase_program(24, GetParam());
  RsConfig cfg{"mixed", {{"DC-RF", 2}, {"CU-IC", 1}}};
  const ExperimentRow row = run_experiment(prog, {}, cfg);
  EXPECT_TRUE(row.result_ok) << row.detail;
  EXPECT_TRUE(row.wp1_equivalent && row.wp2_equivalent) << row.detail;
  EXPECT_GE(row.th_wp2, row.th_wp1 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointerChase,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(PointerChaseProgram, TerminatesAcrossSizes) {
  for (const std::size_t n : {2u, 3u, 8u, 64u}) {
    const ProgramSpec prog = pointer_chase_program(n, 7);
    GoldenSim golden(make_cpu_system(prog, {}), false);
    golden.run_until_halt(500000);
    ASSERT_TRUE(golden.halted()) << n;
  }
}

}  // namespace
}  // namespace wp::proc
