// Property-based equivalence tests (the heart of the paper's formal claim):
// for randomly generated Moore machines with sound-by-construction oracles,
// wired into random strongly-connected topologies with random relay-station
// counts, the WP1 and WP2 systems must be N-equivalent to the golden system
// after τ-filtering, and WP2 must never be slower than WP1.
#include <gtest/gtest.h>

#include "core/procs.hpp"
#include "core/system.hpp"
#include "util/rng.hpp"

namespace wp {
namespace {

struct RandomSystem {
  SystemSpec spec;
  int num_procs = 0;
};

/// Builds a random system: a ring (guaranteeing strong connectivity, so
/// every process keeps firing) plus random chords; every input port of
/// every process is connected exactly once.
RandomSystem random_system(std::uint64_t seed) {
  Rng rng(seed);
  RandomSystem sys;
  sys.num_procs = static_cast<int>(rng.range(2, 6));
  const int n = sys.num_procs;

  // Each process i has num_inputs(i) inputs; input 0 closes the ring from
  // process i-1; the rest are fed from random processes' outputs.
  std::vector<int> num_inputs(static_cast<std::size_t>(n));
  std::vector<int> num_outputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    num_inputs[static_cast<std::size_t>(i)] = static_cast<int>(rng.range(1, 3));
    num_outputs[static_cast<std::size_t>(i)] = static_cast<int>(rng.range(1, 3));
  }

  Rng table_rng = rng.split();
  for (int i = 0; i < n; ++i) {
    const auto ni = static_cast<std::size_t>(num_inputs[static_cast<std::size_t>(i)]);
    const auto no = static_cast<std::size_t>(num_outputs[static_cast<std::size_t>(i)]);
    const std::uint64_t proc_seed = table_rng();
    sys.spec.add_process("p" + std::to_string(i), [ni, no, proc_seed]() {
      Rng r(proc_seed);
      return std::make_unique<RandomMooreProcess>(
          "m", ni, no, /*num_states=*/5, r, /*use_peek_gate=*/true);
    });
  }
  for (int i = 0; i < n; ++i) {
    const int prev = (i + n - 1) % n;
    sys.spec.add_channel("p" + std::to_string(prev),
                         "out" + std::to_string(rng.below(
                             static_cast<std::uint64_t>(
                                 num_outputs[static_cast<std::size_t>(prev)]))),
                         "p" + std::to_string(i), "in0");
    for (int port = 1; port < num_inputs[static_cast<std::size_t>(i)]; ++port) {
      const int src = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      sys.spec.add_channel(
          "p" + std::to_string(src),
          "out" + std::to_string(rng.below(static_cast<std::uint64_t>(
              num_outputs[static_cast<std::size_t>(src)]))),
          "p" + std::to_string(i), "in" + std::to_string(port));
    }
  }
  // Random relay stations per connection.
  for (const auto& name : sys.spec.connections())
    sys.spec.set_connection_rs(name, static_cast<int>(rng.below(4)));
  return sys;
}

class EquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceProperty, Wp1AndWp2MatchGoldenAndWp2IsNoSlower) {
  RandomSystem sys = random_system(GetParam());

  GoldenSim golden(sys.spec, true);
  const std::uint64_t golden_cycles = 400;
  for (std::uint64_t i = 0; i < golden_cycles; ++i) golden.step();

  std::uint64_t firings_wp1 = 0, firings_wp2 = 0;
  for (const bool oracle : {false, true}) {
    ShellOptions opts;
    opts.use_oracle = oracle;
    LidSystem lid = build_lid(sys.spec, opts, true);
    for (int i = 0; i < 4000; ++i) lid.network->step();

    const auto eq = check_equivalence(golden.trace(), lid.trace);
    ASSERT_TRUE(eq.equivalent)
        << (oracle ? "WP2" : "WP1") << " seed=" << GetParam() << ": "
        << eq.detail;
    ASSERT_GT(eq.events_checked, 0u);

    std::uint64_t firings = lid.shells.at("p0")->stats().firings;
    ASSERT_GT(firings, 0u) << "system deadlocked, seed=" << GetParam();
    (oracle ? firings_wp2 : firings_wp1) = firings;
  }
  // The oracle only relaxes constraints: WP2 progress >= WP1 progress.
  EXPECT_GE(firings_wp2 + 1, firings_wp1) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, EquivalenceProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

/// With zero relay stations, any LID system must be cycle-identical to the
/// golden one (tag t fires at cycle t for every process).
class IdealIdentityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IdealIdentityProperty, ZeroRsFiresEveryCycle) {
  RandomSystem sys = random_system(GetParam());
  sys.spec.set_all_rs(0);
  LidSystem lid = build_lid(sys.spec, ShellOptions{}, false);
  const std::uint64_t cycles = 300;
  for (std::uint64_t i = 0; i < cycles; ++i) lid.network->step();
  for (const auto& [name, shell] : lid.shells)
    EXPECT_EQ(shell->stats().firings, cycles) << name;
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, IdealIdentityProperty,
                         ::testing::Range<std::uint64_t>(100, 115));

/// Oracle soundness property: scrambling (poisoning) every available but
/// non-required input must not change behaviour — checked by running WP2
/// twice, with and without poisoning, and comparing traces.
class PoisonInvarianceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoisonInvarianceProperty, PoisoningUnrequiredInputsChangesNothing) {
  RandomSystem sys = random_system(GetParam());
  Trace traces[2];
  for (int variant = 0; variant < 2; ++variant) {
    ShellOptions opts;
    opts.use_oracle = true;
    opts.poison_unrequired = variant == 1;
    LidSystem lid = build_lid(sys.spec, opts, true);
    for (int i = 0; i < 2000; ++i) lid.network->step();
    traces[variant] = std::move(lid.trace);
  }
  EXPECT_EQ(traces[0], traces[1]) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, PoisonInvarianceProperty,
                         ::testing::Range<std::uint64_t>(200, 215));

}  // namespace
}  // namespace wp
