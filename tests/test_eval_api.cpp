// EvalRequest/EvalReply API suite: wire primitive round trips and
// truncation behavior, per-kind request/reply serialize→deserialize
// identity, content-hash stability, the inline-program wire guard, the
// adapter guarantee (proc::run_experiment / simulate_wp2_throughput /
// ParallelSweep rows are bit-identical to direct SimOracle calls), error
// containment in eval::evaluate, and the prefix-hash golden-trace mode
// (digest equivalence, oracle parity with full mode, v2 persistence).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "gen/ensemble.hpp"
#include "proc/experiment.hpp"
#include "proc/programs.hpp"
#include "sim/golden_cache.hpp"
#include "sim/oracle.hpp"
#include "util/assert.hpp"
#include "util/wire.hpp"

namespace wp::eval {
namespace {

// ---------------------------------------------------------------- wire

TEST(Wire, PrimitiveRoundTrip) {
  wire::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.b(true);
  w.b(false);
  w.f64(3.14159265358979);
  w.str("hello");
  w.str("");

  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Wire, TruncationThrows) {
  wire::Writer w;
  w.u64(7);
  const std::string bytes = w.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Reader r(bytes.data(), cut);
    EXPECT_THROW(r.u64(), wire::WireError) << "cut at " << cut;
  }
}

TEST(Wire, StringLengthBeyondBufferThrows) {
  wire::Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.raw("abc", 3);
  wire::Reader r(w.bytes());
  EXPECT_THROW(r.str(), wire::WireError);
}

TEST(Wire, TrailingGarbageDetected) {
  wire::Writer w;
  w.u32(1);
  w.u8(0);  // one extra byte
  wire::Reader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.expect_done(), wire::WireError);
}

TEST(Wire, NonCanonicalBoolThrows) {
  wire::Writer w;
  w.u8(2);
  wire::Reader r(w.bytes());
  EXPECT_THROW(r.b(), wire::WireError);
}

// ------------------------------------------------- request round trips

EvalRequest sample_experiment_request() {
  ExperimentJob job;
  job.program = ProgramRef::extraction_sort(12, 9);
  job.cpu.fetch_window = 3;
  job.rs.label = "test-config";
  job.rs.rs = {{"CU-RF", 1}, {"RF-ALU", 2}};
  job.options.max_cycles = 5000;
  job.options.fifo_capacity = 8;
  return EvalRequest(std::move(job));
}

EvalRequest sample_throughput_request() {
  ThroughputJob job;
  job.program = ProgramRef::matmul(3, 5);
  job.rs = {{"CU-IC", 1}};
  job.fifo_capacity = 4;
  return EvalRequest(std::move(job));
}

EvalRequest sample_floorplan_request() {
  FloorplanJob job;
  job.topology.family = gen::TopologyFamily::kMesh;
  job.topology.num_nodes = 9;
  job.seed = 77;
  job.anneal.iterations = 16;
  job.anneal.weight_throughput = 25.0;
  return EvalRequest(std::move(job));
}

EvalRequest sample_ensemble_request() {
  gen::SampleJob job;
  job.family.name = "ws-16";
  job.family.topology.family = gen::TopologyFamily::kWattsStrogatz;
  job.family.topology.num_nodes = 16;
  job.family.anneal_iterations = 80;
  job.sample = 3;
  job.ensemble_seed = 21;
  job.simulate.enabled = true;
  job.simulate.golden_cycles = 32;
  job.simulate.wp_cycles = 128;
  job.anneal.iterations = 200;
  job.max_cycle_enumeration = 500;
  return EvalRequest(job);
}

std::string encoded(const EvalRequest& request) {
  wire::Writer w;
  request.encode(w);
  return w.take();
}

TEST(EvalRequestWire, RoundTripIdentityPerKind) {
  const std::vector<EvalRequest> requests = {
      sample_experiment_request(), sample_throughput_request(),
      sample_floorplan_request(), sample_ensemble_request()};
  for (const EvalRequest& request : requests) {
    const std::string bytes = encoded(request);
    wire::Reader r(bytes);
    const EvalRequest decoded = EvalRequest::decode(r);
    EXPECT_NO_THROW(r.expect_done());
    EXPECT_EQ(decoded.kind, request.kind);
    // decode∘encode must be the identity on the wire image — and the
    // content hash (computed from the canonical encoding) must survive
    // the round trip.
    EXPECT_EQ(encoded(decoded), bytes)
        << request_kind_name(request.kind);
    EXPECT_EQ(decoded.content_hash(), request.content_hash());
  }
}

TEST(EvalRequestWire, ContentHashIsStableAndSensitive) {
  const EvalRequest a = sample_floorplan_request();
  const EvalRequest b = sample_floorplan_request();
  EXPECT_EQ(a.content_hash(), b.content_hash());

  EvalRequest c = sample_floorplan_request();
  c.floorplan.seed += 1;
  EXPECT_NE(a.content_hash(), c.content_hash());

  // Distinct kinds carrying default payloads still hash apart (the kind
  // byte participates).
  EXPECT_NE(EvalRequest(ExperimentJob{}).content_hash(),
            EvalRequest(ThroughputJob{}).content_hash());
}

TEST(EvalRequestWire, InlineProgramIsNotWireable) {
  ExperimentJob job;
  job.program =
      ProgramRef::inlined(proc::extraction_sort_program(8, 1));
  const EvalRequest request((ExperimentJob(job)));
  EXPECT_FALSE(request.experiment.program.wireable());
  wire::Writer w;
  EXPECT_THROW(request.encode(w), wire::WireError);
  // ...but content hashing (in-process cache keys) still works, and two
  // inlined copies of the same program agree.
  const EvalRequest again((ExperimentJob(job)));
  EXPECT_EQ(request.content_hash(), again.content_hash());
}

TEST(EvalRequestWire, ForeignVersionRejected) {
  std::string bytes = encoded(sample_floorplan_request());
  bytes[0] = static_cast<char>(kEvalVersion + 1);
  wire::Reader r(bytes);
  EXPECT_THROW(EvalRequest::decode(r), wire::WireError);
}

TEST(EvalRequestWire, TruncatedRequestRejected) {
  const std::string bytes = encoded(sample_ensemble_request());
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    wire::Reader r(bytes.data(), cut);
    EXPECT_THROW(EvalRequest::decode(r), wire::WireError);
  }
}

TEST(EvalReplyWire, RoundTripPerKind) {
  std::vector<EvalReply> replies;
  replies.push_back(EvalReply::make_error(ErrorCode::kEvalFailed, "boom"));
  {
    EvalReply reply;
    reply.kind = ReplyKind::kExperiment;
    reply.row.label = "row";
    reply.row.golden_cycles = 123;
    reply.row.th_wp2 = 0.75;
    reply.row.wp1_equivalent = false;
    reply.row.detail = "detail text";
    replies.push_back(reply);
  }
  {
    EvalReply reply;
    reply.kind = ReplyKind::kThroughput;
    reply.throughput = 0.625;
    replies.push_back(reply);
  }
  {
    EvalReply reply;
    reply.kind = ReplyKind::kFloorplan;
    reply.floorplan.area = 12.5;
    reply.floorplan.total_rs = 7;
    reply.floorplan.engine_incremental = 99;
    replies.push_back(reply);
  }
  {
    EvalReply reply;
    reply.kind = ReplyKind::kSample;
    reply.sample.family = "mesh-9";
    reply.sample.sample = 2;
    reply.sample.throughput = 0.5;
    reply.sample.anneal_ms = 3.25;  // timings ride the wire too
    replies.push_back(reply);
  }
  for (const EvalReply& reply : replies) {
    wire::Writer w;
    reply.encode(w);
    wire::Reader r(w.bytes());
    const EvalReply decoded = EvalReply::decode(r);
    EXPECT_NO_THROW(r.expect_done());
    EXPECT_EQ(decoded.kind, reply.kind);
    wire::Writer again;
    decoded.encode(again);
    EXPECT_EQ(again.bytes(), w.bytes());
  }
}

// ------------------------------------------------------------ adapters

bool rows_equal(const proc::ExperimentRow& a, const proc::ExperimentRow& b) {
  return a.label == b.label && a.golden_cycles == b.golden_cycles &&
         a.wp1_cycles == b.wp1_cycles && a.wp2_cycles == b.wp2_cycles &&
         a.th_wp1 == b.th_wp1 && a.th_wp2 == b.th_wp2 &&
         a.improvement == b.improvement && a.static_wp1 == b.static_wp1 &&
         a.wp1_equivalent == b.wp1_equivalent &&
         a.wp2_equivalent == b.wp2_equivalent &&
         a.result_ok == b.result_ok && a.detail == b.detail;
}

TEST(EvalAdapters, RunExperimentMatchesDirectOracle) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 1);
  const proc::CpuConfig cpu;
  const proc::RsConfig config{"adapter-test", {{"CU-RF", 1}}};
  const proc::ExperimentOptions options;

  // Adapter path: EvalRequest through evaluate against a private oracle.
  sim::SimOracle oracle(8);
  ExperimentJob job;
  job.program = ProgramRef::inlined(program);
  job.cpu = cpu;
  job.rs = config;
  job.options = options;
  EvalContext context;
  context.oracle = &oracle;
  const proc::ExperimentRow via_eval =
      unwrap_row(evaluate(EvalRequest(std::move(job)), context));

  // Direct path.
  sim::SimOracle direct(8);
  const proc::ExperimentRow via_oracle =
      direct.run_experiment(program, cpu, config, options);

  EXPECT_TRUE(rows_equal(via_eval, via_oracle));
}

TEST(EvalAdapters, Wp2ThroughputMatchesDirectOracle) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 2);
  const proc::CpuConfig cpu;
  const std::map<std::string, int> rs = {{"CU-RF", 1}, {"RF-ALU", 1}};

  sim::SimOracle oracle(8);
  ThroughputJob job;
  job.program = ProgramRef::inlined(program);
  job.cpu = cpu;
  job.rs = rs;
  job.fifo_capacity = 16;
  EvalContext context;
  context.oracle = &oracle;
  const double via_eval =
      unwrap_throughput(evaluate(EvalRequest(std::move(job)), context));

  sim::SimOracle direct(8);
  EXPECT_EQ(via_eval, direct.wp2_throughput(program, cpu, rs, 16));
}

TEST(EvalAdapters, GeneratorRefMatchesInlineProgram) {
  // The wire path sends (generator, size, seed); the in-process path an
  // inline spec. Both must evaluate identically.
  const proc::CpuConfig cpu;
  const std::map<std::string, int> rs = {{"CU-RF", 1}};

  sim::SimOracle oracle_a(8);
  ThroughputJob by_ref;
  by_ref.program = ProgramRef::extraction_sort(8, 3);
  by_ref.cpu = cpu;
  by_ref.rs = rs;
  EvalContext context_a;
  context_a.oracle = &oracle_a;
  const double via_ref =
      unwrap_throughput(evaluate(EvalRequest(std::move(by_ref)), context_a));

  sim::SimOracle oracle_b(8);
  ThroughputJob by_inline;
  by_inline.program =
      ProgramRef::inlined(proc::extraction_sort_program(8, 3));
  by_inline.cpu = cpu;
  by_inline.rs = rs;
  EvalContext context_b;
  context_b.oracle = &oracle_b;
  const double via_inline = unwrap_throughput(
      evaluate(EvalRequest(std::move(by_inline)), context_b));

  EXPECT_EQ(via_ref, via_inline);
}

TEST(EvalAdapters, ParallelSweepStillMatchesSequentialRuns) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 4);
  const proc::CpuConfig cpu;
  const std::vector<proc::RsConfig> configs = {
      {"a", {}}, {"b", {{"CU-RF", 1}}}, {"c", {{"RF-ALU", 2}}}};

  sim::SimOracle oracle(8);
  proc::ParallelSweep sweep(program, cpu, {});
  sweep.set_oracle(&oracle);
  const std::vector<proc::ExperimentRow> rows = sweep.run(configs);
  ASSERT_EQ(rows.size(), configs.size());

  sim::SimOracle reference(8);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const proc::ExperimentRow direct =
        reference.run_experiment(program, cpu, configs[i], {});
    EXPECT_TRUE(rows_equal(rows[i], direct)) << configs[i].label;
  }
}

TEST(EvalAdapters, EnsembleSampleMatchesRunSampleJob) {
  gen::SampleJob job;
  job.family.name = "mesh-9";
  job.family.topology.family = gen::TopologyFamily::kMesh;
  job.family.topology.num_nodes = 9;
  job.sample = 1;
  job.ensemble_seed = 5;
  job.anneal.iterations = 60;
  job.max_cycle_enumeration = 200;

  const gen::SampleResult direct = gen::run_sample_job(job, nullptr);
  const gen::SampleResult via_eval =
      unwrap_sample(evaluate(EvalRequest(job), {}));
  EXPECT_TRUE(direct == via_eval);
}

// ---------------------------------------------------- error containment

TEST(EvalErrors, EvaluationFailureBecomesTypedErrorReply) {
  FloorplanJob bad;
  bad.topology.num_nodes = -3;  // generator precondition violation
  const EvalReply reply = evaluate(EvalRequest(std::move(bad)), {});
  EXPECT_EQ(reply.kind, ReplyKind::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kEvalFailed);
  EXPECT_FALSE(reply.error.message.empty());
  EXPECT_THROW(unwrap_floorplan(reply), ContractViolation);
}

TEST(EvalErrors, UnwrapKindMismatchThrows) {
  EvalReply reply;
  reply.kind = ReplyKind::kThroughput;
  EXPECT_THROW(unwrap_row(reply), ContractViolation);
  EXPECT_NO_THROW(unwrap_throughput(reply));
}

TEST(EvalErrors, BatchKeepsGoodResultsAroundFailures) {
  std::vector<EvalRequest> requests;
  requests.push_back(sample_floorplan_request());
  FloorplanJob bad;
  bad.topology.num_nodes = -1;
  requests.emplace_back(std::move(bad));
  requests.push_back(sample_floorplan_request());

  const std::vector<EvalReply> replies = evaluate_batch(requests, {});
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(replies[0].ok());
  EXPECT_FALSE(replies[1].ok());
  EXPECT_TRUE(replies[2].ok());
  EXPECT_TRUE(replies[0].floorplan == replies[2].floorplan);
}

TEST(EvalErrors, FloorplanEvaluationIsDeterministic) {
  const EvalReply a = evaluate(sample_floorplan_request(), {});
  const EvalReply b = evaluate(sample_floorplan_request(), {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.floorplan == b.floorplan);
}

// ----------------------------------------------------- prefix-hash mode

Trace small_trace() {
  Trace trace;
  trace["a"] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  trace["b"] = {10, 20, 30};
  return trace;
}

TEST(TraceDigest, IdenticalTracePasses) {
  const Trace golden = small_trace();
  const sim::TraceDigest digest = sim::make_trace_digest(golden, 4);
  const auto result = sim::check_equivalence_digest(digest, golden);
  EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST(TraceDigest, MutationWithinWindowDetected) {
  const Trace golden = small_trace();
  const sim::TraceDigest digest = sim::make_trace_digest(golden, 4);
  Trace mutated = golden;
  mutated["a"][1] = 999;  // inside the first window
  const auto result = sim::check_equivalence_digest(digest, mutated);
  EXPECT_FALSE(result.equivalent);
  EXPECT_NE(result.detail.find("a"), std::string::npos);
}

TEST(TraceDigest, MutationInLaterWindowDetected) {
  const Trace golden = small_trace();
  const sim::TraceDigest digest = sim::make_trace_digest(golden, 4);
  Trace mutated = golden;
  mutated["a"][7] = 999;  // second window
  EXPECT_FALSE(sim::check_equivalence_digest(digest, mutated).equivalent);
}

TEST(TraceDigest, ShorterWpRunCheckedAtCoveredCheckpoints) {
  const Trace golden = small_trace();
  const sim::TraceDigest digest = sim::make_trace_digest(golden, 4);
  Trace shorter = golden;
  shorter["a"].resize(8);  // both checkpoints at 4 and 8 still covered
  shorter["a"][2] = 777;
  EXPECT_FALSE(sim::check_equivalence_digest(digest, shorter).equivalent);
}

TEST(TraceDigest, GoldenRecordDispatchesOnMode) {
  sim::GoldenRecord record;
  record.trace = small_trace();
  record.trace_mode = sim::TraceMode::kFull;
  EXPECT_TRUE(
      sim::check_golden_equivalence(record, small_trace()).equivalent);

  sim::GoldenRecord digested;
  digested.trace_mode = sim::TraceMode::kPrefixHash;
  digested.digest = sim::make_trace_digest(small_trace(), 2);
  EXPECT_TRUE(
      sim::check_golden_equivalence(digested, small_trace()).equivalent);
  Trace mutated = small_trace();
  mutated["b"][0] = 11;
  EXPECT_FALSE(
      sim::check_golden_equivalence(digested, mutated).equivalent);
}

TEST(PrefixHashOracle, RowsMatchFullTraceMode) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 6);
  const proc::CpuConfig cpu;
  const proc::RsConfig config{"prefix-parity", {{"CU-RF", 1}}};

  sim::OracleOptions full_options;
  full_options.use_env_persist = false;
  full_options.use_env_trace_mode = false;
  sim::SimOracle full(full_options);

  sim::OracleOptions prefix_options = full_options;
  prefix_options.trace_mode = sim::TraceMode::kPrefixHash;
  prefix_options.prefix_window = 16;
  sim::SimOracle prefix(prefix_options);

  const proc::ExperimentRow full_row =
      full.run_experiment(program, cpu, config, {});
  const proc::ExperimentRow prefix_row =
      prefix.run_experiment(program, cpu, config, {});
  EXPECT_TRUE(rows_equal(full_row, prefix_row));

  // The digested record dropped its trace but kept the digest and the
  // fingerprint (computed before the drop).
  const auto record = prefix.golden(program, cpu, 2000000);
  EXPECT_EQ(record->trace_mode, sim::TraceMode::kPrefixHash);
  EXPECT_TRUE(record->trace.empty());
  EXPECT_FALSE(record->digest.streams.empty());
  EXPECT_NE(record->fingerprint, 0u);

  const auto full_record = full.golden(program, cpu, 2000000);
  EXPECT_EQ(full_record->fingerprint, record->fingerprint);
}

TEST(PrefixHashOracle, DigestRecordPersistsAndReloads) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("wp_eval_api_digest_" + std::to_string(::getpid()) + ".golden"))
          .string();
  sim::GoldenRecord record;
  record.cycles = 64;
  record.trace_mode = sim::TraceMode::kPrefixHash;
  record.digest = sim::make_trace_digest(small_trace(), 4);
  record.fingerprint = sim::trace_fingerprint(small_trace());
  ASSERT_TRUE(sim::save_golden_record(record, "test:key", path));

  const auto loaded = sim::load_golden_record(path, "test:key");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->trace_mode, sim::TraceMode::kPrefixHash);
  EXPECT_EQ(loaded->cycles, 64u);
  EXPECT_TRUE(loaded->trace.empty());
  ASSERT_EQ(loaded->digest.streams.size(), record.digest.streams.size());
  EXPECT_EQ(loaded->digest.window, 4u);
  EXPECT_EQ(loaded->digest.streams[0].checkpoints,
            record.digest.streams[0].checkpoints);
  EXPECT_TRUE(
      sim::check_golden_equivalence(*loaded, small_trace()).equivalent);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wp::eval
