// Floorplanning tests: sequence-pair packing semantics, overlap-freedom as
// a property over random instances, wirelength, the wire-delay → relay-
// station model, the parser, and the annealer's improvement guarantees.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/model.hpp"
#include "floorplan/sequence_pair.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "proc/cpu.hpp"
#include "util/thread_pool.hpp"

namespace wp::fplan {
namespace {

Instance two_blocks() {
  Instance inst;
  inst.name = "two";
  inst.blocks = {{"a", 2, 1}, {"b", 3, 2}};
  inst.nets = {{"ab", 0, 1}};
  return inst;
}

bool overlaps(const Instance& inst, const Placement& p, std::size_t i,
              std::size_t j) {
  const double eps = 1e-9;
  return p.x[i] + inst.blocks[i].width > p.x[j] + eps &&
         p.x[j] + inst.blocks[j].width > p.x[i] + eps &&
         p.y[i] + inst.blocks[i].height > p.y[j] + eps &&
         p.y[j] + inst.blocks[j].height > p.y[i] + eps;
}

TEST(SequencePair, IdentityPacksInARow) {
  const Instance inst = two_blocks();
  const auto sp = SequencePair::identity(2);
  const Placement p = pack(inst, sp);
  // a before b in both sequences: a left of b.
  EXPECT_DOUBLE_EQ(p.x[0], 0.0);
  EXPECT_DOUBLE_EQ(p.x[1], 2.0);
  EXPECT_DOUBLE_EQ(p.y[0], 0.0);
  EXPECT_DOUBLE_EQ(p.y[1], 0.0);
  EXPECT_DOUBLE_EQ(p.width, 5.0);
  EXPECT_DOUBLE_EQ(p.height, 2.0);
}

TEST(SequencePair, ReversedPositiveStacksVertically) {
  const Instance inst = two_blocks();
  SequencePair sp;
  sp.positive = {1, 0};  // b before a in Γ+, a before b in Γ-: a below b.
  sp.negative = {0, 1};
  const Placement p = pack(inst, sp);
  EXPECT_DOUBLE_EQ(p.x[0], 0.0);
  EXPECT_DOUBLE_EQ(p.x[1], 0.0);
  EXPECT_DOUBLE_EQ(p.y[0], 0.0);
  EXPECT_DOUBLE_EQ(p.y[1], 1.0);  // b above a
  EXPECT_DOUBLE_EQ(p.width, 3.0);
  EXPECT_DOUBLE_EQ(p.height, 3.0);
}

TEST(SequencePair, ValidityCheck) {
  SequencePair sp = SequencePair::identity(3);
  EXPECT_TRUE(sp.valid(3));
  sp.positive[0] = 2;  // duplicate
  EXPECT_FALSE(sp.valid(3));
  EXPECT_THROW(pack(two_blocks(), sp), wp::ContractViolation);
}

class PackingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackingProperty, RandomSequencePairsNeverOverlap) {
  wp::Rng rng(GetParam());
  const Instance inst =
      synthetic_instance(static_cast<std::size_t>(rng.range(3, 12)),
                         GetParam());
  for (int round = 0; round < 20; ++round) {
    const auto sp = SequencePair::random(inst.blocks.size(), rng);
    const Placement p = pack(inst, sp);
    for (std::size_t i = 0; i < inst.blocks.size(); ++i) {
      EXPECT_GE(p.x[i], 0.0);
      EXPECT_GE(p.y[i], 0.0);
      EXPECT_LE(p.x[i] + inst.blocks[i].width, p.width + 1e-9);
      EXPECT_LE(p.y[i] + inst.blocks[i].height, p.height + 1e-9);
      for (std::size_t j = i + 1; j < inst.blocks.size(); ++j)
        ASSERT_FALSE(overlaps(inst, p, i, j))
            << "blocks " << i << "," << j << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PackingProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(SequencePair, MovesAreInvolutions) {
  wp::Rng rng(5);
  SequencePair sp = SequencePair::random(8, rng);
  const SequencePair before = sp;
  for (int i = 0; i < 100; ++i) {
    const AppliedMove move = random_move(sp, rng);
    undo_move(sp, move);
    ASSERT_EQ(sp.positive, before.positive);
    ASSERT_EQ(sp.negative, before.negative);
  }
}

TEST(Model, NetLengthIsCenterToCenterManhattan) {
  const Instance inst = two_blocks();
  Placement p;
  p.x = {0, 4};
  p.y = {0, 3};
  // centers: (1, 0.5) and (5.5, 4): |dx|+|dy| = 4.5 + 3.5 = 8.
  EXPECT_DOUBLE_EQ(net_length(inst, p, inst.nets[0]), 8.0);
  EXPECT_DOUBLE_EQ(total_wirelength(inst, p), 8.0);
}

TEST(Model, RelayStationsFromWireDelay) {
  WireDelayModel model;  // 150 ps/mm, 500 ps clock -> 3.33 mm reach
  EXPECT_EQ(relay_stations_for_length(0.0, model), 0);
  EXPECT_EQ(relay_stations_for_length(3.0, model), 0);
  EXPECT_EQ(relay_stations_for_length(3.4, model), 1);
  EXPECT_EQ(relay_stations_for_length(6.8, model), 2);
  EXPECT_EQ(relay_stations_for_length(10.1, model), 3);
  EXPECT_NEAR(model.reachable_mm(), 10.0 / 3.0, 1e-9);
}

TEST(Model, RsDemandTakesWorstNetPerConnection) {
  Instance inst;
  inst.blocks = {{"a", 1, 1}, {"b", 1, 1}, {"c", 1, 1}};
  inst.nets = {{"link", 0, 1}, {"link", 0, 2}};
  Placement p;
  p.x = {0, 0, 40};
  p.y = {0, 0, 0};
  p.width = 41;
  p.height = 1;
  const auto demand = rs_demand(inst, p, WireDelayModel{});
  ASSERT_EQ(demand.size(), 1u);
  EXPECT_EQ(demand[0].first, "link");
  EXPECT_EQ(demand[0].second, relay_stations_for_length(40.0, {}));
}

TEST(Parser, RoundTrips) {
  const Instance inst = cpu_instance();
  EXPECT_EQ(inst.blocks.size(), 5u);
  EXPECT_EQ(inst.nets.size(), 11u);  // CU-IC twice + 9 others
  const Instance again = parse_instance(serialize_instance(inst));
  EXPECT_EQ(again.blocks.size(), inst.blocks.size());
  EXPECT_EQ(again.nets.size(), inst.nets.size());
  EXPECT_EQ(again.blocks[1].name, "IC");
  EXPECT_DOUBLE_EQ(again.blocks[1].width, 2.4);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_instance("block a 1"), wp::ContractViolation);
  EXPECT_THROW(parse_instance("block a 1 1\nblock a 2 2"),
               wp::ContractViolation);
  EXPECT_THROW(parse_instance("block a 1 1\nnet n a missing"),
               wp::ContractViolation);
  EXPECT_THROW(parse_instance("frob"), wp::ContractViolation);
  EXPECT_THROW(parse_instance("# only a comment"), wp::ContractViolation);
  EXPECT_THROW(parse_instance("block a 0 1"), wp::ContractViolation);
}

TEST(Annealer, ImprovesAreaOverRandomStart) {
  const Instance inst = synthetic_instance(12, 7);
  wp::Rng rng(1);
  // Mean random-packing area as the baseline.
  double random_area = 0;
  for (int i = 0; i < 20; ++i)
    random_area +=
        pack(inst, SequencePair::random(inst.blocks.size(), rng)).area();
  random_area /= 20;

  AnnealOptions options;
  options.iterations = 4000;
  options.weight_wirelength = 0.0;
  const AnnealResult result = anneal(inst, options);
  EXPECT_LT(result.area, random_area);
  EXPECT_GT(result.accepted_moves, 0);
  // The result must still be a legal packing.
  for (std::size_t i = 0; i < inst.blocks.size(); ++i)
    for (std::size_t j = i + 1; j < inst.blocks.size(); ++j)
      ASSERT_FALSE(overlaps(inst, result.placement, i, j));
}

TEST(Annealer, ThroughputDrivenBeatsAreaDrivenOnThroughput) {
  // The CPU instance with the system min-cycle-ratio as objective: giving
  // throughput weight must not yield a slower system than ignoring it.
  const Instance inst = cpu_instance();
  auto graph = wp::proc::make_cpu_graph();
  auto throughput_fn =
      [graph](const std::vector<std::pair<std::string, int>>& demand) {
        auto g = graph;
        for (const auto& [label, rs] : demand)
          for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e)
            if (g.edge(e).label == label) g.edge(e).relay_stations = rs;
        return wp::graph::min_cycle_ratio_lawler(g).ratio;
      };

  WireDelayModel tight;
  tight.clock_ps = 250.0;  // aggressive clock: wires need pipelining

  AnnealOptions area_driven;
  area_driven.iterations = 3000;
  area_driven.seed = 9;
  area_driven.delay_model = tight;

  AnnealOptions th_driven = area_driven;
  th_driven.weight_throughput = 50.0;
  th_driven.throughput_fn = throughput_fn;

  const AnnealResult area_result = anneal(inst, area_driven);
  const AnnealResult th_result = anneal(inst, th_driven);

  const double area_th =
      throughput_fn(rs_demand(inst, area_result.placement, tight));
  EXPECT_GE(th_result.throughput + 1e-9, area_th);
}

TEST(Annealer, RejectsMissingThroughputFn) {
  AnnealOptions options;
  options.weight_throughput = 1.0;
  EXPECT_THROW(anneal(two_blocks(), options), wp::ContractViolation);
}

bool identical_results(const AnnealResult& a, const AnnealResult& b) {
  return a.cost == b.cost && a.area == b.area &&
         a.wirelength == b.wirelength && a.throughput == b.throughput &&
         a.seed == b.seed && a.accepted_moves == b.accepted_moves &&
         a.sequence_pair.positive == b.sequence_pair.positive &&
         a.sequence_pair.negative == b.sequence_pair.negative &&
         a.placement.x == b.placement.x && a.placement.y == b.placement.y;
}

TEST(AnnealParallel, BitIdenticalToSequentialRestarts) {
  // The acceptance bar of the parallel engine: anneal_parallel with fixed
  // seeds must return exactly the best-of of the equivalent sequential
  // restarts, regardless of pool size or scheduling.
  const Instance inst = cpu_instance();
  const auto graph = wp::proc::make_cpu_graph();

  ParallelAnnealOptions job;
  job.base.iterations = 1500;
  job.base.seed = 21;
  job.base.weight_throughput = 200.0;
  job.base.delay_model.clock_ps = 300.0;
  job.restarts = 5;
  job.throughput_factory = [&graph]() {
    return wp::graph::ThroughputEvaluator(graph);
  };

  AnnealResult sequential;
  for (int i = 0; i < job.restarts; ++i) {
    AnnealOptions options = job.base;
    options.seed = job.base.seed + static_cast<std::uint64_t>(i);
    options.throughput_fn = job.throughput_factory();
    AnnealResult restart = anneal(inst, options);
    if (i == 0 || restart.cost < sequential.cost)
      sequential = std::move(restart);
  }

  for (const std::size_t workers : {1u, 2u, 4u}) {
    wp::ThreadPool pool(workers);
    job.pool = &pool;
    const AnnealResult parallel = anneal_parallel(inst, job);
    EXPECT_TRUE(identical_results(sequential, parallel))
        << "diverged with " << workers << " workers: sequential cost "
        << sequential.cost << " seed " << sequential.seed
        << " vs parallel cost " << parallel.cost << " seed "
        << parallel.seed;
  }
}

TEST(AnnealParallel, AreaDrivenDeterminismAndSeedBookkeeping) {
  const Instance inst = synthetic_instance(12, 5);
  ParallelAnnealOptions job;
  job.base.iterations = 2000;
  job.base.seed = 100;
  job.restarts = 4;
  wp::ThreadPool pool(4);
  job.pool = &pool;
  const AnnealResult a = anneal_parallel(inst, job);
  const AnnealResult b = anneal_parallel(inst, job);
  EXPECT_TRUE(identical_results(a, b));
  EXPECT_GE(a.seed, 100u);
  EXPECT_LT(a.seed, 104u);
}

TEST(AnnealParallel, MemoCacheSkipsRepeatedThroughputDemands) {
  const Instance inst = cpu_instance();
  const auto graph = wp::proc::make_cpu_graph();
  AnnealOptions options;
  options.iterations = 1500;
  options.seed = 7;
  options.weight_throughput = 200.0;
  options.delay_model.clock_ps = 300.0;
  options.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  const AnnealResult result = anneal(inst, options);
  // Most moves revisit an already-seen RS demand; the memo must absorb
  // them instead of re-solving the min cycle ratio.
  EXPECT_GT(result.throughput_cache_hits, result.throughput_evals);
  EXPECT_EQ(result.evaluations, options.iterations);
}

TEST(Instances, SyntheticIsDeterministic) {
  const Instance a = synthetic_instance(10, 3);
  const Instance b = synthetic_instance(10, 3);
  EXPECT_EQ(serialize_instance(a), serialize_instance(b));
  EXPECT_EQ(a.blocks.size(), 10u);
  EXPECT_GE(a.nets.size(), 10u);  // at least the ring
}

}  // namespace
}  // namespace wp::fplan
