// Property tests over random programs: for arbitrary terminating programs,
// arbitrary relay-station configurations and both micro-architectures, the
// wire-pipelined executions must match the golden machine exactly —
// τ-filtered traces, final data memory, and retired-instruction counts.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "proc/blocks.hpp"
#include "proc/cpu.hpp"
#include "proc/fuzz.hpp"
#include "util/rng.hpp"

namespace wp::proc {
namespace {

std::map<std::string, int> random_rs_map(wp::Rng& rng) {
  std::map<std::string, int> rs;
  for (const auto& name : cpu_connections())
    rs[name] = static_cast<int>(rng.below(3));
  return rs;
}

class CpuFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzz, GoldenWp1Wp2AgreeOnRandomPrograms) {
  const std::uint64_t seed = GetParam();
  RandomProgramConfig config;
  config.seed = seed;
  const ProgramSpec program = random_program(config);

  wp::Rng rng(seed ^ 0xFACEu);
  CpuConfig cpu;
  cpu.multicycle = rng.chance(0.3);
  cpu.relax_squashed_fetches = rng.chance(0.3);

  SystemSpec spec = make_cpu_system(program, cpu);
  GoldenSim golden(spec, true);
  const std::uint64_t golden_cycles = golden.run_until_halt(300000);
  ASSERT_TRUE(golden.halted()) << "golden did not halt, seed " << seed;
  const auto& golden_dc =
      dynamic_cast<const DcacheBlock&>(golden.process("DC"));
  const auto& golden_cu =
      dynamic_cast<const ControlUnit&>(golden.process("CU"));

  spec.set_rs_map(random_rs_map(rng));
  for (const bool oracle : {false, true}) {
    ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = 1 + rng.below(16);
    LidSystem lid = build_lid(spec, shell, true);
    const std::uint64_t cycles = lid.run_until_halt(3000000);
    ASSERT_TRUE(lid.shells.at("CU")->halted())
        << (oracle ? "WP2" : "WP1") << " did not halt, seed " << seed;
    ASSERT_GE(cycles, golden_cycles) << "WP faster than golden?!";

    const auto eq = check_equivalence(golden.trace(), lid.trace);
    ASSERT_TRUE(eq.equivalent)
        << (oracle ? "WP2" : "WP1") << " seed " << seed << ": " << eq.detail;

    const auto& dc =
        dynamic_cast<const DcacheBlock&>(lid.shells.at("DC")->process());
    ASSERT_EQ(dc.memory(), golden_dc.memory())
        << (oracle ? "WP2" : "WP1") << " final memory differs, seed "
        << seed;

    const auto& cu =
        dynamic_cast<const ControlUnit&>(lid.shells.at("CU")->process());
    ASSERT_EQ(cu.instructions_retired(), golden_cu.instructions_retired())
        << "retired count differs, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CpuFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));

class CpuFuzzNoise : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzzNoise, CongestionNeverChangesResults) {
  const std::uint64_t seed = GetParam();
  RandomProgramConfig config;
  config.seed = seed;
  config.blocks = 4;
  const ProgramSpec program = random_program(config);

  SystemSpec spec = make_cpu_system(program, {});
  GoldenSim golden(spec, true);
  golden.run_until_halt(300000);
  ASSERT_TRUE(golden.halted());
  const auto& golden_dc =
      dynamic_cast<const DcacheBlock&>(golden.process("DC"));

  wp::Rng rng(seed);
  NoiseOptions noise;
  noise.stall_probability = 0.1 + 0.5 * rng.uniform();
  noise.seed = rng();
  ShellOptions shell;
  shell.use_oracle = true;
  LidSystem lid = build_lid(spec, shell, true, noise);
  lid.run_until_halt(5000000);
  ASSERT_TRUE(lid.shells.at("CU")->halted()) << "seed " << seed;
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  ASSERT_TRUE(eq.equivalent) << "seed " << seed << ": " << eq.detail;
  const auto& dc =
      dynamic_cast<const DcacheBlock&>(lid.shells.at("DC")->process());
  ASSERT_EQ(dc.memory(), golden_dc.memory()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Programs, CpuFuzzNoise,
                         ::testing::Range<std::uint64_t>(100, 116));

TEST(Fuzz, GeneratorIsDeterministic) {
  RandomProgramConfig config;
  config.seed = 42;
  EXPECT_EQ(random_program(config).source, random_program(config).source);
  config.seed = 43;
  EXPECT_NE(random_program(config).source,
            random_program(RandomProgramConfig{42}).source);
}

TEST(Fuzz, GeneratedProgramsAssemble) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomProgramConfig config;
    config.seed = seed;
    const ProgramSpec program = random_program(config);
    EXPECT_NO_THROW({
      SystemSpec spec = make_cpu_system(program, {});
      (void)spec;
    }) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wp::proc
